# Empty dependencies file for pc_simfs.
# This may be replaced when dependencies are built.
