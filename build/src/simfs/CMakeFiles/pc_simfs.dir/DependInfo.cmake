
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simfs/flash_store.cc" "src/simfs/CMakeFiles/pc_simfs.dir/flash_store.cc.o" "gcc" "src/simfs/CMakeFiles/pc_simfs.dir/flash_store.cc.o.d"
  "/root/repo/src/simfs/protected_store.cc" "src/simfs/CMakeFiles/pc_simfs.dir/protected_store.cc.o" "gcc" "src/simfs/CMakeFiles/pc_simfs.dir/protected_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvm/CMakeFiles/pc_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
