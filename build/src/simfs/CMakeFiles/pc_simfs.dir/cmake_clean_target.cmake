file(REMOVE_RECURSE
  "libpc_simfs.a"
)
