file(REMOVE_RECURSE
  "CMakeFiles/pc_simfs.dir/flash_store.cc.o"
  "CMakeFiles/pc_simfs.dir/flash_store.cc.o.d"
  "CMakeFiles/pc_simfs.dir/protected_store.cc.o"
  "CMakeFiles/pc_simfs.dir/protected_store.cc.o.d"
  "libpc_simfs.a"
  "libpc_simfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_simfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
