# Empty dependencies file for pc_logs.
# This may be replaced when dependencies are built.
