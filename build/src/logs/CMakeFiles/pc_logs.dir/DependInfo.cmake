
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/analyzer.cc" "src/logs/CMakeFiles/pc_logs.dir/analyzer.cc.o" "gcc" "src/logs/CMakeFiles/pc_logs.dir/analyzer.cc.o.d"
  "/root/repo/src/logs/triplets.cc" "src/logs/CMakeFiles/pc_logs.dir/triplets.cc.o" "gcc" "src/logs/CMakeFiles/pc_logs.dir/triplets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
