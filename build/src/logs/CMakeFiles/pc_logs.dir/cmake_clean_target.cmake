file(REMOVE_RECURSE
  "libpc_logs.a"
)
