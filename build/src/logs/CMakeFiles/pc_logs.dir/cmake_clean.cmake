file(REMOVE_RECURSE
  "CMakeFiles/pc_logs.dir/analyzer.cc.o"
  "CMakeFiles/pc_logs.dir/analyzer.cc.o.d"
  "CMakeFiles/pc_logs.dir/triplets.cc.o"
  "CMakeFiles/pc_logs.dir/triplets.cc.o.d"
  "libpc_logs.a"
  "libpc_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
