# Empty compiler generated dependencies file for pc_util.
# This may be replaced when dependencies are built.
