file(REMOVE_RECURSE
  "CMakeFiles/pc_util.dir/hash.cc.o"
  "CMakeFiles/pc_util.dir/hash.cc.o.d"
  "CMakeFiles/pc_util.dir/logging.cc.o"
  "CMakeFiles/pc_util.dir/logging.cc.o.d"
  "CMakeFiles/pc_util.dir/rng.cc.o"
  "CMakeFiles/pc_util.dir/rng.cc.o.d"
  "CMakeFiles/pc_util.dir/stats.cc.o"
  "CMakeFiles/pc_util.dir/stats.cc.o.d"
  "CMakeFiles/pc_util.dir/strings.cc.o"
  "CMakeFiles/pc_util.dir/strings.cc.o.d"
  "CMakeFiles/pc_util.dir/table.cc.o"
  "CMakeFiles/pc_util.dir/table.cc.o.d"
  "CMakeFiles/pc_util.dir/zipf.cc.o"
  "CMakeFiles/pc_util.dir/zipf.cc.o.d"
  "libpc_util.a"
  "libpc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
