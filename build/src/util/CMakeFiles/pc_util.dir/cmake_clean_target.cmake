file(REMOVE_RECURSE
  "libpc_util.a"
)
