file(REMOVE_RECURSE
  "libpc_harness.a"
)
