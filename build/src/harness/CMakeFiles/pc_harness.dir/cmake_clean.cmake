file(REMOVE_RECURSE
  "CMakeFiles/pc_harness.dir/workbench.cc.o"
  "CMakeFiles/pc_harness.dir/workbench.cc.o.d"
  "libpc_harness.a"
  "libpc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
