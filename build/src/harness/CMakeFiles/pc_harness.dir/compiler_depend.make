# Empty compiler generated dependencies file for pc_harness.
# This may be replaced when dependencies are built.
