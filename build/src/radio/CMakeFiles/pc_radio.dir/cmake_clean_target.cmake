file(REMOVE_RECURSE
  "libpc_radio.a"
)
