# Empty dependencies file for pc_radio.
# This may be replaced when dependencies are built.
