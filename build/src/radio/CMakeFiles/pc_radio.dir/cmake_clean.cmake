file(REMOVE_RECURSE
  "CMakeFiles/pc_radio.dir/link.cc.o"
  "CMakeFiles/pc_radio.dir/link.cc.o.d"
  "libpc_radio.a"
  "libpc_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
