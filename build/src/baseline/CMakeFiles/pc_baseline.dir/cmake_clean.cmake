file(REMOVE_RECURSE
  "CMakeFiles/pc_baseline.dir/browser_cache.cc.o"
  "CMakeFiles/pc_baseline.dir/browser_cache.cc.o.d"
  "CMakeFiles/pc_baseline.dir/lru_cache.cc.o"
  "CMakeFiles/pc_baseline.dir/lru_cache.cc.o.d"
  "libpc_baseline.a"
  "libpc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
