
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/browser_cache.cc" "src/baseline/CMakeFiles/pc_baseline.dir/browser_cache.cc.o" "gcc" "src/baseline/CMakeFiles/pc_baseline.dir/browser_cache.cc.o.d"
  "/root/repo/src/baseline/lru_cache.cc" "src/baseline/CMakeFiles/pc_baseline.dir/lru_cache.cc.o" "gcc" "src/baseline/CMakeFiles/pc_baseline.dir/lru_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
