file(REMOVE_RECURSE
  "libpc_baseline.a"
)
