# Empty dependencies file for pc_baseline.
# This may be replaced when dependencies are built.
