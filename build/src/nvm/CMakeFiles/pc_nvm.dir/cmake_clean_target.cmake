file(REMOVE_RECURSE
  "libpc_nvm.a"
)
