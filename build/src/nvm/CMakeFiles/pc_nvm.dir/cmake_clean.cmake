file(REMOVE_RECURSE
  "CMakeFiles/pc_nvm.dir/byte_device.cc.o"
  "CMakeFiles/pc_nvm.dir/byte_device.cc.o.d"
  "CMakeFiles/pc_nvm.dir/capacity.cc.o"
  "CMakeFiles/pc_nvm.dir/capacity.cc.o.d"
  "CMakeFiles/pc_nvm.dir/flash_device.cc.o"
  "CMakeFiles/pc_nvm.dir/flash_device.cc.o.d"
  "CMakeFiles/pc_nvm.dir/technology.cc.o"
  "CMakeFiles/pc_nvm.dir/technology.cc.o.d"
  "libpc_nvm.a"
  "libpc_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
