
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/byte_device.cc" "src/nvm/CMakeFiles/pc_nvm.dir/byte_device.cc.o" "gcc" "src/nvm/CMakeFiles/pc_nvm.dir/byte_device.cc.o.d"
  "/root/repo/src/nvm/capacity.cc" "src/nvm/CMakeFiles/pc_nvm.dir/capacity.cc.o" "gcc" "src/nvm/CMakeFiles/pc_nvm.dir/capacity.cc.o.d"
  "/root/repo/src/nvm/flash_device.cc" "src/nvm/CMakeFiles/pc_nvm.dir/flash_device.cc.o" "gcc" "src/nvm/CMakeFiles/pc_nvm.dir/flash_device.cc.o.d"
  "/root/repo/src/nvm/technology.cc" "src/nvm/CMakeFiles/pc_nvm.dir/technology.cc.o" "gcc" "src/nvm/CMakeFiles/pc_nvm.dir/technology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
