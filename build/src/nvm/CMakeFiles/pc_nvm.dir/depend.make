# Empty dependencies file for pc_nvm.
# This may be replaced when dependencies are built.
