file(REMOVE_RECURSE
  "libpc_device.a"
)
