file(REMOVE_RECURSE
  "CMakeFiles/pc_device.dir/arbiter.cc.o"
  "CMakeFiles/pc_device.dir/arbiter.cc.o.d"
  "CMakeFiles/pc_device.dir/mobile_device.cc.o"
  "CMakeFiles/pc_device.dir/mobile_device.cc.o.d"
  "CMakeFiles/pc_device.dir/replay.cc.o"
  "CMakeFiles/pc_device.dir/replay.cc.o.d"
  "libpc_device.a"
  "libpc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
