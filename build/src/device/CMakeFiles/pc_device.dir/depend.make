# Empty dependencies file for pc_device.
# This may be replaced when dependencies are built.
