file(REMOVE_RECURSE
  "CMakeFiles/pc_workload.dir/loggen.cc.o"
  "CMakeFiles/pc_workload.dir/loggen.cc.o.d"
  "CMakeFiles/pc_workload.dir/population.cc.o"
  "CMakeFiles/pc_workload.dir/population.cc.o.d"
  "CMakeFiles/pc_workload.dir/searchlog.cc.o"
  "CMakeFiles/pc_workload.dir/searchlog.cc.o.d"
  "CMakeFiles/pc_workload.dir/stream.cc.o"
  "CMakeFiles/pc_workload.dir/stream.cc.o.d"
  "CMakeFiles/pc_workload.dir/universe.cc.o"
  "CMakeFiles/pc_workload.dir/universe.cc.o.d"
  "CMakeFiles/pc_workload.dir/vocab.cc.o"
  "CMakeFiles/pc_workload.dir/vocab.cc.o.d"
  "libpc_workload.a"
  "libpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
