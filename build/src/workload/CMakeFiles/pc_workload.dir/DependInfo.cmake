
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/loggen.cc" "src/workload/CMakeFiles/pc_workload.dir/loggen.cc.o" "gcc" "src/workload/CMakeFiles/pc_workload.dir/loggen.cc.o.d"
  "/root/repo/src/workload/population.cc" "src/workload/CMakeFiles/pc_workload.dir/population.cc.o" "gcc" "src/workload/CMakeFiles/pc_workload.dir/population.cc.o.d"
  "/root/repo/src/workload/searchlog.cc" "src/workload/CMakeFiles/pc_workload.dir/searchlog.cc.o" "gcc" "src/workload/CMakeFiles/pc_workload.dir/searchlog.cc.o.d"
  "/root/repo/src/workload/stream.cc" "src/workload/CMakeFiles/pc_workload.dir/stream.cc.o" "gcc" "src/workload/CMakeFiles/pc_workload.dir/stream.cc.o.d"
  "/root/repo/src/workload/universe.cc" "src/workload/CMakeFiles/pc_workload.dir/universe.cc.o" "gcc" "src/workload/CMakeFiles/pc_workload.dir/universe.cc.o.d"
  "/root/repo/src/workload/vocab.cc" "src/workload/CMakeFiles/pc_workload.dir/vocab.cc.o" "gcc" "src/workload/CMakeFiles/pc_workload.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
