# Empty dependencies file for pc_workload.
# This may be replaced when dependencies are built.
