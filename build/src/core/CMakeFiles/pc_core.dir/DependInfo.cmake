
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ad_cloudlet.cc" "src/core/CMakeFiles/pc_core.dir/ad_cloudlet.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/ad_cloudlet.cc.o.d"
  "/root/repo/src/core/cache_content.cc" "src/core/CMakeFiles/pc_core.dir/cache_content.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/cache_content.cc.o.d"
  "/root/repo/src/core/cache_manager.cc" "src/core/CMakeFiles/pc_core.dir/cache_manager.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/cache_manager.cc.o.d"
  "/root/repo/src/core/coordinator.cc" "src/core/CMakeFiles/pc_core.dir/coordinator.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/coordinator.cc.o.d"
  "/root/repo/src/core/hash_table.cc" "src/core/CMakeFiles/pc_core.dir/hash_table.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/hash_table.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/core/CMakeFiles/pc_core.dir/persistence.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/persistence.cc.o.d"
  "/root/repo/src/core/pocket_search.cc" "src/core/CMakeFiles/pc_core.dir/pocket_search.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/pocket_search.cc.o.d"
  "/root/repo/src/core/result_db.cc" "src/core/CMakeFiles/pc_core.dir/result_db.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/result_db.cc.o.d"
  "/root/repo/src/core/suggest.cc" "src/core/CMakeFiles/pc_core.dir/suggest.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/suggest.cc.o.d"
  "/root/repo/src/core/table_codec.cc" "src/core/CMakeFiles/pc_core.dir/table_codec.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/table_codec.cc.o.d"
  "/root/repo/src/core/tile_cloudlet.cc" "src/core/CMakeFiles/pc_core.dir/tile_cloudlet.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/tile_cloudlet.cc.o.d"
  "/root/repo/src/core/web_cloudlet.cc" "src/core/CMakeFiles/pc_core.dir/web_cloudlet.cc.o" "gcc" "src/core/CMakeFiles/pc_core.dir/web_cloudlet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logs/CMakeFiles/pc_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/pc_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/pc_nvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
