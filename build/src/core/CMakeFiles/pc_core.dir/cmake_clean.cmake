file(REMOVE_RECURSE
  "CMakeFiles/pc_core.dir/ad_cloudlet.cc.o"
  "CMakeFiles/pc_core.dir/ad_cloudlet.cc.o.d"
  "CMakeFiles/pc_core.dir/cache_content.cc.o"
  "CMakeFiles/pc_core.dir/cache_content.cc.o.d"
  "CMakeFiles/pc_core.dir/cache_manager.cc.o"
  "CMakeFiles/pc_core.dir/cache_manager.cc.o.d"
  "CMakeFiles/pc_core.dir/coordinator.cc.o"
  "CMakeFiles/pc_core.dir/coordinator.cc.o.d"
  "CMakeFiles/pc_core.dir/hash_table.cc.o"
  "CMakeFiles/pc_core.dir/hash_table.cc.o.d"
  "CMakeFiles/pc_core.dir/persistence.cc.o"
  "CMakeFiles/pc_core.dir/persistence.cc.o.d"
  "CMakeFiles/pc_core.dir/pocket_search.cc.o"
  "CMakeFiles/pc_core.dir/pocket_search.cc.o.d"
  "CMakeFiles/pc_core.dir/result_db.cc.o"
  "CMakeFiles/pc_core.dir/result_db.cc.o.d"
  "CMakeFiles/pc_core.dir/suggest.cc.o"
  "CMakeFiles/pc_core.dir/suggest.cc.o.d"
  "CMakeFiles/pc_core.dir/table_codec.cc.o"
  "CMakeFiles/pc_core.dir/table_codec.cc.o.d"
  "CMakeFiles/pc_core.dir/tile_cloudlet.cc.o"
  "CMakeFiles/pc_core.dir/tile_cloudlet.cc.o.d"
  "CMakeFiles/pc_core.dir/web_cloudlet.cc.o"
  "CMakeFiles/pc_core.dir/web_cloudlet.cc.o.d"
  "libpc_core.a"
  "libpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
