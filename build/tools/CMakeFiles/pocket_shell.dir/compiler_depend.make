# Empty compiler generated dependencies file for pocket_shell.
# This may be replaced when dependencies are built.
