file(REMOVE_RECURSE
  "CMakeFiles/pocket_shell.dir/pocket_shell.cc.o"
  "CMakeFiles/pocket_shell.dir/pocket_shell.cc.o.d"
  "pocket_shell"
  "pocket_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocket_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
