
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pocket_shell.cc" "tools/CMakeFiles/pocket_shell.dir/pocket_shell.cc.o" "gcc" "tools/CMakeFiles/pocket_shell.dir/pocket_shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/pc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/pc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/pc_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/pc_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/pc_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
