# Empty compiler generated dependencies file for search_with_ads.
# This may be replaced when dependencies are built.
