file(REMOVE_RECURSE
  "CMakeFiles/search_with_ads.dir/search_with_ads.cpp.o"
  "CMakeFiles/search_with_ads.dir/search_with_ads.cpp.o.d"
  "search_with_ads"
  "search_with_ads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_with_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
