file(REMOVE_RECURSE
  "CMakeFiles/offline_search.dir/offline_search.cpp.o"
  "CMakeFiles/offline_search.dir/offline_search.cpp.o.d"
  "offline_search"
  "offline_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
