# Empty compiler generated dependencies file for community_update.
# This may be replaced when dependencies are built.
