file(REMOVE_RECURSE
  "CMakeFiles/community_update.dir/community_update.cpp.o"
  "CMakeFiles/community_update.dir/community_update.cpp.o.d"
  "community_update"
  "community_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
