file(REMOVE_RECURSE
  "CMakeFiles/multi_cloudlet.dir/multi_cloudlet.cpp.o"
  "CMakeFiles/multi_cloudlet.dir/multi_cloudlet.cpp.o.d"
  "multi_cloudlet"
  "multi_cloudlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloudlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
