# Empty dependencies file for multi_cloudlet.
# This may be replaced when dependencies are built.
