file(REMOVE_RECURSE
  "CMakeFiles/result_db_test.dir/result_db_test.cc.o"
  "CMakeFiles/result_db_test.dir/result_db_test.cc.o.d"
  "result_db_test"
  "result_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
