file(REMOVE_RECURSE
  "CMakeFiles/flash_store_test.dir/flash_store_test.cc.o"
  "CMakeFiles/flash_store_test.dir/flash_store_test.cc.o.d"
  "flash_store_test"
  "flash_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
