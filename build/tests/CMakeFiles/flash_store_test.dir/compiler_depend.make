# Empty compiler generated dependencies file for flash_store_test.
# This may be replaced when dependencies are built.
