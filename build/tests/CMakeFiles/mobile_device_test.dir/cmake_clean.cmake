file(REMOVE_RECURSE
  "CMakeFiles/mobile_device_test.dir/mobile_device_test.cc.o"
  "CMakeFiles/mobile_device_test.dir/mobile_device_test.cc.o.d"
  "mobile_device_test"
  "mobile_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
