# Empty dependencies file for mobile_device_test.
# This may be replaced when dependencies are built.
