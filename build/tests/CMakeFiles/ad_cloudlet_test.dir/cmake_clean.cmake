file(REMOVE_RECURSE
  "CMakeFiles/ad_cloudlet_test.dir/ad_cloudlet_test.cc.o"
  "CMakeFiles/ad_cloudlet_test.dir/ad_cloudlet_test.cc.o.d"
  "ad_cloudlet_test"
  "ad_cloudlet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_cloudlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
