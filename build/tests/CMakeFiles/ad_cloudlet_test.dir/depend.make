# Empty dependencies file for ad_cloudlet_test.
# This may be replaced when dependencies are built.
