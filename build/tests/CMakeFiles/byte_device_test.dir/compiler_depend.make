# Empty compiler generated dependencies file for byte_device_test.
# This may be replaced when dependencies are built.
