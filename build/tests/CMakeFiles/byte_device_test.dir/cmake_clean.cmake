file(REMOVE_RECURSE
  "CMakeFiles/byte_device_test.dir/byte_device_test.cc.o"
  "CMakeFiles/byte_device_test.dir/byte_device_test.cc.o.d"
  "byte_device_test"
  "byte_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
