# Empty dependencies file for flash_store_property_test.
# This may be replaced when dependencies are built.
