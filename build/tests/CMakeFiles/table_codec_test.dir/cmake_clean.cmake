file(REMOVE_RECURSE
  "CMakeFiles/table_codec_test.dir/table_codec_test.cc.o"
  "CMakeFiles/table_codec_test.dir/table_codec_test.cc.o.d"
  "table_codec_test"
  "table_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
