# Empty compiler generated dependencies file for table_codec_test.
# This may be replaced when dependencies are built.
