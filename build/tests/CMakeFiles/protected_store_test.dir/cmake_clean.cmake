file(REMOVE_RECURSE
  "CMakeFiles/protected_store_test.dir/protected_store_test.cc.o"
  "CMakeFiles/protected_store_test.dir/protected_store_test.cc.o.d"
  "protected_store_test"
  "protected_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
