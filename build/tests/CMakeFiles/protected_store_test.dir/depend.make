# Empty dependencies file for protected_store_test.
# This may be replaced when dependencies are built.
