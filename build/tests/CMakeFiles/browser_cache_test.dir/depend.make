# Empty dependencies file for browser_cache_test.
# This may be replaced when dependencies are built.
