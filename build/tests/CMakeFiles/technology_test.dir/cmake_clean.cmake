file(REMOVE_RECURSE
  "CMakeFiles/technology_test.dir/technology_test.cc.o"
  "CMakeFiles/technology_test.dir/technology_test.cc.o.d"
  "technology_test"
  "technology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
