# Empty dependencies file for cache_content_test.
# This may be replaced when dependencies are built.
