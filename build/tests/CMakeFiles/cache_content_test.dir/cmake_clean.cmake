file(REMOVE_RECURSE
  "CMakeFiles/cache_content_test.dir/cache_content_test.cc.o"
  "CMakeFiles/cache_content_test.dir/cache_content_test.cc.o.d"
  "cache_content_test"
  "cache_content_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
