file(REMOVE_RECURSE
  "CMakeFiles/triplets_test.dir/triplets_test.cc.o"
  "CMakeFiles/triplets_test.dir/triplets_test.cc.o.d"
  "triplets_test"
  "triplets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
