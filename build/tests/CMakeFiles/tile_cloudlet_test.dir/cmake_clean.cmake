file(REMOVE_RECURSE
  "CMakeFiles/tile_cloudlet_test.dir/tile_cloudlet_test.cc.o"
  "CMakeFiles/tile_cloudlet_test.dir/tile_cloudlet_test.cc.o.d"
  "tile_cloudlet_test"
  "tile_cloudlet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_cloudlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
