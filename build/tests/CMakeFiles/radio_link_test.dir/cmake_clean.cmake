file(REMOVE_RECURSE
  "CMakeFiles/radio_link_test.dir/radio_link_test.cc.o"
  "CMakeFiles/radio_link_test.dir/radio_link_test.cc.o.d"
  "radio_link_test"
  "radio_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
