file(REMOVE_RECURSE
  "CMakeFiles/arbiter_test.dir/arbiter_test.cc.o"
  "CMakeFiles/arbiter_test.dir/arbiter_test.cc.o.d"
  "arbiter_test"
  "arbiter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
