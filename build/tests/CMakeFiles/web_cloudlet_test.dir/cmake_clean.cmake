file(REMOVE_RECURSE
  "CMakeFiles/web_cloudlet_test.dir/web_cloudlet_test.cc.o"
  "CMakeFiles/web_cloudlet_test.dir/web_cloudlet_test.cc.o.d"
  "web_cloudlet_test"
  "web_cloudlet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cloudlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
