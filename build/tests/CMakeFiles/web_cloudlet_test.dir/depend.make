# Empty dependencies file for web_cloudlet_test.
# This may be replaced when dependencies are built.
