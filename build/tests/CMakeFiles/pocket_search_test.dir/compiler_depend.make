# Empty compiler generated dependencies file for pocket_search_test.
# This may be replaced when dependencies are built.
