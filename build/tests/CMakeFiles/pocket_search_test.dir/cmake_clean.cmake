file(REMOVE_RECURSE
  "CMakeFiles/pocket_search_test.dir/pocket_search_test.cc.o"
  "CMakeFiles/pocket_search_test.dir/pocket_search_test.cc.o.d"
  "pocket_search_test"
  "pocket_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocket_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
