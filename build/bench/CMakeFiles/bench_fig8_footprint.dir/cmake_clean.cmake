file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_footprint.dir/bench_fig8_footprint.cc.o"
  "CMakeFiles/bench_fig8_footprint.dir/bench_fig8_footprint.cc.o.d"
  "bench_fig8_footprint"
  "bench_fig8_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
