file(REMOVE_RECURSE
  "CMakeFiles/bench_sec622_updates.dir/bench_sec622_updates.cc.o"
  "CMakeFiles/bench_sec622_updates.dir/bench_sec622_updates.cc.o.d"
  "bench_sec622_updates"
  "bench_sec622_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec622_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
