# Empty compiler generated dependencies file for bench_sec622_updates.
# This may be replaced when dependencies are built.
