# Empty dependencies file for bench_fig16_trace.
# This may be replaced when dependencies are built.
