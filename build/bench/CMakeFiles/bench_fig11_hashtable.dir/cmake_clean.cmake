file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hashtable.dir/bench_fig11_hashtable.cc.o"
  "CMakeFiles/bench_fig11_hashtable.dir/bench_fig11_hashtable.cc.o.d"
  "bench_fig11_hashtable"
  "bench_fig11_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
