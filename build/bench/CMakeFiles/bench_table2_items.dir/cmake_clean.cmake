file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_items.dir/bench_table2_items.cc.o"
  "CMakeFiles/bench_table2_items.dir/bench_table2_items.cc.o.d"
  "bench_table2_items"
  "bench_table2_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
