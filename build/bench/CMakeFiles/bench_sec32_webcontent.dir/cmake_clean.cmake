file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_webcontent.dir/bench_sec32_webcontent.cc.o"
  "CMakeFiles/bench_sec32_webcontent.dir/bench_sec32_webcontent.cc.o.d"
  "bench_sec32_webcontent"
  "bench_sec32_webcontent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_webcontent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
