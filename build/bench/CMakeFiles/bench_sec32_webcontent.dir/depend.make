# Empty dependencies file for bench_sec32_webcontent.
# This may be replaced when dependencies are built.
