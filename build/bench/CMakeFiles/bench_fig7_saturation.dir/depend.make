# Empty dependencies file for bench_fig7_saturation.
# This may be replaced when dependencies are built.
