# Empty dependencies file for bench_fig5_repeatability.
# This may be replaced when dependencies are built.
