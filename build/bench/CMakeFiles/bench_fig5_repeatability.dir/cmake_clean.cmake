file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_repeatability.dir/bench_fig5_repeatability.cc.o"
  "CMakeFiles/bench_fig5_repeatability.dir/bench_fig5_repeatability.cc.o.d"
  "bench_fig5_repeatability"
  "bench_fig5_repeatability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_repeatability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
