file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scaling.dir/bench_table1_scaling.cc.o"
  "CMakeFiles/bench_table1_scaling.dir/bench_table1_scaling.cc.o.d"
  "bench_table1_scaling"
  "bench_table1_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
