file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_navsplit.dir/bench_fig19_navsplit.cc.o"
  "CMakeFiles/bench_fig19_navsplit.dir/bench_fig19_navsplit.cc.o.d"
  "bench_fig19_navsplit"
  "bench_fig19_navsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_navsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
