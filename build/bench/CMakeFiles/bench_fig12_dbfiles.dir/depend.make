# Empty dependencies file for bench_fig12_dbfiles.
# This may be replaced when dependencies are built.
