file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dbfiles.dir/bench_fig12_dbfiles.cc.o"
  "CMakeFiles/bench_fig12_dbfiles.dir/bench_fig12_dbfiles.cc.o.d"
  "bench_fig12_dbfiles"
  "bench_fig12_dbfiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dbfiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
