# Empty dependencies file for bench_table3_triplets.
# This may be replaced when dependencies are built.
