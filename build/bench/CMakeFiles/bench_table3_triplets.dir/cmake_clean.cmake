file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_triplets.dir/bench_table3_triplets.cc.o"
  "CMakeFiles/bench_table3_triplets.dir/bench_table3_triplets.cc.o.d"
  "bench_table3_triplets"
  "bench_table3_triplets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_triplets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
