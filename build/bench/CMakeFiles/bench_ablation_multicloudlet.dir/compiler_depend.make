# Empty compiler generated dependencies file for bench_ablation_multicloudlet.
# This may be replaced when dependencies are built.
