file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multicloudlet.dir/bench_ablation_multicloudlet.cc.o"
  "CMakeFiles/bench_ablation_multicloudlet.dir/bench_ablation_multicloudlet.cc.o.d"
  "bench_ablation_multicloudlet"
  "bench_ablation_multicloudlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multicloudlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
