file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_userclasses.dir/bench_table6_userclasses.cc.o"
  "CMakeFiles/bench_table6_userclasses.dir/bench_table6_userclasses.cc.o.d"
  "bench_table6_userclasses"
  "bench_table6_userclasses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_userclasses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
