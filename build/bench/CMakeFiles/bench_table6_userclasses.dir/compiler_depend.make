# Empty compiler generated dependencies file for bench_table6_userclasses.
# This may be replaced when dependencies are built.
