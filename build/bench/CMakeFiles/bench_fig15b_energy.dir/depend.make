# Empty dependencies file for bench_fig15b_energy.
# This may be replaced when dependencies are built.
