# Empty dependencies file for bench_fig15a_latency.
# This may be replaced when dependencies are built.
