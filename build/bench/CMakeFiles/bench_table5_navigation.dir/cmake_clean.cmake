file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_navigation.dir/bench_table5_navigation.cc.o"
  "CMakeFiles/bench_table5_navigation.dir/bench_table5_navigation.cc.o.d"
  "bench_table5_navigation"
  "bench_table5_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
