file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_autosuggest.dir/bench_fig1_autosuggest.cc.o"
  "CMakeFiles/bench_fig1_autosuggest.dir/bench_fig1_autosuggest.cc.o.d"
  "bench_fig1_autosuggest"
  "bench_fig1_autosuggest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_autosuggest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
