# Empty dependencies file for bench_fig17_hitrate.
# This may be replaced when dependencies are built.
