/**
 * @file
 * Figure 8 — PocketSearch's DRAM (hash table) and flash (result
 * records) footprint as a function of the aggregate query-search-result
 * volume cached.
 *
 * Paper anchor: at the ~55% saturation point the cache holds ~2500
 * search results in ~1 MB of flash and ~200 KB of DRAM — under 1% of a
 * 2010 smartphone's resources.
 */

#include "bench_common.h"
#include "core/cache_content.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Figure 8", "cache footprint vs aggregate volume");
    harness::Workbench wb;
    const auto &tt = wb.triplets();
    CacheContentBuilder builder(wb.universe());

    AsciiTable t("Footprint vs cached volume share");
    t.header({"volume share", "pairs", "unique results", "DRAM",
              "flash"});
    for (double share :
         {0.10, 0.20, 0.30, 0.40, 0.45, 0.50, 0.55, 0.58, 0.60}) {
        ContentPolicy policy;
        policy.kind = ThresholdKind::VolumeShare;
        policy.volumeShare = share;
        const auto contents = builder.build(tt, policy);
        t.row({bench::pct(contents.cumulativeShare),
               strformat("%zu", contents.pairs.size()),
               strformat("%zu", contents.uniqueResults),
               humanBytes(contents.dramBytes),
               humanBytes(contents.flashBytes)});
    }
    t.print();

    ContentPolicy at55;
    at55.kind = ThresholdKind::VolumeShare;
    at55.volumeShare = 0.55;
    const auto cache = builder.build(tt, at55);
    AsciiTable anchors("Saturation-point cache: paper vs measured");
    anchors.header({"metric", "paper", "measured"});
    anchors.row({"search results cached", "~2500",
                 strformat("%zu", cache.uniqueResults)});
    anchors.row({"flash footprint", "~1 MB",
                 humanBytes(cache.flashBytes)});
    anchors.row({"DRAM footprint", "~200 KB",
                 humanBytes(cache.dramBytes)});
    anchors.row({"unique results / pairs", "~60%",
                 bench::pct(double(cache.uniqueResults) /
                            double(cache.pairs.size()))});
    anchors.print();

    std::printf("\nStoring one result page per query instead of one per "
                "unique result would inflate flash by ~%.1fx\n(the paper "
                "reports the per-result scheme saves ~8x vs full result "
                "pages).\n",
                double(cache.pairs.size()) / double(cache.uniqueResults));
    return 0;
}
