/**
 * @file
 * Flash-crowd query storm — the first event-driven-only scenario,
 * impossible to express on the epoch harness (it can only see month
 * boundaries; everything here happens *inside* one).
 *
 * 150 devices run 2 simulated months on the EventDriven engine with
 * weekly telemetry windows. Per device, query arrivals are a seeded
 * Poisson process (2/hour); week 2 is a burst window at 6x the base
 * rate — the flash crowd. Mid month 1 the radio dies fleet-wide for
 * two days; each device reconnects at its own staggered slot
 * (an hour apart), draining its queued misses the moment coverage
 * returns — a sync storm smeared over ~3 days rather than a single
 * month-boundary thundering herd. The weekly series shows all of it:
 * the burst spike in `device.queries`, the degraded-serve cliff in
 * the outage week, and the `device.missq.synced` drain wave across
 * the reconnect weeks.
 *
 * With --threads T (or PC_THREADS) the scenario reruns at 1, 2, ...,
 * T workers; every point's series CSV and BENCH JSON must be
 * byte-identical to the 1-thread run (exit 2 otherwise). The bench
 * self-gates (exit 1) unless the burst week carries at least 3x the
 * off-burst weekly volume AND the staggered reconnect actually drained
 * miss queues (run.reconnectSyncs > 0).
 *
 * Into $PC_BENCH_OUT (default bench_out/):
 *
 *   BENCH_fleet_events.{json,csv}     scalar report + registry
 *   BENCH_fleet_events_series.csv     weekly fleet time series
 *
 * Both byte-deterministic at any thread count, gated by bench_diff
 * against the committed baseline. Wall times are console-only.
 */

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "obs/fleet.h"

using namespace pc;
using namespace pc::harness;

namespace {

/** One event-driven run plus everything the gates compare. */
struct EventPoint
{
    unsigned threads = 0;
    double wallMs = 0.0;
    FleetRunResult run;
    std::unique_ptr<obs::FleetCollector> collector;
    std::string seriesCsv;
    std::string reportJson;
};

FleetRunConfig
scenario()
{
    FleetRunConfig cfg;
    cfg.devices = 150;
    cfg.months = 2;
    cfg.engine = FleetEngine::EventDriven;
    cfg.flashCrowd.enabled = true;
    cfg.flashCrowd.arrivalsPerHour = 2.0;
    cfg.flashCrowd.burstStart = 2 * workload::kWeek;
    cfg.flashCrowd.burstLen = workload::kWeek;
    cfg.flashCrowd.burstMultiplier = 6.0;
    cfg.flashCrowd.outageStart = workload::kMonth + workload::kWeek;
    cfg.flashCrowd.outageLen = 2ll * 24 * 3600 * kSecond;
    cfg.flashCrowd.reconnectStagger = 60ll * 60 * kSecond;
    cfg.flashCrowd.window = workload::kWeek;
    return cfg;
}

EventPoint
runAt(const Workbench &wb, FleetRunConfig cfg, unsigned threads)
{
    EventPoint p;
    p.threads = threads;
    cfg.threads = threads;

    obs::FleetConfig fc;
    fc.windowWidth = cfg.flashCrowd.window;
    p.collector = std::make_unique<obs::FleetCollector>(fc);

    const auto t0 = std::chrono::steady_clock::now();
    p.run = runFleet(wb, cfg, *p.collector);
    p.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();

    std::ostringstream os;
    p.collector->writeSeriesCsv(os);
    p.seriesCsv = os.str();
    return p;
}

/** Weekly fleet counter series, by name. */
std::vector<double>
weekly(const EventPoint &p, const char *name)
{
    return p.collector->fleetSeries().counterSeries(name);
}

/**
 * Burst amplification: burst-week queries over the mean of the other
 * month-0 weeks (the outage never touches month 0, so they are the
 * clean baseline).
 */
double
burstAmplification(const std::vector<double> &queries)
{
    if (queries.size() < 4)
        return 0.0;
    const double off = (queries[0] + queries[1] + queries[3]) / 3.0;
    return off > 0 ? queries[2] / off : 0.0;
}

/**
 * The gated report. Built identically at every thread count (no
 * thread counts, no wall times), so the sweep's byte-identity check
 * covers the BENCH JSON too.
 */
obs::BenchReport
buildReport(const EventPoint &p, const FleetRunConfig &cfg)
{
    const auto queries = weekly(p, "device.queries");
    const auto drained = weekly(p, "device.missq.synced");
    double missqDrained = 0;
    for (double v : drained)
        missqDrained += v;
    const double hitRate =
        p.run.queries ? double(p.run.cacheHits) / double(p.run.queries)
                      : 0.0;

    obs::BenchReport report("fleet_events",
                            "Flash-crowd storm — event-driven fleet");
    report.note("devices", strformat("%zu", cfg.devices));
    report.note("months", strformat("%u", cfg.months));
    report.note("burst_week", "2");
    report.note("burst_multiplier",
                strformat("%.0fx", cfg.flashCrowd.burstMultiplier));
    report.metric("queries", double(p.run.queries));
    report.metric("hit_rate", hitRate);
    report.metric("degraded_serves", double(p.run.degradedServes));
    report.metric("burst_amplification", burstAmplification(queries));
    report.metric("reconnect_syncs", double(p.run.reconnectSyncs));
    report.metric("missq_drained", missqDrained);
    if (const auto *h = p.collector->fleetRegistry().findHistogram(
            "device.latency_ms.pocket"))
        report.quantiles(*h, "ms");
    report.attachSnapshot(p.collector->fleetRegistry().snapshot());
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned maxThreads = pc::bench::threadsKnob(argc, argv, 1);
    bench::banner("Flash-crowd storm",
                  "150 devices, Poisson arrivals, 6x burst week, "
                  "mid-month outage + staggered reconnect, 1.." +
                      strformat("%u", maxThreads) + " threads");
    Workbench wb(smallWorkbenchConfig());
    const FleetRunConfig cfg = scenario();

    std::vector<unsigned> sweep;
    for (unsigned t = 1; t <= maxThreads; t *= 2)
        sweep.push_back(t);
    if (sweep.back() != maxThreads)
        sweep.push_back(maxThreads);

    std::vector<EventPoint> points;
    for (unsigned threads : sweep) {
        points.push_back(runAt(wb, cfg, threads));
        std::ostringstream os;
        buildReport(points.back(), cfg).writeJson(os);
        points.back().reportJson = os.str();
    }
    const EventPoint &ref = points.front();

    const auto queries = weekly(ref, "device.queries");
    const auto hits = weekly(ref, "device.cache_hits");
    const auto degraded = weekly(ref, "device.degraded.serves");
    const auto drained = weekly(ref, "device.missq.synced");

    // The weekly shape is the whole point: the epoch harness would
    // collapse all of this into two month-boundary rows.
    AsciiTable wk("Fleet by week (burst = week 2, outage = week 5)");
    wk.header({"week", "queries", "hit rate", "degraded", "missq drained"});
    for (std::size_t w = 0; w < queries.size(); ++w) {
        wk.row({strformat("%zu", w), strformat("%.0f", queries[w]),
                bench::pct(queries[w] > 0 ? hits[w] / queries[w] : 0.0),
                strformat("%.0f", degraded[w]),
                strformat("%.0f", drained[w])});
    }
    wk.print();

    const double amp = burstAmplification(queries);
    const bool burstVisible = amp >= 3.0;
    const bool stormDrained = ref.run.reconnectSyncs > 0;
    std::printf("\nburst amplification: %.2fx (gate: >= 3x) %s\n", amp,
                burstVisible ? "OK" : "** FAILED **");
    std::printf("staggered reconnect drains: %llu devices %s\n",
                (unsigned long long)ref.run.reconnectSyncs,
                stormDrained ? "OK" : "** FAILED **");

    // Per-thread scaling: wall time console-only, bytes gated.
    bool allIdentical = true;
    AsciiTable scale("Event-driven fleet scaling");
    scale.header({"threads", "wall ms", "speedup", "identical"});
    for (const EventPoint &p : points) {
        const bool same = p.seriesCsv == ref.seriesCsv &&
                          p.reportJson == ref.reportJson;
        allIdentical = allIdentical && same;
        scale.row({strformat("%u", p.threads),
                   strformat("%.1f", p.wallMs),
                   bench::times(ref.wallMs / p.wallMs),
                   p.threads == 1 ? "ref" : (same ? "yes" : "** NO **")});
    }
    scale.print();
    std::printf("\nbyte-identity across the sweep: %s\n",
                allIdentical ? "OK" : "** FAILED **");

    bench::emitReport(buildReport(ref, cfg));
    const std::string path =
        obs::BenchReport::outputDir() + "/BENCH_fleet_events_series.csv";
    std::ofstream f(path);
    f << ref.seriesCsv;
    if (f)
        std::printf("wrote %s\n", path.c_str());

    if (!allIdentical)
        return 2;
    return burstVisible && stormDrained ? 0 : 1;
}
