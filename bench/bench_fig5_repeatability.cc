/**
 * @file
 * Figure 5 — CDF of the per-user probability of submitting a *new*
 * query (a (query, clicked-result) pair not seen before from that user)
 * within a month, plus the navigational / non-navigational splits.
 *
 * Paper anchors: ~50% of users submit a new query at most 30% of the
 * time; mobile users repeat 56.5% on average (desktop: ~40%).
 */

#include <vector>

#include "bench_common.h"
#include "harness/workbench.h"
#include "logs/analyzer.h"

using namespace pc;
using namespace pc::logs;

namespace {

/** Fraction of users with newRate() <= x among the given stats. */
double
fractionAtMost(const std::vector<UserRepeatStats> &stats, double x)
{
    if (stats.empty())
        return 0.0;
    u64 n = 0;
    for (const auto &s : stats)
        n += (s.newRate() <= x);
    return double(n) / double(stats.size());
}

} // namespace

int
main()
{
    bench::banner("Figure 5", "per-user query repeatability CDF");
    harness::Workbench wb;
    LogAnalyzer an(wb.buildLog());

    RecordFilter nav, nonnav;
    nav.navigational = true;
    nonnav.navigational = false;
    const auto all_stats = an.userRepeatability(20);
    // For the per-type splits, require a handful of typed events rather
    // than 20 (light users rarely have 20 navigational queries alone).
    const auto nav_stats = an.userRepeatability(10, nav);
    const auto nonnav_stats = an.userRepeatability(10, nonnav);

    AsciiTable t("CDF: fraction of users with new-query rate <= x");
    t.header({"new-query rate x", "all queries", "navigational only",
              "non-navigational only"});
    for (double x : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
        t.row({strformat("%.1f", x),
               bench::pct(fractionAtMost(all_stats, x)),
               bench::pct(fractionAtMost(nav_stats, x)),
               bench::pct(fractionAtMost(nonnav_stats, x))});
    }
    t.print();

    AsciiTable anchors("Anchors: paper vs measured");
    anchors.header({"metric", "paper", "measured"});
    anchors.row({"users with new-rate <= 0.30", "~50%",
                 bench::pct(fractionAtMost(all_stats, 0.30))});
    anchors.row({"mean repeat rate", "56.5%",
                 bench::pct(an.meanRepeatRate())});
    anchors.row({"desktop repeat rate (prior work, for contrast)",
                 "~40%", "n/a"});
    anchors.print();

    std::printf("\nUsers measured: %zu (all), %zu (nav split), "
                "%zu (non-nav split)\n",
                all_stats.size(), nav_stats.size(), nonnav_stats.size());
    return 0;
}
