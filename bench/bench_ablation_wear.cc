/**
 * @file
 * Ablation — flash wear of the nightly update cycle.
 *
 * Section 3.2's premise is that pushing megabytes into the phone every
 * night is sustainable. This bench simulates a year of nightly cache
 * updates (hash table rebuild + database patches) on the flash model
 * and compares the worst per-block erase count against NAND endurance
 * (~10k cycles for 2010-era MLC): the update traffic is orders of
 * magnitude below any wear concern.
 */

#include "bench_common.h"
#include "core/cache_manager.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Ablation", "flash wear of nightly updates");
    harness::Workbench wb;

    pc::nvm::FlashConfig fc;
    fc.capacity = 1 * kGiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    PocketSearch ps(wb.universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);

    CacheManager manager(wb.universe());
    UpdatePolicy policy;
    policy.content.kind = ThresholdKind::VolumeShare;
    policy.content.volumeShare = 0.55;

    // A year of nightly updates against the (stationary) triplet table;
    // every cycle rewrites the hash table and patches the database.
    Bytes total_exchange = 0;
    const int kNights = 365;
    for (int night = 0; night < kNights; ++night) {
        const auto stats =
            manager.update(ps, wb.triplets(), policy, t);
        total_exchange += stats.bytesToServer + stats.bytesToPhone;
    }

    const u64 endurance = 10'000; // MLC-era program/erase cycles
    AsciiTable w("Wear after 365 nightly update cycles");
    w.header({"metric", "value"});
    w.row({"total update traffic", humanBytes(total_exchange)});
    w.row({"flash pages programmed",
           strformat("%llu", (unsigned long long)flash.pagesProgrammed())});
    w.row({"blocks erased",
           strformat("%llu", (unsigned long long)flash.blocksErased())});
    w.row({"worst per-block erase count",
           strformat("%llu", (unsigned long long)flash.maxWear())});
    w.row({"MLC endurance budget", strformat("%llu", (unsigned long long)endurance)});
    w.row({"years to exhaust the worst block at this rate",
           strformat("%.0f", double(endurance) /
                                 std::max<u64>(flash.maxWear(), 1))});
    w.print();

    std::printf("\nEven with the store's simple non-rotating allocator, "
                "nightly cache maintenance is far below\nendurance "
                "limits — wear is a non-issue for pocket cloudlets, as "
                "the paper assumes.\n");
    return 0;
}
