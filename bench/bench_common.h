/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries: uniform
 * "paper vs measured" reporting on top of the AsciiTable printer.
 */

#ifndef PC_BENCH_BENCH_COMMON_H
#define PC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.h"
#include "util/strings.h"
#include "util/table.h"

namespace pc::bench {

/**
 * Shared thread-count knob for benches that scale over a worker pool:
 * `--threads=N` or `--threads N` on the command line wins, then the
 * PC_THREADS environment variable, then `def`. Values < 1 fall back
 * to `def`.
 */
inline unsigned
threadsKnob(int argc, char **argv, unsigned def)
{
    long v = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0)
            v = std::atol(argv[i] + 10);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            v = std::atol(argv[i + 1]);
    }
    if (v < 1) {
        if (const char *env = std::getenv("PC_THREADS"))
            v = std::atol(env);
    }
    return v >= 1 ? unsigned(v) : def;
}

/** Print the standard experiment banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("\n################################################\n");
    std::printf("# %s — %s\n", id.c_str(), what.c_str());
    std::printf("################################################\n");
}

/** Format a ratio like "16.2x". */
inline std::string
times(double x)
{
    return strformat("%.1fx", x);
}

/** Format a percentage like "65.3%". */
inline std::string
pct(double frac)
{
    return strformat("%.1f%%", 100.0 * frac);
}

/**
 * Write the report's machine-readable files (JSON + CSV) into the
 * standard bench output directory and print where they went.
 */
inline void
emitReport(const pc::obs::BenchReport &report)
{
    const auto paths = report.writeFiles();
    for (const auto &p : paths)
        std::printf("wrote %s\n", p.c_str());
}

} // namespace pc::bench

#endif // PC_BENCH_BENCH_COMMON_H
