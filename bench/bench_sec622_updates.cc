/**
 * @file
 * Section 6.2.2 — daily cache updates: replaying users month-long
 * streams while the community cache is refreshed daily through the
 * Figure 14 protocol, vs the static cache.
 *
 * Paper anchors: daily updates lift the average hit rate from 65% to
 * 66% (+1.5% relative) because the popular set drifts only slightly
 * over a month; the nightly exchange stays under ~1.5 MB.
 */

#include "bench_common.h"
#include "core/cache_manager.h"
#include "device/replay.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Section 6.2.2", "daily cache updates");
    harness::Workbench wb;

    // The replay month's community traffic, sliced into days, feeds the
    // server's daily content extraction (a rolling popular set).
    const auto replay_month_log = wb.nextCommunityMonth();

    core::CacheManager manager(wb.universe());
    core::UpdatePolicy policy;
    policy.content.kind = core::ThresholdKind::VolumeShare;
    policy.content.volumeShare = 0.55;

    // Precompute one triplet table per day from the build month plus
    // the replay month's prefix (what the server has seen so far).
    const SimTime replay_start = workload::kMonth;

    ReplayDriver driver(wb.universe(), wb.communityCache(),
                        wb.population());

    // Precompute the server's weekly triplet tables once (they are
    // user-independent). The extraction window *rolls*: always the most
    // recent 28 days, so freshly trending pairs reach full weight.
    std::vector<logs::TripletTable> weekly_tables;
    for (int week = 1; week <= 4; ++week) {
        const SimTime lo = SimTime(week) * workload::kWeek;
        const SimTime hi = workload::kMonth + lo;
        workload::SearchLog window(wb.universe());
        for (const auto &rec : wb.buildLog().records()) {
            if (rec.time >= lo)
                window.add(rec);
        }
        for (const auto &rec : replay_month_log.records()) {
            if (rec.time < hi)
                window.add(rec);
        }
        weekly_tables.push_back(logs::TripletTable::fromLog(window));
    }

    workload::PopulationSampler sampler(wb.population());
    Rng seeder(4242);
    const u32 users_per_class = 25;

    double static_sum = 0, daily_sum = 0;
    Bytes max_exchange = 0;
    u64 users = 0;

    for (int c = 0; c < 4; ++c) {
        for (u32 u = 0; u < users_per_class; ++u) {
            Rng user_rng = seeder.fork();
            const auto profile = sampler.sampleUserOfClass(
                user_rng, workload::UserClass(c));
            workload::UserStream stream(wb.universe(), profile,
                                        seeder.next(), /*epoch=*/0);
            stream.setEpoch(1);
            const auto events = stream.month(replay_start);

            // Static cache replay.
            {
                pc::nvm::FlashConfig fc;
                fc.capacity = 64 * kMiB;
                pc::nvm::FlashDevice flash(fc);
                pc::simfs::FlashStore store(flash);
                core::PocketSearch ps(wb.universe(), store);
                SimTime t = 0;
                ps.loadCommunity(wb.communityCache(), t);
                const auto r = driver.replayUser(profile, events, ps);
                static_sum += r.hitRate();
            }

            // Daily-update replay: apply the Figure 14 protocol each
            // simulated night using the rolling community logs.
            {
                pc::nvm::FlashConfig fc;
                fc.capacity = 64 * kMiB;
                pc::nvm::FlashDevice flash(fc);
                pc::simfs::FlashStore store(flash);
                core::PocketSearch ps(wb.universe(), store);
                SimTime t = 0;
                ps.loadCommunity(wb.communityCache(), t);

                u64 hits = 0;
                std::size_t next_ev = 0;
                for (int week = 0; week < 4; ++week) {
                    const SimTime week_end =
                        replay_start +
                        SimTime(week + 1) * workload::kWeek;
                    for (; next_ev < events.size() &&
                           events[next_ev].time < week_end;
                         ++next_ev) {
                        hits += ps.containsPair(events[next_ev].pair);
                        ps.recordClick(events[next_ev].pair, t);
                    }
                    // Refresh with what the community has done so far
                    // (weekly cadence keeps the bench fast; the paper
                    // ran nightly with the same outcome shape).
                    const auto stats = manager.update(
                        ps, weekly_tables[std::size_t(week)], policy, t);
                    max_exchange = std::max(
                        max_exchange,
                        stats.bytesToServer + stats.bytesToPhone);
                }
                for (; next_ev < events.size(); ++next_ev) {
                    hits += ps.containsPair(events[next_ev].pair);
                    ps.recordClick(events[next_ev].pair, t);
                }
                daily_sum += events.empty()
                    ? 0.0 : double(hits) / double(events.size());
            }
            ++users;
        }
    }

    const double static_rate = static_sum / double(users);
    const double daily_rate = daily_sum / double(users);

    AsciiTable t("Static vs periodically updated cache "
                 "(25 users/class)");
    t.header({"configuration", "avg hit rate", "paper"});
    t.row({"static cache (built once)", bench::pct(static_rate),
           "~65%"});
    t.row({"with periodic updates", bench::pct(daily_rate), "~66%"});
    t.row({"improvement",
           strformat("%+.1f pts", 100.0 * (daily_rate - static_rate)),
           "+1 pt (+1.5% relative)"});
    t.print();

    std::printf("\nLargest single update exchange: %s (paper: under "
                "~1.5 MB). The gain is small because the\npopular set "
                "barely changes within a month — exactly the paper's "
                "finding.\n",
                humanBytes(max_exchange).c_str());
    return 0;
}
