/**
 * @file
 * Figure 19 — breakdown of PocketSearch's cache hits into navigational
 * and non-navigational queries per user class.
 *
 * Paper anchors: ~59% of hits are navigational / 41% non-navigational
 * on average; higher-volume classes submit more diversified queries so
 * their non-navigational hit share grows.
 */

#include "bench_common.h"
#include "device/replay.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Figure 19", "navigational vs non-navigational hits");
    harness::Workbench wb;
    ReplayDriver driver(wb.universe(), wb.communityCache(),
                        wb.population());
    ReplayConfig cfg;
    cfg.usersPerClass = 100;
    const auto res = driver.run(cfg);

    AsciiTable t("Hit breakdown (combined cache, 100 users/class)");
    t.header({"user class", "navigational hits",
              "non-navigational hits"});
    double nav_avg = 0;
    for (int c = 0; c < 4; ++c) {
        t.row({workload::userClassName(workload::UserClass(c)),
               bench::pct(res.classes[c].navHitShare),
               bench::pct(res.classes[c].nonNavHitShare)});
        nav_avg += res.classes[c].navHitShare / 4;
    }
    t.print();

    AsciiTable anchors("Anchors: paper vs measured");
    anchors.header({"metric", "paper", "measured"});
    anchors.row({"navigational share of hits (avg)", "~59%",
                 bench::pct(nav_avg)});
    anchors.row({"non-navigational share (avg)", "~41%",
                 bench::pct(1.0 - nav_avg)});
    anchors.row({"non-nav share rises for high/extreme classes", "yes",
                 res.classes[2].nonNavHitShare >
                         res.classes[0].nonNavHitShare ||
                         res.classes[3].nonNavHitShare >
                             res.classes[0].nonNavHitShare
                     ? "yes"
                     : "NO"});
    anchors.print();

    std::printf("\nNote (footnote 4 of the paper): only part of the "
                "*navigational* hits could be served by a\nbrowser's "
                "URL-substring matching — see "
                "bench_ablation_baselines.\n");
    return 0;
}
