/**
 * @file
 * Table 6 — user classes by monthly query volume and their population
 * shares, measured from the generated community month (users under 20
 * queries/month are excluded, as in the paper).
 */

#include "bench_common.h"
#include "harness/workbench.h"
#include "logs/analyzer.h"

using namespace pc;
using namespace pc::logs;

int
main()
{
    bench::banner("Table 6", "user classes by monthly query volume");
    harness::Workbench wb;
    LogAnalyzer an(wb.buildLog());
    const auto census = an.classCensus(20);

    const char *ranges[] = {"[20,40)", "[40,140)", "[140,460)",
                            "[460,inf)"};
    const double paper[] = {0.55, 0.36, 0.08, 0.01};

    AsciiTable t("Classes of users and their characteristics");
    t.header({"user class", "monthly query volume", "paper share",
              "measured share", "measured users"});
    for (int c = 0; c < 4; ++c) {
        t.row({workload::userClassName(census[c].cls), ranges[c],
               bench::pct(paper[c]), bench::pct(census[c].share),
               strformat("%llu", (unsigned long long)census[c].users)});
    }
    t.print();
    return 0;
}
