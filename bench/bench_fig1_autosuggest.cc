/**
 * @file
 * Figure 1 (the PocketSearch GUI) — feasibility of instant results in
 * the auto-suggest box: per-keystroke latency of prefix completion plus
 * flash fetches of the top results, across prefix lengths, and the
 * index's fast-memory cost.
 *
 * The paper's claim is qualitative — cached retrieval is fast enough to
 * put real results in the box "as the user types"; this bench
 * quantifies it on the model: a keystroke must stay well under ~100 ms
 * to feel instant.
 */

#include "bench_common.h"
#include "core/pocket_search.h"
#include "harness/workbench.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Figure 1", "auto-suggest with instant results");
    harness::Workbench wb;

    pc::nvm::FlashConfig fc;
    fc.capacity = 256 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    PocketSearch ps(wb.universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);

    AsciiTable t1(strformat(
        "Per-keystroke latency (index: %zu queries, %s fast memory)",
        ps.suggestIndex().size(),
        humanBytes(ps.suggestIndex().memoryBytes()).c_str()));
    t1.header({"prefix length", "avg latency", "stddev",
               "avg completions shown"});

    const auto &cache = wb.communityCache();
    for (std::size_t len = 1; len <= 6; ++len) {
        RunningStat ms, rows;
        u32 sampled = 0;
        for (std::size_t i = 0;
             i < cache.pairs.size() && sampled < 100;
             i += std::max<std::size_t>(cache.pairs.size() / 100, 1)) {
            const std::string &q =
                wb.universe().query(cache.pairs[i].pair.query).text;
            if (q.size() < len)
                continue;
            auto out = ps.suggestWithResults(q.substr(0, len), 3, 1);
            ms.add(toMillis(out.latency));
            rows.add(double(out.rows.size()));
            ++sampled;
        }
        t1.row({strformat("%zu", len),
                strformat("%.1f ms", ms.mean()),
                strformat("%.1f ms", ms.stddev()),
                strformat("%.1f", rows.mean())});
    }
    t1.print();

    std::printf("\nEvery keystroke stays far below the ~100 ms "
                "instant-feel budget, because the box reuses the\nsame "
                "hash-table + flash-DB fast path as a full query "
                "(Table 4) without the 361 ms page render.\nDoing this "
                "over the radio would cost seconds per keystroke "
                "(Figure 15a) and battery (15b).\n");
    return 0;
}
