/**
 * @file
 * Ablation — battery framing of Figure 15(b): how many searches a full
 * charge sustains on each serving path, and the search share of a
 * realistic daily budget. The paper motivates pocket cloudlets partly
 * through battery life; this translates the per-query energies into
 * user-visible terms.
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Ablation", "battery life framing of Figure 15b");
    harness::Workbench wb;

    const ServePath paths[] = {ServePath::PocketSearch,
                               ServePath::ThreeG, ServePath::Edge,
                               ServePath::Wifi};
    double per_query_uj[4] = {0, 0, 0, 0};
    for (int p = 0; p < 4; ++p) {
        MobileDevice dev(wb.universe());
        dev.installCommunityCache(wb.communityCache());
        RunningStat uj;
        const auto &cache = wb.communityCache();
        u32 served = 0;
        for (std::size_t i = 0;
             i < cache.pairs.size() && served < 60;
             i += std::max<std::size_t>(cache.pairs.size() / 60, 1)) {
            uj.add(dev.serveQuery(cache.pairs[i].pair, paths[p], false)
                       .energy);
            ++served;
            dev.advanceTime(60 * kSecond);
        }
        per_query_uj[p] = uj.mean();
    }

    // A 2010 smartphone battery: ~1400 mAh @ 3.7 V ~= 5.2 Wh.
    const double battery_uj = 5.2 * 3600.0 * 1e6;

    AsciiTable t("Searches per full 5.2 Wh charge (screen-on serving "
                 "energy only)");
    t.header({"serving path", "energy/query", "searches per charge",
              "battery per 50 searches/day"});
    for (int p = 0; p < 4; ++p) {
        const double per_day = 50.0 * per_query_uj[p];
        t.row({servePathName(paths[p]),
               strformat("%.0f mJ", per_query_uj[p] / 1000.0),
               strformat("%.0f", battery_uj / per_query_uj[p]),
               bench::pct(per_day / battery_uj)});
    }
    t.print();

    std::printf("\nAt the paper's heavy-user volumes, 3G search alone "
                "costs ~%.0f%% of the battery per day; the\ncache cuts "
                "that to ~%.1f%% — the 'negative user experience' of "
                "Section 1, quantified.\n",
                100.0 * 50.0 * per_query_uj[1] / battery_uj,
                100.0 * 50.0 * per_query_uj[0] / battery_uj);
    return 0;
}
