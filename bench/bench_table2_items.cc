/**
 * @file
 * Table 2 — data items storable in 25.6 GB (10% of the projected
 * low-end smartphone NVM) for each pocket cloudlet type.
 */

#include "bench_common.h"
#include "nvm/capacity.h"

using namespace pc;
using namespace pc::nvm;

int
main()
{
    bench::banner("Table 2", "items storable in a 25.6 GB cloudlet budget");

    const Bytes low_end = 256ull * kGiB;
    const Bytes budget = low_end / 10;

    AsciiTable t(strformat("Budget: %s (10%% of a %s low-end part)",
                           humanBytes(budget).c_str(),
                           humanBytes(low_end).c_str()));
    t.header({"pocket cloudlet", "single item", "item size",
              "items in budget", "paper"});
    const char *paper_counts[] = {"~270,000", "~5,500,000", "~5,500,000",
                                  "~17,500", "~5,500,000"};
    const auto specs = table2Specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        t.row({specs[i].cloudlet, specs[i].itemDesc,
               humanBytes(specs[i].itemSize),
               strformat("%llu", (unsigned long long)itemsInBudget(
                                     budget, specs[i].itemSize)),
               paper_counts[i]});
    }
    t.print();

    std::printf("\nContext: >90%% of mobile users visit <1000 URLs over "
                "several months — 17x fewer than the\n~17.5k full pages "
                "the budget holds; 5.5M map tiles at 300x300 m cover a "
                "whole US state.\n");
    return 0;
}
