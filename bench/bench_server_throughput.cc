/**
 * @file
 * Cloud ingest throughput — the sharded community-model builder swept
 * over worker-thread counts.
 *
 * Builds the same community month with 1/2/4/.../T threads (T from
 * --threads / PC_THREADS, default 8) over 8 query-hash shards and
 * reports wall time, records/s and speedup vs the 1-thread pipeline,
 * plus the sequential (fromLog) reference. Every point is checked for
 * byte-identity against the sequential build — the pipeline's core
 * invariant — and the process exits non-zero if any point diverges.
 *
 * The BenchReport (gated by bench_diff in CI) carries only the
 * deterministic quantities: record/row counts, model encoding size,
 * delta sizes and the per-point identity bits. Wall-clock timings are
 * printed to the console only — they depend on the host's core count
 * (CI runners often pin to one core, where the sweep is flat), so
 * they belong in EXPERIMENTS.md methodology, not in a byte-gated
 * artifact.
 */

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/delta.h"
#include "harness/workbench.h"
#include "server/builder.h"
#include "server/service.h"

using namespace pc;
using namespace pc::harness;

namespace {

double
wallMsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned maxThreads = pc::bench::threadsKnob(argc, argv, 8);
    bench::banner("Server throughput",
                  "sharded community-model build, 1.." +
                      strformat("%u", maxThreads) + " threads");
    Workbench wb(smallWorkbenchConfig());
    const auto &log = wb.buildLog();
    const core::ContentPolicy policy{};

    // Sequential reference: the single-sorted-vector build every
    // pipeline shape must reproduce byte for byte.
    server::CommunityModel ref;
    const double refMs = wallMsOf([&] {
        ref.version = 1;
        ref.table = logs::TripletTable::fromLog(log);
        core::CacheContentBuilder cb(wb.universe());
        ref.contents = cb.build(ref.table, policy);
    });
    const std::string want = ref.encode();

    std::vector<unsigned> sweep;
    for (unsigned t = 1; t <= maxThreads; t *= 2)
        sweep.push_back(t);
    if (sweep.back() != maxThreads)
        sweep.push_back(maxThreads);

    AsciiTable t("Ingest scaling (8 shards, " +
                 strformat("%zu", log.size()) + " records)");
    t.header({"threads", "wall ms", "records/s", "speedup", "identical"});
    t.row({"seq", strformat("%.1f", refMs),
           strformat("%.3g", double(log.size()) / (refMs / 1e3)), "1.0x",
           "ref"});

    bool allIdentical = true;
    double oneThreadMs = 0.0;
    std::vector<std::pair<unsigned, bool>> identity;
    for (unsigned threads : sweep) {
        server::BuildConfig cfg;
        cfg.shards = 8;
        cfg.threads = threads;
        server::CommunityModelBuilder b(wb.universe(), cfg);
        server::CommunityModel m;
        const double ms =
            wallMsOf([&] { m = b.build(log, 1, policy); });
        if (threads == 1)
            oneThreadMs = ms;
        const bool same = m.encode() == want;
        allIdentical = allIdentical && same;
        identity.emplace_back(threads, same);
        t.row({strformat("%u", threads), strformat("%.1f", ms),
               strformat("%.3g", double(log.size()) / (ms / 1e3)),
               bench::times(oneThreadMs / ms),
               same ? "yes" : "** NO **"});
    }
    t.print();
    std::printf("\nbyte-identity across the sweep: %s\n",
                allIdentical ? "OK" : "** FAILED **");

    // Delta sizing at this scale: full install vs one month's delta.
    server::ServiceConfig scfg;
    scfg.build.shards = 8;
    scfg.build.threads = maxThreads;
    server::CloudUpdateService svc(wb.universe(), scfg);
    {
        workload::SearchLog half(wb.universe());
        const auto &records = log.records();
        half.reserve(records.size() / 2);
        for (std::size_t i = 0; i < records.size() / 2; ++i)
            half.add(records[i]);
        svc.ingest(half);
    }
    svc.ingest(log);
    const auto fullInstall = svc.makeDelta(0, 2);
    const auto monthly = svc.makeDelta(1, 2);
    const Bytes fullBytes =
        core::deltaWireBytes(fullInstall, wb.universe());
    const Bytes deltaBytes = core::deltaWireBytes(monthly, wb.universe());
    AsciiTable d("Delta sync sizes (v1 = half month, v2 = full month)");
    d.header({"update", "adds", "evicts", "reranks", "wire KiB"});
    d.row({"full install", strformat("%zu", fullInstall.adds.size()),
           "0", "0", strformat("%.1f", double(fullBytes) / 1024.0)});
    d.row({"delta v1->v2", strformat("%zu", monthly.adds.size()),
           strformat("%zu", monthly.evicts.size()),
           strformat("%zu", monthly.reranks.size()),
           strformat("%.1f", double(deltaBytes) / 1024.0)});
    d.print();

    obs::BenchReport report("server_throughput",
                            "Cloud ingest — sharded build + delta sync");
    report.note("shards", "8");
    report.note("max_threads", strformat("%u", maxThreads));
    report.metric("records", double(log.size()));
    report.metric("distinct_pairs", double(ref.table.rows().size()));
    report.metric("contents_pairs", double(ref.contents.pairs.size()));
    report.metric("model_bytes", double(want.size()));
    report.metric("full_install_bytes", double(fullBytes));
    report.metric("delta_bytes", double(deltaBytes));
    report.metric("delta_adds", double(monthly.adds.size()));
    report.metric("delta_evicts", double(monthly.evicts.size()));
    report.metric("delta_reranks", double(monthly.reranks.size()));
    for (const auto &[threads, same] : identity)
        report.metric("identical." + strformat("%u", threads),
                      same ? 1.0 : 0.0);
    // The service registry carries timing-dependent gauges (queue
    // depths, wall ms) — deliberately NOT attached: this report is
    // byte-gated and diffed for determinism in CI.
    bench::emitReport(report);

    return allIdentical ? 0 : 1;
}
