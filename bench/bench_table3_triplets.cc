/**
 * @file
 * Table 3 — the volume-sorted <query, search result, volume> triplet
 * list that content generation runs down (Section 5.1). Prints the top
 * rows of our community month plus the normalized volumes and ranking
 * scores the selection uses.
 */

#include "bench_common.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::logs;

int
main()
{
    bench::banner("Table 3", "volume-sorted query/result triplets");
    harness::Workbench wb;
    const auto &tt = wb.triplets();
    const auto &uni = wb.universe();

    AsciiTable t("Top triplets of the community month (paper's Table 3 "
                 "uses hypothetical volumes)");
    t.header({"rank", "query", "search result", "volume",
              "normalized volume"});
    for (std::size_t i = 0; i < 12 && i < tt.rows().size(); ++i) {
        const auto &row = tt.rows()[i];
        t.row({strformat("%zu", i + 1),
               uni.query(row.pair.query).text,
               uni.result(row.pair.result).url,
               strformat("%llu", (unsigned long long)row.volume),
               strformat("%.5f", tt.normalizedVolume(i))});
    }
    t.print();

    std::printf("\nTotal volume: %llu across %zu distinct pairs.\n",
                (unsigned long long)tt.totalVolume(), tt.rows().size());

    // The paper's ranking-score example: the first query that maps to
    // two cached results, scored by per-query normalization.
    for (std::size_t i = 0; i < tt.rows().size(); ++i) {
        const auto &row = tt.rows()[i];
        u64 q_total = 0, this_vol = row.volume;
        std::size_t sibling = 0;
        bool found = false;
        for (std::size_t j = 0; j < tt.rows().size(); ++j) {
            if (tt.rows()[j].pair.query == row.pair.query) {
                q_total += tt.rows()[j].volume;
                if (j != i && !found) {
                    sibling = j;
                    found = true;
                }
            }
        }
        if (found && q_total > this_vol) {
            std::printf("\nRanking-score example (cf. the paper's "
                        "imdb 0.53 / azlyrics 0.47):\n  query '%s': "
                        "%s -> %.2f, %s -> %.2f\n",
                        uni.query(row.pair.query).text.c_str(),
                        uni.result(row.pair.result).url.c_str(),
                        double(this_vol) / double(q_total),
                        uni.result(tt.rows()[sibling].pair.result)
                            .url.c_str(),
                        double(tt.rows()[sibling].volume) /
                            double(q_total));
            break;
        }
    }
    return 0;
}
