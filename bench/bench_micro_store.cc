/**
 * @file
 * YCSB-style microbenchmark of the result database's storage engines:
 * the paper's flat-file layout (Figure 13) against the pc::store slab
 * engine, swept over key skew (uniform / zipf 0.99), operation mix
 * (read-heavy 95/5 / update-heavy 50/50), index backend (hash /
 * ordered) and page-cache size.
 *
 * Every cell replays the identical pre-generated op stream against a
 * fresh database, measures per-fetch simulated latency, and reports
 * exact sorted-vector p50/p99 — fully deterministic, so the emitted
 * BenchReport is byte-stable and gated by bench_diff in CI. The binary
 * also self-gates: the slab engine must beat the flat files on both
 * p50 and p99 for the zipf read-heavy workload, else it exits nonzero.
 */

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "util/logging.h"
#include "core/result_db.h"
#include "nvm/flash_device.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/zipf.h"

using namespace pc;

namespace {

constexpr u64 kRecords = 1500;
constexpr u64 kOps = 4000;

struct Op
{
    bool update;
    u32 key;
};

struct Workload
{
    const char *name;
    double skew;        // 0 = uniform
    double updateShare; // fraction of ops that update
    std::vector<Op> ops;
};

struct Cell
{
    const char *name;
    core::DbConfig cfg;
};

struct CellResult
{
    double p50Us = 0;
    double p99Us = 0;
    double meanUs = 0;
    double cacheHitRate = 0;
    u64 gcCollections = 0;
};

workload::ResultInfo
recordInfo(u32 i, u32 version)
{
    workload::ResultInfo r;
    r.navigational = false;
    r.url = strformat("www.site%04u.example.com/page", i);
    r.title = strformat("Result %u", i);
    r.description = strformat(
        "Synthetic landing-page snippet for result %u, revision %u.", i,
        version);
    return r;
}

double
quantileUs(std::vector<SimTime> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx =
        std::size_t(q * double(sorted.size() - 1) + 0.5);
    return double(sorted[idx]) / 1000.0;
}

CellResult
runCell(const Cell &cell, const Workload &wl)
{
    nvm::FlashConfig fc;
    fc.capacity = 256 * kMiB;
    nvm::FlashDevice device(fc);
    simfs::FlashStore store(device);
    core::ResultDatabase db(store, cell.cfg);

    SimTime t = 0;
    std::vector<u32> versions(kRecords, 1);
    for (u32 i = 0; i < kRecords; ++i)
        db.addRecord(recordInfo(i, 1), t);

    std::vector<SimTime> fetchLat;
    fetchLat.reserve(wl.ops.size());
    for (const Op &op : wl.ops) {
        if (op.update) {
            db.updateRecord(recordInfo(op.key, ++versions[op.key]), t);
            continue;
        }
        const u64 key = urlHash(recordInfo(op.key, 1).url);
        core::ResultRecord rec;
        SimTime lat = 0;
        const bool found = db.fetch(key, rec, lat);
        pc_assert(found, "benchmark record vanished");
        fetchLat.push_back(lat);
    }

    CellResult r;
    r.p50Us = quantileUs(fetchLat, 0.50);
    r.p99Us = quantileUs(fetchLat, 0.99);
    SimTime sum = 0;
    for (const SimTime l : fetchLat)
        sum += l;
    r.meanUs = double(sum) / double(fetchLat.size()) / 1000.0;
    if (const auto *eng = db.engine()) {
        r.cacheHitRate = eng->cacheStats().hitRate();
        r.gcCollections = eng->gcStats().collections;
    }
    return r;
}

} // namespace

int
main()
{
    bench::banner("micro_store",
                  "YCSB-style sweep: flat files vs pc::store slab engine");

    // Pre-generate each workload's op stream once; every cell replays
    // the identical stream, so the comparison is paired.
    Workload workloads[] = {
        {"uni_read", 0.0, 0.05, {}},
        {"uni_upd", 0.0, 0.50, {}},
        {"zipf_read", 0.99, 0.05, {}},
        {"zipf_upd", 0.99, 0.50, {}},
    };
    for (auto &wl : workloads) {
        Rng rng(urlHash(wl.name));
        const ZipfSampler zipf(kRecords, wl.skew);
        wl.ops.reserve(kOps);
        for (u64 i = 0; i < kOps; ++i) {
            Op op;
            op.update = rng.chance(wl.updateShare);
            op.key = u32(zipf.sample(rng));
            wl.ops.push_back(op);
        }
    }

    auto engineCfg = [](store::IndexBackend backend, u32 cachePages) {
        core::DbConfig cfg;
        cfg.useStoreEngine = true;
        cfg.engine.backend = backend;
        cfg.engine.cache.capacityPages = cachePages;
        return cfg;
    };
    const Cell cells[] = {
        {"flat", core::DbConfig{}},
        {"hash_c256", engineCfg(store::IndexBackend::Hash, 256)},
        {"hash_c16", engineCfg(store::IndexBackend::Hash, 16)},
        {"ord_c256", engineCfg(store::IndexBackend::Ordered, 256)},
        {"ord_c16", engineCfg(store::IndexBackend::Ordered, 16)},
    };

    obs::BenchReport report(
        "micro_store",
        "YCSB-style sweep — flat files vs pc::store slab engine");
    report.note("records", strformat("%llu", (unsigned long long)kRecords));
    report.note("ops_per_cell", strformat("%llu", (unsigned long long)kOps));
    report.note("mixes", "read-heavy 95/5, update-heavy 50/50");
    report.note("skews", "uniform, zipf(0.99)");

    CellResult grid[4][5];
    for (int w = 0; w < 4; ++w) {
        const Workload &wl = workloads[w];
        AsciiTable t(strformat("fetch latency, %s (us, simulated)",
                               wl.name));
        t.header({"cell", "p50", "p99", "mean", "cache hit", "gc runs"});
        for (int c = 0; c < 5; ++c) {
            const CellResult r = runCell(cells[c], wl);
            grid[w][c] = r;
            t.row({cells[c].name, strformat("%.1f", r.p50Us),
                   strformat("%.1f", r.p99Us),
                   strformat("%.1f", r.meanUs),
                   c == 0 ? "-" : bench::pct(r.cacheHitRate),
                   c == 0 ? "-"
                          : strformat("%llu",
                                      (unsigned long long)r.gcCollections)});
            const std::string base =
                strformat("lat.%s.%s.", wl.name, cells[c].name);
            report.metric(base + "p50_us", r.p50Us, "us");
            report.metric(base + "p99_us", r.p99Us, "us");
            report.metric(base + "mean_us", r.meanUs, "us");
            if (c != 0) {
                report.metric(strformat("cache.%s.%s.hit_rate", wl.name,
                                        cells[c].name),
                              r.cacheHitRate);
            }
        }
        t.print();
    }

    // Self-gate (the acceptance bar of this subsystem): on the zipf
    // read-heavy workload the slab engine must beat flat files on both
    // p50 and p99.
    const CellResult &flat = grid[2][0];
    const CellResult &eng = grid[2][1]; // hash backend, 256-page cache
    const double p50Win = flat.p50Us / eng.p50Us;
    const double p99Win = flat.p99Us / eng.p99Us;
    std::printf("\nzipf read-heavy: engine(hash,c256) vs flat — p50 %s, "
                "p99 %s\n",
                bench::times(p50Win).c_str(), bench::times(p99Win).c_str());
    report.metric("win.zipf_read.p50", p50Win, "x");
    report.metric("win.zipf_read.p99", p99Win, "x");
    bench::emitReport(report);

    if (eng.p50Us >= flat.p50Us || eng.p99Us >= flat.p99Us) {
        std::fprintf(stderr,
                     "FAIL: slab engine does not beat flat files on "
                     "zipf read-heavy (p50 %.1f vs %.1f, p99 %.1f vs "
                     "%.1f us)\n",
                     eng.p50Us, flat.p50Us, eng.p99Us, flat.p99Us);
        return 1;
    }
    return 0;
}
