/**
 * @file
 * Fleet telemetry — 1000 simulated devices, one telemetry roll-up.
 *
 * Exercises the whole observability stack at fleet scale: every
 * device fills its own MetricRegistry (bounded sketch histograms), a
 * FleetCollector folds them into per-class and fleet-wide registries
 * and monthly time series, and an EWMA drift scan must flag the
 * injected month-3 radio outage. Alongside the ASCII tables the bench
 * writes, into $PC_BENCH_OUT (default bench_out/):
 *
 *   BENCH_fleet_telemetry.{json,csv}      scalar report + registry
 *   BENCH_fleet_telemetry_series.csv      fleet time series
 *   BENCH_fleet_telemetry_anomalies.csv   drift report
 *
 * All three are byte-deterministic: a second run must produce
 * identical files (CI diffs them).
 *
 * The world is the small workbench (the full 60k-user community only
 * changes the cache contents, not what the telemetry path exercises);
 * 1000 devices x 6 months is ~420k served queries.
 */

#include <fstream>

#include "bench_common.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "obs/fleet.h"

using namespace pc;
using namespace pc::harness;

int
main()
{
    bench::banner("Fleet telemetry",
                  "1000 devices, 6 months, injected month-3 outage");
    Workbench wb(smallWorkbenchConfig());

    FleetRunConfig cfg;
    cfg.devices = 1000;
    cfg.months = 6;
    cfg.outageStartMonth = 3;
    cfg.outageMonths = 1;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    const FleetRunResult run = runFleet(wb, cfg, collector);

    const double hitRate =
        run.queries ? double(run.cacheHits) / double(run.queries) : 0.0;
    AsciiTable t("Fleet totals");
    t.header({"metric", "value"});
    t.row({"devices", strformat("%zu", run.devices)});
    t.row({"queries", strformat("%llu",
                                (unsigned long long)run.queries)});
    t.row({"cache hit rate", bench::pct(hitRate)});
    t.row({"degraded serves",
           strformat("%llu", (unsigned long long)run.degradedServes)});
    t.print();

    AsciiTable classes("Devices per user class");
    classes.header({"class", "devices"});
    for (const auto &[cls, n] : collector.classDevices())
        classes.row({cls, strformat("%zu", n)});
    classes.print();

    // Monthly fleet series: the outage month must be visible as a
    // degraded-serve spike in the rolled-up table.
    const auto queries = collector.fleetSeries().counterSeries(
        "device.queries");
    const auto hits = collector.fleetSeries().counterSeries(
        "device.cache_hits");
    const auto degraded = collector.fleetSeries().counterSeries(
        "device.degraded.serves");
    AsciiTable monthly("Fleet by month");
    monthly.header({"month", "queries", "hit rate", "degraded serves"});
    for (std::size_t m = 0; m < queries.size(); ++m) {
        monthly.row({strformat("%zu", m),
                     strformat("%.0f", queries[m]),
                     bench::pct(queries[m] > 0 ? hits[m] / queries[m]
                                               : 0.0),
                     strformat("%.0f", degraded[m])});
    }
    monthly.print();

    obs::DriftConfig dc;
    dc.warmup = 2;
    const auto anomalies = collector.scanAnomalies(dc);
    AsciiTable at("Top anomalies (EWMA z-score)");
    at.header({"series", "month", "value", "expected", "z"});
    std::size_t shown = 0;
    for (const auto &a : anomalies) {
        if (++shown > 8)
            break;
        at.row({a.series,
                strformat("%lld",
                          (long long)(a.windowStart / workload::kMonth)),
                strformat("%.4g", a.value),
                strformat("%.4g", a.expected),
                strformat("%+.1f", a.zscore)});
    }
    at.print();

    bool outageFlagged = false;
    for (const auto &a : anomalies) {
        if (a.windowStart == SimTime(cfg.outageStartMonth) *
                                 workload::kMonth &&
            a.series == "fleet.degraded_rate")
            outageFlagged = true;
    }
    std::printf("\ninjected outage (month %u) %s by the drift scan\n",
                cfg.outageStartMonth,
                outageFlagged ? "FLAGGED" : "** NOT FLAGGED **");

    obs::BenchReport report("fleet_telemetry",
                            "Fleet telemetry — 1000-device roll-up");
    report.note("devices", strformat("%zu", cfg.devices));
    report.note("months", strformat("%u", cfg.months));
    report.note("outage_month", strformat("%u", cfg.outageStartMonth));
    report.metric("queries", double(run.queries));
    report.metric("hit_rate", hitRate);
    report.metric("degraded_serves", double(run.degradedServes));
    report.metric("anomalies", double(anomalies.size()));
    report.metric("outage_flagged", outageFlagged ? 1.0 : 0.0);
    for (const auto &[cls, n] : collector.classDevices())
        report.metric("devices." + cls, double(n));
    if (const auto *h = collector.fleetRegistry().findHistogram(
            "device.latency_ms.pocket"))
        report.quantiles(*h, "ms");
    report.attachSnapshot(collector.fleetRegistry().snapshot());
    bench::emitReport(report);

    const std::string dir = obs::BenchReport::outputDir();
    {
        const std::string path = dir + "/BENCH_fleet_telemetry_series.csv";
        std::ofstream f(path);
        collector.writeSeriesCsv(f);
        if (f)
            std::printf("wrote %s\n", path.c_str());
    }
    {
        const std::string path =
            dir + "/BENCH_fleet_telemetry_anomalies.csv";
        std::ofstream f(path);
        obs::FleetCollector::writeAnomaliesCsv(f, anomalies);
        if (f)
            std::printf("wrote %s\n", path.c_str());
    }
    return outageFlagged ? 0 : 1;
}
