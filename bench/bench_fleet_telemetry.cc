/**
 * @file
 * Fleet telemetry — 1000 simulated devices, one telemetry roll-up,
 * swept over simulation worker threads.
 *
 * Exercises the whole observability stack at fleet scale: every
 * device fills its own MetricRegistry (bounded sketch histograms), a
 * FleetCollector folds them into per-class and fleet-wide registries
 * and monthly time series, and an EWMA drift scan must flag the
 * injected month-3 radio outage. With --threads T (or PC_THREADS) the
 * fleet is re-run at 1, 2, 4, ..., T worker threads; every point's
 * series CSV, anomaly CSV and BENCH JSON must be byte-identical to
 * the 1-thread run — the parallel harness's core invariant — and the
 * process exits non-zero if any point diverges.
 *
 * Alongside the ASCII tables the bench writes, into $PC_BENCH_OUT
 * (default bench_out/):
 *
 *   BENCH_fleet_telemetry.{json,csv}      scalar report + registry
 *   BENCH_fleet_telemetry_series.csv      fleet time series
 *   BENCH_fleet_telemetry_anomalies.csv   drift report
 *
 * All three are byte-deterministic: a second run must produce
 * identical files at any thread count (CI diffs a --threads 4 run
 * against a default run). Wall-clock timings and the per-thread
 * scaling table are printed to the console only — they depend on the
 * host's core count and never land in a gated artifact.
 *
 * The world is the small workbench (the full 60k-user community only
 * changes the cache contents, not what the telemetry path exercises);
 * 1000 devices x 6 months is ~420k served queries.
 */

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "obs/fleet.h"

using namespace pc;
using namespace pc::harness;

namespace {

/** One fleet run plus everything the gates compare. */
struct FleetPoint
{
    unsigned threads = 0;
    double wallMs = 0.0;
    FleetRunResult run;
    std::unique_ptr<obs::FleetCollector> collector;
    std::vector<obs::Anomaly> anomalies;
    bool outageFlagged = false;
    std::string seriesCsv;
    std::string anomaliesCsv;
    std::string reportJson;
};

FleetPoint
runAt(const Workbench &wb, FleetRunConfig cfg, unsigned threads)
{
    FleetPoint p;
    p.threads = threads;
    cfg.threads = threads;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    p.collector = std::make_unique<obs::FleetCollector>(fc);

    const auto t0 = std::chrono::steady_clock::now();
    p.run = runFleet(wb, cfg, *p.collector);
    p.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();

    obs::DriftConfig dc;
    dc.warmup = 2;
    p.anomalies = p.collector->scanAnomalies(dc);
    for (const auto &a : p.anomalies) {
        if (a.windowStart ==
                SimTime(cfg.outageStartMonth) * workload::kMonth &&
            a.series == "fleet.degraded_rate")
            p.outageFlagged = true;
    }

    {
        std::ostringstream os;
        p.collector->writeSeriesCsv(os);
        p.seriesCsv = os.str();
    }
    {
        std::ostringstream os;
        obs::FleetCollector::writeAnomaliesCsv(os, p.anomalies);
        p.anomaliesCsv = os.str();
    }

    return p;
}

/**
 * The gated report of one fleet point. Built identically for every
 * thread count (no thread counts, no wall times), so the sweep's
 * byte-identity check covers the BENCH JSON too.
 */
obs::BenchReport
buildReport(const FleetPoint &p, const FleetRunConfig &cfg)
{
    const double hitRate =
        p.run.queries ? double(p.run.cacheHits) / double(p.run.queries)
                      : 0.0;
    obs::BenchReport report("fleet_telemetry",
                            "Fleet telemetry — 1000-device roll-up");
    report.note("devices", strformat("%zu", cfg.devices));
    report.note("months", strformat("%u", cfg.months));
    report.note("outage_month", strformat("%u", cfg.outageStartMonth));
    report.metric("queries", double(p.run.queries));
    report.metric("hit_rate", hitRate);
    report.metric("degraded_serves", double(p.run.degradedServes));
    report.metric("anomalies", double(p.anomalies.size()));
    report.metric("outage_flagged", p.outageFlagged ? 1.0 : 0.0);
    for (const auto &[cls, n] : p.collector->classDevices())
        report.metric("devices." + cls, double(n));
    if (const auto *h = p.collector->fleetRegistry().findHistogram(
            "device.latency_ms.pocket"))
        report.quantiles(*h, "ms");
    report.attachSnapshot(p.collector->fleetRegistry().snapshot());
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned maxThreads = pc::bench::threadsKnob(argc, argv, 1);
    bench::banner("Fleet telemetry",
                  "1000 devices, 6 months, injected month-3 outage, "
                  "1.." + strformat("%u", maxThreads) + " threads");
    Workbench wb(smallWorkbenchConfig());

    FleetRunConfig cfg;
    cfg.devices = 1000;
    cfg.months = 6;
    cfg.outageStartMonth = 3;
    cfg.outageMonths = 1;

    std::vector<unsigned> sweep;
    for (unsigned t = 1; t <= maxThreads; t *= 2)
        sweep.push_back(t);
    if (sweep.back() != maxThreads)
        sweep.push_back(maxThreads);

    // The 1-thread point is the byte reference every other point (and
    // the committed baselines) must reproduce.
    std::vector<FleetPoint> points;
    for (unsigned threads : sweep) {
        points.push_back(runAt(wb, cfg, threads));
        std::ostringstream os;
        buildReport(points.back(), cfg).writeJson(os);
        points.back().reportJson = os.str();
    }
    const FleetPoint &ref = points.front();

    const double hitRate =
        ref.run.queries
            ? double(ref.run.cacheHits) / double(ref.run.queries)
            : 0.0;
    AsciiTable t("Fleet totals");
    t.header({"metric", "value"});
    t.row({"devices", strformat("%zu", ref.run.devices)});
    t.row({"queries",
           strformat("%llu", (unsigned long long)ref.run.queries)});
    t.row({"cache hit rate", bench::pct(hitRate)});
    t.row({"degraded serves",
           strformat("%llu",
                     (unsigned long long)ref.run.degradedServes)});
    t.print();

    AsciiTable classes("Devices per user class");
    classes.header({"class", "devices"});
    for (const auto &[cls, n] : ref.collector->classDevices())
        classes.row({cls, strformat("%zu", n)});
    classes.print();

    // Monthly fleet series: the outage month must be visible as a
    // degraded-serve spike in the rolled-up table.
    const auto queries =
        ref.collector->fleetSeries().counterSeries("device.queries");
    const auto hits =
        ref.collector->fleetSeries().counterSeries("device.cache_hits");
    const auto degraded = ref.collector->fleetSeries().counterSeries(
        "device.degraded.serves");
    AsciiTable monthly("Fleet by month");
    monthly.header({"month", "queries", "hit rate", "degraded serves"});
    for (std::size_t m = 0; m < queries.size(); ++m) {
        monthly.row({strformat("%zu", m),
                     strformat("%.0f", queries[m]),
                     bench::pct(queries[m] > 0 ? hits[m] / queries[m]
                                               : 0.0),
                     strformat("%.0f", degraded[m])});
    }
    monthly.print();

    obs::DriftConfig dc;
    dc.warmup = 2;
    AsciiTable at("Top anomalies (EWMA z-score)");
    at.header({"series", "month", "value", "expected", "z"});
    std::size_t shown = 0;
    for (const auto &a : ref.anomalies) {
        if (++shown > 8)
            break;
        at.row({a.series,
                strformat("%lld",
                          (long long)(a.windowStart / workload::kMonth)),
                strformat("%.4g", a.value),
                strformat("%.4g", a.expected),
                strformat("%+.1f", a.zscore)});
    }
    at.print();

    std::printf("\ninjected outage (month %u) %s by the drift scan\n",
                cfg.outageStartMonth,
                ref.outageFlagged ? "FLAGGED" : "** NOT FLAGGED **");

    // Per-thread scaling: wall time only — console, never gated.
    bool allIdentical = true;
    AsciiTable scale("Fleet scaling (1000 devices x 6 months)");
    scale.header(
        {"threads", "wall ms", "devices/s", "speedup", "identical"});
    for (const FleetPoint &p : points) {
        const bool same = p.seriesCsv == ref.seriesCsv &&
                          p.anomaliesCsv == ref.anomaliesCsv &&
                          p.reportJson == ref.reportJson;
        allIdentical = allIdentical && same;
        scale.row({strformat("%u", p.threads),
                   strformat("%.1f", p.wallMs),
                   strformat("%.3g",
                             double(cfg.devices) / (p.wallMs / 1e3)),
                   bench::times(ref.wallMs / p.wallMs),
                   p.threads == 1 ? "ref" : (same ? "yes" : "** NO **")});
    }
    scale.print();
    std::printf("\nbyte-identity across the sweep: %s\n",
                allIdentical ? "OK" : "** FAILED **");

    // Emit the gated artifacts from the reference point (every other
    // point just proved it carries the same bytes).
    bench::emitReport(buildReport(ref, cfg));
    const std::string dir = obs::BenchReport::outputDir();
    {
        const std::string path =
            dir + "/BENCH_fleet_telemetry_series.csv";
        std::ofstream f(path);
        f << ref.seriesCsv;
        if (f)
            std::printf("wrote %s\n", path.c_str());
    }
    {
        const std::string path =
            dir + "/BENCH_fleet_telemetry_anomalies.csv";
        std::ofstream f(path);
        f << ref.anomaliesCsv;
        if (f)
            std::printf("wrote %s\n", path.c_str());
    }

    if (!allIdentical)
        return 2;
    return ref.outageFlagged ? 0 : 1;
}
