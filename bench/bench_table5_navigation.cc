/**
 * @file
 * Table 5 — navigation user response time: search serving plus landing
 * page download/render (the page always loads over 3G).
 *
 * Paper anchors: lightweight page 15.378 s (PocketSearch) vs 21.048 s
 * (3G) = 28.7% faster; heavyweight 30.378 s vs 36.048 s = 16.7%.
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Table 5", "navigation user response time");
    harness::Workbench wb;

    MobileDevice local(wb.universe());
    local.installCommunityCache(wb.communityCache());
    const auto hit = local.serveQuery(wb.communityCache().pairs[0].pair,
                                      ServePath::PocketSearch, false);

    MobileDevice radio(wb.universe());
    const auto miss = radio.serveQuery(wb.communityCache().pairs[0].pair,
                                       ServePath::ThreeG, false);

    AsciiTable t("Navigation time = search serving + page load (page "
                 "over 3G in both cases)");
    t.header({"page", "PocketSearch", "3G", "speedup (measured)",
              "paper"});
    for (auto [weight, name, paper] :
         {std::tuple{PageWeight::Lightweight, "Lightweight Page",
                     "28.7% (15.378s vs 21.048s)"},
          std::tuple{PageWeight::Heavyweight, "Heavyweight Page",
                     "16.7% (30.378s vs 36.048s)"}}) {
        const SimTime tps = local.navigationLatency(hit, weight);
        const SimTime t3g = radio.navigationLatency(miss, weight);
        t.row({name, humanTime(tps), humanTime(t3g),
               bench::pct(1.0 - double(tps) / double(t3g)), paper});
    }
    t.print();

    std::printf("\nThe landing page dominates navigation time, so the "
                "search-side speedup dilutes from 16x to\n~29%%/17%% — "
                "exactly the paper's observation.\n");
    return 0;
}
