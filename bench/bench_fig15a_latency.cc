/**
 * @file
 * Figure 15(a) — average search user response time per query when
 * served by PocketSearch vs each radio on the phone.
 *
 * Paper anchors: PocketSearch 16x faster than 3G, 25x than EDGE, 7x
 * than 802.11g; the WiFi number is "slightly higher than 2 seconds".
 * Queries are spaced one minute apart so each radio exchange pays its
 * wake-up ramp (the paper's single-query user experience).
 *
 * Observability: every device publishes into one MetricRegistry, so
 * the table averages come from the registry's per-path latency
 * histograms; each path also records trace spans on its own track.
 * Alongside the ASCII table the bench writes BENCH_fig15a.{json,csv}
 * and a Chrome trace (BENCH_fig15a_trace.json) into $PC_BENCH_OUT
 * (default bench_out/).
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Figure 15a", "avg user response time per query");
    harness::Workbench wb;

    const ServePath paths[] = {ServePath::PocketSearch,
                               ServePath::ThreeG, ServePath::Edge,
                               ServePath::Wifi};

    obs::MetricRegistry registry;
    obs::Tracer tracer;

    for (int p = 0; p < 4; ++p) {
        MobileDevice dev(wb.universe());
        dev.attachMetrics(&registry);
        dev.attachTracer(&tracer, servePathKey(paths[p]));
        dev.installCommunityCache(wb.communityCache());
        const auto &cache = wb.communityCache();
        u32 served = 0;
        for (std::size_t i = 0;
             i < cache.pairs.size() && served < 100;
             i += std::max<std::size_t>(cache.pairs.size() / 100, 1)) {
            dev.serveQuery(cache.pairs[i].pair, paths[p], false);
            ++served;
            dev.advanceTime(60 * kSecond); // user thinks between queries
        }
    }

    // The averages come out of the shared registry, not a side stat:
    // the table and the JSON report read the same histograms.
    double avg_ms[4] = {0, 0, 0, 0};
    for (int p = 0; p < 4; ++p) {
        const auto *h = registry.findHistogram(
            "device.latency_ms." + servePathKey(paths[p]));
        avg_ms[p] = h ? h->mean() : 0.0;
    }

    AsciiTable t("Average search user response time (100 cached "
                 "queries)");
    t.header({"serving path", "avg response time",
              "PocketSearch speedup (measured)", "paper speedup"});
    const char *paper[] = {"-", "16x", "25x", "7x"};
    for (int p = 0; p < 4; ++p) {
        t.row({servePathName(paths[p]),
               strformat("%.0f ms", avg_ms[p]),
               p == 0 ? "-" : bench::times(avg_ms[p] / avg_ms[0]),
               paper[p]});
    }
    t.print();

    obs::BenchReport report("fig15a",
                            "Figure 15a — avg user response time per "
                            "query");
    report.note("queries_per_path", "100");
    report.note("paper_anchor", "16x vs 3G, 25x vs EDGE, 7x vs WiFi");
    for (int p = 0; p < 4; ++p) {
        const std::string key = servePathKey(paths[p]);
        report.metric("avg_response_ms." + key, avg_ms[p], "ms");
        if (p > 0)
            report.metric("speedup_vs." + key, avg_ms[p] / avg_ms[0],
                          "x");
        if (const auto *h =
                registry.findHistogram("device.latency_ms." + key))
            report.quantiles(*h, "ms");
    }
    report.attachSnapshot(registry.snapshot());
    bench::emitReport(report);

    const std::string trace_path =
        obs::BenchReport::outputDir() + "/BENCH_fig15a_trace.json";
    if (tracer.writeChromeTraceFile(trace_path))
        std::printf("wrote %s\n", trace_path.c_str());
    return 0;
}
