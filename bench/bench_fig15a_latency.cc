/**
 * @file
 * Figure 15(a) — average search user response time per query when
 * served by PocketSearch vs each radio on the phone.
 *
 * Paper anchors: PocketSearch 16x faster than 3G, 25x than EDGE, 7x
 * than 802.11g; the WiFi number is "slightly higher than 2 seconds".
 * Queries are spaced one minute apart so each radio exchange pays its
 * wake-up ramp (the paper's single-query user experience).
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Figure 15a", "avg user response time per query");
    harness::Workbench wb;

    const ServePath paths[] = {ServePath::PocketSearch,
                               ServePath::ThreeG, ServePath::Edge,
                               ServePath::Wifi};
    double avg_ms[4] = {0, 0, 0, 0};

    for (int p = 0; p < 4; ++p) {
        MobileDevice dev(wb.universe());
        dev.installCommunityCache(wb.communityCache());
        RunningStat ms;
        const auto &cache = wb.communityCache();
        u32 served = 0;
        for (std::size_t i = 0;
             i < cache.pairs.size() && served < 100;
             i += std::max<std::size_t>(cache.pairs.size() / 100, 1)) {
            const auto out = dev.serveQuery(cache.pairs[i].pair,
                                            paths[p], false);
            ms.add(toMillis(out.latency));
            ++served;
            dev.advanceTime(60 * kSecond); // user thinks between queries
        }
        avg_ms[p] = ms.mean();
    }

    AsciiTable t("Average search user response time (100 cached "
                 "queries)");
    t.header({"serving path", "avg response time",
              "PocketSearch speedup (measured)", "paper speedup"});
    const char *paper[] = {"-", "16x", "25x", "7x"};
    for (int p = 0; p < 4; ++p) {
        t.row({servePathName(paths[p]),
               strformat("%.0f ms", avg_ms[p]),
               p == 0 ? "-" : bench::times(avg_ms[p] / avg_ms[0]),
               paper[p]});
    }
    t.print();
    return 0;
}
