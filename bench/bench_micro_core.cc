/**
 * @file
 * Microbenchmarks (google-benchmark) of the hot operations on the
 * PocketSearch fast path and in the workload generator: hash-table
 * lookup (the paper's 10 us budget), database fetch, click-ranking
 * update, Zipf sampling and universe pair sampling.
 *
 * These measure *host* performance of the implementation (the simulated
 * latencies above are modelled, not measured).
 */

#include <benchmark/benchmark.h>

#include "core/cache_content.h"
#include "core/pocket_search.h"
#include "harness/workbench.h"
#include "util/hash.h"
#include "util/zipf.h"

using namespace pc;
using namespace pc::core;

namespace {

/** Lazily built shared fixture (workbench is expensive). */
struct Fixture
{
    Fixture()
        : wb(harness::smallWorkbenchConfig())
    {
        pc::nvm::FlashConfig fc;
        fc.capacity = 256 * kMiB;
        flash = std::make_unique<pc::nvm::FlashDevice>(fc);
        store = std::make_unique<pc::simfs::FlashStore>(*flash);
        ps = std::make_unique<PocketSearch>(wb.universe(), *store);
        SimTime t = 0;
        ps->loadCommunity(wb.communityCache(), t);
    }

    harness::Workbench wb;
    std::unique_ptr<pc::nvm::FlashDevice> flash;
    std::unique_ptr<pc::simfs::FlashStore> store;
    std::unique_ptr<PocketSearch> ps;
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_HashTableLookup(benchmark::State &state)
{
    auto &f = fixture();
    const auto &cache = f.wb.communityCache();
    std::vector<std::string> queries;
    for (std::size_t i = 0; i < 64 && i < cache.pairs.size(); ++i)
        queries.push_back(
            f.wb.universe().query(cache.pairs[i].pair.query).text);
    std::size_t i = 0;
    for (auto _ : state) {
        auto refs = f.ps->table().lookup(queries[i % queries.size()]);
        benchmark::DoNotOptimize(refs);
        ++i;
    }
}
BENCHMARK(BM_HashTableLookup);

void
BM_HashTableMiss(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto refs = f.ps->table().lookup("definitely not cached query");
        benchmark::DoNotOptimize(refs);
    }
}
BENCHMARK(BM_HashTableMiss);

void
BM_DatabaseFetch(benchmark::State &state)
{
    auto &f = fixture();
    const auto &cache = f.wb.communityCache();
    const auto &r =
        f.wb.universe().result(cache.pairs[0].pair.result);
    const u64 key = urlHash(r.url);
    for (auto _ : state) {
        ResultRecord rec;
        SimTime t = 0;
        benchmark::DoNotOptimize(f.ps->db().fetch(key, rec, t));
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_DatabaseFetch);

void
BM_ApplyClick(benchmark::State &state)
{
    auto &f = fixture();
    const auto &cache = f.wb.communityCache();
    const auto &q =
        f.wb.universe().query(cache.pairs[0].pair.query);
    const auto &r =
        f.wb.universe().result(cache.pairs[0].pair.result);
    const u64 key = urlHash(r.url);
    for (auto _ : state)
        f.ps->table().applyClick(q.text, key, 0.1);
}
BENCHMARK(BM_ApplyClick);

void
BM_QueryHash(benchmark::State &state)
{
    const std::string q = "michael jackson";
    for (auto _ : state)
        benchmark::DoNotOptimize(queryHash(q, 0));
}
BENCHMARK(BM_QueryHash);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler z(u64(state.range(0)), 1.0);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(10000000);

void
BM_UniverseSamplePair(benchmark::State &state)
{
    auto &f = fixture();
    Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.wb.universe().samplePair(
            rng, workload::DeviceType::Smartphone));
    }
}
BENCHMARK(BM_UniverseSamplePair);

void
BM_UserStreamEvent(benchmark::State &state)
{
    auto &f = fixture();
    workload::UserProfile profile;
    profile.monthlyVolume = 1000000; // never exhausts during the bench
    profile.newRate = 0.4;
    workload::UserStream stream(f.wb.universe(), profile, 3);
    stream.beginMonth(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_UserStreamEvent);

} // namespace

BENCHMARK_MAIN();
