/**
 * @file
 * Sections 2 & 3.2 — the web-content cloudlet claims:
 *
 *  - ">90% of mobile users visit fewer than 1000 URLs over a period of
 *    several months" (so the Table 2 page budget covers them 17x over);
 *  - "70% of web visits tend to be revisits to less than a couple of
 *    tens of web pages for more than 50% of the users";
 *  - real-time refresh of only the most-revisited dynamic pages costs a
 *    tiny fraction of the (infeasible) bulk refresh over the radio.
 *
 * Browsing is modelled as the click-through destinations of the search
 * workload (every click is a page visit).
 */

#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "core/web_cloudlet.h"
#include "harness/workbench.h"
#include "util/hash.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Sections 2/3.2", "web-content cloudlet (PocketWeb)");
    harness::Workbench wb;

    workload::PopulationSampler sampler(wb.population());
    Rng seeder(31337);
    const int kUsers = 200;
    const int kMonths = 3; // "several months"

    RunningStat distinct_urls;
    u64 users_under_1000 = 0;
    u64 users_70pct_top20 = 0;

    RunningStat hit_rate;
    double realtime_mb = 0, bulk_mb = 0;

    for (int u = 0; u < kUsers; ++u) {
        Rng ur = seeder.fork();
        auto profile = sampler.sampleUser(ur);
        workload::UserStream stream(wb.universe(), profile,
                                    seeder.next());

        // --- several months of visits: distinctness & revisits ---
        std::unordered_map<std::string, u64> visit_counts;
        u64 visits = 0;
        std::vector<workload::StreamEvent> month1;
        for (int m = 0; m < kMonths; ++m) {
            stream.setEpoch(u32(m));
            for (const auto &ev :
                 stream.month(SimTime(m) * workload::kMonth)) {
                const auto &url =
                    wb.universe().result(ev.pair.result).url;
                ++visit_counts[url];
                ++visits;
                if (m == 0)
                    month1.push_back(ev);
            }
        }
        distinct_urls.add(double(visit_counts.size()));
        users_under_1000 += (visit_counts.size() < 1000);

        // Share of visits going to the user's top-20 pages.
        std::vector<u64> counts;
        counts.reserve(visit_counts.size());
        for (const auto &[url, c] : visit_counts) {
            (void)url;
            counts.push_back(c);
        }
        auto cs = CumulativeShare::fromVolumes(std::move(counts));
        users_70pct_top20 += (cs.shareOfTop(20) >= 0.70);

        // --- month 1 through a per-user PocketWeb cache ---
        if (u < 50) { // cache sim for a subsample (flash-heavy)
            pc::nvm::FlashConfig fc;
            fc.capacity = 4 * kGiB;
            pc::nvm::FlashDevice flash(fc);
            pc::simfs::FlashStore store(flash);
            WebContentCloudlet web(store);

            u64 hits = 0, n = 0;
            SimTime last_hour = 0;
            for (const auto &ev : month1) {
                const auto &r = wb.universe().result(ev.pair.result);
                // ~30% of pages are dynamic (news-like), keyed
                // deterministically by URL.
                const bool dynamic = urlHash(r.url) % 10 < 3;
                // Hourly background refresh + nightly RT-set rebuild.
                while (last_hour + 3600 * kSecond < ev.time) {
                    last_hour += 3600 * kSecond;
                    if (last_hour % (24ll * 3600 * kSecond) == 0)
                        web.recomputeRealtimeSet();
                    web.realtimeRefresh(last_hour);
                }
                SimTime t = 0;
                if (web.visit(r.url, ev.time, t))
                    ++hits;
                else
                    web.installPage(r.url, dynamic, ev.time, t);
                ++n;
            }
            if (n)
                hit_rate.add(double(hits) / double(n));
            realtime_mb += double(web.stats().realtimeBytes) / 1e6;
            bulk_mb += double(web.bulkRefreshBytes()) / 1e6;
        }
    }

    AsciiTable t("Browsing claims over 3 months, 200 users");
    t.header({"claim", "paper", "measured"});
    t.row({"users visiting < 1000 URLs", ">90%",
           bench::pct(double(users_under_1000) / kUsers)});
    t.row({"median distinct URLs per user", "<1000",
           strformat("%.0f", distinct_urls.mean())});
    t.row({"users with >=70% of visits in their top-20 pages", ">50%",
           bench::pct(double(users_70pct_top20) / kUsers)});
    t.print();

    AsciiTable c("PocketWeb cache (month replay, 50 users)");
    c.header({"metric", "value"});
    c.row({"mean fresh-hit rate (cache-on-visit, no prefetch)",
           bench::pct(hit_rate.mean())});
    c.row({"radio MB/user-month for real-time top-20 refresh",
           strformat("%.1f MB", realtime_mb / 50)});
    // To stay equally fresh, bulk refresh must re-ship every dynamic
    // page once per change period, all month long.
    const double periods_per_month =
        double(workload::kMonth) / double(WebCloudletConfig{}
                                              .dynamicChangePeriod);
    c.row({"radio MB/user-month bulk refresh would need for the same "
           "freshness",
           strformat("%.0f MB", bulk_mb / 50 * periods_per_month)});
    c.row({"bandwidth saving of the real-time-top-20 policy",
           bench::times(bulk_mb / 50 * periods_per_month /
                        std::max(0.1, realtime_mb / 50))});
    c.print();

    std::printf("\nThe Table 2 budget (17.5k full pages) covers the "
                "median user's browsing %0.fx over; refreshing\nonly "
                "the hot dynamic set keeps freshness at a bandwidth "
                "cost bulk refresh cannot approach.\n",
                17500.0 / std::max(1.0, distinct_urls.mean()));
    return 0;
}
