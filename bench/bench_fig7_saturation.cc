/**
 * @file
 * Figure 7 — cumulative query-search-result volume as a function of the
 * number of most popular pairs cached: the cache-saturation curve that
 * motivates stopping around 55% (the paper: pushing 58% -> 62% doubles
 * the pair count from 20k to 40k).
 */

#include "bench_common.h"
#include "harness/workbench.h"

using namespace pc;

int
main()
{
    bench::banner("Figure 7", "cache saturation curve");
    harness::Workbench wb;
    const auto &tt = wb.triplets();

    AsciiTable t("Cumulative volume share vs top-k pairs");
    t.header({"top-k pairs", "cumulative share", "marginal share/1k "
              "pairs"});
    double prev = 0.0;
    std::size_t prev_k = 0;
    for (std::size_t k : {250u, 500u, 1000u, 2000u, 3000u, 5000u, 8000u,
                          12000u, 20000u, 40000u, 80000u}) {
        const double share = tt.cumulativeShare(k);
        const double marginal =
            (share - prev) / (double(k - prev_k) / 1000.0);
        t.row({strformat("%zu", k), bench::pct(share),
               strformat("%.2f pts", 100.0 * marginal)});
        prev = share;
        prev_k = k;
    }
    t.print();

    AsciiTable anchors("Diminishing returns: paper vs measured");
    anchors.header({"metric", "paper", "measured"});
    anchors.row({"pairs for 55% (cache build point)", "n/a",
                 strformat("%zu", tt.rowsForShare(0.55))});
    anchors.row({"pairs for 58%", "~20,000",
                 strformat("%zu", tt.rowsForShare(0.58))});
    anchors.row({"pairs for 62%", "~40,000 (2x the 58% count)",
                 strformat("%zu", tt.rowsForShare(0.62))});
    const double growth = double(tt.rowsForShare(0.62)) /
                          double(std::max<std::size_t>(
                              tt.rowsForShare(0.58), 1));
    anchors.row({"62% / 58% pair-count ratio", "~2x",
                 bench::times(growth)});
    anchors.print();
    return 0;
}
