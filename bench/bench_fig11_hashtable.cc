/**
 * @file
 * Figure 11 — hash-table memory footprint as a function of search
 * results per entry, evaluated on the real cache contents.
 *
 * Paper anchor: the footprint is minimized at two results per entry —
 * fewer slots duplicate per-entry overhead across chained entries, more
 * slots sit empty for the (mostly 1-2 result) query population.
 */

#include "bench_common.h"
#include "core/cache_content.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Figure 11",
                  "hash-table footprint vs results per entry");
    harness::Workbench wb;
    CacheContentBuilder builder(wb.universe());
    ContentPolicy policy;
    policy.kind = ThresholdKind::VolumeShare;
    policy.volumeShare = 0.55;
    const auto cache = builder.build(wb.triplets(), policy);

    AsciiTable t(strformat("Footprint for the %zu-pair cache",
                           cache.pairs.size()));
    t.header({"results per entry", "entry bytes", "footprint",
              "vs 2-slot layout"});
    HashEntryLayout two;
    two.resultsPerEntry = 2;
    const Bytes base = builder.dramFootprint(cache.pairs, two);
    u32 best = 0;
    Bytes best_bytes = ~Bytes(0);
    for (u32 k = 1; k <= 8; ++k) {
        HashEntryLayout layout;
        layout.resultsPerEntry = k;
        const Bytes bytes = builder.dramFootprint(cache.pairs, layout);
        if (bytes < best_bytes) {
            best_bytes = bytes;
            best = k;
        }
        t.row({strformat("%u", k),
               strformat("%llu", (unsigned long long)layout.entryBytes()),
               humanBytes(bytes),
               strformat("%+.1f%%",
                         100.0 * (double(bytes) / double(base) - 1.0))});
    }
    t.print();

    AsciiTable anchors("Minimum: paper vs measured");
    anchors.header({"metric", "paper", "measured"});
    anchors.row({"footprint-minimizing slots per entry", "2",
                 strformat("%u", best)});
    anchors.print();
    return 0;
}
