/**
 * @file
 * Ablation — PocketSearch against the caching baselines the paper
 * argues around: a browser URL-substring cache (footnote 4 / Section 8:
 * serves only part of the navigational repeats), a same-capacity LRU
 * pair cache (no community warm start, no popularity selection), and
 * the no-cache always-radio path.
 */

#include "bench_common.h"
#include "baseline/browser_cache.h"
#include "baseline/lru_cache.h"
#include "core/pocket_search.h"
#include "harness/workbench.h"

using namespace pc;

int
main()
{
    bench::banner("Ablation", "PocketSearch vs caching baselines");
    harness::Workbench wb;

    workload::PopulationSampler sampler(wb.population());
    Rng seeder(777);
    const u32 users_per_class = 50;

    u64 events = 0;
    u64 ps_hits = 0, ps_nav_hits = 0;
    u64 browser_hits = 0, lru_hits = 0;
    u64 nav_events = 0;

    for (int c = 0; c < 4; ++c) {
        for (u32 u = 0; u < users_per_class; ++u) {
            Rng user_rng = seeder.fork();
            const auto profile = sampler.sampleUserOfClass(
                user_rng, workload::UserClass(c));
            workload::UserStream stream(wb.universe(), profile,
                                        seeder.next(), /*epoch=*/0);
            stream.setEpoch(1);

            pc::nvm::FlashConfig fc;
            fc.capacity = 64 * kMiB;
            pc::nvm::FlashDevice flash(fc);
            pc::simfs::FlashStore store(flash);
            core::PocketSearch ps(wb.universe(), store);
            SimTime t = 0;
            ps.loadCommunity(wb.communityCache(), t);
            baseline::BrowserSubstringCache browser(wb.universe());
            baseline::LruPairCache lru(
                wb.communityCache().pairs.size());

            for (const auto &ev : stream.month(0)) {
                ++events;
                const bool nav =
                    wb.universe().isNavigationalPair(ev.pair);
                nav_events += nav;
                const bool ps_hit = ps.containsPair(ev.pair);
                ps_hits += ps_hit;
                ps_nav_hits += ps_hit && nav;
                browser_hits += browser.wouldHit(ev.pair);
                lru_hits += lru.lookup(ev.pair);
                ps.recordClick(ev.pair, t);
                browser.recordVisit(ev.pair);
                lru.insert(ev.pair);
            }
        }
    }

    const double e = double(events);
    AsciiTable t(strformat("Hit rates over %llu replayed queries "
                           "(50 users/class; LRU capacity = community "
                           "cache pair count)",
                           (unsigned long long)events));
    t.header({"scheme", "hit rate", "notes"});
    t.row({"PocketSearch (community+personalization)",
           bench::pct(double(ps_hits) / e),
           "the paper's design"});
    t.row({"LRU pair cache (same capacity)",
           bench::pct(double(lru_hits) / e),
           "no warm start, no popularity selection"});
    t.row({"Browser URL-substring cache",
           bench::pct(double(browser_hits) / e),
           "serves only visited navigational repeats"});
    t.row({"No cache (always radio)", "0.0%", "every query pays 3G"});
    t.print();

    AsciiTable nav("Footnote-4 check: substring matching vs "
                   "PocketSearch on navigational queries");
    nav.header({"metric", "value"});
    nav.row({"navigational share of all queries",
             bench::pct(double(nav_events) / e)});
    nav.row({"browser cache hit rate on all queries",
             bench::pct(double(browser_hits) / e)});
    nav.row({"PocketSearch navigational hits alone",
             bench::pct(double(ps_nav_hits) / e)});
    nav.row({"browser hits / PocketSearch nav hits",
             bench::pct(double(browser_hits) /
                        double(std::max<u64>(ps_nav_hits, 1)))});
    nav.print();
    return 0;
}
