/**
 * @file
 * Figure 15(b) — average whole-device energy per query for PocketSearch
 * vs each radio.
 *
 * Paper anchors: PocketSearch is 23x more energy-efficient than 3G,
 * 41x than EDGE, 11x than 802.11g — a wider gap than the latency one
 * because a hit both avoids radio power and finishes sooner.
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "obs/metrics.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Figure 15b", "avg energy per query");
    harness::Workbench wb;

    const ServePath paths[] = {ServePath::PocketSearch,
                               ServePath::ThreeG, ServePath::Edge,
                               ServePath::Wifi};

    obs::MetricRegistry registry;
    for (int p = 0; p < 4; ++p) {
        MobileDevice dev(wb.universe());
        dev.attachMetrics(&registry);
        dev.installCommunityCache(wb.communityCache());
        const auto &cache = wb.communityCache();
        u32 served = 0;
        for (std::size_t i = 0;
             i < cache.pairs.size() && served < 100;
             i += std::max<std::size_t>(cache.pairs.size() / 100, 1)) {
            dev.serveQuery(cache.pairs[i].pair, paths[p], false);
            ++served;
            dev.advanceTime(60 * kSecond);
        }
    }

    double avg_mj[4] = {0, 0, 0, 0}; // millijoules
    for (int p = 0; p < 4; ++p) {
        const auto *h = registry.findHistogram(
            "device.energy_mj." + servePathKey(paths[p]));
        avg_mj[p] = h ? h->mean() : 0.0;
    }

    AsciiTable t("Average energy per query (100 cached queries)");
    t.header({"serving path", "avg energy", "PocketSearch advantage "
              "(measured)", "paper"});
    const char *paper[] = {"-", "23x", "41x", "11x"};
    for (int p = 0; p < 4; ++p) {
        t.row({servePathName(paths[p]),
               strformat("%.0f mJ", avg_mj[p]),
               p == 0 ? "-" : bench::times(avg_mj[p] / avg_mj[0]),
               paper[p]});
    }
    t.print();

    std::printf("\nThe energy gap exceeds the latency gap (Fig 15a) "
                "because a hit both avoids radio power and\nfinishes an "
                "order of magnitude sooner — the paper's two savings "
                "mechanisms (Figure 16).\n");

    obs::BenchReport report("fig15b",
                            "Figure 15b — avg energy per query");
    report.note("queries_per_path", "100");
    report.note("paper_anchor", "23x vs 3G, 41x vs EDGE, 11x vs WiFi");
    for (int p = 0; p < 4; ++p) {
        const std::string key = servePathKey(paths[p]);
        report.metric("avg_energy_mj." + key, avg_mj[p], "mJ");
        if (p > 0)
            report.metric("advantage_vs." + key, avg_mj[p] / avg_mj[0],
                          "x");
        if (const auto *h =
                registry.findHistogram("device.energy_mj." + key))
            report.quantiles(*h, "mJ");
    }
    report.attachSnapshot(registry.snapshot());
    bench::emitReport(report);
    return 0;
}
