/**
 * @file
 * Fleet health observatory — utilization ledgers, SLO scoreboard, and
 * the bottleneck analyzer, validated by a saturation flip.
 *
 * Two scenarios over the same 200-device x 6-month fleet, each swept
 * over simulation worker threads:
 *
 *  - **baseline**: healthy radios, a cloud update service with health
 *    accounting on. Query misses ride the 3G link at ~6-7 s per
 *    exchange while the CPU's share of a query is under half a
 *    second, so the analyzer must rank `device.radio.3g` as the
 *    saturating component and report its headroom multiplier ("the
 *    radio saturates first, at ~N x today's load").
 *  - **storm**: a full-run radio outage (outage share 0.999, mean
 *    episode ~10 months — the fleet is dark essentially the whole
 *    run). No-coverage probes never commit to a link, so radio busy
 *    time collapses while every query still pays its CPU spans to
 *    serve degraded answers — the reported bottleneck MUST flip away
 *    from the radio (to `device.cpu`), and the availability SLO must
 *    burn its error budget and record deterministic SloBreach events.
 *
 * Gates (the acceptance criteria of the health observatory):
 *   exit 2 — the BENCH_fleet_health.json artifact is not
 *            byte-identical across thread counts;
 *   exit 1 — the baseline bottleneck is not the 3G radio, the storm
 *            fails to flip it, or the storm fails to burn the
 *            availability budget while the baseline meets it.
 *
 * The artifact embeds only counters-derived numbers and sketch
 *quantiles — never wall clocks or queue-depth gauges — and is gated
 * against the committed baseline by bench_diff (flattenHealthReport).
 * Wall-clock scaling tables print to the console only.
 */

#include <chrono>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "obs/fleet.h"
#include "obs/health.h"
#include "obs/slo.h"
#include "server/service.h"

using namespace pc;
using namespace pc::harness;
namespace health = pc::obs::health;

namespace {

constexpr std::size_t kDevices = 200;
constexpr u32 kMonths = 6;

workload::SearchLog
slicedLog(const Workbench &wb, std::size_t n)
{
    workload::SearchLog log(wb.universe());
    const auto &records = wb.buildLog().records();
    log.reserve(n);
    for (std::size_t i = 0; i < records.size() && i < n; ++i)
        log.add(records[i]);
    return log;
}

/** One scenario run at one thread count. */
struct ScenarioPoint
{
    double wallMs = 0.0;
    FleetRunResult run;
    health::HealthAnalysis analysis;
    u64 breachEvents = 0;
};

ScenarioPoint
runScenario(Workbench &wb, bool storm, unsigned threads)
{
    // Fresh service per run: its registry accumulates sync/ingest
    // accounting, and every point must start from the same bytes.
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    scfg.healthAccounting = true;
    auto svc = std::make_unique<server::CloudUpdateService>(
        wb.universe(), scfg);
    svc->ingest(slicedLog(wb, wb.buildLog().size() / 2));
    svc->ingest(wb.buildLog());

    FleetRunConfig cfg;
    cfg.devices = kDevices;
    cfg.months = kMonths;
    cfg.threads = threads;
    cfg.cloud = svc.get();
    cfg.health = true;
    if (storm) {
        // A totally dark fleet: outage episodes average ~10 months
        // against ~hours of coverage, across the whole run. Share
        // stays below 1.0 — the schedule needs a finite uptime mean.
        cfg.outageStartMonth = 0;
        cfg.outageMonths = kMonths;
        cfg.outageFaults.radio.outageShare = 0.999;
        cfg.outageFaults.radio.meanOutageDuration =
            10ll * workload::kMonth;
        cfg.outageFaults.radio.exchangeFailureRate = 0.0;
        cfg.outageFaults.radio.latencySpikeRate = 0.0;
    }

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);

    ScenarioPoint p;
    const auto t0 = std::chrono::steady_clock::now();
    p.run = runFleet(wb, cfg, collector);
    p.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();

    // SLO breaches land in a fleet-level flight recorder; its ids
    // derive from the synthetic device id + sequence, so the breach
    // stream is deterministic too.
    obs::FlightRecorder breaches(u64(kDevices) + 1, 1024);
    const obs::MetricsSnapshot snap =
        collector.fleetRegistry().snapshot();
    p.analysis = health::analyzeHealth(
        snap, kDevices, SimTime(kMonths) * workload::kMonth);
    p.analysis.slos = health::evaluateSlos(
        health::defaultFleetSlos(), collector.fleetSeries(), snap,
        &breaches);
    p.breachEvents = breaches.recorded();
    return p;
}

health::HealthReport
buildReport(const ScenarioPoint &base, const ScenarioPoint &storm)
{
    health::HealthReport r;
    r.id = "fleet_health";
    r.notes.emplace_back("devices", strformat("%zu", kDevices));
    r.notes.emplace_back("months", strformat("%u", kMonths));
    r.notes.emplace_back("baseline", "healthy radios, cloud sync");
    r.notes.emplace_back("storm",
                         "full-run outage, share 0.999, ~10-month "
                         "episodes");
    r.scenarios.emplace_back("baseline", base.analysis);
    r.scenarios.emplace_back("storm", storm.analysis);
    return r;
}

std::string
reportBytes(const health::HealthReport &r)
{
    std::ostringstream os;
    health::writeHealthJson(os, r);
    return os.str();
}

void
printComponents(const char *title, const health::HealthAnalysis &a)
{
    AsciiTable t(title);
    t.header({"rank", "component", "busy", "ops", "util ppm",
              "service", "demand/query"});
    for (std::size_t i = 0; i < a.ranked.size(); ++i) {
        const auto &c = a.ranked[i];
        t.row({strformat("%zu", i + 1), c.name,
               humanTime(SimTime(c.busyNs)),
               strformat("%llu", (unsigned long long)c.ops),
               strformat("%.2f", 1e6 * c.utilization),
               humanTime(SimTime(c.serviceNs)),
               humanTime(SimTime(c.demandNs))});
    }
    t.print();
    if (!a.bottleneck.empty())
        std::printf("bottleneck: %s (headroom ~%.0fx current load)\n\n",
                    a.bottleneck.c_str(), a.headroom);
}

void
printSlos(const char *title, const std::vector<health::SloStatus> &slos)
{
    AsciiTable t(title);
    t.header({"slo", "objective", "attainment", "budget left",
              "short burn", "long burn", "state"});
    for (const auto &st : slos) {
        const bool lat =
            st.spec.kind == health::SloKind::LatencyQuantile;
        t.row({st.spec.name,
               lat ? strformat("p%.0f<=%.0fms", 100.0 * st.spec.quantile,
                               st.spec.targetMs)
                   : bench::pct(st.spec.objective),
               lat ? strformat("%.0fms", st.attainment)
                   : bench::pct(st.attainment),
               strformat("%.1f/%.1f", st.budgetRemaining,
                         st.budgetAllowed),
               strformat("%.2f", st.shortBurn),
               strformat("%.2f", st.longBurn),
               st.burning  ? "** BURNING **"
               : st.met    ? "met"
                           : "missed"});
    }
    t.print();
    std::printf("\n");
}

const health::SloStatus *
findSlo(const std::vector<health::SloStatus> &slos,
        const std::string &name)
{
    for (const auto &st : slos) {
        if (st.spec.name == name)
            return &st;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned maxThreads = bench::threadsKnob(argc, argv, 4);
    bench::banner("Fleet health observatory",
                  "utilization ledgers + SLO budgets + bottleneck "
                  "analyzer, outage-storm saturation flip");
    Workbench wb(smallWorkbenchConfig());

    struct Point
    {
        unsigned threads;
        ScenarioPoint base;
        ScenarioPoint storm;
        std::string artifact;
    };
    std::vector<Point> points;
    for (unsigned t = 1; t <= maxThreads; t *= 2) {
        Point p;
        p.threads = t;
        p.base = runScenario(wb, /*storm=*/false, t);
        p.storm = runScenario(wb, /*storm=*/true, t);
        p.artifact = reportBytes(buildReport(p.base, p.storm));
        points.push_back(std::move(p));
        if (t != maxThreads && t * 2 > maxThreads) {
            Point q;
            q.threads = maxThreads;
            q.base = runScenario(wb, false, maxThreads);
            q.storm = runScenario(wb, true, maxThreads);
            q.artifact = reportBytes(buildReport(q.base, q.storm));
            points.push_back(std::move(q));
            break;
        }
    }

    const Point &ref = points.front();
    printComponents("Baseline component ranking", ref.base.analysis);
    printSlos("Baseline SLO scoreboard", ref.base.analysis.slos);
    printComponents("Storm component ranking", ref.storm.analysis);
    printSlos("Storm SLO scoreboard", ref.storm.analysis.slos);

    AsciiTable scale("Thread sweep (console only, never in artifacts)");
    scale.header({"threads", "baseline ms", "storm ms", "artifact"});
    bool identical = true;
    for (const Point &p : points) {
        const bool same = p.artifact == ref.artifact;
        identical = identical && same;
        scale.row({strformat("%u", p.threads),
                   strformat("%.0f", p.base.wallMs),
                   strformat("%.0f", p.storm.wallMs),
                   same ? "identical" : "** DIVERGED **"});
    }
    scale.print();

    // Saturation-flip gate: the healthy fleet saturates its 3G radio
    // first; a fleet with no coverage cannot — its bottleneck must
    // move to the device CPU, and the availability budget must burn.
    const std::string &baseBn = ref.base.analysis.bottleneck;
    const std::string &stormBn = ref.storm.analysis.bottleneck;
    const auto *baseAvail =
        findSlo(ref.base.analysis.slos, "query_availability");
    const auto *stormAvail =
        findSlo(ref.storm.analysis.slos, "query_availability");
    const bool flip = baseBn == "device.radio.3g" &&
                      stormBn == "device.cpu" && baseBn != stormBn;
    const bool budgets = baseAvail && baseAvail->met &&
                         stormAvail && !stormAvail->met &&
                         stormAvail->burning &&
                         ref.storm.breachEvents > 0;
    std::printf("\nsaturation flip: %s -> %s (%s); availability "
                "budget: baseline %s, storm %s (%llu breach events)\n",
                baseBn.c_str(), stormBn.c_str(),
                flip ? "flipped" : "** NO FLIP **",
                baseAvail && baseAvail->met ? "met" : "** MISSED **",
                stormAvail && !stormAvail->met ? "burned"
                                               : "** NOT BURNED **",
                (unsigned long long)ref.storm.breachEvents);

    const std::string path =
        health::writeHealthFile(buildReport(ref.base, ref.storm));
    if (!path.empty())
        std::printf("wrote %s\n", path.c_str());

    if (!identical) {
        std::printf("** thread sweep diverged: health artifact is not "
                    "byte-identical **\n");
        return 2;
    }
    if (!flip || !budgets) {
        std::printf("** saturation-flip gate failed **\n");
        return 1;
    }
    return 0;
}
