/**
 * @file
 * Ablation — Section 7's multi-cloudlet resource questions, made
 * quantitative on the search cloudlet:
 *
 *  1. hit rate vs flash budget (what happens when several cloudlets
 *     squeeze each other's storage allocation);
 *  2. DRAM index pressure vs a PCM index tier: the index-at-boot cost
 *     the paper's three-tier proposal (Figure 3) eliminates.
 */

#include "bench_common.h"
#include "core/cache_content.h"
#include "device/replay.h"
#include "harness/workbench.h"
#include "nvm/byte_device.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Ablation",
                  "multi-cloudlet storage budgeting & index tiers");
    harness::Workbench wb;
    CacheContentBuilder builder(wb.universe());

    // 1. Hit rate vs flash budget.
    AsciiTable t("Search-cloudlet hit rate vs flash budget "
                 "(30 users/class replay)");
    t.header({"flash budget", "pairs cached", "volume share covered",
              "combined hit rate"});
    for (Bytes budget : {64 * kKiB, 128 * kKiB, 256 * kKiB, 512 * kKiB,
                         1 * kMiB, 2 * kMiB, 4 * kMiB}) {
        ContentPolicy policy;
        policy.kind = ThresholdKind::FlashBudget;
        policy.flashBudget = budget;
        const auto contents = builder.build(wb.triplets(), policy);
        device::ReplayDriver driver(wb.universe(), contents,
                                    wb.population());
        device::ReplayConfig cfg;
        cfg.usersPerClass = 30;
        const auto res = driver.run(cfg);
        t.row({humanBytes(budget),
               strformat("%zu", contents.pairs.size()),
               bench::pct(contents.cumulativeShare),
               bench::pct(res.overallMeanHitRate)});
    }
    t.print();
    std::printf("\nDiminishing returns past ~1 MB: when search, ads, "
                "maps and web-content cloudlets compete, the\nOS can "
                "shrink the search allocation several-fold before hit "
                "rate falls off its plateau.\n");

    // 2. Index tier: DRAM vs PCM vs reload-from-NAND at boot.
    ContentPolicy at55;
    at55.kind = ThresholdKind::VolumeShare;
    at55.volumeShare = 0.55;
    const auto cache = builder.build(wb.triplets(), at55);
    const Bytes index_bytes = cache.dramBytes;

    pc::nvm::ByteDevice dram(pc::nvm::dramConfig());
    pc::nvm::ByteDevice pcm(pc::nvm::pcmConfig());
    pc::nvm::FlashDevice nand{pc::nvm::FlashConfig{}};

    const SimTime dram_probe = dram.read(0, 64);
    const SimTime pcm_probe = pcm.read(0, 64);
    const SimTime nand_reload = nand.read(0, index_bytes);
    const SimTime pcm_boot = 0; // index persists in place

    AsciiTable tiers(strformat(
        "Index placement (Section 3.3's three-tier proposal), "
        "index size = %s",
        humanBytes(index_bytes).c_str()));
    tiers.header({"tier", "per-probe latency", "boot-time index load",
                  "survives power cycle"});
    tiers.row({"DRAM (index reloaded from NAND at boot)",
               humanTime(dram_probe), humanTime(nand_reload), "no"});
    tiers.row({"PCM index tier", humanTime(pcm_probe),
               humanTime(pcm_boot), "yes"});
    tiers.print();
    std::printf("\nIndex size at the 55%% point: %s. At tens of GB of "
                "cloudlet data across services, indexes reach\nGBs and "
                "the NAND reload grows to seconds-to-minutes — the "
                "paper's case for a PCM middle tier.\n",
                humanBytes(index_bytes).c_str());

    // Scale the reload cost to the paper's multi-cloudlet projection.
    AsciiTable scaled("Projected index reload from NAND at boot");
    scaled.header({"aggregate index size", "NAND reload time",
                   "PCM (in-place)"});
    for (Bytes idx : {16 * kMiB, 128 * kMiB, 1 * kGiB, 4 * kGiB}) {
        pc::nvm::FlashConfig big;
        big.capacity = 8 * kGiB;
        pc::nvm::FlashDevice nand_big(big);
        scaled.row({humanBytes(idx),
                    humanTime(nand_big.read(0, idx)), "~0 (persistent)"});
    }
    scaled.print();
    return 0;
}
