/**
 * @file
 * Table 4 — breakdown of PocketSearch's user response time on a cache
 * hit: hash lookup, flash fetch, browser rendering, miscellaneous.
 *
 * Paper anchors: 0.01 ms lookup / 10 ms fetch / 361 ms render / 7 ms
 * misc = 378 ms total; the 10 us lookup makes the miss penalty
 * negligible before the radio's seconds.
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Table 4", "hit-path response time breakdown");
    harness::Workbench wb;
    MobileDevice dev(wb.universe());
    dev.installCommunityCache(wb.communityCache());

    // Serve 100 cached queries (x100 in the paper; the model is
    // deterministic so one pass per query suffices).
    RunningStat lookup_ms, fetch_ms, render_ms, misc_ms, total_ms;
    const auto &cache = wb.communityCache();
    u32 served = 0;
    for (std::size_t i = 0; i < cache.pairs.size() && served < 100;
         i += std::max<std::size_t>(cache.pairs.size() / 100, 1)) {
        const auto out = dev.serveQuery(cache.pairs[i].pair,
                                        ServePath::PocketSearch, false);
        if (!out.cacheHit)
            continue;
        lookup_ms.add(toMillis(out.hashLookupTime));
        fetch_ms.add(toMillis(out.fetchTime));
        render_ms.add(toMillis(out.renderTime));
        misc_ms.add(toMillis(out.miscTime));
        total_ms.add(toMillis(out.latency));
        ++served;
    }

    AsciiTable t(strformat("Breakdown over %u cache hits", served));
    t.header({"operation", "paper avg", "measured avg", "measured share"});
    const double total = total_ms.mean();
    t.row({"Hash Table Lookup", "0.01 ms (~0%)",
           strformat("%.3f ms", lookup_ms.mean()),
           bench::pct(lookup_ms.mean() / total)});
    t.row({"Fetch Search Results", "10 ms (2.7%)",
           strformat("%.2f ms", fetch_ms.mean()),
           bench::pct(fetch_ms.mean() / total)});
    t.row({"Browser Rendering", "361 ms (96.7%)",
           strformat("%.2f ms", render_ms.mean()),
           bench::pct(render_ms.mean() / total)});
    t.row({"Miscellaneous", "7 ms (1.7%)",
           strformat("%.2f ms", misc_ms.mean()),
           bench::pct(misc_ms.mean() / total)});
    t.row({"Total", "378 ms", strformat("%.2f ms", total), "100%"});
    t.print();

    std::printf("\nMiss penalty added by the probe: %.3f ms — "
                "negligible next to a multi-second radio exchange.\n",
                lookup_ms.mean());
    return 0;
}
