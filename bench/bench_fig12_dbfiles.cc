/**
 * @file
 * Figure 12 — average time to retrieve two search results from the
 * flash database as a function of the number of database files, with
 * the deviation across queries, plus the flash-fragmentation side of
 * the trade-off (Section 5.2.2's reason for settling on 32 files).
 */

#include "bench_common.h"
#include "core/cache_content.h"
#include "core/pocket_search.h"
#include "harness/workbench.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Figure 12",
                  "retrieval time vs number of database files");
    harness::Workbench wb;
    CacheContentBuilder builder(wb.universe());
    ContentPolicy policy;
    policy.kind = ThresholdKind::VolumeShare;
    policy.volumeShare = 0.55;
    const auto cache = builder.build(wb.triplets(), policy);

    AsciiTable t(strformat(
        "Average time to retrieve two results (%zu cached results)",
        cache.uniqueResults));
    t.header({"database files", "avg time", "stddev", "flash physical",
              "internal waste"});

    for (u32 files : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        pc::nvm::FlashConfig fc;
        fc.capacity = 256 * kMiB;
        pc::nvm::FlashDevice flash(fc);
        pc::simfs::FlashStore store(flash);
        PocketSearchConfig cfg;
        cfg.db.numFiles = files;
        PocketSearch ps(wb.universe(), store, cfg);
        SimTime load = 0;
        ps.loadCommunity(cache, load);

        // Retrieve the top two results for a sample of cached queries,
        // mirroring the paper's 100-query experiment.
        RunningStat ms;
        u32 sampled = 0;
        for (std::size_t i = 0; i < cache.pairs.size() && sampled < 100;
             i += std::max<std::size_t>(cache.pairs.size() / 100, 1)) {
            const auto &q =
                wb.universe().query(cache.pairs[i].pair.query);
            auto out = ps.lookup(q.text, 2);
            if (!out.hit)
                continue;
            ms.add(toMillis(out.fetchTime));
            ++sampled;
        }
        const auto stats = store.stats();
        t.row({strformat("%u", files),
               strformat("%.2f ms", ms.mean()),
               strformat("%.2f ms", ms.stddev()),
               humanBytes(stats.physicalBytes),
               bench::pct(stats.wasteRatio())});
    }
    t.print();

    std::printf("\nPaper: time falls as headers shrink and flattens "
                "past ~32 files, while fragmentation keeps\ngrowing — "
                "32 files is the best trade-off; Table 4's 10 ms fetch "
                "corresponds to the 32-file point.\n");
    return 0;
}
