/**
 * @file
 * Figure 18 — average cache hit rate across the user classes during
 * (a) the first week and (b) the first two weeks of the replay month.
 *
 * Paper anchors: the community component is at full strength from day
 * one (the cache's "warm start"), while personalization needs weeks to
 * warm up — the fewer queries a user submits, the longer it takes.
 */

#include "bench_common.h"
#include "device/replay.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Figure 18", "hit rate during the first weeks");
    harness::Workbench wb;
    ReplayDriver driver(wb.universe(), wb.communityCache(),
                        wb.population());

    const core::CacheMode modes[] = {
        core::CacheMode::Combined, core::CacheMode::CommunityOnly,
        core::CacheMode::PersonalizationOnly};
    ReplayResult results[3];
    for (int m = 0; m < 3; ++m) {
        ReplayConfig cfg;
        cfg.mode = modes[m];
        cfg.usersPerClass = 100;
        results[m] = driver.run(cfg);
    }

    for (auto [w, title] :
         {std::pair{0, "(a) first week"},
          std::pair{1, "(b) first two weeks"}}) {
        AsciiTable t(title);
        t.header({"user class", "combined", "community only",
                  "personalization only"});
        for (int c = 0; c < 4; ++c) {
            auto cell = [&](int m) {
                const auto &cls = results[m].classes[c];
                return bench::pct(w == 0 ? cls.meanWeek1HitRate
                                         : cls.meanWeeks12HitRate);
            };
            t.row({workload::userClassName(workload::UserClass(c)),
                   cell(0), cell(1), cell(2)});
        }
        t.print();
    }

    // The paper's qualitative claims, checked numerically.
    double comm_w1 = 0, pers_w1 = 0, pers_month = 0, comb_w1 = 0,
           comb_month = 0;
    for (int c = 0; c < 4; ++c) {
        comb_w1 += results[0].classes[c].meanWeek1HitRate / 4;
        comb_month += results[0].classes[c].meanHitRate / 4;
        comm_w1 += results[1].classes[c].meanWeek1HitRate / 4;
        pers_w1 += results[2].classes[c].meanWeek1HitRate / 4;
        pers_month += results[2].classes[c].meanHitRate / 4;
    }
    AsciiTable claims("Warm-start claims: paper vs measured");
    claims.header({"claim", "paper", "measured"});
    claims.row({"community beats personalization in week 1", "yes",
                comm_w1 > pers_w1 ? "yes" : "NO"});
    claims.row({"personalization improves over the month", "yes",
                pers_month > pers_w1 ? "yes" : "NO"});
    claims.row({"combined week-1 ~= combined month (warm start)",
                "yes",
                strformat("%.1f vs %.1f pts", 100 * comb_w1,
                          100 * comb_month)});
    claims.print();
    return 0;
}
