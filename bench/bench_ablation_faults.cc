/**
 * @file
 * Ablation — radio fault injection and graceful degradation.
 *
 * The paper's headline numbers assume a perfect radio. This bench
 * replays the same personal workload through the MobileDevice while a
 * seeded FaultPlan injects coverage outages and mid-exchange failures,
 * sweeping outage share x exchange-failure rate. The things to watch:
 *
 *  - cache hits are untouched: local serving does not care about the
 *    radio, so the hit rows stay flat across the whole sweep;
 *  - no query ever errors: unreachable misses degrade to stale cached
 *    results or the offline page and queue for later sync;
 *  - the retry/backoff machinery trades latency for reachability: miss
 *    p99 grows with the failure rate, and only the residual share of
 *    queries (all retries exhausted) degrades;
 *  - the counter ledger balances: every injected fault is accounted
 *    for by a device resilience counter.
 *
 * Everything is seeded; two runs of this binary print identical bytes.
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "workload/stream.h"

using namespace pc;
using namespace pc::device;

namespace {

struct SweepPoint
{
    double outageShare;
    double failureRate;
};

struct SweepResult
{
    u64 queries = 0;
    u64 hits = 0;
    u64 degraded = 0;
    u64 stale = 0;
    u64 synced = 0;
    double missP99Ms = 0.0;
    double meanEnergyMj = 0.0;
    fault::InjectedStats injected;
    ResilienceStats resilience;
};

SweepResult
runPoint(harness::Workbench &wb,
         const std::vector<workload::StreamEvent> &events, SweepPoint pt)
{
    MobileDevice device(wb.universe());
    device.installCommunityCache(wb.communityCache());

    fault::FaultConfig fc;
    fc.seed = 42; // one fixed seed per point: byte-identical reruns
    fc.radio.outageShare = pt.outageShare;
    fc.radio.meanOutageDuration = 60 * kSecond;
    fc.radio.exchangeFailureRate = pt.failureRate;
    fault::FaultPlan plan(fc);
    device.attachFaults(&plan);

    SweepResult res;
    EmpiricalCdf miss_ms;
    MicroJoules energy = 0;
    for (const auto &ev : events) {
        const auto out =
            device.serveQuery(ev.pair, ServePath::PocketSearch, true);
        ++res.queries;
        energy += out.energy;
        if (out.cacheHit) {
            ++res.hits;
        } else {
            miss_ms.add(toMillis(out.latency));
        }
        if (out.degraded)
            ++res.degraded;
        if (out.staleServe)
            ++res.stale;
        // Think time between queries; long enough that the outage
        // schedule actually moves while the user is idle.
        device.advanceTime(30 * kSecond);
    }
    // Coverage is restored at the end of the day: drain the queue.
    device.attachFaults(nullptr);
    res.synced = device.syncMissQueue().synced;

    res.missP99Ms = miss_ms.size() ? miss_ms.quantile(0.99) : 0.0;
    res.meanEnergyMj = energy / double(res.queries) / 1000.0;
    res.injected = plan.stats();
    res.resilience = device.resilience();
    return res;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "radio faults, retries, degradation");
    harness::Workbench wb(harness::smallWorkbenchConfig());

    // One deterministic query workload, shared by every sweep point so
    // rows differ only by the injected faults. Concatenating many
    // users' months keeps a healthy miss share (fresh users bring
    // queries the community cache has never seen), which is where the
    // radio — and therefore the fault machinery — gets exercised.
    workload::PopulationSampler sampler(wb.population());
    Rng seeder(1213);
    std::vector<workload::StreamEvent> events;
    for (int u = 0; u < 24 && events.size() < 600; ++u) {
        Rng ur = seeder.fork();
        const auto profile = sampler.sampleUser(ur);
        workload::UserStream stream(wb.universe(), profile,
                                    seeder.next(), 0);
        stream.setEpoch(1);
        const auto month = stream.month(0);
        events.insert(events.end(), month.begin(), month.end());
    }
    if (events.size() > 600)
        events.resize(600); // keep the sweep quick and bounded

    const SweepPoint points[] = {
        {0.0, 0.0},  {0.0, 0.1},  {0.0, 0.2},
        {0.1, 0.0},  {0.1, 0.2},
        {0.3, 0.0},  {0.3, 0.2},  {0.3, 0.4},
    };

    AsciiTable t(strformat("Outage share x exchange-failure sweep "
                           "(%zu queries/point)",
                           events.size()));
    t.header({"outage", "fail rate", "hit rate", "degraded", "stale",
              "synced", "miss p99", "energy/query", "retries"});
    SweepResult worst;
    double worst_badness = -1.0;
    for (const auto &pt : points) {
        const auto r = runPoint(wb, events, pt);
        t.row({bench::pct(pt.outageShare), bench::pct(pt.failureRate),
               bench::pct(double(r.hits) / double(r.queries)),
               bench::pct(double(r.degraded) / double(r.queries)),
               strformat("%llu", (unsigned long long)r.stale),
               strformat("%llu", (unsigned long long)r.synced),
               strformat("%.1f s", r.missP99Ms / 1000.0),
               strformat("%.1f mJ", r.meanEnergyMj),
               strformat("%llu",
                         (unsigned long long)r.resilience.retries)});
        const double badness = pt.outageShare + pt.failureRate;
        if (badness > worst_badness) {
            worst_badness = badness;
            worst = r;
        }
    }
    t.print();

    // Full ledger for the harshest point: injected faults on one side,
    // what the device did about them on the other. The invariants the
    // tests enforce (failed == injected failures, degraded == stale +
    // offline, queued == synced + still-queued) are visible here.
    CounterBag merged;
    merged.set("fault.outage_attempts", worst.injected.outageAttempts);
    merged.set("fault.exchange_failures", worst.injected.exchangeFailures);
    merged.set("fault.latency_spikes", worst.injected.latencySpikes);
    merged.set("fault.bit_flips", worst.injected.bitFlips);
    merged.set("fault.crashes", worst.injected.crashes);
    merged.merge(worst.resilience.toCounters());
    harness::printCounterReport(
        "Fault ledger at the harshest sweep point", merged);

    std::printf("\nCache hits never touch the radio, so the pocket "
                "cloudlet's local serves are immune to every\nrow of "
                "this sweep; misses retry with backoff and, when the "
                "cloud stays unreachable, degrade to\nstale results or "
                "the offline page — never an error — and sync once "
                "coverage returns.\n");
    return 0;
}
