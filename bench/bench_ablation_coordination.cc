/**
 * @file
 * Ablation — Section 7's cross-cloudlet coordination rules, quantified:
 *
 *  1. probe skipping: probing the ad cache after a search miss is pure
 *     waste (the radio wake-up dominates and the cloud response brings
 *     its own ads) — count the saved probes;
 *  2. coordinated eviction: ads whose queries were evicted from the
 *     search cache can never be shown again — count the dead ads an
 *     uncoordinated policy would strand in flash.
 */

#include "bench_common.h"
#include "core/ad_cloudlet.h"
#include "core/coordinator.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    bench::banner("Ablation", "cross-cloudlet coordination (Section 7)");
    harness::Workbench wb;

    pc::nvm::FlashConfig fc;
    fc.capacity = 1 * kGiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    PocketSearch ps(wb.universe(), store);
    AdCloudlet ads(store);
    CloudletCoordinator coord(ps, ads);

    // Community push: search pairs plus an ad for every cached query.
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);
    u64 ads_installed = 0;
    for (const auto &sp : wb.communityCache().pairs) {
        const auto &q = wb.universe().query(sp.pair.query).text;
        if (!ads.containsQuery(q)) {
            AdRecord ad;
            ad.advertiser = "adv-" + q.substr(0, 4);
            ad.banner = "banner";
            ad.targetUrl = "www.sponsor.com/" + q;
            ads.installAd(q, ad, t);
            ++ads_installed;
        }
    }

    // A month of traffic through the coordinator.
    workload::PopulationSampler sampler(wb.population());
    Rng seeder(51);
    u64 events = 0;
    for (int u = 0; u < 100; ++u) {
        Rng ur = seeder.fork();
        auto profile = sampler.sampleUser(ur);
        workload::UserStream stream(wb.universe(), profile,
                                    seeder.next(), 0);
        stream.setEpoch(1);
        for (const auto &ev : stream.month(0)) {
            const auto &q = wb.universe().query(ev.pair.query).text;
            coord.serveQuery(q, 2);
            ps.recordClick(ev.pair, t);
            ++events;
        }
    }

    const auto &cs = coord.stats();
    AsciiTable t1(strformat("Serving coordination over %llu queries "
                            "(%llu ads cached)",
                            (unsigned long long)events,
                            (unsigned long long)ads_installed));
    t1.header({"metric", "value", "share of queries"});
    t1.row({"search hits (page served locally)",
            strformat("%llu", (unsigned long long)cs.searchHits),
            bench::pct(double(cs.searchHits) / double(events))});
    t1.row({"ads shown with local results",
            strformat("%llu", (unsigned long long)cs.adHits),
            bench::pct(double(cs.adHits) / double(events))});
    t1.row({"ad probes skipped after search misses",
            strformat("%llu", (unsigned long long)cs.adProbesSkipped),
            bench::pct(double(cs.adProbesSkipped) / double(events))});
    t1.print();

    // Eviction coordination: evict the search cache's coldest third of
    // queries; count the ads the coordinated sweep removes with them —
    // dead flash weight under an uncoordinated policy.
    std::vector<std::string> victims;
    const auto &pairs = wb.communityCache().pairs;
    for (std::size_t i = pairs.size() * 2 / 3; i < pairs.size(); ++i)
        victims.push_back(
            wb.universe().query(pairs[i].pair.query).text);
    const Bytes ad_bytes_before = ads.dataBytes();
    const std::size_t dead = coord.evictQueries(victims);
    AsciiTable t2("Eviction coordination");
    t2.header({"metric", "value"});
    t2.row({"queries evicted from the search cache",
            strformat("%zu", victims.size())});
    t2.row({"ads evicted with them (dead weight otherwise)",
            strformat("%zu", dead)});
    t2.row({"flash reclaimed from the ad cloudlet",
            humanBytes(ad_bytes_before - ads.dataBytes())});
    t2.print();

    std::printf("\nWithout coordination those %zu banners would sit in "
                "flash unservable: their queries miss in\nthe search "
                "cache, and after a miss the ad cache is never "
                "consulted.\n", dead);
    return 0;
}
