/**
 * @file
 * Figure 2 — smartphone NVM capacity evolution under the Table 1
 * roadmap, one series per capacity-increasing technique combination.
 *
 * Paper anchors: high-end phones may reach ~1 TB as early as 2018;
 * low-end phones trail 64:1 (16 GB in 2018, eventually 256 GB).
 */

#include "bench_common.h"
#include "nvm/capacity.h"

using namespace pc;
using namespace pc::nvm;

int
main()
{
    bench::banner("Figure 2", "NVM capacity evolution for smartphones");

    TechRoadmap roadmap;
    CapacityProjection proj(roadmap);
    const auto scenarios = CapacityProjection::figure2Scenarios();

    AsciiTable t("High-end smartphone NVM capacity by scenario");
    std::vector<std::string> header = {"year"};
    for (const auto &s : scenarios)
        header.push_back(s.name());
    header.push_back("low-end (full scenario)");
    t.header(header);

    for (const auto &node : roadmap.nodes()) {
        std::vector<std::string> row = {strformat("%d", node.year)};
        for (const auto &s : scenarios)
            row.push_back(humanBytes(proj.project(node.year, s).highEnd));
        row.push_back(
            humanBytes(proj.project(node.year, scenarios.back()).lowEnd));
        t.row(row);
    }
    t.print();

    const ScenarioFlags all{true, true, true, true};
    AsciiTable claims("Headline claims: paper vs this model");
    claims.header({"claim", "paper", "measured"});
    claims.row({"high-end reaches 1 TB in", "2018",
                strformat("%d", proj.yearCapacityReaches(1024ull * kGiB,
                                                         all))});
    claims.row({"low-end capacity in 2018", "16 GB",
                humanBytes(proj.project(2018, all).lowEnd)});
    claims.row({"low-end eventual capacity", "256 GB",
                humanBytes(proj.project(2026, all).lowEnd)});
    claims.print();
    return 0;
}
