/**
 * @file
 * Trace overhead — proof that causal sync tracing is free when off
 * and allocation/RNG-neutral when on.
 *
 * Runs the same seeded sync workload twice — flight recorder detached,
 * then attached — over fresh devices syncing against an identical
 * two-version cloud service under radio faults (failures, retries,
 * payload corruption), and gates the cost contract from obs/causal.h:
 *
 *  - behaviour identity: both phases produce byte-identical sync
 *    outcomes (successes, wire bytes, sim time, backoff) and consume
 *    exactly the same number of fault-plan RNG draws — attaching a
 *    recorder cannot perturb a seeded experiment;
 *  - zero allocations: a global operator-new counter sees the same
 *    allocation count in both phases — the ring is preallocated and
 *    SyncEvent is a POD, so recording never touches the heap;
 *  - bounded wall cost: the attached phase must stay within 1.5x the
 *    detached phase plus slack (console-only number — wall time never
 *    goes in the deterministic report).
 *
 * Exits non-zero when any gate trips. The BENCH_trace_overhead.json
 * report carries only deterministic metrics (deltas, event counts)
 * and is gated against its committed baseline by bench_diff.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <optional>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/causal.h"
#include "server/service.h"

// Count every heap allocation in the process: the whole point of this
// bench is that the attached and detached phases show the same count.
namespace {
std::atomic<unsigned long long> g_allocs{0};
}

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace pc;
using namespace pc::harness;

namespace {

constexpr std::size_t kDevices = 40;

struct Phase
{
    u64 okSyncs = 0;
    u64 attempts = 0;
    u64 wireBytes = 0;
    SimTime simTime = 0;
    SimTime backoff = 0;
    u64 rngDraws = 0;
    u64 allocs = 0;   ///< Heap allocations inside the sync windows.
    u64 recorded = 0; ///< Flight-recorder events (attached phase).
    u64 dropped = 0;
    double wallMs = 0.0;
};

/**
 * One phase: kDevices fresh devices, each under its own seeded fault
 * plan, syncing once against a fresh service built from the same two
 * logs. Only the syncDevice() calls sit inside the measurement
 * window; recorder construction (which allocates its ring, once) and
 * event extraction stay outside it.
 */
Phase
runPhase(const Workbench &wb, const workload::SearchLog &secondMonth,
         bool attach)
{
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    server::CloudUpdateService svc(wb.universe(), scfg);
    svc.ingest(wb.buildLog());
    svc.ingest(secondMonth);

    Phase out;
    for (std::size_t i = 0; i < kDevices; ++i) {
        device::MobileDevice dev(wb.universe());
        fault::FaultConfig fc;
        fc.seed = 77 + u64(i);
        fc.radio.exchangeFailureRate = 0.3;
        fc.radio.payloadCorruptRate = 0.25;
        fault::FaultPlan plan(fc);
        dev.attachFaults(&plan);

        std::optional<obs::FlightRecorder> rec;
        if (attach) {
            rec.emplace(u64(i));
            dev.attachFlightRecorder(&*rec);
        }

        const u64 allocs0 = g_allocs.load(std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = svc.syncDevice(dev);
        const auto t1 = std::chrono::steady_clock::now();
        out.allocs +=
            g_allocs.load(std::memory_order_relaxed) - allocs0;
        out.wallMs += std::chrono::duration<double, std::milli>(
                          t1 - t0).count();

        out.okSyncs += res.ok;
        out.attempts += res.attempts;
        out.wireBytes += res.deltaBytes;
        out.simTime += res.time;
        out.backoff += res.backoffTime;
        out.rngDraws += plan.rngDraws();
        if (rec.has_value()) {
            out.recorded += rec->recorded();
            out.dropped += rec->dropped();
            dev.attachFlightRecorder(nullptr);
        }
        dev.attachFaults(nullptr);
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Trace overhead",
                  "flight recorder detached vs attached over one "
                  "seeded faulty sync workload");
    Workbench wb(smallWorkbenchConfig());
    const workload::SearchLog secondMonth = wb.nextCommunityMonth();

    const Phase off = runPhase(wb, secondMonth, /*attach=*/false);
    const Phase on = runPhase(wb, secondMonth, /*attach=*/true);

    AsciiTable t("detached vs attached (must not diverge)");
    t.header({"metric", "detached", "attached"});
    t.row({"syncs ok",
           strformat("%llu/%zu", (unsigned long long)off.okSyncs,
                     kDevices),
           strformat("%llu/%zu", (unsigned long long)on.okSyncs,
                     kDevices)});
    t.row({"radio attempts",
           strformat("%llu", (unsigned long long)off.attempts),
           strformat("%llu", (unsigned long long)on.attempts)});
    t.row({"wire bytes",
           strformat("%llu", (unsigned long long)off.wireBytes),
           strformat("%llu", (unsigned long long)on.wireBytes)});
    t.row({"sim time", humanTime(off.simTime).c_str(),
           humanTime(on.simTime).c_str()});
    t.row({"rng draws",
           strformat("%llu", (unsigned long long)off.rngDraws),
           strformat("%llu", (unsigned long long)on.rngDraws)});
    t.row({"heap allocations",
           strformat("%llu", (unsigned long long)off.allocs),
           strformat("%llu", (unsigned long long)on.allocs)});
    t.row({"events recorded", "0",
           strformat("%llu", (unsigned long long)on.recorded)});
    t.row({"wall clock", strformat("%.1f ms", off.wallMs),
           strformat("%.1f ms", on.wallMs)});
    t.print();

    const bool sameBehaviour =
        off.okSyncs == on.okSyncs && off.attempts == on.attempts &&
        off.wireBytes == on.wireBytes && off.simTime == on.simTime &&
        off.backoff == on.backoff;
    const bool drawNeutral = off.rngDraws == on.rngDraws;
    const bool allocNeutral = off.allocs == on.allocs;
    // Recording is a handful of POD copies per multi-millisecond
    // sync; 1.5x plus fixed slack is already very generous.
    const bool wallBounded = on.wallMs <= off.wallMs * 1.5 + 50.0;

    std::printf("\nbehaviour identical: %s\n",
                sameBehaviour ? "yes" : "** NO **");
    std::printf("rng-draw neutral:    %s (delta %+lld)\n",
                drawNeutral ? "yes" : "** NO **",
                (long long)(on.rngDraws - off.rngDraws));
    std::printf("allocation neutral:  %s (delta %+lld)\n",
                allocNeutral ? "yes" : "** NO **",
                (long long)(on.allocs - off.allocs));
    std::printf("wall cost bounded:   %s (%.1f ms -> %.1f ms)\n",
                wallBounded ? "yes" : "** NO **", off.wallMs,
                on.wallMs);

    obs::BenchReport report("trace_overhead",
                            "Flight-recorder cost: off is free, on is "
                            "alloc/RNG neutral");
    report.note("devices", strformat("%zu", kDevices));
    report.note("faults", "30% exchange failures, 25% payload flips");
    report.metric("alloc_delta", double(on.allocs - off.allocs));
    report.metric("rng_draw_delta",
                  double(on.rngDraws - off.rngDraws));
    report.metric("events_recorded", double(on.recorded));
    report.metric("events_dropped", double(on.dropped));
    report.metric("syncs_ok", double(on.okSyncs));
    report.metric("radio_attempts", double(on.attempts));
    bench::emitReport(report);

    return (sameBehaviour && drawNeutral && allocNeutral && wallBounded)
               ? 0
               : 2;
}
