/**
 * @file
 * Figure 17 — PocketSearch's average cache hit rate per user class, for
 * the combined cache and for the community-only / personalization-only
 * ablations. 100 fresh users per class replay one month against a cache
 * built from the preceding month at the 55% saturation point.
 *
 * Paper anchors: combined ~65% average (low 60 / medium 70 / high 75 /
 * extreme 75); community-only ~55% (rising with volume);
 * personalization-only ~56.5%.
 */

#include "bench_common.h"
#include "device/replay.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    bench::banner("Figure 17", "cache hit rate per user class");
    harness::Workbench wb;
    ReplayDriver driver(wb.universe(), wb.communityCache(),
                        wb.population());

    const core::CacheMode modes[] = {
        core::CacheMode::Combined, core::CacheMode::CommunityOnly,
        core::CacheMode::PersonalizationOnly};
    ReplayResult results[3];
    for (int m = 0; m < 3; ++m) {
        ReplayConfig cfg;
        cfg.mode = modes[m];
        cfg.usersPerClass = 100;
        results[m] = driver.run(cfg);
    }

    AsciiTable t("Average hit rate (100 users/class, month replay)");
    t.header({"user class", "combined", "community only",
              "personalization only"});
    for (int c = 0; c < 4; ++c) {
        t.row({workload::userClassName(workload::UserClass(c)),
               bench::pct(results[0].classes[c].meanHitRate),
               bench::pct(results[1].classes[c].meanHitRate),
               bench::pct(results[2].classes[c].meanHitRate)});
    }
    t.row({"average (all users)",
           bench::pct(results[0].overallMeanHitRate),
           bench::pct(results[1].overallMeanHitRate),
           bench::pct(results[2].overallMeanHitRate)});
    t.print();

    AsciiTable anchors("Anchors: paper vs measured");
    anchors.header({"metric", "paper", "measured"});
    anchors.row({"combined average", "~65%",
                 bench::pct(results[0].overallMeanHitRate)});
    anchors.row({"combined per class", "60 / 70 / 75 / 75",
                 strformat("%.0f / %.0f / %.0f / %.0f",
                           100 * results[0].classes[0].meanHitRate,
                           100 * results[0].classes[1].meanHitRate,
                           100 * results[0].classes[2].meanHitRate,
                           100 * results[0].classes[3].meanHitRate)});
    anchors.row({"community-only average", "~55%",
                 bench::pct(results[1].overallMeanHitRate)});
    anchors.row({"personalization-only average", "~56.5%",
                 bench::pct(results[2].overallMeanHitRate)});
    anchors.print();

    std::printf("\nServed hits are ~16x faster (Fig 15a); the same "
                "fraction of the query load never reaches the\ncellular "
                "link or the search engine's datacenter.\n");

    obs::BenchReport report("fig17",
                            "Figure 17 — cache hit rate per user class");
    report.note("users_per_class", "100");
    report.note("paper_anchor",
                "combined ~65%, community ~55%, personalization ~56.5%");
    const char *modeKey[] = {"combined", "community", "personalization"};
    for (int m = 0; m < 3; ++m) {
        report.metric(std::string("hit_rate.") + modeKey[m],
                      results[m].overallMeanHitRate);
        for (int c = 0; c < 4; ++c) {
            report.metric(strformat("hit_rate.%s.class%d", modeKey[m], c),
                          results[m].classes[c].meanHitRate);
        }
    }
    bench::emitReport(report);
    return 0;
}
