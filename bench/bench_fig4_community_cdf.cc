/**
 * @file
 * Figure 4 — CDFs of (a) query volume and (b) clicked-search-result
 * volume over the community month, overall and split by navigational /
 * non-navigational and featurephone / smartphone.
 *
 * Paper anchors: top 6000 queries ≈ 60% of query volume; top 4000
 * results ≈ 60% of click volume; top 5000 navigational queries ≈ 90%
 * of navigational volume vs <30% for non-navigational; featurephone
 * traffic more concentrated than smartphone traffic.
 */

#include "bench_common.h"
#include "harness/workbench.h"
#include "logs/analyzer.h"

using namespace pc;
using namespace pc::logs;

namespace {

void
printCurve(const char *title, const PopularityCurve &c)
{
    AsciiTable t(title);
    t.header({"top-k items", "cumulative volume share"});
    for (std::size_t k :
         {100u, 500u, 1000u, 2000u, 4000u, 6000u, 10000u, 20000u,
          50000u}) {
        t.row({strformat("%zu", k), bench::pct(c.shareOfTop(k))});
    }
    t.row({"distinct items", strformat("%zu", c.distinctItems())});
    t.print();
}

} // namespace

int
main()
{
    bench::banner("Figure 4",
                  "community query/result popularity CDFs");
    harness::Workbench wb;
    LogAnalyzer an(wb.buildLog());

    printCurve("(a) query volume CDF — all devices",
               an.queryPopularity());
    printCurve("(b) clicked result volume CDF — all devices",
               an.resultPopularity());

    RecordFilter nav, nonnav, fp, sp;
    nav.navigational = true;
    nonnav.navigational = false;
    fp.device = workload::DeviceType::Featurephone;
    sp.device = workload::DeviceType::Smartphone;

    const auto q_nav = an.queryPopularity(nav);
    const auto q_nonnav = an.queryPopularity(nonnav);
    const auto q_fp = an.queryPopularity(fp);
    const auto q_sp = an.queryPopularity(sp);
    const auto q_all = an.queryPopularity();
    const auto r_all = an.resultPopularity();

    AsciiTable splits("Series split at the paper's anchor points");
    splits.header({"series", "anchor", "paper", "measured"});
    splits.row({"all queries", "share of top 6000", "~60%",
                bench::pct(q_all.shareOfTop(6000))});
    splits.row({"all results", "share of top 4000", "~60%",
                bench::pct(r_all.shareOfTop(4000))});
    splits.row({"all queries", "top-k for 60%", "6000",
                strformat("%zu", q_all.topForShare(0.60))});
    splits.row({"all results", "top-k for 60%", "4000",
                strformat("%zu", r_all.topForShare(0.60))});
    splits.row({"navigational queries", "share of top 5000", "~90%",
                bench::pct(q_nav.shareOfTop(5000))});
    splits.row({"non-navigational queries", "share of top 5000", "<30%",
                bench::pct(q_nonnav.shareOfTop(5000))});
    splits.row({"featurephone queries", "share of top 2000",
                "> smartphone",
                bench::pct(q_fp.shareOfTop(2000))});
    splits.row({"smartphone queries", "share of top 2000",
                "< featurephone",
                bench::pct(q_sp.shareOfTop(2000))});
    splits.print();

    std::printf("\nNote: the queries-to-results ratio at the 60%% point "
                "(paper: 6000/4000 = 1.5) measures the\nmisspelling/"
                "shortcut aliasing effect — measured: %.2f.\n",
                double(q_all.topForShare(0.60)) /
                    double(r_all.topForShare(0.60)));
    return 0;
}
