/**
 * @file
 * Table 1 — NVM technology scaling trends 2010-2026.
 *
 * Prints the roadmap the capacity projections are built on, exactly as
 * the paper tabulates it, plus the derived total capacity multiplier of
 * each generation relative to 2010.
 */

#include "bench_common.h"
#include "nvm/technology.h"

using namespace pc;
using namespace pc::nvm;

int
main()
{
    bench::banner("Table 1", "NVM technology scaling trends");

    TechRoadmap roadmap;
    AsciiTable t("Technology scaling trends (paper Table 1, verbatim)");
    t.header({"year", "family", "tech (nm)", "scaling factor",
              "chip stack", "cell layers", "bits per cell",
              "total multiplier vs 2010"});
    for (const auto &node : roadmap.nodes()) {
        t.row({strformat("%d", node.year), node.familyName(),
               strformat("%d", node.techNm),
               strformat("%d", node.scalingFactor),
               strformat("%d", node.chipStack),
               strformat("%d", node.cellLayers),
               strformat("%d", node.bitsPerCell),
               strformat("%.0fx",
                         node.fullMultiplier(roadmap.baseline()))});
    }
    t.print();

    std::printf("\nFlash dominates through 2016; a post-flash NVM "
                "(PCM/RRAM/STT-MRAM class) takes over in 2018,\n"
                "stalling density scaling for one generation; scaling "
                "stops at 5 nm in 2022.\n");
    return 0;
}
