/**
 * @file
 * Figure 16 — total time and power while serving 10 consecutive queries
 * through PocketSearch (top trace) vs the 3G radio (bottom trace).
 *
 * Paper anchors: ~4 s at ~900 mW locally vs ~40 s at ~1500 mW over 3G
 * (back-to-back queries keep the 3G radio out of its wake-up ramp after
 * the first query).
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "obs/trace.h"

using namespace pc;
using namespace pc::device;

namespace {

struct TraceSummary
{
    SimTime total = 0;
    MicroJoules energy = 0;
    MilliWatts avgPower = 0;
    MilliWatts peakPower = 0;
};

TraceSummary
runTen(MobileDevice &dev, const core::CacheContents &cache,
       ServePath path, AsciiTable &table)
{
    TraceSummary s;
    for (int q = 0; q < 10; ++q) {
        const auto out =
            dev.serveQuery(cache.pairs[std::size_t(q) * 7].pair, path,
                           false);
        s.total += out.latency;
        s.energy += out.energy;
        SimTime busy = 0;
        for (const auto &seg : out.trace) {
            busy += seg.duration;
            s.peakPower = std::max(s.peakPower, seg.power);
        }
        table.row({strformat("%d", q + 1), servePathName(path),
                   humanTime(out.latency),
                   strformat("%.0f mJ", out.energy / 1000.0),
                   out.trace.empty() ? "-" : out.trace.front().label});
        // Immediately type the next query: stays inside the 3G tail.
        (void)busy;
    }
    // Average power over the user-visible serving time.
    s.avgPower = s.energy / (double(s.total) / 1e6);
    return s;
}

} // namespace

int
main()
{
    bench::banner("Figure 16",
                  "time & power for 10 consecutive queries");
    harness::Workbench wb;

    AsciiTable per_query("Per-query trace (first segment label shows "
                         "who pays the wake-up ramp)");
    per_query.header({"query #", "path", "latency", "energy",
                      "first segment"});

    obs::Tracer tracer;

    MobileDevice local(wb.universe());
    local.attachTracer(&tracer, "pocketsearch");
    local.installCommunityCache(wb.communityCache());
    const auto ps = runTen(local, wb.communityCache(),
                           ServePath::PocketSearch, per_query);

    MobileDevice radio(wb.universe());
    radio.attachTracer(&tracer, "3g");
    const auto g3 = runTen(radio, wb.communityCache(),
                           ServePath::ThreeG, per_query);
    per_query.print();

    AsciiTable t("Totals: paper vs measured");
    t.header({"metric", "paper", "PocketSearch", "3G"});
    t.row({"total time for 10 queries", "~4 s vs ~40 s",
           humanTime(ps.total), humanTime(g3.total)});
    t.row({"average power while serving", "~900 mW vs ~1500 mW",
           strformat("%.0f mW", ps.avgPower),
           strformat("%.0f mW", g3.avgPower)});
    t.row({"peak power", "-", strformat("%.0f mW", ps.peakPower),
           strformat("%.0f mW", g3.peakPower)});
    t.row({"total energy", "-",
           strformat("%.1f J", ps.energy / 1e6),
           strformat("%.1f J", g3.energy / 1e6)});
    t.print();

    obs::BenchReport report("fig16",
                            "Figure 16 — 10 consecutive queries, "
                            "PocketSearch vs 3G");
    report.note("paper_anchor",
                "~4 s at ~900 mW locally vs ~40 s at ~1500 mW over 3G");
    report.metric("pocketsearch.total_s", double(ps.total) / 1e9, "s");
    report.metric("pocketsearch.avg_power_mw", ps.avgPower, "mW");
    report.metric("pocketsearch.peak_power_mw", ps.peakPower, "mW");
    report.metric("pocketsearch.energy_j", ps.energy / 1e6, "J");
    report.metric("threeg.total_s", double(g3.total) / 1e9, "s");
    report.metric("threeg.avg_power_mw", g3.avgPower, "mW");
    report.metric("threeg.peak_power_mw", g3.peakPower, "mW");
    report.metric("threeg.energy_j", g3.energy / 1e6, "J");
    bench::emitReport(report);

    const std::string trace_path =
        obs::BenchReport::outputDir() + "/BENCH_fig16_trace.json";
    if (tracer.writeChromeTraceFile(trace_path))
        std::printf("wrote %s\n", trace_path.c_str());
    return 0;
}
