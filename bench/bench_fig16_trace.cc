/**
 * @file
 * Figure 16 — total time and power while serving 10 consecutive queries
 * through PocketSearch (top trace) vs the 3G radio (bottom trace).
 *
 * Paper anchors: ~4 s at ~900 mW locally vs ~40 s at ~1500 mW over 3G
 * (back-to-back queries keep the 3G radio out of its wake-up ramp after
 * the first query).
 */

#include "bench_common.h"
#include "device/mobile_device.h"
#include "harness/workbench.h"

using namespace pc;
using namespace pc::device;

namespace {

struct TraceSummary
{
    SimTime total = 0;
    MicroJoules energy = 0;
    MilliWatts avgPower = 0;
    MilliWatts peakPower = 0;
};

TraceSummary
runTen(MobileDevice &dev, const core::CacheContents &cache,
       ServePath path, AsciiTable &table)
{
    TraceSummary s;
    for (int q = 0; q < 10; ++q) {
        const auto out =
            dev.serveQuery(cache.pairs[std::size_t(q) * 7].pair, path,
                           false);
        s.total += out.latency;
        s.energy += out.energy;
        SimTime busy = 0;
        for (const auto &seg : out.trace) {
            busy += seg.duration;
            s.peakPower = std::max(s.peakPower, seg.power);
        }
        table.row({strformat("%d", q + 1), servePathName(path),
                   humanTime(out.latency),
                   strformat("%.0f mJ", out.energy / 1000.0),
                   out.trace.empty() ? "-" : out.trace.front().label});
        // Immediately type the next query: stays inside the 3G tail.
        (void)busy;
    }
    // Average power over the user-visible serving time.
    s.avgPower = s.energy / (double(s.total) / 1e6);
    return s;
}

} // namespace

int
main()
{
    bench::banner("Figure 16",
                  "time & power for 10 consecutive queries");
    harness::Workbench wb;

    AsciiTable per_query("Per-query trace (first segment label shows "
                         "who pays the wake-up ramp)");
    per_query.header({"query #", "path", "latency", "energy",
                      "first segment"});

    MobileDevice local(wb.universe());
    local.installCommunityCache(wb.communityCache());
    const auto ps = runTen(local, wb.communityCache(),
                           ServePath::PocketSearch, per_query);

    MobileDevice radio(wb.universe());
    const auto g3 = runTen(radio, wb.communityCache(),
                           ServePath::ThreeG, per_query);
    per_query.print();

    AsciiTable t("Totals: paper vs measured");
    t.header({"metric", "paper", "PocketSearch", "3G"});
    t.row({"total time for 10 queries", "~4 s vs ~40 s",
           humanTime(ps.total), humanTime(g3.total)});
    t.row({"average power while serving", "~900 mW vs ~1500 mW",
           strformat("%.0f mW", ps.avgPower),
           strformat("%.0f mW", g3.avgPower)});
    t.row({"peak power", "-", strformat("%.0f mW", ps.peakPower),
           strformat("%.0f mW", g3.peakPower)});
    t.row({"total energy", "-",
           strformat("%.1f J", ps.energy / 1e6),
           strformat("%.1f J", g3.energy / 1e6)});
    t.print();
    return 0;
}
