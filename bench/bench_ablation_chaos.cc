/**
 * @file
 * Ablation — sync robustness under seeded chaos.
 *
 * Sweeps payload bit-flip rate x reconnect shed budget over a fleet
 * run with a correlated month-1 outage storm and a version-skew
 * cohort (every 5th device claims a model version it never
 * installed). Per cell the things to watch:
 *
 *  - the invariant column stays 0: every device that synced ends
 *    byte-identical to the server model, versions are monotone, and
 *    every injected bit flip is caught by the CRC frame — the process
 *    exits non-zero if any cell trips;
 *  - corruption costs retries, not correctness: caught frames grow
 *    with the flip rate while verified devices stay converged;
 *  - the skew cohort is rejected transactionally and converges through
 *    escalated full installs;
 *  - a tight shed budget drains the post-storm thundering herd over
 *    several months instead of admitting everyone at once.
 *
 * A second, deliberately-broken sweep proves the postmortem engine:
 * sabotage cells silently corrupt every s-th converged device's table
 * after its run (a corruption no CRC frame ever saw), and the bench
 * exits non-zero unless every sabotage — and nothing else — trips the
 * digest invariant, each violation arriving as an InvariantReport
 * whose causal chain spans both tiers. The combined reports land as
 * BENCH_ablation_chaos_postmortem.json next to the bench report
 * (tools/trace_explain renders it).
 *
 * Everything is seeded; --threads/PC_THREADS only changes wall time,
 * never bytes (CI double-runs at --threads 1 vs 4 and diffs both
 * artifacts). The BENCH_ablation_chaos.json report is gated against
 * the committed baseline by bench_diff.
 */

#include <memory>

#include "bench_common.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "obs/fleet.h"
#include "server/service.h"

using namespace pc;
using namespace pc::harness;

namespace {

struct Cell
{
    double flipRate;
    u64 herdBudget;
    u32 sabotageEvery = 0;
    FleetRunResult run;
};

workload::SearchLog
slicedLog(const Workbench &wb, std::size_t n)
{
    workload::SearchLog log(wb.universe());
    const auto &records = wb.buildLog().records();
    log.reserve(n);
    for (std::size_t i = 0; i < records.size() && i < n; ++i)
        log.add(records[i]);
    return log;
}

FleetRunResult
runCell(Workbench &wb, const workload::SearchLog &thirdMonth,
        double flipRate, u64 herdBudget, u32 sabotageEvery,
        unsigned threads)
{
    // Fresh service per cell (its registry accumulates accounting).
    // maxVersions=2 slides the history window so the skew cohort's
    // off-window claim really is off the window.
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    scfg.maxVersions = 2;
    auto svc = std::make_unique<server::CloudUpdateService>(
        wb.universe(), scfg);
    svc->ingest(slicedLog(wb, wb.buildLog().size() / 2));
    svc->ingest(wb.buildLog());
    svc->ingest(thirdMonth);

    FleetRunConfig cfg;
    cfg.devices = 60;
    cfg.months = 6;
    cfg.cloud = svc.get();
    cfg.chaos.enabled = true;
    cfg.chaos.stormStartMonth = 1;
    cfg.chaos.stormMonths = 1;
    cfg.chaos.payloadCorruptRate = flipRate;
    cfg.chaos.skewEvery = 5;
    cfg.chaos.herdBudgetPerMonth = herdBudget;
    cfg.chaos.sabotageEvery = sabotageEvery;
    cfg.threads = threads;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    return runFleet(wb, cfg, collector);
}

/** Stable metric-key prefix of a cell, e.g. "flip25.budget8". */
std::string
cellKey(const Cell &c)
{
    if (c.sabotageEvery != 0)
        return strformat("flip%.0f.sabotage%u", 100.0 * c.flipRate,
                         c.sabotageEvery);
    return strformat("flip%.0f.budget%llu", 100.0 * c.flipRate,
                     (unsigned long long)c.herdBudget);
}

/** True iff the chain has at least one event from each tier. */
bool
chainSpansBothTiers(const std::vector<obs::SyncEvent> &chain)
{
    bool dev = false, srv = false;
    for (const auto &ev : chain) {
        dev = dev || ev.tier == obs::SyncTier::Device;
        srv = srv || ev.tier == obs::SyncTier::Server;
    }
    return dev && srv;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned threads = bench::threadsKnob(argc, argv, 1);
    bench::banner("Chaos ablation",
                  "60 devices, 6 months, month-1 outage storm, "
                  "bit-flip rate x shed budget + sabotage postmortems");
    Workbench wb(smallWorkbenchConfig());
    // Generated once: every cell's service must ingest identical logs.
    const workload::SearchLog thirdMonth = wb.nextCommunityMonth();

    const double kFlipRates[] = {0.0, 0.25, 0.5};
    const u64 kBudgets[] = {0, 8, 20};

    std::vector<Cell> cells;
    for (const double rate : kFlipRates)
        for (const u64 budget : kBudgets) {
            Cell c;
            c.flipRate = rate;
            c.herdBudget = budget;
            c.run = runCell(wb, thirdMonth, rate, budget, 0, threads);
            cells.push_back(c);
        }

    // Sabotage cells: broken on purpose — the invariant MUST trip,
    // once per sabotaged device, and every trip must come back
    // explained with a two-tier causal chain.
    const u32 kSabotage[] = {7, 3};
    std::vector<Cell> sabCells;
    for (const u32 every : kSabotage) {
        Cell c;
        c.flipRate = 0.25;
        c.herdBudget = 0;
        c.sabotageEvery = every;
        c.run = runCell(wb, thirdMonth, c.flipRate, c.herdBudget,
                        every, threads);
        sabCells.push_back(c);
    }

    u64 violations = 0;
    AsciiTable t("Chaos sweep (flip rate x shed budget)");
    t.header({"flip", "budget", "synced", "shed", "caught flips",
              "rejected", "escalated", "verified", "invariant"});
    for (const Cell &c : cells) {
        violations += c.run.invariantViolations;
        t.row({bench::pct(c.flipRate),
               c.herdBudget ? strformat("%llu/mo", (unsigned long long)
                                                       c.herdBudget)
                            : "off",
               strformat("%llu", (unsigned long long)c.run.cloudSyncs),
               strformat("%llu",
                         (unsigned long long)c.run.cloudSyncsShed),
               strformat("%llu",
                         (unsigned long long)c.run.corruptRejected),
               strformat("%llu",
                         (unsigned long long)c.run.rejectedDeltas),
               strformat("%llu", (unsigned long long)
                                     c.run.escalatedFullInstalls),
               strformat("%llu/%zu",
                         (unsigned long long)c.run.devicesVerified,
                         c.run.devices),
               c.run.invariantViolations ? "** TRIPPED **" : "0"});
    }
    t.print();
    std::printf("\nchaos invariants: %s\n",
                violations ? "** VIOLATED **" : "held across the sweep");

    // Postmortem gate: in every sabotage cell, violations ==
    // sabotaged devices (ground truth), all of them explained as
    // sabotage with a causal chain spanning both tiers.
    u64 unexplained = 0;
    std::vector<InvariantReport> allReports;
    AsciiTable pt("Sabotage postmortems (deliberately broken)");
    pt.header({"every", "sabotaged", "violations", "explained",
               "verdict"});
    for (const Cell &c : sabCells) {
        u64 explained = 0;
        for (const InvariantReport &r : c.run.invariantReports) {
            const bool ok = r.sabotaged &&
                            r.kind == InvariantKind::DigestMismatch &&
                            chainSpansBothTiers(r.chain);
            explained += ok;
            allReports.push_back(r);
        }
        const bool pass =
            c.run.devicesSabotaged > 0 &&
            c.run.invariantViolations == c.run.devicesSabotaged &&
            explained == c.run.invariantReports.size();
        if (!pass)
            ++unexplained;
        pt.row({strformat("%u", c.sabotageEvery),
                strformat("%llu",
                          (unsigned long long)c.run.devicesSabotaged),
                strformat("%llu",
                          (unsigned long long)c.run.invariantViolations),
                strformat("%llu", (unsigned long long)explained),
                pass ? "explained" : "** UNEXPLAINED **"});
    }
    pt.print();
    std::printf("\nsabotage postmortems: %s\n",
                unexplained ? "** UNEXPLAINED VIOLATIONS **"
                            : "every violation explained, both tiers");

    obs::BenchReport report("ablation_chaos",
                            "Sync robustness under seeded chaos");
    report.note("devices", "60");
    report.note("months", "6");
    report.note("storm_month", "1");
    report.note("skew_every", "5");
    for (const Cell &c : cells) {
        const std::string key = cellKey(c);
        report.metric(key + ".synced", double(c.run.cloudSyncs));
        report.metric(key + ".shed", double(c.run.cloudSyncsShed));
        report.metric(key + ".corrupt_caught",
                      double(c.run.corruptRejected));
        report.metric(key + ".rejected", double(c.run.rejectedDeltas));
        report.metric(key + ".escalated",
                      double(c.run.escalatedFullInstalls));
        report.metric(key + ".verified", double(c.run.devicesVerified));
        report.metric(key + ".invariant_violations",
                      double(c.run.invariantViolations));
    }
    for (const Cell &c : sabCells) {
        const std::string key = cellKey(c);
        report.metric(key + ".sabotaged",
                      double(c.run.devicesSabotaged));
        report.metric(key + ".violations",
                      double(c.run.invariantViolations));
    }
    bench::emitReport(report);

    // The explained postmortems, as a machine-readable artifact
    // (deliberately not a "bench" document — bench_diff skips it; the
    // BENCH_ prefix keeps it under CI's JSON validation glob).
    const std::string pmPath = obs::BenchReport::outputDir() +
                               "/BENCH_ablation_chaos_postmortem.json";
    if (writePostmortemFile(pmPath, allReports))
        std::printf("wrote %s\n", pmPath.c_str());

    return (violations || unexplained) ? 2 : 0;
}
