/**
 * @file
 * pocket_shell — an interactive PocketSearch phone in your terminal.
 *
 * Builds the small experiment world and drops into a REPL over the
 * simulated device. Commands:
 *
 *   type <prefix>     auto-suggest box for a partial query (Figure 1)
 *   search <query>    serve a full query (cache first, 3G on a miss)
 *   click <n>         click result #n of the last search (teaches the
 *                     personalization component / re-ranks)
 *   stats             cache + device counters + metrics registry
 *   trace <n> [file]  serve the n-th cached pair end to end and show
 *                     its trace spans with args plus a per-category
 *                     duration rollup (optionally export Chrome JSON)
 *   explain           run one community sync with the flight recorder
 *                     attached and print its causal event chain plus
 *                     the per-stage critical-path breakdown
 *   update            run the nightly Figure 14 sync against fresh logs
 *   seed <n>          jump to the n-th most popular community query
 *   health [n] [m] [t] [storm]  fleet health observatory: run an
 *                     n-device x m-month fleet (cloud sync attached)
 *                     on t threads with busy-time ledgers on, then
 *                     print the SLO scoreboard (error budgets + burn
 *                     rates) and the bottleneck ranking; storm != 0
 *                     injects a full-run radio outage so the
 *                     bottleneck flips and the availability budget
 *                     burns
 *   fleet [n] [m] [t] simulate a fleet of n devices for m months (with
 *                     an injected outage) on t worker threads and
 *                     print the telemetry roll-up + drift-scan
 *                     anomalies (same bytes at any t)
 *   server [s] [t]    run the cloud update service with s shards and
 *                     t worker threads: mine two model versions and
 *                     print shard stats + delta sync sizes
 *   chaos [n] [m] [f] [b] [s]  chaos-test the sync path: n devices x
 *                     m months under a month-1 outage storm, payload
 *                     bit-flip rate f, shed budget b, with a
 *                     version-skew cohort; s > 0 sabotages every s-th
 *                     device's table to prove the postmortem engine
 *                     explains violations; prints what the resilience
 *                     machinery did, whether the sync invariants held,
 *                     and the causal postmortem of any violation
 *   help / quit
 *
 * Also usable non-interactively:  echo "search foo" | pocket_shell
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/cache_manager.h"
#include "core/delta.h"
#include "device/mobile_device.h"
#include "harness/fleet.h"
#include "harness/postmortem.h"
#include "harness/workbench.h"
#include "server/service.h"
#include "store/engine.h"
#include "obs/causal.h"
#include "obs/fleet.h"
#include "obs/health.h"
#include "obs/slo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/zipf.h"

using namespace pc;

namespace {

void
help()
{
    std::printf(
        "commands:\n"
        "  type <prefix>   auto-suggest with instant results\n"
        "  search <query>  serve a query end to end\n"
        "  click <n>       click result #n of the last search\n"
        "  seed <n>        print the n-th most popular cached query\n"
        "  stats           cache/device counters + metrics registry\n"
        "  trace <n> [f]   serve cached pair #n and print its spans,\n"
        "                  args and per-category duration rollup\n"
        "                  (write Chrome trace JSON to file f if given)\n"
        "  explain         one community sync under the flight\n"
        "                  recorder: causal chain + critical path\n"
        "  update          nightly community sync (Figure 14)\n"
        "  store [n] [ops] exercise the pc::store slab engine: n\n"
        "                  records, ops zipf-skewed ops per backend;\n"
        "                  prints per-backend lookup latency, page-\n"
        "                  cache hit rate and GC statistics\n"
        "  health [n] [m] [t] [storm]  fleet health observatory: SLO\n"
        "                  scoreboard (error budgets, burn rates) and\n"
        "                  bottleneck ranking of an n-device fleet over\n"
        "                  m months on t threads; storm != 0 injects a\n"
        "                  full-run radio outage (watch the bottleneck\n"
        "                  flip and the availability budget burn)\n"
        "  fleet [n] [m] [t]  telemetry roll-up of an n-device fleet\n"
        "                  over m months with an injected outage, on t\n"
        "                  worker threads (0 = all cores; the output\n"
        "                  does not depend on t)\n"
        "  server [s] [t]  cloud update service: mine two community\n"
        "                  model versions with s shards x t threads,\n"
        "                  print shard stats and delta sync sizes\n"
        "  chaos [n] [m] [f] [b] [s]  chaos-test the sync path: n\n"
        "                  devices x m months, month-1 outage storm,\n"
        "                  payload bit-flip rate f (0..1), shed budget\n"
        "                  b devices/month (0 = off), plus a version-\n"
        "                  skew cohort; sabotage every s-th device\n"
        "                  (0 = off) to exercise the postmortem\n"
        "                  engine; reports invariant status and the\n"
        "                  causal postmortem of any violation\n"
        "  help, quit\n");
}

/**
 * The `fleet` command: simulate a small fleet against the already
 * built workbench world, with an outage injected halfway, and print
 * the monthly roll-up plus what the drift scan flags.
 */
void
runFleetCommand(const harness::Workbench &wb, std::size_t devices,
                u32 months, unsigned threads)
{
    harness::FleetRunConfig cfg;
    cfg.devices = devices;
    cfg.months = months;
    cfg.outageStartMonth = months / 2;
    cfg.outageMonths = 1;
    cfg.threads = threads;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    std::printf("simulating %zu devices x %u months (outage in month "
                "%u, %u thread%s)...\n",
                devices, months, cfg.outageStartMonth, threads,
                threads == 1 ? "" : "s");
    const auto run = harness::runFleet(wb, cfg, collector);
    std::printf("served %llu queries across %zu devices\n",
                (unsigned long long)run.queries, run.devices);

    const auto queries =
        collector.fleetSeries().counterSeries("device.queries");
    const auto hits =
        collector.fleetSeries().counterSeries("device.cache_hits");
    const auto stale =
        collector.fleetSeries().counterSeries("device.degraded.stale");
    const auto degraded = collector.fleetSeries().counterSeries(
        "device.degraded.serves");
    AsciiTable monthly("fleet by month");
    monthly.header(
        {"month", "queries", "hit rate", "degraded", "stale"});
    for (std::size_t m = 0; m < queries.size(); ++m) {
        const double hr = queries[m] > 0 ? hits[m] / queries[m] : 0.0;
        monthly.row({strformat("%zu", m), strformat("%.0f", queries[m]),
                     strformat("%.1f%%", 100 * hr),
                     strformat("%.0f", degraded[m]),
                     strformat("%.0f", stale[m])});
    }
    monthly.print();

    obs::DriftConfig dc;
    dc.warmup = months > 4 ? 3u : 2u;
    const auto anomalies = collector.scanAnomalies(dc);
    if (anomalies.empty()) {
        std::printf("drift scan: nothing flagged\n");
        return;
    }
    AsciiTable at("top anomalies (EWMA z-score)");
    at.header({"series", "month", "value", "expected", "z"});
    std::size_t shown = 0;
    for (const auto &a : anomalies) {
        if (++shown > 5)
            break;
        at.row({a.series,
                strformat("%lld",
                          (long long)(a.windowStart / workload::kMonth)),
                strformat("%.4g", a.value), strformat("%.4g", a.expected),
                strformat("%+.1f", a.zscore)});
    }
    at.print();
    std::printf("devices by class:");
    for (const auto &[cls, n] : collector.classDevices())
        std::printf(" %s=%zu", cls.c_str(), n);
    std::printf("\n");
}

/**
 * The `health` command: the fleet health observatory, interactively.
 * Runs a fleet with busy-time ledgers and a cloud service attached,
 * evaluates the default SLO set over the monthly series, and prints
 * the scoreboard plus the analyzer's bottleneck ranking. With storm,
 * a full-run radio outage shows the saturation flip live.
 */
void
runHealthCommand(const harness::Workbench &wb, std::size_t devices,
                 u32 months, unsigned threads, bool storm)
{
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    scfg.healthAccounting = true;
    server::CloudUpdateService svc(wb.universe(), scfg);
    svc.ingest(wb.buildLog());

    harness::FleetRunConfig cfg;
    cfg.devices = devices;
    cfg.months = months;
    cfg.threads = threads;
    cfg.cloud = &svc;
    cfg.health = true;
    if (storm) {
        cfg.outageStartMonth = 0;
        cfg.outageMonths = months;
        cfg.outageFaults.radio.outageShare = 0.999;
        cfg.outageFaults.radio.meanOutageDuration =
            10ll * workload::kMonth;
        cfg.outageFaults.radio.exchangeFailureRate = 0.0;
        cfg.outageFaults.radio.latencySpikeRate = 0.0;
    }

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    std::printf("simulating %zu devices x %u months%s with health "
                "ledgers on (%u thread%s)...\n",
                devices, months, storm ? " under a radio storm" : "",
                threads, threads == 1 ? "" : "s");
    const auto run = harness::runFleet(wb, cfg, collector);
    std::printf("served %llu queries, %llu cloud syncs (%llu failed)\n",
                (unsigned long long)run.queries,
                (unsigned long long)run.cloudSyncs,
                (unsigned long long)run.cloudSyncFailures);

    const obs::MetricsSnapshot snap =
        collector.fleetRegistry().snapshot();
    auto analysis = obs::health::analyzeHealth(
        snap, devices, SimTime(months) * workload::kMonth);
    obs::FlightRecorder breaches(u64(devices) + 1);
    analysis.slos = obs::health::evaluateSlos(
        obs::health::defaultFleetSlos(), collector.fleetSeries(), snap,
        &breaches);

    AsciiTable sb("SLO scoreboard");
    sb.header({"slo", "objective", "attainment", "budget left",
               "short burn", "long burn", "state"});
    for (const auto &st : analysis.slos) {
        const bool lat =
            st.spec.kind == obs::health::SloKind::LatencyQuantile;
        sb.row({st.spec.name,
                lat ? strformat("p%.0f<=%.0fms",
                                100.0 * st.spec.quantile,
                                st.spec.targetMs)
                    : strformat("%.1f%%", 100.0 * st.spec.objective),
                lat ? strformat("%.0fms", st.attainment)
                    : strformat("%.1f%%", 100.0 * st.attainment),
                strformat("%.1f/%.1f", st.budgetRemaining,
                          st.budgetAllowed),
                strformat("%.2f", st.shortBurn),
                strformat("%.2f", st.longBurn),
                st.burning  ? "BURNING"
                : st.met    ? "met"
                            : "missed"});
    }
    sb.print();

    AsciiTable rk("bottleneck ranking (busy time vs capacity)");
    rk.header({"rank", "component", "busy", "ops", "util ppm",
               "per-op"});
    for (std::size_t i = 0; i < analysis.ranked.size(); ++i) {
        const auto &c = analysis.ranked[i];
        rk.row({strformat("%zu", i + 1), c.name,
                humanTime(SimTime(c.busyNs)),
                strformat("%llu", (unsigned long long)c.ops),
                strformat("%.2f", 1e6 * c.utilization),
                humanTime(SimTime(c.serviceNs))});
    }
    rk.print();
    if (!analysis.bottleneck.empty())
        std::printf("bottleneck: %s — saturates at ~%.0fx current "
                    "load\n",
                    analysis.bottleneck.c_str(), analysis.headroom);
    if (breaches.recorded() > 0)
        std::printf("%llu SLO breach window(s) recorded to the flight "
                    "recorder\n",
                    (unsigned long long)breaches.recorded());
}

/**
 * The `server` command: stand up a cloud update service over the
 * workbench world, mine two model versions (the build month, then a
 * fresh month) with the requested pipeline shape, and print what the
 * fleet would sync.
 */
void
runServerCommand(harness::Workbench &wb, u32 shards, u32 threads)
{
    server::ServiceConfig scfg;
    scfg.build.shards = shards;
    scfg.build.threads = threads;
    server::CloudUpdateService svc(wb.universe(), scfg);

    std::printf("mining 2 community months (%u shards x %u threads)"
                "...\n",
                shards, threads);
    svc.ingest(wb.buildLog());
    const auto fresh = wb.nextCommunityMonth();
    const auto &m = svc.ingest(fresh);
    std::printf("model v%llu: %zu distinct pairs mined, %zu selected "
                "for the cache\n",
                (unsigned long long)m.version, m.table.rows().size(),
                m.contents.pairs.size());

    AsciiTable st(strformat("shard stats (v%llu build)",
                            (unsigned long long)m.version));
    st.header({"shard", "records", "rows"});
    for (std::size_t s = 0; s < m.stats.shardStats.size(); ++s)
        st.row({strformat("%zu", s),
                strformat("%llu",
                          (unsigned long long)m.stats.shardStats[s]
                              .records),
                strformat("%llu",
                          (unsigned long long)m.stats.shardStats[s]
                              .rows)});
    st.print();

    const auto fullInstall = svc.makeDelta(0);
    const auto monthly = svc.makeDelta(1);
    AsciiTable dt("delta sync (what a device downloads)");
    dt.header({"update", "adds", "evicts", "reranks", "wire"});
    dt.row({"full install (v0->v2)",
            strformat("%zu", fullInstall.adds.size()), "0", "0",
            humanBytes(core::deltaWireBytes(fullInstall, wb.universe()))
                .c_str()});
    dt.row({"monthly (v1->v2)", strformat("%zu", monthly.adds.size()),
            strformat("%zu", monthly.evicts.size()),
            strformat("%zu", monthly.reranks.size()),
            humanBytes(core::deltaWireBytes(monthly, wb.universe()))
                .c_str()});
    dt.print();
}

/**
 * Print one causal sync chain: stage rows from both tiers, then the
 * critical-path breakdown explainSync computes for its last trace.
 */
void
printSyncChain(const std::vector<obs::SyncEvent> &events)
{
    AsciiTable ct("causal event chain (flight recorder)");
    ct.header({"tier", "stage", "ok", "from", "to", "dur", "detail"});
    for (const auto &ev : events)
        ct.row({obs::syncTierName(ev.tier), obs::syncStageName(ev.stage),
                ev.ok ? "yes" : "NO",
                strformat("v%llu", (unsigned long long)ev.fromVersion),
                strformat("v%llu", (unsigned long long)ev.toVersion),
                humanTime(ev.duration).c_str(),
                strformat("%llu", (unsigned long long)ev.detail)});
    ct.print();

    const auto ex = obs::explainSync(events);
    if (ex.criticalPath <= 0)
        return;
    AsciiTable et(strformat("critical path of trace 0x%016llx (%s)",
                            (unsigned long long)ex.traceId,
                            humanTime(ex.criticalPath).c_str()));
    et.header({"stage", "duration", "share"});
    for (const auto &row : ex.rows) {
        if (row.event.traceId != ex.traceId ||
            row.event.tier != obs::SyncTier::Device ||
            row.event.duration == 0)
            continue;
        et.row({strformat("%s #%u", obs::syncStageName(row.event.stage),
                          row.event.attempt),
                humanTime(row.event.duration).c_str(),
                strformat("%.1f%%", 100.0 * row.share)});
    }
    et.print();
}

/**
 * The `store` command: spin up the pc::store slab engine on a scratch
 * flash device, run a zipf-skewed update/lookup churn per index
 * backend, and print lookup latency, cache hit rate and GC stats.
 */
void
runStoreCommand(u64 records, u64 ops)
{
    AsciiTable t(strformat("pc::store engine, %llu records, %llu "
                           "zipf ops per backend (50/50 get/update)",
                           (unsigned long long)records,
                           (unsigned long long)ops));
    t.header({"backend", "p50 get", "p99 get", "cache hit", "gc runs",
              "relocated", "slabs freed", "coalescing"});
    for (const auto backend :
         {store::IndexBackend::Hash, store::IndexBackend::Ordered}) {
        nvm::FlashConfig fc;
        fc.capacity = 256 * kMiB;
        nvm::FlashDevice device(fc);
        simfs::FlashStore fs(device);
        store::StoreEngineConfig cfg;
        cfg.backend = backend;
        cfg.slotsPerSlab = 64;
        store::StoreEngine eng(fs, cfg);

        SimTime t0 = 0;
        for (u64 k = 0; k < records; ++k)
            eng.put(k, strformat("record %llu payload",
                                 (unsigned long long)k) +
                           std::string(400, 'r'),
                    t0);
        const ZipfSampler zipf(records, 0.99);
        Rng rng(7);
        std::vector<SimTime> lat;
        lat.reserve(ops);
        u64 version = 0;
        for (u64 i = 0; i < ops; ++i) {
            const u64 k = zipf.sample(rng);
            if (rng.chance(0.5)) {
                eng.put(k, strformat("record %llu v%llu",
                                     (unsigned long long)k,
                                     (unsigned long long)++version) +
                               std::string(400, 'u'),
                        t0);
            } else {
                std::string out;
                SimTime one = 0;
                eng.get(k, out, one);
                lat.push_back(one);
            }
        }
        std::sort(lat.begin(), lat.end());
        const auto q = [&](double f) {
            return lat[std::size_t(f * double(lat.size() - 1) + 0.5)];
        };
        t.row({store::indexBackendName(backend),
               humanTime(q(0.50)), humanTime(q(0.99)),
               strformat("%.1f%%", 100.0 * eng.cacheStats().hitRate()),
               strformat("%llu",
                         (unsigned long long)eng.gcStats().collections),
               strformat("%llu",
                         (unsigned long long)eng.gcStats().relocated),
               strformat("%llu", (unsigned long long)
                                     eng.gcStats().slabsReclaimed),
               strformat("%.1fx", eng.batchStats().coalescing())});
    }
    t.print();
    std::printf("(hash probes are flat; the ordered backend pays "
                "O(log n) per lookup — see bench_micro_store for the "
                "full sweep)\n");
}

/**
 * The `explain` command: one community sync on a scratch device with
 * the flight recorder attached — the causal chain spans the server
 * (lookup, build) and the device (delivery, CRC, validate, commit).
 */
void
runExplainCommand(harness::Workbench &wb)
{
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    server::CloudUpdateService svc(wb.universe(), scfg);
    std::printf("mining one community month...\n");
    svc.ingest(wb.buildLog());

    device::MobileDevice dev(wb.universe());
    obs::FlightRecorder rec(/*device_id=*/0);
    dev.attachFlightRecorder(&rec);
    const auto res = svc.syncDevice(dev);
    dev.attachFlightRecorder(nullptr);

    std::printf("sync v%llu -> v%llu: %s, %u attempt%s, %s wire, %s\n",
                (unsigned long long)res.fromVersion,
                (unsigned long long)res.toVersion,
                res.ok ? "ok" : "FAILED", res.attempts,
                res.attempts == 1 ? "" : "s",
                humanBytes(res.deltaBytes).c_str(),
                humanTime(res.time).c_str());
    printSyncChain(rec.events());
}

/**
 * The `chaos` command: a small chaos-engineering run against the sync
 * path — outage storm, bit flips, a version-skew cohort, optional
 * admission control, optional sabotage — ending with the invariant
 * verdict and the causal postmortem of any violation.
 */
void
runChaosCommand(harness::Workbench &wb, std::size_t devices, u32 months,
                double flipRate, u64 budget, u32 sabotage)
{
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    scfg.maxVersions = 2; // slide the window: skew claims fall off it
    server::CloudUpdateService svc(wb.universe(), scfg);
    std::printf("mining 3 community months (window keeps 2)...\n");
    svc.ingest(wb.buildLog());
    svc.ingest(wb.nextCommunityMonth());
    svc.ingest(wb.nextCommunityMonth());

    harness::FleetRunConfig cfg;
    cfg.devices = devices;
    cfg.months = months;
    cfg.cloud = &svc;
    cfg.chaos.enabled = true;
    cfg.chaos.stormStartMonth = 1;
    cfg.chaos.stormMonths = 1;
    cfg.chaos.payloadCorruptRate = flipRate;
    cfg.chaos.skewEvery = 5;
    cfg.chaos.herdBudgetPerMonth = budget;
    cfg.chaos.sabotageEvery = sabotage;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    std::printf("%zu devices x %u months: month-1 storm, %.0f%% bit "
                "flips, shed budget %s, sabotage %s...\n",
                devices, months, 100.0 * flipRate,
                budget ? strformat("%llu/month",
                                   (unsigned long long)budget)
                             .c_str()
                       : "off",
                sabotage ? strformat("every %u", sabotage).c_str()
                         : "off");
    const auto run = harness::runFleet(wb, cfg, collector);

    AsciiTable t("what the resilience machinery did");
    t.header({"event", "count"});
    t.row({"syncs applied",
           strformat("%llu", (unsigned long long)run.cloudSyncs)});
    t.row({"syncs failed (radio/corrupt)",
           strformat("%llu",
                     (unsigned long long)run.cloudSyncFailures)});
    t.row({"syncs shed (admission)",
           strformat("%llu", (unsigned long long)run.cloudSyncsShed)});
    t.row({"corrupt frames caught (CRC)",
           strformat("%llu", (unsigned long long)run.corruptRejected)});
    t.row({"deltas rejected (validation)",
           strformat("%llu", (unsigned long long)run.rejectedDeltas)});
    t.row({"escalated full installs",
           strformat("%llu",
                     (unsigned long long)run.escalatedFullInstalls)});
    t.row({"devices verified vs server",
           strformat("%llu/%zu", (unsigned long long)run.devicesVerified,
                     run.devices)});
    t.print();
    std::printf("sync invariants: %s\n",
                run.invariantViolations
                    ? strformat("** %llu VIOLATIONS **",
                                (unsigned long long)
                                    run.invariantViolations)
                          .c_str()
                    : "held (every synced device byte-identical to "
                      "the server model)");
    std::size_t chainsShown = 0;
    for (const auto &r : run.invariantReports) {
        std::printf("postmortem: device %zu — %s%s (device v%llu "
                    "digest %u, server v%llu digest %u)\n",
                    r.device, harness::invariantKindName(r.kind),
                    r.sabotaged ? " [sabotaged]" : "",
                    (unsigned long long)r.deviceVersion, r.deviceDigest,
                    (unsigned long long)r.serverVersion,
                    r.serverDigest);
        if (++chainsShown <= 2)
            printSyncChain(r.chain);
        else
            std::printf("  (chain: %zu events — kept brief)\n",
                        r.chain.size());
    }
}

} // namespace

int
main()
{
    std::printf("building the world (a few seconds)...\n");
    harness::Workbench wb(harness::smallWorkbenchConfig());
    device::MobileDevice dev(wb.universe());
    obs::MetricRegistry registry;
    obs::Tracer tracer;
    dev.attachMetrics(&registry);
    dev.attachTracer(&tracer, "shell");
    tracer.attachMetrics(&registry);
    dev.installCommunityCache(wb.communityCache());
    core::CacheManager manager(wb.universe());
    auto &ps = dev.pocketSearch();

    std::printf("ready: %zu cached pairs, %s DRAM, %s flash. Type "
                "'help'.\n",
                ps.pairs(), humanBytes(ps.dramBytes()).c_str(),
                humanBytes(ps.flashLogicalBytes()).c_str());

    core::LookupOutcome last;
    std::string last_query;
    std::string line;
    while (std::printf("pocket> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
        std::istringstream iss(line);
        std::string cmd;
        iss >> cmd;
        if (cmd.empty())
            continue;

        if (cmd == "quit" || cmd == "exit")
            break;
        if (cmd == "help") {
            help();
        } else if (cmd == "seed") {
            std::size_t n = 0;
            iss >> n;
            const auto &pairs = wb.communityCache().pairs;
            if (n >= pairs.size()) {
                std::printf("only %zu cached pairs\n", pairs.size());
                continue;
            }
            std::printf("#%zu: \"%s\" -> %s\n", n,
                        wb.universe().query(pairs[n].pair.query)
                            .text.c_str(),
                        wb.universe().result(pairs[n].pair.result)
                            .url.c_str());
        } else if (cmd == "type") {
            std::string prefix;
            std::getline(iss, prefix);
            while (!prefix.empty() && prefix.front() == ' ')
                prefix.erase(prefix.begin());
            auto out = ps.suggestWithResults(prefix, 3, 1);
            std::printf("[%s_] (%s)\n", prefix.c_str(),
                        humanTime(out.latency).c_str());
            for (const auto &row : out.rows) {
                std::printf("  %-24s", row.suggestion.query.c_str());
                if (!row.results.empty())
                    std::printf(" -> %s", row.results[0].url.c_str());
                std::printf("\n");
            }
            if (out.rows.empty())
                std::printf("  (no cached completions)\n");
        } else if (cmd == "search") {
            std::string q;
            std::getline(iss, q);
            while (!q.empty() && q.front() == ' ')
                q.erase(q.begin());
            last = ps.lookup(q, 2);
            last_query = q;
            if (last.hit) {
                std::printf("HIT in %s:\n",
                            humanTime(last.hashLookupTime +
                                      last.fetchTime).c_str());
                for (std::size_t i = 0; i < last.results.size(); ++i) {
                    std::printf("  [%zu] %s — %s\n", i,
                                last.results[i].title.c_str(),
                                last.results[i].url.c_str());
                }
                std::printf("(+361 ms render)\n");
            } else {
                std::printf("MISS -> would go over 3G (~6 s, ~7.5 J)\n");
            }
        } else if (cmd == "click") {
            std::size_t n = 0;
            iss >> n;
            if (last_query.empty() || n >= last.urlHashes.size()) {
                std::printf("no such result from the last search\n");
                continue;
            }
            ps.table().applyClick(last_query, last.urlHashes[n], 0.1);
            std::printf("clicked; '%s' re-ranked for next time\n",
                        last_query.c_str());
        } else if (cmd == "stats") {
            const auto &s = ps.stats();
            std::printf("pairs=%zu dram=%s flash=%s | lookups=%llu "
                        "query-hits=%llu learned=%llu | suggest "
                        "entries=%zu\n",
                        ps.pairs(), humanBytes(ps.dramBytes()).c_str(),
                        humanBytes(ps.flashLogicalBytes()).c_str(),
                        (unsigned long long)s.lookups,
                        (unsigned long long)s.queryHits,
                        (unsigned long long)s.pairsLearned,
                        ps.suggestIndex().size());
            harness::printMetricsReport("metrics registry",
                                        registry.snapshot());
        } else if (cmd == "trace") {
            std::size_t n = 0;
            std::string out_file;
            iss >> n >> out_file;
            const auto &pairs = wb.communityCache().pairs;
            if (n >= pairs.size()) {
                std::printf("only %zu cached pairs\n", pairs.size());
                continue;
            }
            const std::size_t before = tracer.spans().size();
            const auto out = dev.serveQuery(
                pairs[n].pair, device::ServePath::PocketSearch, false);
            std::printf("\"%s\": %s, %s (%.1f mJ)\n",
                        wb.universe().query(pairs[n].pair.query)
                            .text.c_str(),
                        out.cacheHit ? "HIT" : "MISS",
                        humanTime(out.latency).c_str(),
                        out.energy / 1000.0);
            std::vector<std::pair<std::string, SimTime>> rollup;
            for (std::size_t i = before; i < tracer.spans().size();
                 ++i) {
                const auto &sp = tracer.spans()[i];
                std::printf("  %-10s %-18s @%-12s %s\n",
                            sp.category.c_str(), sp.name.c_str(),
                            humanTime(sp.start).c_str(),
                            humanTime(sp.duration).c_str());
                for (const auto &[k, v] : sp.args)
                    std::printf("    %s=%s\n", k.c_str(), v.c_str());
                auto it = std::find_if(
                    rollup.begin(), rollup.end(),
                    [&](const auto &r) { return r.first == sp.category; });
                if (it == rollup.end())
                    rollup.emplace_back(sp.category, sp.duration);
                else
                    it->second += sp.duration;
            }
            for (const auto &[cat, dur] : rollup)
                std::printf("  rollup: %-10s %s\n", cat.c_str(),
                            humanTime(dur).c_str());
            if (!out_file.empty()) {
                if (tracer.writeChromeTraceFile(out_file))
                    std::printf("wrote %s\n", out_file.c_str());
            }
        } else if (cmd == "fleet") {
            std::size_t n = 24;
            u32 months = 4;
            unsigned threads = 1; // t=0 means one per hardware thread
            // Failed extraction zeroes the target; restore defaults so
            // trailing args stay optional.
            if (!(iss >> n))
                n = 24;
            if (!(iss >> months))
                months = 4;
            if (!(iss >> threads))
                threads = 1;
            if (n == 0 || months == 0) {
                std::printf("need at least 1 device and 1 month\n");
                continue;
            }
            if (n > 5000 || months > 24 || threads > 64) {
                std::printf("keeping it interactive: max 5000 devices,"
                            " 24 months, 64 threads\n");
                continue;
            }
            runFleetCommand(wb, n, months, threads);
        } else if (cmd == "health") {
            std::size_t n = 24;
            u32 months = 6;
            unsigned threads = 1;
            u32 storm = 0;
            if (!(iss >> n))
                n = 24;
            if (!(iss >> months))
                months = 6;
            if (!(iss >> threads))
                threads = 1;
            if (!(iss >> storm))
                storm = 0;
            if (n == 0 || months == 0) {
                std::printf("need at least 1 device and 1 month\n");
                continue;
            }
            if (n > 5000 || months > 24 || threads > 64) {
                std::printf("keeping it interactive: max 5000 devices,"
                            " 24 months, 64 threads\n");
                continue;
            }
            runHealthCommand(wb, n, months, threads, storm != 0);
        } else if (cmd == "server") {
            u32 shards = 8;
            u32 threads = 4;
            iss >> shards >> threads;
            if (shards == 0 || threads == 0) {
                std::printf("need at least 1 shard and 1 thread\n");
                continue;
            }
            if (shards > 256 || threads > 64) {
                std::printf("keeping it interactive: max 256 shards, "
                            "64 threads\n");
                continue;
            }
            runServerCommand(wb, shards, threads);
        } else if (cmd == "chaos") {
            std::size_t n = 0;
            u32 months = 0;
            double flip = 0.0;
            u64 budget = 0;
            u32 sabotage = 0;
            if (!(iss >> n))
                n = 20;
            if (!(iss >> months))
                months = 6;
            if (!(iss >> flip))
                flip = 0.3;
            if (!(iss >> budget))
                budget = 0;
            if (!(iss >> sabotage))
                sabotage = 0;
            if (n == 0 || months == 0 || flip < 0.0 || flip > 1.0) {
                std::printf("need >=1 device, >=1 month and a flip "
                            "rate in [0,1]\n");
                continue;
            }
            if (n > 5000 || months > 24) {
                std::printf("keeping it interactive: max 5000 devices,"
                            " 24 months\n");
                continue;
            }
            runChaosCommand(wb, n, months, flip, budget, sabotage);
        } else if (cmd == "store") {
            u64 records = 0;
            u64 ops = 0;
            if (!(iss >> records))
                records = 2000;
            if (!(iss >> ops))
                ops = 6000;
            if (records == 0 || ops == 0) {
                std::printf("need >=1 record and >=1 op\n");
                continue;
            }
            if (records > 200000 || ops > 1000000) {
                std::printf("keeping it interactive: max 200000 "
                            "records, 1000000 ops\n");
                continue;
            }
            runStoreCommand(records, ops);
        } else if (cmd == "explain") {
            runExplainCommand(wb);
        } else if (cmd == "update") {
            const auto fresh_log = wb.nextCommunityMonth();
            const auto fresh =
                logs::TripletTable::fromLog(fresh_log);
            core::UpdatePolicy policy;
            policy.content.kind = core::ThresholdKind::VolumeShare;
            policy.content.volumeShare = 0.55;
            SimTime t = 0;
            const auto st = manager.update(ps, fresh, policy, t);
            st.publishMetrics(registry);
            std::printf("synced: -%zu pruned, +%zu fresh, %zu kept; "
                        "exchange %s\n",
                        st.pairsPruned, st.pairsAdded, st.pairsKept,
                        humanBytes(st.bytesToServer +
                                   st.bytesToPhone).c_str());
        } else {
            std::printf("unknown command '%s' (try 'help')\n",
                        cmd.c_str());
        }
    }
    std::printf("bye\n");
    return 0;
}
