/**
 * @file
 * trace_explain — turn a causal sync artifact into a human postmortem.
 *
 * Reads either a postmortem document (the `{"postmortem": ...}` file
 * the chaos bench and fleet harness emit, one explained report per
 * invariant violation) or a bare sync-event array (the
 * writeSyncEvents() chain format) and prints, for each trace, the
 * cross-tier causal event chain plus the per-stage critical-path
 * breakdown computed by obs::explainSync.
 *
 * Usage:
 *   trace_explain <file.json> [--trace 0x<16-hex-id>]
 *
 * With --trace, only the chain belonging to that trace id is
 * explained; without it, postmortem reports print every chain and a
 * bare event array explains its last trace. Exit status: 0 on
 * success, 1 on unreadable/unrecognized input, 2 when --trace names
 * an id the file does not contain.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/postmortem.h"
#include "obs/causal.h"
#include "obs/jsonparse.h"
#include "util/strings.h"
#include "util/table.h"

using namespace pc;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <file.json> [--trace 0x<16-hex-id>]\n"
                 "  file.json: a postmortem document or a sync-event "
                 "array\n",
                 argv0);
    return 1;
}

/** Print one chain: both-tier event rows, then the explain table. */
void
printChain(const std::vector<obs::SyncEvent> &events, u64 trace_id)
{
    AsciiTable ct("causal event chain");
    ct.header({"trace", "span", "tier", "stage", "ok", "from", "to",
               "dur", "detail"});
    for (const auto &ev : events) {
        if (trace_id != 0 && ev.traceId != trace_id)
            continue;
        ct.row({strformat("0x%016llx", (unsigned long long)ev.traceId),
                strformat("%u", ev.span), obs::syncTierName(ev.tier),
                obs::syncStageName(ev.stage), ev.ok ? "yes" : "NO",
                strformat("v%llu", (unsigned long long)ev.fromVersion),
                strformat("v%llu", (unsigned long long)ev.toVersion),
                humanTime(ev.duration).c_str(),
                strformat("%llu", (unsigned long long)ev.detail)});
    }
    ct.print();

    const auto ex = obs::explainSync(events, trace_id);
    if (ex.criticalPath <= 0) {
        std::printf("(no device-tier time on this trace — nothing on "
                    "the critical path)\n");
        return;
    }
    AsciiTable et(strformat("critical path of trace 0x%016llx (%s)",
                            (unsigned long long)ex.traceId,
                            humanTime(ex.criticalPath).c_str()));
    et.header({"stage", "duration", "share"});
    for (const auto &row : ex.rows) {
        if (row.event.traceId != ex.traceId ||
            row.event.tier != obs::SyncTier::Device ||
            row.event.duration == 0)
            continue;
        et.row({strformat("%s #%u", obs::syncStageName(row.event.stage),
                          row.event.attempt),
                humanTime(row.event.duration).c_str(),
                strformat("%.1f%%", 100.0 * row.share)});
    }
    et.print();
}

bool
chainHasTrace(const std::vector<obs::SyncEvent> &events, u64 trace_id)
{
    for (const auto &ev : events)
        if (ev.traceId == trace_id)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    u64 want_trace = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            want_trace = std::strtoull(argv[++i], nullptr, 16);
            if (want_trace == 0) {
                std::fprintf(stderr, "bad --trace id '%s'\n", argv[i]);
                return 1;
            }
        } else if (path.empty() && argv[i][0] != '-') {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);

    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJsonFile(path, doc, &err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 1;
    }

    // Postmortem document: one explained report per violation.
    std::vector<harness::InvariantReport> reports;
    if (doc.find("postmortem") != nullptr) {
        if (!harness::readPostmortem(doc, reports)) {
            std::fprintf(stderr, "%s: malformed postmortem document\n",
                         path.c_str());
            return 1;
        }
        std::printf("%s: %zu invariant violation(s)\n", path.c_str(),
                    reports.size());
        bool found = want_trace == 0;
        for (const auto &r : reports) {
            if (want_trace != 0 && !chainHasTrace(r.chain, want_trace))
                continue;
            found = true;
            std::printf("\ndevice %zu — %s%s (device v%llu digest %u, "
                        "server v%llu digest %u; corruptions %llu "
                        "caught / %llu injected)\n",
                        r.device, harness::invariantKindName(r.kind),
                        r.sabotaged ? " [sabotaged]" : "",
                        (unsigned long long)r.deviceVersion,
                        r.deviceDigest,
                        (unsigned long long)r.serverVersion,
                        r.serverDigest,
                        (unsigned long long)r.corruptCaught,
                        (unsigned long long)r.corruptInjected);
            printChain(r.chain, want_trace);
        }
        if (!found) {
            std::fprintf(stderr,
                         "trace 0x%016llx not found in any report\n",
                         (unsigned long long)want_trace);
            return 2;
        }
        return 0;
    }

    // Bare event array: the writeSyncEvents() chain format.
    std::vector<obs::SyncEvent> events;
    if (doc.isArray() && obs::readSyncEvents(doc, events)) {
        if (want_trace != 0 && !chainHasTrace(events, want_trace)) {
            std::fprintf(stderr, "trace 0x%016llx not found\n",
                         (unsigned long long)want_trace);
            return 2;
        }
        std::printf("%s: %zu sync event(s)\n", path.c_str(),
                    events.size());
        printChain(events, want_trace);
        return 0;
    }

    std::fprintf(stderr,
                 "%s: neither a postmortem document nor a sync-event "
                 "array\n",
                 path.c_str());
    return 1;
}
