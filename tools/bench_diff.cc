/**
 * @file
 * bench_diff — the perf-regression gate CLI.
 *
 * Compares two BENCH_*.json files, or two directories of them (the
 * committed baseline tree vs a fresh bench run), using the benchdiff
 * library. Exit status is the gate:
 *
 *   0  everything within tolerance
 *   1  regression (drift beyond tolerance, or a metric/report gone)
 *   2  usage or I/O error
 *
 * Usage:
 *   bench_diff [options] <baseline> <current>
 *
 * Options:
 *   --rel-tol <frac>        default relative tolerance (default 0)
 *   --abs-tol <x>           default absolute tolerance (default 1e-12)
 *   --rule <glob=rel[,abs]> per-metric override, first match wins
 *                           (repeatable), e.g. --rule 'histogram.*.p99=0.1'
 *   --verbose               also print in-tolerance metrics
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "obs/benchdiff.h"
#include "obs/jsonparse.h"

using namespace pc::obs;
namespace fs = std::filesystem;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--rel-tol F] [--abs-tol X] [--rule GLOB=REL[,ABS]]"
        " [--verbose] <baseline> <current>\n"
        "  <baseline>/<current>: BENCH_*.json files or directories of"
        " them\n",
        argv0);
    return 2;
}

enum class Load { Ok, NotAReport, Error };

/**
 * Load + flatten one report file: a "bench" report or a "health"
 * artifact (obs/health.h), both gate-comparable once flattened.
 * NotAReport means valid JSON that is neither — benches drop other
 * artifacts (trace dumps, postmortems) next to their reports, and
 * directory scans must step over those.
 */
Load
loadReport(const std::string &path, BenchMetrics &out)
{
    JsonValue root;
    std::string err;
    if (!parseJsonFile(path, root, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                     err.c_str());
        return Load::Error;
    }
    if (root.isObject() && root.find("health")) {
        if (!flattenHealthReport(root, out, &err)) {
            std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                         err.c_str());
            return Load::Error;
        }
        return Load::Ok;
    }
    if (root.isObject() && !root.find("bench"))
        return Load::NotAReport;
    if (!flattenBenchReport(root, out, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                     err.c_str());
        return Load::Error;
    }
    return Load::Ok;
}

/** BENCH_*.json files directly inside `dir`, name-sorted. */
std::vector<std::string>
reportFiles(const std::string &dir)
{
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 &&
            name.substr(name.size() - 5) == ".json")
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
parseRule(const std::string &spec, DiffRule &rule)
{
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    rule.pattern = spec.substr(0, eq);
    const std::string tols = spec.substr(eq + 1);
    char *end = nullptr;
    rule.relTol = std::strtod(tols.c_str(), &end);
    if (end == tols.c_str())
        return false;
    if (*end == ',') {
        const char *absStart = end + 1;
        rule.absTol = std::strtod(absStart, &end);
        if (end == absStart)
            return false;
    }
    return *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    DiffConfig cfg;
    bool verbose = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto needValue = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--rel-tol") {
            const char *v = needValue();
            if (!v)
                return usage(argv[0]);
            cfg.defaultRelTol = std::atof(v);
        } else if (arg == "--abs-tol") {
            const char *v = needValue();
            if (!v)
                return usage(argv[0]);
            cfg.defaultAbsTol = std::atof(v);
        } else if (arg == "--rule") {
            const char *v = needValue();
            DiffRule rule;
            if (!v || !parseRule(v, rule)) {
                std::fprintf(stderr,
                             "bench_diff: bad --rule (want"
                             " GLOB=REL[,ABS])\n");
                return 2;
            }
            cfg.rules.push_back(std::move(rule));
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage(argv[0]);
    const std::string &basePath = paths[0];
    const std::string &curPath = paths[1];

    std::error_code ec;
    const bool baseIsDir = fs::is_directory(basePath, ec);
    const bool curIsDir = fs::is_directory(curPath, ec);
    if (baseIsDir != curIsDir) {
        std::fprintf(stderr, "bench_diff: cannot compare a directory"
                             " against a file\n");
        return 2;
    }

    DiffResult total;
    if (!baseIsDir) {
        BenchMetrics base, cur;
        if (loadReport(basePath, base) != Load::Ok ||
            loadReport(curPath, cur) != Load::Ok) {
            // For explicit file arguments a non-report is an error too.
            std::fprintf(stderr, "bench_diff: not a comparable pair of"
                                 " bench reports\n");
            return 2;
        }
        total = diffReports(base, cur, cfg);
    } else {
        const auto baseline = reportFiles(basePath);
        if (baseline.empty()) {
            std::fprintf(stderr, "bench_diff: no BENCH_*.json under"
                                 " %s\n",
                         basePath.c_str());
            return 2;
        }
        bool ioError = false;
        for (const auto &name : baseline) {
            BenchMetrics base, cur;
            const Load got = loadReport(basePath + "/" + name, base);
            if (got == Load::NotAReport)
                continue; // e.g. a trace dump next to the report
            if (got == Load::Error) {
                ioError = true;
                continue;
            }
            const std::string curFile = curPath + "/" + name;
            if (!fs::exists(curFile, ec)) {
                // A baseline report with no current counterpart is a
                // regression: the bench silently stopped running.
                std::printf(" GONE  %s (entire report missing)\n",
                            name.c_str());
                ++total.missing;
                continue;
            }
            if (loadReport(curFile, cur) != Load::Ok) {
                ioError = true;
                continue;
            }
            total.mergeFrom(diffReports(base, cur, cfg));
        }
        if (ioError)
            return 2;
    }

    writeDiffReport(std::cout, total, verbose);
    if (!total.ok()) {
        std::printf("REGRESSION: bench output drifted from baseline\n");
        return 1;
    }
    std::printf("OK: within tolerance\n");
    return 0;
}
