/**
 * @file
 * Calibration smoke tool: prints the synthetic workload's measured
 * statistics next to the paper's published targets. Not installed as a
 * bench; used during development to tune generator constants.
 */

#include <cstdio>
#include <unordered_map>

#include "device/replay.h"
#include "harness/workbench.h"
#include "logs/analyzer.h"

using namespace pc;

int
main()
{
    harness::Workbench wb;
    const auto &uni = wb.universe();
    const auto &log = wb.buildLog();
    const auto &tt = wb.triplets();

    std::printf("events=%zu distinct pairs=%zu totalVol=%llu\n",
                log.size(), tt.rows().size(),
                (unsigned long long)tt.totalVolume());

    logs::LogAnalyzer an(log);
    auto qpop = an.queryPopularity();
    auto rpop = an.resultPopularity();
    std::printf("top6000 query share = %.3f (paper 0.60)\n",
                qpop.shareOfTop(6000));
    std::printf("top4000 result share = %.3f (paper 0.60)\n",
                rpop.shareOfTop(4000));
    std::printf("queries for 60%% = %zu ; results for 60%% = %zu "
                "(paper 6000 vs 4000)\n",
                qpop.topForShare(0.60), rpop.topForShare(0.60));

    logs::RecordFilter nav_f;
    nav_f.navigational = true;
    logs::RecordFilter nonnav_f;
    nonnav_f.navigational = false;
    auto nav = an.queryPopularity(nav_f);
    auto nonnav = an.queryPopularity(nonnav_f);
    std::printf("nav top5000 share = %.3f (paper 0.90); "
                "nonnav top5000 share = %.3f (paper <0.30)\n",
                nav.shareOfTop(5000), nonnav.shareOfTop(5000));

    std::printf("mean repeat rate = %.3f (paper 0.565)\n",
                an.meanRepeatRate());
    std::printf("users with newRate<=0.30 = %.3f (paper ~0.50)\n",
                an.fractionUsersNewRateAtMost(0.30));

    const auto &cache = wb.communityCache();
    std::printf("cache: pairs=%zu uniqueResults=%zu share=%.3f "
                "dram=%.1fKB flash=%.2fMB\n",
                cache.pairs.size(), cache.uniqueResults,
                cache.cumulativeShare,
                double(cache.dramBytes) / 1024.0,
                double(cache.flashBytes) / (1024.0 * 1024.0));
    std::printf("unique result fraction = %.3f (paper 0.60)\n",
                cache.pairs.empty() ? 0.0
                    : double(cache.uniqueResults) /
                      double(cache.pairs.size()));
    {
        std::unordered_map<pc::u32, int> rpq;
        for (const auto &sp : cache.pairs)
            ++rpq[sp.pair.query];
        int hist[5] = {0,0,0,0,0};
        for (auto &[q,n] : rpq) { (void)q; ++hist[std::min(n,4)]; }
        std::printf("cached queries by #results: 1:%d 2:%d 3:%d 4+:%d "
                    "(distinct queries %zu)\n",
                    hist[1], hist[2], hist[3], hist[4], rpq.size());
    }

    // Hit-rate replay, 30 users per class for speed.
    for (auto mode : {core::CacheMode::Combined,
                      core::CacheMode::CommunityOnly,
                      core::CacheMode::PersonalizationOnly}) {
        device::ReplayDriver driver(uni, cache, wb.population());
        device::ReplayConfig rc;
        rc.mode = mode;
        rc.usersPerClass = 30;
        auto res = driver.run(rc);
        std::printf("[%s] overall=%.3f classes:",
                    core::cacheModeName(mode).c_str(),
                    res.overallMeanHitRate);
        for (const auto &c : res.classes)
            std::printf(" %.3f", c.meanHitRate);
        std::printf("  navHitShare(avg):");
        for (const auto &c : res.classes)
            std::printf(" %.2f", c.navHitShare);
        std::printf("\n");
    }
    return 0;
}
