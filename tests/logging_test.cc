/**
 * @file
 * Unit tests for the logging sink and the PC_LOG debug gate.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace pc {
namespace {

/** Installs a capturing sink for the test's lifetime, then restores. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        prev_ = setLogSink([this](LogLevel level, const std::string &msg) {
            messages_.emplace_back(level, msg);
        });
    }

    ~SinkCapture() { setLogSink(std::move(prev_)); }

    const std::vector<std::pair<LogLevel, std::string>> &messages() const
    {
        return messages_;
    }

  private:
    LogSink prev_;
    std::vector<std::pair<LogLevel, std::string>> messages_;
};

TEST(Logging, SinkCapturesWarnAndInform)
{
    SinkCapture cap;
    pc_warn("w ", 1);
    pc_inform("i ", 2);
    ASSERT_EQ(cap.messages().size(), 2u);
    EXPECT_EQ(cap.messages()[0].first, LogLevel::Warn);
    EXPECT_EQ(cap.messages()[0].second, "w 1");
    EXPECT_EQ(cap.messages()[1].first, LogLevel::Info);
    EXPECT_EQ(cap.messages()[1].second, "i 2");
}

TEST(Logging, DebugGatedOffDropsMessageAndSkipsArgs)
{
    SinkCapture cap;
    setDebugLogging(false);
    int evaluations = 0;
    auto expensive = [&]() {
        ++evaluations;
        return 42;
    };
    pc_debug("value ", expensive());
    EXPECT_TRUE(cap.messages().empty());
    EXPECT_EQ(evaluations, 0) << "pc_debug args must not evaluate when off";

    setDebugLogging(true);
    pc_debug("value ", expensive());
    ASSERT_EQ(cap.messages().size(), 1u);
    EXPECT_EQ(cap.messages()[0].first, LogLevel::Debug);
    EXPECT_EQ(cap.messages()[0].second, "value 42");
    EXPECT_EQ(evaluations, 1);
    setDebugLogging(false);
}

TEST(Logging, ParseLogEnvValues)
{
    EXPECT_FALSE(detail::parseLogEnv(nullptr));
    EXPECT_FALSE(detail::parseLogEnv(""));
    EXPECT_FALSE(detail::parseLogEnv("0"));
    EXPECT_FALSE(detail::parseLogEnv("off"));
    EXPECT_FALSE(detail::parseLogEnv("warn"));
    EXPECT_TRUE(detail::parseLogEnv("debug"));
    EXPECT_TRUE(detail::parseLogEnv("all"));
    EXPECT_TRUE(detail::parseLogEnv("1"));
}

TEST(Logging, SetLogSinkReturnsPrevious)
{
    std::vector<std::string> first;
    LogSink prev = setLogSink([&](LogLevel, const std::string &msg) {
        first.push_back(msg);
    });
    pc_warn("to-first");

    // Swap in a second sink; the returned previous one is the first.
    std::vector<std::string> second;
    LogSink firstSink = setLogSink([&](LogLevel, const std::string &msg) {
        second.push_back(msg);
    });
    pc_warn("to-second");
    ASSERT_TRUE(firstSink);
    firstSink(LogLevel::Warn, "direct");

    setLogSink(std::move(prev)); // restore default before leaving
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0], "to-first");
    EXPECT_EQ(first[1], "direct");
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0], "to-second");
}

TEST(Logging, LogLevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
}

} // namespace
} // namespace pc
