/**
 * @file
 * Crash properties of the pc::store engine under FaultPlan torn-write
 * and bit-flip injection.
 *
 * The engine's acknowledgement contract: a write is durable once
 * flush() returns with the plan not reporting power loss. These
 * properties pin exactly that, across seeds:
 *
 *  - an acknowledged key is never lost by a crash, and its recovered
 *    value is either the acknowledged one or a later (unacknowledged
 *    but fully programmed) one — never a torn hybrid;
 *  - a removed-and-acknowledged key never resurrects;
 *  - GC never loses acknowledged writes, even when the crash lands
 *    mid-relocation;
 *  - wear-correlated bit flips are absorbed by checksum-verified
 *    retries on both the lookup and the recovery path.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "fault/fault_plan.h"
#include "nvm/flash_device.h"
#include "store/engine.h"
#include "util/rng.h"

namespace pc::store {
namespace {

std::string
valueFor(u64 key, u64 version, Bytes size)
{
    std::string v = std::to_string(key) + "#" + std::to_string(version) + "#";
    while (v.size() < size)
        v.push_back(char('a' + (key * 7 + version + v.size()) % 26));
    return v.substr(0, size);
}

/**
 * Runs a randomized workload against an engine with a crash armed,
 * tracking the acknowledged state (at the last successful flush) and
 * everything written since. After the crash fires, reboots, re-attaches
 * and checks the recovered state against the contract.
 */
void
runCrashRound(u64 seed, const StoreEngineConfig &cfg, Bytes crashAfter)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    pc::fault::FaultConfig fcfg;
    fcfg.seed = seed;
    pc::fault::FaultPlan plan(fcfg);
    store.attachFaults(&plan);

    Rng rng(seed * 31 + 7);
    SimTime t = 0;

    // Acknowledged state and the not-yet-acknowledged deltas on top.
    std::map<u64, std::string> acked;
    std::map<u64, std::set<std::string>> pendingValues;
    std::set<u64> pendingRemoves;
    u64 version = 0;

    {
        StoreEngine eng(store, cfg);

        // Warm-up phase before the crash is armed, fully acknowledged.
        for (int i = 0; i < 60; ++i) {
            const u64 k = rng.below(40);
            const std::string v = valueFor(k, ++version, 30 + rng.below(180));
            ASSERT_TRUE(eng.put(k, v, t));
            acked[k] = v;
        }
        eng.flush(t);
        ASSERT_FALSE(plan.powerLost());

        plan.armCrashAfterBytes(crashAfter);
        for (int i = 0; i < 4000 && !plan.powerLost(); ++i) {
            const u64 k = rng.below(40);
            const u64 op = rng.below(100);
            if (op < 55) {
                const std::string v =
                    valueFor(k, ++version, 30 + rng.below(180));
                if (eng.put(k, v, t)) {
                    pendingValues[k].insert(v);
                    pendingRemoves.erase(k);
                }
            } else if (op < 75) {
                if (eng.remove(k, t))
                    pendingRemoves.insert(k);
            } else {
                eng.flush(t);
                if (!plan.powerLost()) {
                    // Everything queued so far is now acknowledged:
                    // refresh the acked view of every touched key from
                    // the engine's own (now durable) state.
                    std::set<u64> touched = pendingRemoves;
                    for (const auto &[key, vals] : pendingValues)
                        touched.insert(key);
                    for (u64 key : touched) {
                        std::string out;
                        SimTime rt = 0;
                        if (eng.get(key, out, rt))
                            acked[key] = out;
                        else
                            acked.erase(key);
                    }
                    pendingValues.clear();
                    pendingRemoves.clear();
                }
            }
        }
        ASSERT_TRUE(plan.powerLost()) << "crash never fired; seed " << seed;
    }

    // Power back on; attach a fresh engine to the surviving flash.
    plan.reboot();
    StoreEngine eng2(store, cfg);

    SimTime rt = 0;
    for (const auto &[key, val] : acked) {
        std::string out;
        const bool found = eng2.get(key, out, rt);
        if (pendingRemoves.count(key)) {
            // The remove may or may not have been programmed; either
            // outcome is allowed, but a recovered value must be real.
            if (found) {
                ASSERT_TRUE(out == val ||
                            pendingValues[key].count(out) > 0);
            }
            continue;
        }
        ASSERT_TRUE(found) << "acknowledged key " << key
                           << " lost; seed " << seed;
        ASSERT_TRUE(out == val || pendingValues[key].count(out) > 0)
            << "key " << key << " recovered a torn value; seed " << seed;
    }
    // No resurrections or inventions: every recovered key was written.
    eng2.index().forEach([&](u64 key, const ItemLoc &) {
        ASSERT_TRUE(acked.count(key) || pendingValues.count(key))
            << "key " << key << " resurrected; seed " << seed;
    });
}

TEST(StoreCrashProperty, AcknowledgedWritesSurviveTornCrashes)
{
    StoreEngineConfig cfg;
    cfg.slotsPerSlab = 16;
    for (u64 seed = 1; seed <= 8; ++seed)
        runCrashRound(seed, cfg, 2000 + seed * 1777);
}

TEST(StoreCrashProperty, UnbatchedEngineSurvivesTornCrashes)
{
    StoreEngineConfig cfg;
    cfg.slotsPerSlab = 16;
    cfg.batchWindow = 0; // every write issues immediately
    for (u64 seed = 20; seed <= 24; ++seed)
        runCrashRound(seed, cfg, 1000 + seed * 997);
}

TEST(StoreCrashProperty, GcNeverLosesAcknowledgedWrites)
{
    // Tiny slabs + aggressive threshold: the workload GCs constantly,
    // so crashes regularly land around relocations.
    StoreEngineConfig cfg;
    cfg.sizeClasses = {256};
    cfg.slotsPerSlab = 8;
    cfg.gcDeadFraction = 0.25;
    for (u64 seed = 40; seed <= 47; ++seed)
        runCrashRound(seed, cfg, 3000 + seed * 1511);
}

TEST(StoreCrashProperty, GcAbortRollsBackCleanly)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    pc::fault::FaultPlan plan;
    store.attachFaults(&plan);

    StoreEngineConfig cfg;
    cfg.sizeClasses = {256};
    cfg.slotsPerSlab = 8;
    cfg.gcAuto = false;
    StoreEngine eng(store, cfg);

    SimTime t = 0;
    std::map<u64, std::string> ref;
    for (u64 k = 0; k < 32; ++k) {
        ref[k] = valueFor(k, 1, 150);
        ASSERT_TRUE(eng.put(k, ref[k], t));
    }
    eng.flush(t);
    for (u64 k = 0; k < 32; k += 2) {
        ASSERT_TRUE(eng.remove(k, t));
        ref.erase(k);
    }
    eng.flush(t);

    // Give GC a budget too small for its relocation writes.
    plan.armCrashAfterBytes(64);
    eng.gcSweep(t);
    ASSERT_GT(eng.gcStats().aborted, 0u);

    plan.reboot();
    StoreEngine eng2(store, cfg);
    ASSERT_EQ(eng2.items(), ref.size());
    for (const auto &[key, val] : ref) {
        std::string out;
        ASSERT_TRUE(eng2.get(key, out, t));
        ASSERT_EQ(out, val);
    }
}

TEST(StoreCrashProperty, BitFlipsAreAbsorbedByChecksumRetries)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    pc::fault::FaultConfig fcfg;
    fcfg.seed = 5;
    fcfg.storage.bitFlipPerReadPerKiloErase = 0.5;
    pc::fault::FaultPlan plan(fcfg);
    store.attachFaults(&plan);

    StoreEngineConfig cfg;
    cfg.sizeClasses = {256};
    cfg.slotsPerSlab = 8;
    cfg.gcDeadFraction = 0.25;
    cfg.cache.capacityPages = 16;
    StoreEngine eng(store, cfg);

    SimTime t = 0;
    Rng rng(99);
    std::map<u64, std::string> ref;
    // Update churn drives GC, GC drives erases, erases drive flips.
    for (int step = 0; step < 1200; ++step) {
        const u64 k = rng.below(24);
        ref[k] = valueFor(k, u64(step), 120);
        ASSERT_TRUE(eng.put(k, ref[k], t));
    }
    for (const auto &[key, val] : ref) {
        std::string out;
        ASSERT_TRUE(eng.get(key, out, t)) << "key " << key;
        ASSERT_EQ(out, val) << "key " << key;
    }
    ASSERT_GT(plan.stats().bitFlips, 0u);
    ASSERT_GT(eng.stats().crcRetries, 0u);
    ASSERT_EQ(eng.stats().readFailures, 0u);

    // Recovery under the same flip rate still rebuilds exactly.
    eng.flush(t);
    StoreEngine eng2(store, cfg);
    ASSERT_EQ(eng2.items(), ref.size());
    for (const auto &[key, val] : ref) {
        std::string out;
        ASSERT_TRUE(eng2.get(key, out, t));
        ASSERT_EQ(out, val);
    }
}

} // namespace
} // namespace pc::store
