/**
 * @file
 * Unit and property tests for the Zipf sampler — the statistical heart
 * of the workload generator. The rejection-inversion sampler must match
 * the analytic truncated-Zipf CDF across the exponent range the
 * calibration solver can produce.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "util/rng.h"
#include "util/zipf.h"

namespace pc {
namespace {

TEST(GeneralizedHarmonic, KnownValues)
{
    EXPECT_DOUBLE_EQ(generalizedHarmonic(1, 1.0), 1.0);
    EXPECT_NEAR(generalizedHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(generalizedHarmonic(4, 0.0), 4.0, 1e-12);
    EXPECT_NEAR(generalizedHarmonic(2, 2.0), 1.25, 1e-12);
}

TEST(ZipfSampler, PmfSumsToOne)
{
    ZipfSampler z(1000, 1.2);
    double sum = 0.0;
    for (u64 k = 0; k < 1000; ++k)
        sum += z.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, CdfMonotoneAndEndsAtOne)
{
    ZipfSampler z(500, 0.8);
    double prev = 0.0;
    for (u64 k = 0; k < 500; ++k) {
        const double c = z.cdf(k);
        ASSERT_GE(c, prev);
        prev = c;
    }
    EXPECT_NEAR(z.cdf(499), 1.0, 1e-9);
}

TEST(ZipfSampler, SingleElementSupport)
{
    ZipfSampler z(1, 1.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(z.sample(rng), 0u);
    EXPECT_NEAR(z.pmf(0), 1.0, 1e-12);
}

TEST(ZipfSampler, UniformWhenSkewZero)
{
    ZipfSampler z(10, 0.0);
    for (u64 k = 0; k < 10; ++k)
        EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(ZipfSampler, HeadForShareInvertsCdf)
{
    ZipfSampler z(10000, 1.0);
    const u64 head = z.headForShare(0.6);
    EXPECT_NEAR(z.cdf(head - 1), 0.6, 0.01);
    if (head > 1)
        EXPECT_LT(z.cdf(head - 2), 0.6);
}

TEST(SolveZipfExponent, RoundTripsHeadShare)
{
    const u64 n = 50000, head = 2000;
    for (double target : {0.2, 0.4, 0.6, 0.8}) {
        const double s = solveZipfExponent(n, head, target);
        const double achieved =
            generalizedHarmonic(head, s) / generalizedHarmonic(n, s);
        EXPECT_NEAR(achieved, target, 0.01) << "target " << target;
    }
}

/** Property sweep: empirical CDF must match analytic across exponents. */
class ZipfEmpirical : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfEmpirical, EmpiricalMatchesAnalyticCdf)
{
    const double s = GetParam();
    const u64 n = 20000;
    ZipfSampler z(n, s);
    Rng rng(u64(s * 1000) + 3);
    const int draws = 200000;
    u64 lt10 = 0, lt100 = 0, lt1000 = 0;
    for (int i = 0; i < draws; ++i) {
        const u64 r = z.sample(rng);
        ASSERT_LT(r, n);
        lt10 += (r < 10);
        lt100 += (r < 100);
        lt1000 += (r < 1000);
    }
    EXPECT_NEAR(double(lt10) / draws, z.cdf(9), 0.01) << "s=" << s;
    EXPECT_NEAR(double(lt100) / draws, z.cdf(99), 0.01) << "s=" << s;
    EXPECT_NEAR(double(lt1000) / draws, z.cdf(999), 0.012) << "s=" << s;
}

TEST_P(ZipfEmpirical, TailIsReached)
{
    const double s = GetParam();
    if (s > 1.6)
        return; // extreme skew legitimately rarely reaches the tail
    const u64 n = 20000;
    ZipfSampler z(n, s);
    Rng rng(u64(s * 977) + 11);
    u64 max_rank = 0;
    for (int i = 0; i < 100000; ++i)
        max_rank = std::max(max_rank, z.sample(rng));
    EXPECT_GT(max_rank, n / 4) << "sampler never leaves the head, s=" << s;
}

INSTANTIATE_TEST_SUITE_P(ExponentSweep, ZipfEmpirical,
                         ::testing::Values(0.0, 0.3, 0.5, 0.665, 0.8,
                                           0.99, 1.0, 1.01, 1.141, 1.3,
                                           1.6, 2.0));

TEST(ZipfSampler, DistinctRankCountGrowsWithFlatness)
{
    // Flatter distributions must touch more distinct ranks — the
    // regression that originally broke workload calibration.
    const u64 n = 100000;
    Rng rng(5);
    auto distinct = [&](double s) {
        ZipfSampler z(n, s);
        std::unordered_set<u64> seen;
        for (int i = 0; i < 50000; ++i)
            seen.insert(z.sample(rng));
        return seen.size();
    };
    const auto d_flat = distinct(0.5);
    const auto d_mid = distinct(1.0);
    const auto d_steep = distinct(1.8);
    EXPECT_GT(d_flat, d_mid);
    EXPECT_GT(d_mid, d_steep);
    EXPECT_GT(d_flat, 20000u);
}

} // namespace
} // namespace pc
