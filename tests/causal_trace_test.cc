/**
 * @file
 * Causal sync tracing: deterministic trace identity, the flight
 * recorder ring, critical-path explanation, JSON round-trips, and the
 * cross-tier chain a real device<->cloud sync records — including the
 * cost contract (attaching a recorder changes no behaviour and draws
 * no RNG).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault_plan.h"
#include "harness/postmortem.h"
#include "harness/workbench.h"
#include "obs/causal.h"
#include "obs/jsonparse.h"
#include "server/service.h"

namespace pc::obs {
namespace {

TEST(DeriveTraceId, DeterministicDistinctNonZero)
{
    EXPECT_EQ(deriveTraceId(3, 7), deriveTraceId(3, 7));
    EXPECT_NE(deriveTraceId(3, 7), deriveTraceId(3, 8));
    EXPECT_NE(deriveTraceId(3, 7), deriveTraceId(4, 7));
    for (u64 dev = 0; dev < 50; ++dev)
        for (u64 seq = 0; seq < 20; ++seq)
            EXPECT_NE(deriveTraceId(dev, seq), 0u);
}

TEST(TraceContext, SpanSequenceAndValidity)
{
    TraceContext ctx;
    EXPECT_FALSE(ctx.valid());
    ctx.traceId = deriveTraceId(1, 0);
    EXPECT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.newSpan(), 1u);
    EXPECT_EQ(ctx.newSpan(), 2u);
    EXPECT_EQ(ctx.newSpan(), 3u);
}

TEST(FlightRecorder, BeginTraceAdvancesDeterministically)
{
    FlightRecorder a(42), b(42);
    const TraceContext a0 = a.beginTrace();
    const TraceContext a1 = a.beginTrace();
    EXPECT_NE(a0.traceId, a1.traceId);
    EXPECT_EQ(a0.traceId, b.beginTrace().traceId);
    EXPECT_EQ(a1.traceId, b.beginTrace().traceId);
    EXPECT_EQ(a.lastTraceId(), a1.traceId);
}

TEST(FlightRecorder, RingOverwritesOldestAndCountsDrops)
{
    FlightRecorder rec(7, /*capacity=*/4);
    EXPECT_EQ(rec.capacity(), 4u);
    for (u32 i = 0; i < 10; ++i) {
        SyncEvent ev;
        ev.traceId = deriveTraceId(7, 0);
        ev.span = i + 1;
        ev.attempt = i;
        rec.record(ev);
    }
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    EXPECT_EQ(rec.size(), 4u);
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first: the survivors are attempts 6..9.
    for (u32 i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].attempt, 6u + i);
}

TEST(FlightRecorder, TraceFiltersOneTrace)
{
    FlightRecorder rec(9);
    const TraceContext t0 = rec.beginTrace();
    const TraceContext t1 = rec.beginTrace();
    for (int i = 0; i < 3; ++i) {
        SyncEvent ev;
        ev.traceId = i == 1 ? t1.traceId : t0.traceId;
        ev.attempt = u32(i);
        rec.record(ev);
    }
    EXPECT_EQ(rec.trace(t0.traceId).size(), 2u);
    EXPECT_EQ(rec.trace(t1.traceId).size(), 1u);
    EXPECT_TRUE(rec.trace(12345).empty());
}

TEST(FlightRecorder, PublishMetricsExposesRingPressure)
{
    FlightRecorder rec(1, /*capacity=*/2);
    for (int i = 0; i < 5; ++i)
        rec.record(SyncEvent{});
    MetricRegistry reg;
    rec.publishMetrics(reg);
    EXPECT_EQ(reg.counter("obs.flight.recorded").value(), 5u);
    EXPECT_EQ(reg.counter("obs.flight.dropped").value(), 3u);
}

TEST(ExplainSync, DeviceDurationsPartitionTheCriticalPath)
{
    std::vector<SyncEvent> events;
    const u64 trace = deriveTraceId(5, 0);
    auto add = [&](SyncTier tier, SyncStage stage, SimTime dur) {
        SyncEvent ev;
        ev.traceId = trace;
        ev.span = u32(events.size() + 1);
        ev.tier = tier;
        ev.stage = stage;
        ev.duration = dur;
        events.push_back(ev);
    };
    add(SyncTier::Device, SyncStage::SyncRequest, 0);
    add(SyncTier::Server, SyncStage::VersionLookup, 0);
    add(SyncTier::Device, SyncStage::FrameDelivery, 750);
    add(SyncTier::Device, SyncStage::Backoff, 250);
    add(SyncTier::Device, SyncStage::Commit, 1000);

    const SyncExplain ex = explainSync(events);
    EXPECT_EQ(ex.traceId, trace);
    EXPECT_EQ(ex.criticalPath, 2000);
    ASSERT_EQ(ex.rows.size(), events.size());
    EXPECT_DOUBLE_EQ(ex.rows[2].share, 0.375);
    EXPECT_DOUBLE_EQ(ex.rows[3].share, 0.125);
    EXPECT_DOUBLE_EQ(ex.rows[4].share, 0.5);
    EXPECT_DOUBLE_EQ(ex.rows[1].share, 0.0); // server marker
}

TEST(ExplainSync, DefaultsToTheLastTrace)
{
    std::vector<SyncEvent> events;
    for (u64 t = 1; t <= 3; ++t) {
        SyncEvent ev;
        ev.traceId = deriveTraceId(1, t);
        ev.tier = SyncTier::Device;
        ev.duration = SimTime(t * 10);
        events.push_back(ev);
    }
    const SyncExplain ex = explainSync(events);
    EXPECT_EQ(ex.traceId, deriveTraceId(1, 3));
    EXPECT_EQ(ex.criticalPath, 30);
}

TEST(SyncEventJson, RoundTripsThroughTheObsParser)
{
    std::vector<SyncEvent> events;
    SyncEvent ev;
    // Force a trace id well above 2^53: doubles cannot hold it, the
    // hex-string encoding must.
    ev.traceId = 0xfedcba9876543210ull;
    ev.span = 3;
    ev.parent = 1;
    ev.tier = SyncTier::Server;
    ev.stage = SyncStage::DeltaBuild;
    ev.ok = false;
    ev.attempt = 2;
    ev.fromVersion = 4;
    ev.toVersion = 9;
    ev.bytes = 123456;
    ev.detail = 77;
    ev.start = 1000000;
    ev.duration = 250;
    events.push_back(ev);
    events.push_back(SyncEvent{});
    events[1].traceId = deriveTraceId(0, 0);

    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/true);
        writeSyncEvents(w, events);
    }
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), doc, &err)) << err;

    std::vector<SyncEvent> back;
    ASSERT_TRUE(readSyncEvents(doc, back));
    ASSERT_EQ(back.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].traceId, events[i].traceId);
        EXPECT_EQ(back[i].span, events[i].span);
        EXPECT_EQ(back[i].parent, events[i].parent);
        EXPECT_EQ(back[i].tier, events[i].tier);
        EXPECT_EQ(back[i].stage, events[i].stage);
        EXPECT_EQ(back[i].ok, events[i].ok);
        EXPECT_EQ(back[i].attempt, events[i].attempt);
        EXPECT_EQ(back[i].fromVersion, events[i].fromVersion);
        EXPECT_EQ(back[i].toVersion, events[i].toVersion);
        EXPECT_EQ(back[i].bytes, events[i].bytes);
        EXPECT_EQ(back[i].detail, events[i].detail);
        EXPECT_EQ(back[i].start, events[i].start);
        EXPECT_EQ(back[i].duration, events[i].duration);
    }
}

TEST(SyncStageNames, RoundTrip)
{
    for (u8 s = 0; s <= u8(SyncStage::Sabotage); ++s) {
        SyncStage stage = SyncStage(s);
        SyncStage back;
        ASSERT_TRUE(syncStageFromName(syncStageName(stage), back));
        EXPECT_EQ(back, stage);
    }
    SyncStage ignored;
    EXPECT_FALSE(syncStageFromName("not_a_stage", ignored));
}

TEST(PostmortemJson, RoundTrips)
{
    harness::InvariantReport r;
    r.device = 11;
    r.kind = harness::InvariantKind::DigestMismatch;
    r.sabotaged = true;
    r.deviceVersion = 3;
    r.serverVersion = 3;
    r.deviceDigest = 0xdeadbeef;
    r.serverDigest = 0xcafef00d;
    r.corruptCaught = 2;
    r.corruptInjected = 2;
    SyncEvent ev;
    ev.traceId = deriveTraceId(11, 4);
    ev.stage = SyncStage::Sabotage;
    ev.ok = false;
    r.chain.push_back(ev);

    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/true);
        harness::writePostmortem(w, {r});
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), doc));
    std::vector<harness::InvariantReport> back;
    ASSERT_TRUE(harness::readPostmortem(doc, back));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].device, r.device);
    EXPECT_EQ(back[0].kind, r.kind);
    EXPECT_TRUE(back[0].sabotaged);
    EXPECT_EQ(back[0].deviceDigest, r.deviceDigest);
    EXPECT_EQ(back[0].serverDigest, r.serverDigest);
    ASSERT_EQ(back[0].chain.size(), 1u);
    EXPECT_EQ(back[0].chain[0].traceId, ev.traceId);
    EXPECT_EQ(back[0].chain[0].stage, SyncStage::Sabotage);
}

// ---------------------------------------------------------------------
// Cross-tier integration: one real device<->cloud sync.

harness::Workbench &
sharedWorkbench()
{
    static harness::Workbench wb(harness::smallWorkbenchConfig());
    return wb;
}

TEST(CrossTierChain, OneSyncSpansBothTiersAndTilesItsLatency)
{
    harness::Workbench &wb = sharedWorkbench();
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    server::CloudUpdateService svc(wb.universe(), scfg);
    svc.ingest(wb.buildLog());

    device::MobileDevice dev(wb.universe());
    FlightRecorder rec(0);
    dev.attachFlightRecorder(&rec);
    const auto res = svc.syncDevice(dev);
    dev.attachFlightRecorder(nullptr);
    ASSERT_TRUE(res.ok);

    const auto chain = rec.events();
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front().stage, SyncStage::SyncRequest);
    EXPECT_EQ(chain.front().tier, SyncTier::Device);
    EXPECT_EQ(chain.back().stage, SyncStage::Commit);
    bool sawServer = false;
    SimTime deviceTime = 0;
    const u64 trace = chain.front().traceId;
    u32 lastSpan = 0;
    for (const auto &ev : chain) {
        EXPECT_EQ(ev.traceId, trace) << "one sync = one trace";
        EXPECT_GT(ev.span, lastSpan) << "spans are a causal sequence";
        lastSpan = ev.span;
        sawServer = sawServer || ev.tier == SyncTier::Server;
        if (ev.tier == SyncTier::Device)
            deviceTime += ev.duration;
    }
    EXPECT_TRUE(sawServer) << "the chain must include server stages";
    // The invariant the whole explain feature rests on: device-tier
    // durations tile the sync's reported latency exactly.
    EXPECT_EQ(deviceTime, res.time + res.backoffTime);

    const SyncExplain ex = explainSync(chain);
    EXPECT_EQ(ex.traceId, trace);
    EXPECT_EQ(ex.criticalPath, res.time + res.backoffTime);
}

TEST(CrossTierChain, AttachingARecorderChangesNothing)
{
    harness::Workbench &wb = sharedWorkbench();
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;

    auto runOnce = [&](bool attach, device::MobileDevice::
                                        CommunitySyncResult &res,
                       u64 &draws) {
        server::CloudUpdateService svc(wb.universe(), scfg);
        svc.ingest(wb.buildLog());
        device::MobileDevice dev(wb.universe());
        fault::FaultConfig fc;
        fc.seed = 99;
        fc.radio.exchangeFailureRate = 0.4;
        fc.radio.payloadCorruptRate = 0.3;
        fault::FaultPlan plan(fc);
        dev.attachFaults(&plan);
        FlightRecorder rec(0);
        if (attach)
            dev.attachFlightRecorder(&rec);
        res = svc.syncDevice(dev);
        draws = plan.rngDraws();
        dev.attachFaults(nullptr);
        dev.attachFlightRecorder(nullptr);
    };

    device::MobileDevice::CommunitySyncResult off, on;
    u64 offDraws = 0, onDraws = 0;
    runOnce(false, off, offDraws);
    runOnce(true, on, onDraws);

    EXPECT_EQ(onDraws, offDraws) << "recording must not draw RNG";
    EXPECT_EQ(on.ok, off.ok);
    EXPECT_EQ(on.attempts, off.attempts);
    EXPECT_EQ(on.deltaBytes, off.deltaBytes);
    EXPECT_EQ(on.time, off.time);
    EXPECT_EQ(on.backoffTime, off.backoffTime);
    EXPECT_EQ(on.corruptRejected, off.corruptRejected);
}

} // namespace
} // namespace pc::obs
