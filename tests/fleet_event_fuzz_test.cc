/**
 * @file
 * Fuzz-style robustness of event-schedule construction: adversarial
 * FleetRunConfig values — zero devices, zero-length horizons, outage
 * episodes dwarfing the horizon, burst windows straddling (or
 * entirely past) the end, degenerate rates, extreme stagger — must
 * produce a clean validation error or a clean (possibly empty) run,
 * never UB, a hang, or a crash. Same discipline as
 * jsonparse_fuzz_test: seeded deterministic generators, every input
 * either rejected with a message or executed to completion with sane
 * invariants. The world is tiny (2–4 devices) so the whole sweep
 * stays in the fast tier.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "harness/fleet.h"
#include "obs/fleet.h"
#include "util/rng.h"

namespace pc::harness {
namespace {

const Workbench &
sharedWorkbench()
{
    static const Workbench wb(smallWorkbenchConfig());
    return wb;
}

/**
 * Run one config to completion. Either validation refuses it (clean
 * error, untouched collector) or the run finishes with coherent
 * scalars. Returns the error string for callers asserting a verdict.
 */
std::string
mustRunClean(const FleetRunConfig &cfg)
{
    obs::FleetConfig fc;
    fc.windowWidth =
        cfg.flashCrowd.enabled && cfg.flashCrowd.window > 0
            ? cfg.flashCrowd.window
            : workload::kMonth;
    obs::FleetCollector collector(fc);
    const FleetRunResult r = runFleet(sharedWorkbench(), cfg, collector);
    if (!r.error.empty()) {
        EXPECT_EQ(r.devices, 0u);
        EXPECT_EQ(collector.devices(), 0u)
            << "refused run touched the collector";
        return r.error;
    }
    EXPECT_EQ(r.devices, cfg.devices);
    EXPECT_EQ(collector.devices(), cfg.devices);
    EXPECT_GE(r.queries, r.cacheHits);
    // The series must serialize without tripping assertions.
    std::ostringstream os;
    collector.writeSeriesCsv(os);
    return "";
}

TEST(FleetEventFuzz, NamedAdversarialShapes)
{
    const SimTime horizon2m = 2 * workload::kMonth;

    {
        // Zero devices, both engines.
        FleetRunConfig cfg;
        cfg.devices = 0;
        cfg.months = 2;
        EXPECT_EQ(mustRunClean(cfg), "");
        cfg.engine = FleetEngine::EventDriven;
        EXPECT_EQ(mustRunClean(cfg), "");
    }
    {
        // Zero-length horizon, with and without flash crowd.
        FleetRunConfig cfg;
        cfg.devices = 2;
        cfg.months = 0;
        EXPECT_EQ(mustRunClean(cfg), "");
        cfg.engine = FleetEngine::EventDriven;
        EXPECT_EQ(mustRunClean(cfg), "");
        cfg.flashCrowd.enabled = true;
        cfg.flashCrowd.arrivalsPerHour = 5.0;
        EXPECT_EQ(mustRunClean(cfg), "");
    }
    {
        // Outage vastly longer than the horizon.
        FleetRunConfig cfg;
        cfg.devices = 2;
        cfg.months = 2;
        cfg.outageStartMonth = 0;
        cfg.outageMonths = 100000;
        EXPECT_EQ(mustRunClean(cfg), "");
        cfg.engine = FleetEngine::EventDriven;
        EXPECT_EQ(mustRunClean(cfg), "");
    }
    {
        // Flash-crowd outage longer than the horizon, reconnect
        // stagger pushing every reconnect past the end.
        FleetRunConfig cfg;
        cfg.engine = FleetEngine::EventDriven;
        cfg.devices = 3;
        cfg.months = 2;
        cfg.flashCrowd.enabled = true;
        cfg.flashCrowd.arrivalsPerHour = 2.0;
        cfg.flashCrowd.outageStart = workload::kMonth / 3;
        cfg.flashCrowd.outageLen = 50 * workload::kMonth;
        cfg.flashCrowd.reconnectStagger = 100 * workload::kMonth;
        EXPECT_EQ(mustRunClean(cfg), "");
    }
    {
        // Burst window straddling the end of the horizon; also one
        // starting exactly at the end and one entirely past it.
        for (const SimTime start :
             {horizon2m - workload::kWeek, horizon2m,
              horizon2m + workload::kMonth}) {
            FleetRunConfig cfg;
            cfg.engine = FleetEngine::EventDriven;
            cfg.devices = 2;
            cfg.months = 2;
            cfg.flashCrowd.enabled = true;
            cfg.flashCrowd.arrivalsPerHour = 4.0;
            cfg.flashCrowd.burstStart = start;
            cfg.flashCrowd.burstLen = 3 * workload::kMonth;
            cfg.flashCrowd.burstMultiplier = 20.0;
            EXPECT_EQ(mustRunClean(cfg), "");
        }
    }
    {
        // Degenerate rates: zero arrivals (silent fleet), zero burst
        // multiplier (burst window goes quiet instead of loud).
        FleetRunConfig cfg;
        cfg.engine = FleetEngine::EventDriven;
        cfg.devices = 2;
        cfg.months = 1;
        cfg.flashCrowd.enabled = true;
        cfg.flashCrowd.arrivalsPerHour = 0.0;
        EXPECT_EQ(mustRunClean(cfg), "");
        cfg.flashCrowd.arrivalsPerHour = 6.0;
        cfg.flashCrowd.burstMultiplier = 0.0;
        cfg.flashCrowd.burstStart = workload::kWeek;
        cfg.flashCrowd.burstLen = workload::kWeek;
        EXPECT_EQ(mustRunClean(cfg), "");
    }
    {
        // Invalid shapes must be refused with a message, not UB.
        FleetRunConfig cfg;
        cfg.devices = 2;
        cfg.flashCrowd.enabled = true; // epoch engine
        EXPECT_NE(mustRunClean(cfg), "");

        cfg.engine = FleetEngine::EventDriven;
        cfg.flashCrowd.arrivalsPerHour =
            std::numeric_limits<double>::quiet_NaN();
        EXPECT_NE(mustRunClean(cfg), "");

        cfg.flashCrowd.arrivalsPerHour = 1.0;
        cfg.flashCrowd.burstMultiplier =
            std::numeric_limits<double>::infinity();
        EXPECT_NE(mustRunClean(cfg), "");

        cfg.flashCrowd.burstMultiplier = 1.0;
        cfg.flashCrowd.outageStart = -5;
        EXPECT_NE(mustRunClean(cfg), "");

        cfg.flashCrowd.outageStart = 0;
        cfg.outageMonths = 1; // epoch episode + flash crowd
        EXPECT_NE(mustRunClean(cfg), "");

        cfg.outageMonths = 0;
        cfg.chaos.enabled = true; // chaos + flash crowd
        EXPECT_NE(mustRunClean(cfg), "");
    }
}

TEST(FleetEventFuzz, SeededRandomConfigsNeverMisbehave)
{
    // 120 seeded random configs across both engines. Values are drawn
    // from ranges that include every clamping edge (0, exactly the
    // horizon, far past it). Each either validates cleanly and runs
    // to completion, or is refused with a message.
    u64 ran = 0, refused = 0;
    for (u64 seed = 1; seed <= 120; ++seed) {
        Rng rng(seed * 0x2545F4914F6CDD1Dull);
        FleetRunConfig cfg;
        cfg.seed = seed;
        cfg.devices = std::size_t(rng.below(5)); // 0..4
        cfg.months = u32(rng.below(4));          // 0..3
        cfg.threads = unsigned(rng.below(3));    // 0 = hardware
        cfg.outageStartMonth = u32(rng.below(4));
        cfg.outageMonths = u32(rng.below(3)) == 0 ? u32(rng.below(200))
                                                  : u32(rng.below(3));
        cfg.engine = rng.below(2) == 0 ? FleetEngine::EpochStepped
                                       : FleetEngine::EventDriven;
        if (rng.below(2) == 0) {
            cfg.flashCrowd.enabled = true;
            cfg.engine = FleetEngine::EventDriven;
            cfg.outageMonths = 0;
            cfg.flashCrowd.arrivalsPerHour = double(rng.below(12));
            cfg.flashCrowd.burstMultiplier = double(rng.below(30));
            const SimTime horizon =
                SimTime(cfg.months) * workload::kMonth;
            const auto pick = [&](SimTime scale) {
                switch (rng.below(4)) {
                  case 0: return SimTime(0);
                  case 1: return scale / 2;
                  case 2: return scale;
                  default: return scale * 3 + SimTime(rng.below(1000));
                }
            };
            cfg.flashCrowd.burstStart = pick(horizon);
            cfg.flashCrowd.burstLen = pick(horizon);
            cfg.flashCrowd.outageStart = pick(horizon);
            cfg.flashCrowd.outageLen = pick(horizon);
            cfg.flashCrowd.reconnectStagger =
                pick(workload::kWeek);
            cfg.flashCrowd.window =
                rng.below(2) == 0 ? SimTime(0) : workload::kWeek;
        }
        const std::string err = mustRunClean(cfg);
        if (err.empty())
            ++ran;
        else
            ++refused;
    }
    // The generator keeps every random config structurally valid
    // (invalid shapes are pinned by NamedAdversarialShapes), so all
    // 120 must have executed.
    EXPECT_EQ(ran, 120u);
    EXPECT_EQ(refused, 0u);
}

} // namespace
} // namespace pc::harness
