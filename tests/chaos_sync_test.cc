/**
 * @file
 * Sync-robustness tests (fast tier): CRC frame round-trip, the torn-
 * transfer property (every truncation rejected), exhaustive single-bit
 * flip rejection, transactional delta apply (validate-then-commit
 * leaves a mismatched device untouched), corrupt-delta retry plus the
 * bad-streak escalation to a full install, server-side admission
 * control (shed budget), poisoned-log ingest skip-and-count, the typed
 * out-of-window error paths of findModel/tryMakeDelta, and one small
 * end-to-end chaos fleet run whose invariant checker must stay silent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/table_codec.h"
#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "server/service.h"

namespace pc::server {
namespace {

using harness::smallWorkbenchConfig;
using harness::Workbench;

/** Non-const: the chaos service factory advances community months. */
Workbench &
sharedWorkbench()
{
    static Workbench wb(smallWorkbenchConfig());
    return wb;
}

workload::SearchLog
slicedLog(const Workbench &wb, std::size_t n)
{
    workload::SearchLog log(wb.universe());
    const auto &records = wb.buildLog().records();
    log.reserve(std::min(n, records.size()));
    for (std::size_t i = 0; i < records.size() && i < n; ++i)
        log.add(records[i]);
    return log;
}

/** Canonical sorted wire view of a device table (order-free compare). */
std::vector<core::WirePair>
canonicalTable(const core::PocketSearch &ps)
{
    const auto decoded = core::decodeTable(core::encodeTable(ps.table()));
    EXPECT_TRUE(decoded.has_value());
    auto pairs = *decoded;
    std::sort(pairs.begin(), pairs.end(),
              [](const core::WirePair &a, const core::WirePair &b) {
                  if (a.queryFnv != b.queryFnv)
                      return a.queryFnv < b.queryFnv;
                  return a.urlHash < b.urlHash;
              });
    return pairs;
}

/**
 * A service whose history window has slid: maxVersions=2, three
 * ingests, so versions {2, 3} remain and version 1 fell off. The
 * chaos scenarios lean on the 2 -> 3 delta carrying evicts (asserted
 * where it matters), which the three distinct log windows guarantee.
 */
CloudUpdateService &
windowedService()
{
    static CloudUpdateService *svc = [] {
        Workbench &wb = sharedWorkbench();
        ServiceConfig cfg;
        cfg.build.shards = 4;
        cfg.build.threads = 2;
        cfg.maxVersions = 2;
        auto *s = new CloudUpdateService(wb.universe(), cfg);
        s->ingest(slicedLog(wb, wb.buildLog().size() / 2));
        s->ingest(wb.buildLog());
        s->ingest(wb.nextCommunityMonth());
        return s;
    }();
    return *svc;
}

TEST(DeltaFrame, RoundTripsAndRejectsEveryTruncation)
{
    CloudUpdateService &svc = windowedService();
    const auto delta = svc.makeDelta(svc.oldestVersion());
    ASSERT_GT(delta.ops(), 0u);

    const std::string frame = core::frameDelta(delta);
    EXPECT_EQ(frame.size(),
              core::encodeDelta(delta).size() + core::kDeltaFrameOverhead);

    const auto back = core::unframeDelta(frame);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->fromVersion, delta.fromVersion);
    EXPECT_EQ(back->toVersion, delta.toVersion);
    EXPECT_EQ(back->adds.size(), delta.adds.size());
    EXPECT_EQ(back->evicts.size(), delta.evicts.size());
    EXPECT_EQ(back->reranks.size(), delta.reranks.size());
    for (std::size_t i = 0; i < delta.adds.size(); ++i) {
        EXPECT_EQ(back->adds[i].pair.query, delta.adds[i].pair.query);
        EXPECT_EQ(back->adds[i].pair.result, delta.adds[i].pair.result);
        EXPECT_DOUBLE_EQ(back->adds[i].score, delta.adds[i].score);
    }

    // Torn transfer: a frame cut at ANY byte boundary must be
    // rejected — never decoded into a shorter-but-valid delta.
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        const auto torn = core::unframeDelta(
            std::string_view(frame.data(), cut));
        EXPECT_FALSE(torn.has_value()) << "cut at byte " << cut;
    }
    // And trailing garbage is not a valid frame either.
    EXPECT_FALSE(core::unframeDelta(frame + '\0').has_value());
}

TEST(DeltaFrame, RejectsEverySingleBitFlip)
{
    CloudUpdateService &svc = windowedService();
    // The incremental delta: small enough to flip every bit.
    const auto delta =
        svc.makeDelta(svc.oldestVersion(), svc.latestVersion());
    const std::string frame = core::frameDelta(delta);
    ASSERT_TRUE(core::unframeDelta(frame).has_value());

    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
        std::string flipped = frame;
        flipped[bit / 8] = char(u8(flipped[bit / 8]) ^ (1u << (bit % 8)));
        EXPECT_FALSE(core::unframeDelta(flipped).has_value())
            << "flip of bit " << bit << " slipped past the CRC";
    }
}

TEST(DeltaApply, RejectionIsTransactional)
{
    Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = windowedService();

    // An honest install of the latest model...
    device::MobileDevice dev(wb.universe());
    ASSERT_TRUE(svc.syncDevice(dev).ok);
    const auto before = canonicalTable(dev.pocketSearch());
    ASSERT_FALSE(before.empty());

    // ...then a delta whose evict/rerank targets are absent. Validation
    // must refuse before the first mutation: same table, typed error.
    // The target is in range (id-wise valid) but never installed.
    workload::PairRef missing{0, 0};
    bool found = false;
    for (u32 q = 0; q < wb.universe().numQueries() && !found; ++q)
        for (u32 rr = 0; rr < wb.universe().numResults() && !found; ++rr)
            if (!dev.pocketSearch().findPair({q, rr})) {
                missing = {q, rr};
                found = true;
            }
    ASSERT_TRUE(found);
    core::CommunityDelta bad;
    bad.fromVersion = svc.latestVersion();
    bad.toVersion = svc.latestVersion() + 1;
    bad.adds.push_back({{0, 0}, 0.5, 1});
    bad.evicts.push_back(missing);
    SimTime t = 0;
    const auto res = core::tryApplyCommunityDelta(dev.pocketSearch(),
                                                  bad, t);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, core::DeltaApplyError::MissingEvictTarget);
    EXPECT_EQ(canonicalTable(dev.pocketSearch()), before)
        << "a rejected delta must not leave a partial apply behind";

    // Out-of-range pair ids are caught the same way.
    core::CommunityDelta oob;
    oob.fromVersion = svc.latestVersion();
    oob.toVersion = svc.latestVersion() + 1;
    oob.adds.push_back(
        {{wb.universe().numQueries() + 7, 0}, 0.5, 1});
    const auto res2 = core::tryApplyCommunityDelta(dev.pocketSearch(),
                                                   oob, t);
    EXPECT_FALSE(res2.ok);
    EXPECT_EQ(res2.error, core::DeltaApplyError::BadPairId);
    EXPECT_EQ(canonicalTable(dev.pocketSearch()), before);
}

TEST(DeltaApply, VersionSkewRejectsThenEscalatesToFullInstall)
{
    Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = windowedService();
    ASSERT_FALSE(
        svc.makeDelta(svc.oldestVersion(), svc.latestVersion())
            .evicts.empty())
        << "scenario needs an incremental delta with evicts";

    // The device lies: claims the oldest in-window version over an
    // empty table. Each incremental sync is verified (CRC ok) but
    // fails validation — counted, version untouched, streak grows.
    device::MobileDevice dev(wb.universe());
    dev.setCommunityVersion(svc.oldestVersion());
    for (u32 i = 1; i <= device::MobileDevice::kBadDeltaEscalation; ++i) {
        const auto res = svc.syncDevice(dev);
        EXPECT_FALSE(res.ok);
        EXPECT_TRUE(res.rejected);
        EXPECT_NE(res.applyError, core::DeltaApplyError::None);
        EXPECT_EQ(dev.communityVersion(), svc.oldestVersion());
        EXPECT_EQ(dev.resilience().rejectedDeltas, u64(i));
        EXPECT_EQ(dev.badDeltaStreak(), i);
        EXPECT_EQ(dev.needsFullInstall(),
                  i == device::MobileDevice::kBadDeltaEscalation);
    }

    // Strike three: the service stops diffing and ships the whole
    // model. The device converges and the streak resets.
    const u64 escalatedBefore = svc.metrics().snapshot().counterValue(
        "server.deltas.escalated_full_installs");
    const u64 fullBefore = svc.metrics().snapshot().counterValue(
        "server.deltas.full_installs");
    const auto res = svc.syncDevice(dev);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(svc.metrics().snapshot().counterValue(
                  "server.deltas.full_installs"),
              fullBefore + 1)
        << "escalation must be a full install";
    EXPECT_EQ(dev.communityVersion(), svc.latestVersion());
    EXPECT_EQ(dev.badDeltaStreak(), 0u);
    EXPECT_EQ(svc.metrics().snapshot().counterValue(
                  "server.deltas.escalated_full_installs"),
              escalatedBefore + 1);

    device::MobileDevice honest(wb.universe());
    ASSERT_TRUE(svc.syncDevice(honest).ok);
    EXPECT_EQ(canonicalTable(dev.pocketSearch()),
              canonicalTable(honest.pocketSearch()))
        << "the escalated install must land on the honest table";
}

TEST(DeltaApply, CorruptFramesAreRejectedCountedAndEscalate)
{
    Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = windowedService();

    device::MobileDevice dev(wb.universe());
    fault::FaultConfig fc;
    fc.radio.payloadCorruptRate = 1.0; // every delivery flips a bit
    fc.seed = 11;
    fault::FaultPlan faults(fc);
    dev.attachFaults(&faults);

    const u64 retriesBefore = svc.metrics().snapshot().counterValue(
        "server.sync.corrupt_retries");
    for (u32 i = 1; i <= device::MobileDevice::kBadDeltaEscalation; ++i) {
        const auto res = svc.syncDevice(dev);
        EXPECT_FALSE(res.ok);
        EXPECT_FALSE(res.rejected);
        EXPECT_EQ(res.corruptRejected, dev.config().retry.maxAttempts)
            << "every delivered frame must fail the CRC check";
        EXPECT_EQ(dev.badDeltaStreak(), i);
        EXPECT_EQ(dev.communityVersion(), 0u);
        EXPECT_EQ(dev.pocketSearch().pairs(), 0u);
    }
    EXPECT_EQ(dev.resilience().corruptDeltas,
              u64(device::MobileDevice::kBadDeltaEscalation) *
                  dev.config().retry.maxAttempts);
    EXPECT_EQ(dev.resilience().corruptDeltas,
              faults.stats().payloadCorruptions)
        << "every injected corruption must be caught";
    EXPECT_EQ(svc.metrics().snapshot().counterValue(
                  "server.sync.corrupt_retries"),
              retriesBefore + dev.resilience().corruptDeltas);
    // A never-synced device escalates trivially: from-version is
    // already 0, so the next clean sync is a plain full install.
    EXPECT_TRUE(dev.needsFullInstall());

    dev.attachFaults(nullptr);
    const auto res = svc.syncDevice(dev);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(dev.communityVersion(), svc.latestVersion());
    EXPECT_EQ(dev.badDeltaStreak(), 0u);
}

TEST(AdmissionControl, BudgetShedsAndResetsAtIngest)
{
    Workbench &wb = sharedWorkbench();
    ServiceConfig cfg;
    cfg.build.shards = 2;
    cfg.build.threads = 1;
    cfg.syncBudgetPerVersion = 2;
    CloudUpdateService svc(wb.universe(), cfg);
    svc.ingest(slicedLog(wb, wb.buildLog().size() / 2));

    device::MobileDevice a(wb.universe()), b(wb.universe()),
        c(wb.universe());
    EXPECT_TRUE(svc.syncDevice(a).ok);
    EXPECT_TRUE(svc.syncDevice(b).ok);
    const auto shedRes = svc.syncDevice(c);
    EXPECT_FALSE(shedRes.ok);
    EXPECT_TRUE(shedRes.shed);
    EXPECT_EQ(c.communityVersion(), 0u);
    EXPECT_EQ(c.pocketSearch().pairs(), 0u)
        << "a shed sync must not touch the device";
    EXPECT_EQ(
        svc.metrics().snapshot().counterValue("server.sync.shed"), 1u);
    EXPECT_EQ(svc.metrics().snapshot().counterValue("server.syncs.ok"),
              2u);

    // The next publish refills the budget; the shed device gets in.
    svc.ingest(wb.buildLog());
    EXPECT_TRUE(svc.syncDevice(c).ok);
    EXPECT_EQ(c.communityVersion(), 2u);
}

TEST(Ingest, PoisonedRecordsAreSkippedAndCounted)
{
    Workbench &wb = sharedWorkbench();
    auto clean = slicedLog(wb, wb.buildLog().size() / 2);

    auto poisoned = slicedLog(wb, wb.buildLog().size() / 2);
    workload::LogRecord bad;
    bad.pair = {wb.universe().numQueries() + 3, 0};
    poisoned.add(bad);
    bad.pair = {0, wb.universe().numResults() + 9};
    poisoned.add(bad);

    ServiceConfig cfg;
    cfg.build.shards = 4;
    cfg.build.threads = 2;
    CloudUpdateService svcClean(wb.universe(), cfg);
    CloudUpdateService svcPoisoned(wb.universe(), cfg);
    const auto &mClean = svcClean.ingest(clean);
    const auto &mPoisoned = svcPoisoned.ingest(poisoned);

    EXPECT_EQ(mClean.stats.skippedRecords, 0u);
    EXPECT_EQ(mPoisoned.stats.skippedRecords, 2u);
    EXPECT_EQ(svcPoisoned.metrics().snapshot().counterValue(
                  "server.ingest.skipped_records"),
              2u);
    EXPECT_EQ(
        harness::contentsDigest(mPoisoned.contents, wb.universe()),
        harness::contentsDigest(mClean.contents, wb.universe()))
        << "poisoned records must not change the surviving model";
}

TEST(VersionWindow, TypedErrorsOffTheHistoryWindow)
{
    Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = windowedService();

    // Version 1 fell off the maxVersions=2 window.
    EXPECT_EQ(svc.oldestVersion(), 2u);
    EXPECT_EQ(svc.latestVersion(), 3u);
    EXPECT_FALSE(svc.hasVersion(1));
    EXPECT_EQ(svc.findModel(1), nullptr);
    EXPECT_NE(svc.findModel(2), nullptr);

    // Unknown *target* version: typed nullopt, not a crash.
    EXPECT_FALSE(svc.tryMakeDelta(2, 1).has_value());
    EXPECT_FALSE(svc.tryMakeDelta(0, 99).has_value());
    // Off-window *from* version: silent upgrade to a full install.
    const auto full = svc.tryMakeDelta(1, 3);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->fromVersion, 0u);
    EXPECT_TRUE(full->evicts.empty());
    EXPECT_TRUE(full->reranks.empty());

    // A service with nothing published: the sync degrades into a
    // typed no-version outcome, no radio traffic, device untouched.
    ServiceConfig cfg;
    CloudUpdateService empty(wb.universe(), cfg);
    device::MobileDevice dev(wb.universe());
    CloudUpdateService::SyncAccounting acct;
    const auto res = empty.syncDetached(dev, &acct);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.attempts, 0u);
    EXPECT_TRUE(acct.noVersion);
    EXPECT_EQ(dev.communityVersion(), 0u);
    empty.accountSync(acct);
    EXPECT_EQ(empty.metrics().snapshot().counterValue(
                  "server.sync.no_version"),
              1u);
}

TEST(ChaosFleet, SmallRunHoldsEveryInvariant)
{
    Workbench &wb = sharedWorkbench();
    ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    scfg.maxVersions = 2;
    CloudUpdateService svc(wb.universe(), scfg);
    svc.ingest(slicedLog(wb, wb.buildLog().size() / 2));
    svc.ingest(wb.buildLog());
    svc.ingest(wb.nextCommunityMonth());
    ASSERT_FALSE(
        svc.makeDelta(svc.oldestVersion(), svc.latestVersion())
            .evicts.empty());

    harness::FleetRunConfig cfg;
    cfg.devices = 10;
    cfg.months = 6;
    cfg.cloud = &svc;
    cfg.chaos.enabled = true;
    cfg.chaos.stormStartMonth = 1;
    cfg.chaos.stormMonths = 1;
    cfg.chaos.payloadCorruptRate = 0.3;
    cfg.chaos.skewEvery = 4;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    const auto r = harness::runFleet(wb, cfg, collector);

    EXPECT_EQ(r.invariantViolations, 0u)
        << "the sync path let chaos corrupt a device";
    EXPECT_GT(r.devicesVerified, 0u)
        << "some devices must sync and be digest-checked";
    EXPECT_GT(r.corruptRejected, 0u)
        << "a 30% flip rate must inject something";
    EXPECT_GT(r.rejectedDeltas, 0u)
        << "the skew cohort must trip validation";
    EXPECT_GT(r.escalatedFullInstalls, 0u)
        << "the skew cohort must eventually escalate";
    const auto snap = collector.fleetRegistry().snapshot();
    EXPECT_EQ(snap.counterValue("device.sync.corrupt_delta"),
              r.corruptRejected);
    EXPECT_EQ(snap.counterValue("device.sync.rejected_delta"),
              r.rejectedDeltas);
    EXPECT_EQ(snap.counterValue("server.sync.corrupt_retries"),
              r.corruptRejected);
}

} // namespace
} // namespace pc::server
