/**
 * @file
 * Property test for the event queue: seeded random insert / pop /
 * cancel interleavings — with deliberately colliding timestamps and
 * device indices — must match a sorted-vector reference model exactly,
 * operation by operation: same pop keys, same payloads, same cancel
 * verdicts, same sizes. Plus heap-order invariants (pop keys never
 * decrease) and a continuation re-entrancy soak on EventCore: random
 * schedules and cancels issued from *inside* running continuations,
 * checked against the same reference ordering.
 *
 * Labelled `slow`: the interleaving loops are sized for the ASan/TSan
 * CI tiers, where the minutes buy real coverage of the lazy-cancel
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "harness/event_core.h"
#include "util/rng.h"

namespace pc::harness {
namespace {

/** Reference model: a flat vector scanned for the minimum key. */
class ReferenceQueue
{
  public:
    u64
    push(SimTime time, std::size_t device, u64 payload)
    {
        Entry e;
        e.key.time = time;
        e.key.device = device;
        e.key.seq = nextSeq_++;
        e.payload = payload;
        entries_.push_back(e);
        return e.key.seq;
    }

    bool
    cancel(u64 handle)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->key.seq == handle) {
                entries_.erase(it);
                return true;
            }
        }
        return false;
    }

    std::optional<std::pair<EventKey, u64>>
    pop()
    {
        if (entries_.empty())
            return std::nullopt;
        auto min = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->key < min->key)
                min = it;
        const auto out = std::make_pair(min->key, min->payload);
        entries_.erase(min);
        return out;
    }

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        EventKey key;
        u64 payload;
    };
    std::vector<Entry> entries_;
    u64 nextSeq_ = 0;
};

TEST(EventQueueProperty, RandomInterleavingsMatchReferenceModel)
{
    for (u64 seed = 1; seed <= 40; ++seed) {
        Rng rng(seed * 0x9E3779B97F4A7C15ull);
        EventQueue<u64> q;
        ReferenceQueue ref;
        std::vector<u64> liveHandles;
        u64 payload = 0;

        const int ops = 4000;
        for (int op = 0; op < ops; ++op) {
            const u64 kind = rng.below(10);
            if (kind < 5) {
                // Insert. Tiny time/device domains force equal-key
                // runs through the tie-break path constantly.
                const SimTime t = SimTime(rng.below(16));
                const std::size_t dev = std::size_t(rng.below(4));
                const u64 h = q.push(t, dev, payload);
                const u64 rh = ref.push(t, dev, payload);
                ASSERT_EQ(h, rh)
                    << "handle sequences must match (seed " << seed
                    << ")";
                liveHandles.push_back(h);
                ++payload;
            } else if (kind < 8) {
                // Pop. Both sides must agree on key and payload.
                const auto got = q.pop();
                const auto want = ref.pop();
                ASSERT_EQ(got.has_value(), want.has_value());
                if (got.has_value()) {
                    ASSERT_TRUE(got->key == want->first)
                        << "pop key diverged at op " << op << " (seed "
                        << seed << ")";
                    ASSERT_EQ(got->payload, want->second);
                    liveHandles.erase(
                        std::remove(liveHandles.begin(),
                                    liveHandles.end(), got->key.seq),
                        liveHandles.end());
                }
            } else {
                // Cancel: half the time a plausible live handle, half
                // the time garbage (stale, future, or random).
                u64 h;
                if (!liveHandles.empty() && rng.below(2) == 0) {
                    const std::size_t at =
                        std::size_t(rng.below(liveHandles.size()));
                    h = liveHandles[at];
                } else {
                    h = rng.below(payload + 10);
                }
                const bool got = q.cancel(h);
                const bool want = ref.cancel(h);
                ASSERT_EQ(got, want)
                    << "cancel(" << h << ") verdict diverged (seed "
                    << seed << ")";
                if (got)
                    liveHandles.erase(std::remove(liveHandles.begin(),
                                                  liveHandles.end(), h),
                                      liveHandles.end());
            }
            ASSERT_EQ(q.size(), ref.size());
            ASSERT_EQ(q.empty(), ref.size() == 0);
        }

        // Drain both completely: the tails must agree too, and with
        // no intervening pushes the keys must be strictly increasing.
        EventKey lastPopped{-1, 0, 0};
        bool poppedAny = false;
        for (;;) {
            const auto got = q.pop();
            const auto want = ref.pop();
            ASSERT_EQ(got.has_value(), want.has_value());
            if (!got.has_value())
                break;
            ASSERT_TRUE(got->key == want->first);
            ASSERT_EQ(got->payload, want->second);
            if (poppedAny) {
                ASSERT_TRUE(lastPopped < got->key)
                    << "drain keys must be strictly increasing";
            }
            lastPopped = got->key;
            poppedAny = true;
        }
    }
}

TEST(EventQueueProperty, EqualTimestampStormPopsInPushOrder)
{
    // Degenerate heap shape: thousands of identical (time, device)
    // keys with random cancellations sprinkled in. Pop order must be
    // exactly push order minus the cancelled ones.
    for (u64 seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        EventQueue<u64> q;
        std::vector<u64> handles;
        for (u64 i = 0; i < 3000; ++i)
            handles.push_back(q.push(99, 1, i));
        std::vector<bool> cancelled(handles.size(), false);
        for (int c = 0; c < 700; ++c) {
            const std::size_t at =
                std::size_t(rng.below(handles.size()));
            if (!cancelled[at]) {
                ASSERT_TRUE(q.cancel(handles[at]));
                cancelled[at] = true;
            }
        }
        u64 expect = 0;
        while (auto ev = q.pop()) {
            while (expect < cancelled.size() && cancelled[expect])
                ++expect;
            ASSERT_LT(expect, cancelled.size());
            ASSERT_EQ(ev->payload, expect);
            ++expect;
        }
        while (expect < cancelled.size() && cancelled[expect])
            ++expect;
        ASSERT_EQ(expect, cancelled.size());
    }
}

TEST(EventCoreProperty, ReentrantScheduleAndCancelSoak)
{
    // Continuations that schedule new continuations (at clamped-past,
    // present and future instants) and cancel random pending handles
    // while the loop drains. Invariants: dispatch times never
    // decrease, every dispatched seq was scheduled and never
    // cancelled, and the loop terminates with an empty queue.
    for (u64 seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 7919);
        EventCore core;
        std::vector<u64> pending;
        std::vector<u64> cancelledSeqs;
        std::vector<u64> dispatchedSeqs;
        SimTime lastTime = -1;
        u64 budget = 600; // spawn allowance, so the soak terminates

        std::function<void(EventCore &, int)> spawn =
            [&](EventCore &c, int depth) {
                const SimTime at = c.now() + SimTime(rng.below(8)) -
                                   2; // sometimes in the past: clamps
                const auto h = c.schedule(
                    at, std::size_t(rng.below(3)),
                    [&, depth](EventCore &c2,
                               const EventCore::EventInfo &info) {
                        EXPECT_GE(info.time, lastTime);
                        lastTime = info.time;
                        dispatchedSeqs.push_back(info.seq);
                        // Re-entrancy: schedule up to two successors
                        // and cancel a random victim.
                        const u64 spawns = rng.below(3);
                        for (u64 s = 0; s < spawns && budget > 0; ++s) {
                            --budget;
                            spawn(c2, depth + 1);
                        }
                        if (!pending.empty() && rng.below(4) == 0) {
                            const u64 victim = pending[std::size_t(
                                rng.below(pending.size()))];
                            if (c2.cancel(victim))
                                cancelledSeqs.push_back(victim);
                        }
                    });
                pending.push_back(h);
            };

        for (int i = 0; i < 40 && budget > 0; ++i) {
            --budget;
            spawn(core, 0);
        }
        core.run();

        EXPECT_EQ(core.pending(), 0u);
        // No seq both dispatched and cancelled; together they cover
        // every schedule() exactly once.
        std::map<u64, int> fate;
        for (u64 s : dispatchedSeqs)
            ++fate[s];
        for (u64 s : cancelledSeqs)
            ++fate[s];
        for (const auto &[seq, count] : fate)
            ASSERT_EQ(count, 1) << "seq " << seq
                                << " dispatched/cancelled twice (seed "
                                << seed << ")";
        EXPECT_EQ(fate.size(), pending.size());
    }
}

} // namespace
} // namespace pc::harness
