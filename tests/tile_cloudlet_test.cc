/**
 * @file
 * Unit tests for the generic tile cloudlet and the search-cloudlet
 * adapter (Section 7's multi-cloudlet accounting).
 */

#include <gtest/gtest.h>

#include "core/tile_cloudlet.h"
#include "core/pocket_search.h"

namespace pc::core {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.capacity = 256 * kMiB;
    return cfg;
}

TileCloudletConfig
mapConfig()
{
    TileCloudletConfig cfg;
    cfg.name = "maps";
    cfg.itemSize = 5 * kKiB;
    cfg.universeItems = 100'000;
    cfg.popularitySkew = 0.9;
    return cfg;
}

class TileCloudletTest : public ::testing::Test
{
  protected:
    TileCloudletTest()
        : device_(deviceConfig()), store_(device_),
          tiles_(store_, mapConfig())
    {
    }

    pc::nvm::FlashDevice device_;
    pc::simfs::FlashStore store_;
    TileCloudlet tiles_;
};

TEST_F(TileCloudletTest, StartsEmpty)
{
    EXPECT_EQ(tiles_.itemsCached(), 0u);
    EXPECT_EQ(tiles_.dataBytes(), 0u);
    EXPECT_EQ(tiles_.indexBytes(), 0u);
    EXPECT_DOUBLE_EQ(tiles_.expectedHitRate(), 0.0);
    SimTime t = 0;
    EXPECT_FALSE(tiles_.access(0, t));
}

TEST_F(TileCloudletTest, FillTopCachesPrefix)
{
    SimTime t = 0;
    tiles_.fillTop(1000, t);
    EXPECT_EQ(tiles_.itemsCached(), 1000u);
    EXPECT_EQ(tiles_.dataBytes(), 1000u * 5 * kKiB);
    EXPECT_GT(t, 0) << "the push writes flash";

    EXPECT_TRUE(tiles_.access(0, t));
    EXPECT_TRUE(tiles_.access(999, t));
    EXPECT_FALSE(tiles_.access(1000, t));
    EXPECT_EQ(tiles_.lookups(), 3u);
    EXPECT_EQ(tiles_.hits(), 2u);
    EXPECT_NEAR(tiles_.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST_F(TileCloudletTest, ExpectedHitRateMatchesEmpirical)
{
    SimTime t = 0;
    tiles_.fillTop(5000, t);
    Rng rng(5);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const u64 id = tiles_.sampleAccess(rng);
        SimTime tt = 0;
        hits += tiles_.access(id, tt);
    }
    EXPECT_NEAR(double(hits) / n, tiles_.expectedHitRate(), 0.01);
}

TEST_F(TileCloudletTest, ShrinkEvictsLeastPopular)
{
    SimTime t = 0;
    tiles_.fillTop(1000, t);
    const Bytes released = tiles_.shrinkTo(500 * 5 * kKiB);
    EXPECT_EQ(released, 500u * 5 * kKiB);
    EXPECT_EQ(tiles_.itemsCached(), 500u);
    EXPECT_TRUE(tiles_.access(499, t));
    EXPECT_FALSE(tiles_.access(500, t)) << "tail evicted first";
    EXPECT_LT(tiles_.expectedHitRate(), 1.0);
}

TEST_F(TileCloudletTest, ShrinkToLargerBudgetIsNoop)
{
    SimTime t = 0;
    tiles_.fillTop(100, t);
    EXPECT_EQ(tiles_.shrinkTo(10 * kMiB), 0u);
    EXPECT_EQ(tiles_.itemsCached(), 100u);
}

TEST_F(TileCloudletTest, FlashAccountingThroughStore)
{
    SimTime t = 0;
    tiles_.fillTop(200, t);
    EXPECT_GE(store_.stats().physicalBytes, tiles_.dataBytes());
}

TEST_F(TileCloudletTest, TwoCloudletsCoexist)
{
    TileCloudletConfig ads = mapConfig();
    ads.name = "ads";
    TileCloudlet ads_cl(store_, ads);
    SimTime t = 0;
    tiles_.fillTop(100, t);
    ads_cl.fillTop(50, t);
    EXPECT_EQ(tiles_.itemsCached(), 100u);
    EXPECT_EQ(ads_cl.itemsCached(), 50u);
    EXPECT_TRUE(tiles_.access(99, t));
    EXPECT_FALSE(ads_cl.access(99, t));
}

TEST(SearchCloudletAdapter, ReportsPocketSearchState)
{
    workload::UniverseConfig ucfg;
    ucfg.navResults = 100;
    ucfg.nonNavResults = 400;
    ucfg.navHead = 20;
    ucfg.nonNavHead = 20;
    ucfg.habitNavHead = 10;
    ucfg.habitNonNavHead = 10;
    workload::QueryUniverse uni(ucfg);
    pc::nvm::FlashDevice device(deviceConfig());
    pc::simfs::FlashStore store(device);
    PocketSearch ps(uni, store);
    SearchCloudlet adapter(ps);

    EXPECT_EQ(adapter.name(), "search");
    EXPECT_EQ(adapter.lookups(), 0u);

    SimTime t = 0;
    const workload::PairRef p{uni.result(0).queries.front().first, 0};
    ps.recordClick(p, t);
    ps.lookupPair(p);
    EXPECT_EQ(adapter.lookups(), 1u);
    EXPECT_EQ(adapter.hits(), 1u);
    EXPECT_GT(adapter.indexBytes(), 0u);
    EXPECT_GT(adapter.dataBytes(), 0u);
    EXPECT_EQ(adapter.shrinkTo(0), 0u) << "online shrink is a no-op";
}

} // namespace
} // namespace pc::core
