/**
 * @file
 * Unit tests for the observability layer: JSON writer, metrics
 * registry (snapshot/delta/merge), tracer ring buffer + Chrome export,
 * and the bench reporter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace pc::obs {
namespace {

/**
 * Minimal structural JSON check: balanced braces/brackets outside
 * strings, terminated strings, valid escapes. Enough to catch the
 * classic emitter bugs (trailing comma handling is the writer's own
 * unit test; python -m json.tool runs in CI for full validation).
 */
bool
structurallyValidJson(const std::string &s)
{
    std::string stack;
    bool inString = false;
    bool escaped = false;
    for (char c : s) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"':
            inString = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !inString && stack.empty();
}

TEST(JsonWriter, ObjectsArraysAndTypes)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("s", "hi");
    w.kv("u", u64(7));
    w.kv("i", i64(-3));
    w.kv("b", true);
    w.kv("d", 2.5);
    w.key("n");
    w.null();
    w.key("a");
    w.beginArray();
    w.value(u64(1));
    w.value(u64(2));
    w.endArray();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"s\":\"hi\",\"u\":7,\"i\":-3,\"b\":true,\"d\":2.5,"
              "\"n\":null,\"a\":[1,2]}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("k\"ey", "v\nal");
    w.endObject();
    EXPECT_EQ(os.str(), "{\"k\\\"ey\":\"v\\nal\"}");
    EXPECT_TRUE(structurallyValidJson(os.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.value(0.0 / 0.0);        // nan
    w.value(1.0 / 0.0);        // inf
    w.endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(MetricRegistry, HandlesAreStableAndShared)
{
    MetricRegistry reg;
    Counter &a = reg.counter("x.hits");
    Counter &b = reg.counter("x.hits");
    EXPECT_EQ(&a, &b) << "same name returns the same handle";
    a.bump();
    b.bump(4);
    EXPECT_EQ(reg.counter("x.hits").value(), 5u);
    EXPECT_EQ(a.name(), "x.hits");

    EXPECT_EQ(reg.findCounter("x.hits"), &a);
    EXPECT_EQ(reg.findCounter("absent"), nullptr);
    EXPECT_EQ(reg.findGauge("x.hits"), nullptr);
}

TEST(MetricRegistry, SnapshotIsNameSorted)
{
    MetricRegistry reg;
    reg.counter("zeta").bump(1);
    reg.counter("alpha").bump(2);
    reg.counter("mid").bump(3);
    reg.gauge("g2").set(2.0);
    reg.gauge("g1").set(1.0);
    reg.histogram("h").observe(5.0);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "mid");
    EXPECT_EQ(snap.counters[2].first, "zeta");
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].first, "g1");
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].name, "h");
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 5.0);

    EXPECT_EQ(snap.counterValue("mid"), 3u);
    EXPECT_EQ(snap.counterValue("absent"), 0u);
}

TEST(MetricRegistry, DeltaSinceIsolatesAPhase)
{
    MetricRegistry reg;
    reg.counter("c").bump(10);
    reg.gauge("g").set(3.0);
    const auto before = reg.snapshot();
    reg.counter("c").bump(5);
    reg.counter("fresh").bump(2);
    reg.gauge("g").set(4.5);
    const auto after = reg.snapshot();

    const auto delta = after.deltaSince(before);
    EXPECT_EQ(delta.counterValue("c"), 5u);
    EXPECT_EQ(delta.counterValue("fresh"), 2u);
    ASSERT_EQ(delta.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(delta.gauges[0].second, 1.5);
}

TEST(MetricRegistry, MergePreservesExactQuantiles)
{
    MetricRegistry a, b;
    a.counter("c").bump(3);
    b.counter("c").bump(4);
    b.counter("only_b").bump(1);
    a.gauge("g").set(1.0);
    b.gauge("g").set(9.0);
    for (double x : {1.0, 2.0, 3.0})
        a.histogram("lat").observe(x);
    for (double x : {4.0, 5.0})
        b.histogram("lat").observe(x);

    a.mergeFrom(b);
    EXPECT_EQ(a.counter("c").value(), 7u);
    EXPECT_EQ(a.counter("only_b").value(), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0) << "gauges overwrite";

    const Histogram &h = a.histogram("lat");
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0) << "exact sample-union median";
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(Histogram, MemoryStaysBoundedOnLongStreams)
{
    // The unbounded per-sample vector is gone: a 200k-observation
    // histogram retains at most the sketch's documented cap, and its
    // quantiles stay within the sketch's rank-error bound.
    MetricRegistry reg;
    Histogram &h = reg.histogram("lat");
    std::vector<double> sample;
    sample.reserve(200'000);
    for (int i = 0; i < 200'000; ++i) {
        const double x = double((i * 7919) % 100'000);
        h.observe(x);
        sample.push_back(x);
    }
    EXPECT_FALSE(h.exact());
    EXPECT_LE(h.retained(), h.sketch().maxRetained());
    EXPECT_EQ(h.count(), 200'000u);

    std::sort(sample.begin(), sample.end());
    for (double q : {0.25, 0.50, 0.90, 0.99}) {
        const double v = h.quantile(q);
        const auto it =
            std::upper_bound(sample.begin(), sample.end(), v);
        const double rank =
            double(it - sample.begin()) / double(sample.size());
        EXPECT_NEAR(rank, q, h.sketch().epsilon()) << "q=" << q;
    }
}

TEST(Histogram, ExactModeStoresFullSample)
{
    MetricRegistry reg;
    Histogram &h = reg.exactHistogram("lat");
    for (int i = 0; i < 1000; ++i)
        h.observe(double(i));
    EXPECT_TRUE(h.exact());
    EXPECT_EQ(h.retained(), 1000u) << "exact mode keeps every sample";
    EXPECT_DOUBLE_EQ(h.quantile(0.5), h.cdf().quantile(0.5));
    EXPECT_EQ(&reg.exactHistogram("lat"), &h)
        << "same name, same mode returns the same handle";
}

TEST(Histogram, MergeExactSourceIntoSketchTarget)
{
    // A sketch-mode target accepts an exact-mode source by re-adding
    // its stored samples — the registry merge relies on this when
    // shards were created with different modes.
    MetricRegistry sk, ex;
    for (double x : {1.0, 2.0, 3.0})
        sk.histogram("h").observe(x);
    for (double x : {4.0, 5.0})
        ex.exactHistogram("h").observe(x);

    sk.mergeFrom(ex);
    const Histogram &h = sk.histogram("h");
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0)
        << "still exact: 5 < k items means no compaction yet";
    EXPECT_FALSE(h.exact()) << "target keeps its own mode";
}

TEST(Histogram, RegistryMergeCreatesAbsentInSourceMode)
{
    MetricRegistry src, dst;
    src.histogram("sketchy").observe(1.0);
    src.exactHistogram("precise").observe(2.0);
    dst.mergeFrom(src);
    EXPECT_FALSE(dst.histogram("sketchy").exact());
    EXPECT_TRUE(dst.exactHistogram("precise").exact());
    EXPECT_EQ(dst.histogram("sketchy").count(), 1u);
    EXPECT_EQ(dst.exactHistogram("precise").count(), 1u);
}

TEST(MetricRegistry, ImportCountersBumpsWithPrefix)
{
    CounterBag bag;
    bag.bump("hits", 3);
    bag.bump("misses", 2);
    MetricRegistry reg;
    reg.counter("legacy.hits").bump(1);
    reg.importCounters(bag, "legacy.");
    EXPECT_EQ(reg.counter("legacy.hits").value(), 4u);
    EXPECT_EQ(reg.counter("legacy.misses").value(), 2u);
}

TEST(MetricsSnapshot, ToCounterBagAndJson)
{
    MetricRegistry reg;
    reg.counter("b").bump(2);
    reg.counter("a").bump(1);
    reg.histogram("h").observe(1.0);
    const auto snap = reg.snapshot();

    const CounterBag bag = snap.toCounterBag();
    ASSERT_EQ(bag.size(), 2u);
    EXPECT_EQ(bag.items()[0].first, "a") << "snapshot (name) order";
    EXPECT_EQ(bag.value("b"), 2u);

    std::ostringstream os;
    snap.writeJson(os);
    EXPECT_TRUE(structurallyValidJson(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"a\""), std::string::npos);
}

TEST(Tracer, RingBufferDropsOldest)
{
    Tracer tr(3);
    for (int i = 0; i < 5; ++i)
        tr.span(0, "s" + std::to_string(i), "device", i * 100, 50);
    EXPECT_EQ(tr.recorded(), 5u);
    EXPECT_EQ(tr.dropped(), 2u);
    ASSERT_EQ(tr.spans().size(), 3u);
    EXPECT_EQ(tr.spans().front().name, "s2") << "oldest evicted first";
    EXPECT_EQ(tr.spans().back().name, "s4");
    EXPECT_EQ(tr.capacity(), 3u);
}

TEST(Tracer, TracksFindOrCreate)
{
    Tracer tr;
    EXPECT_EQ(tr.track("main"), 0u) << "track 0 pre-exists as 'main'";
    const u32 dev = tr.track("device");
    EXPECT_EQ(dev, 1u);
    EXPECT_EQ(tr.track("device"), dev);
    EXPECT_EQ(tr.track("radio"), 2u);
}

TEST(Tracer, ChromeTraceExportShape)
{
    Tracer tr;
    const u32 dev = tr.track("device");
    TraceSpan s;
    s.name = "radio \"retry\"";
    s.category = "device";
    s.track = dev;
    s.start = 1500;   // 1.5 us
    s.duration = 500; // 0.5 us
    s.args.emplace_back("attempt", "2");
    tr.record(std::move(s));

    std::ostringstream os;
    tr.writeChromeTrace(os);
    const std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(out.find("\"device\""), std::string::npos);
    EXPECT_NE(out.find("\"ts\": 1.5"), std::string::npos)
        << "ns -> us conversion";
    EXPECT_NE(out.find("\"dur\": 0.5"), std::string::npos);
    EXPECT_NE(out.find("\"attempt\": \"2\""), std::string::npos);
    EXPECT_NE(out.find("radio \\\"retry\\\""), std::string::npos);
}

TEST(BenchReport, JsonAndCsvOutput)
{
    MetricRegistry reg;
    for (double x : {10.0, 20.0, 30.0})
        reg.histogram("lat_ms").observe(x);
    reg.counter("served").bump(3);

    BenchReport report("unittest", "Unit, test \"report\"");
    report.note("world", "small");
    report.metric("speedup", 16.25, "x");
    report.quantiles(reg.histogram("lat_ms"), "ms");
    report.attachSnapshot(reg.snapshot());

    std::ostringstream js;
    report.writeJson(js);
    EXPECT_TRUE(structurallyValidJson(js.str())) << js.str();
    EXPECT_NE(js.str().find("\"bench\": \"unittest\""),
              std::string::npos);
    EXPECT_NE(js.str().find("\"speedup\""), std::string::npos);
    EXPECT_NE(js.str().find("\"lat_ms\""), std::string::npos);
    EXPECT_NE(js.str().find("\"registry\""), std::string::npos);

    std::ostringstream cs;
    report.writeCsv(cs);
    const std::string csv = cs.str();
    EXPECT_NE(csv.find("kind,name,value,unit\n"), std::string::npos);
    EXPECT_NE(csv.find("metric,speedup,16.25,x\n"), std::string::npos);
    EXPECT_NE(csv.find("histogram,lat_ms.p50,20,ms\n"),
              std::string::npos);
}

TEST(BenchReport, WriteFilesRoundTrip)
{
    BenchReport report("obs_unittest", "file round trip");
    report.metric("answer", 42.0);

    const std::string dir = std::string(PC_TEST_OUT_DIR) + "/obs";
    const auto paths = report.writeFiles(dir);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], dir + "/BENCH_obs_unittest.json");
    EXPECT_EQ(paths[1], dir + "/BENCH_obs_unittest.csv");

    std::ifstream f(paths[0]);
    ASSERT_TRUE(f.good());
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_TRUE(structurallyValidJson(buf.str()));
    EXPECT_NE(buf.str().find("\"answer\""), std::string::npos);

    for (const auto &p : paths)
        std::remove(p.c_str());
}

TEST(BenchReport, DeterministicOutput)
{
    // The determinism contract: serializing the same report twice is
    // byte-identical (no timestamps, stable float formatting).
    MetricRegistry reg;
    reg.histogram("h").observe(1.0 / 3.0);
    BenchReport report("det", "determinism");
    report.metric("third", 1.0 / 3.0);
    report.quantiles(reg.histogram("h"));

    std::ostringstream a, b;
    report.writeJson(a);
    report.writeJson(b);
    EXPECT_EQ(a.str(), b.str());

    std::ostringstream c, d;
    report.writeCsv(c);
    report.writeCsv(d);
    EXPECT_EQ(c.str(), d.str());
}

} // namespace
} // namespace pc::obs
