/**
 * @file
 * Functional coverage of the discrete-event core (harness/event_core):
 * key ordering, deterministic tie-breaking, lazy cancellation, and the
 * dispatch loop's re-entrancy rules (continuations scheduling and
 * cancelling while the queue drains). The seeded random interleaving
 * sweep against a reference model lives in event_queue_property_test
 * (slow tier, run under ASan/TSan in CI).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/event_core.h"

namespace pc::harness {
namespace {

TEST(EventQueue, PopsInTimeDeviceSeqOrder)
{
    EventQueue<int> q;
    q.push(30, 0, 1);
    q.push(10, 5, 2);
    q.push(20, 0, 3);
    q.push(10, 2, 4); // same time as #2, lower device: pops first
    q.push(10, 5, 5); // same (time, device) as #2, later seq: after it

    std::vector<int> order;
    while (auto ev = q.pop())
        order.push_back(ev->payload);
    EXPECT_EQ(order, (std::vector<int>{4, 2, 5, 3, 1}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualKeysPreserveInsertionOrder)
{
    // A long run of identical (time, device) events must pop in exact
    // push order — the seq tie-break, not heap luck.
    EventQueue<int> q;
    for (int i = 0; i < 200; ++i)
        q.push(42, 7, i);
    for (int i = 0; i < 200; ++i) {
        auto ev = q.pop();
        ASSERT_TRUE(ev.has_value());
        EXPECT_EQ(ev->payload, i);
        EXPECT_EQ(ev->key.time, 42);
        EXPECT_EQ(ev->key.device, 7u);
    }
    EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, CancelDropsPendingEventsLazily)
{
    EventQueue<std::string> q;
    const auto a = q.push(1, 0, "a");
    const auto b = q.push(2, 0, "b");
    const auto c = q.push(3, 0, "c");
    EXPECT_EQ(q.size(), 3u);

    EXPECT_TRUE(q.cancel(b));
    EXPECT_FALSE(q.cancel(b)) << "double cancel must fail";
    EXPECT_EQ(q.size(), 2u);

    auto ev = q.pop();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->payload, "a");
    EXPECT_FALSE(q.cancel(a)) << "cancel after pop must fail";

    ev = q.pop();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->payload, "c") << "cancelled event must be skipped";
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.cancel(c) == false);
    EXPECT_FALSE(q.cancel(999)) << "unknown handle must fail";
}

TEST(EventQueue, CancelEverythingDrainsClean)
{
    EventQueue<int> q;
    std::vector<EventQueue<int>::Handle> hs;
    for (int i = 0; i < 50; ++i)
        hs.push_back(q.push(i, 0, i));
    for (auto h : hs)
        EXPECT_TRUE(q.cancel(h));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(EventCore, DispatchesInOrderAndTracksNow)
{
    EventCore core;
    std::vector<SimTime> times;
    for (SimTime t : {50, 10, 30})
        core.schedule(t, 0,
                      [&times](EventCore &c, const EventCore::EventInfo &i) {
                          times.push_back(i.time);
                          EXPECT_EQ(c.now(), i.time);
                      });
    core.run();
    EXPECT_EQ(times, (std::vector<SimTime>{10, 30, 50}));
    EXPECT_EQ(core.now(), 50);
    EXPECT_EQ(core.dispatched(), 3u);
    EXPECT_EQ(core.pending(), 0u);
}

TEST(EventCore, ContinuationsScheduleContinuations)
{
    // The arrival-chain pattern: each event schedules its successor.
    EventCore core;
    std::vector<SimTime> fired;
    std::function<void(EventCore &, SimTime)> chain =
        [&](EventCore &c, SimTime t) {
            if (t > 40)
                return;
            c.schedule(t, 0,
                       [&fired, &chain, t](EventCore &c2,
                                           const EventCore::EventInfo &) {
                           fired.push_back(t);
                           chain(c2, t + 10);
                       });
        };
    chain(core, 10);
    core.run();
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(EventCore, SameInstantRunsInScheduleOrderAcrossReentry)
{
    // An event scheduling another event at its own timestamp: the new
    // one runs after everything already pending at that instant —
    // month-end before next month-begin relies on exactly this.
    EventCore core;
    std::vector<std::string> order;
    core.schedule(5, 0, [&](EventCore &c, const EventCore::EventInfo &) {
        order.push_back("end");
        c.schedule(5, 0, [&](EventCore &, const EventCore::EventInfo &) {
            order.push_back("begin");
        });
    });
    core.schedule(5, 0, [&](EventCore &, const EventCore::EventInfo &) {
        order.push_back("sibling");
    });
    core.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"end", "sibling", "begin"}));
}

TEST(EventCore, SchedulingIntoThePastClampsToNow)
{
    EventCore core;
    std::vector<SimTime> times;
    core.schedule(100, 0, [&](EventCore &c, const EventCore::EventInfo &) {
        times.push_back(c.now());
        // "Yesterday" clamps to now and runs later this instant.
        c.schedule(1, 0, [&](EventCore &c2, const EventCore::EventInfo &i) {
            times.push_back(i.time);
            EXPECT_EQ(c2.now(), 100);
        });
    });
    core.run();
    EXPECT_EQ(times, (std::vector<SimTime>{100, 100}));
}

TEST(EventCore, CancelFromInsideAContinuation)
{
    EventCore core;
    bool victimRan = false;
    const auto victim = core.schedule(
        20, 0, [&](EventCore &, const EventCore::EventInfo &) {
            victimRan = true;
        });
    core.schedule(10, 0, [&](EventCore &c, const EventCore::EventInfo &) {
        EXPECT_TRUE(c.cancel(victim));
    });
    core.run();
    EXPECT_FALSE(victimRan);
    EXPECT_EQ(core.dispatched(), 1u);
}

TEST(EventCore, StopPausesAndRunResumes)
{
    EventCore core;
    std::vector<int> fired;
    for (int i = 0; i < 4; ++i)
        core.schedule(i * 10, 0,
                      [&fired, i](EventCore &c,
                                  const EventCore::EventInfo &) {
                          fired.push_back(i);
                          if (i == 1)
                              c.stop();
                      });
    core.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 1}));
    EXPECT_EQ(core.pending(), 2u);
    core.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventCore, DeviceIndexBreaksTimeTiesAcrossDevices)
{
    // Events tied on time across devices dispatch in device order —
    // the multi-device determinism rule of the key.
    EventCore core;
    std::vector<std::size_t> devices;
    for (std::size_t d : {3u, 1u, 2u, 0u})
        core.schedule(7, d,
                      [&devices](EventCore &,
                                 const EventCore::EventInfo &i) {
                          devices.push_back(i.device);
                      });
    core.run();
    EXPECT_EQ(devices, (std::vector<std::size_t>{0, 1, 2, 3}));
}

} // namespace
} // namespace pc::harness
