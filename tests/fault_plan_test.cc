/**
 * @file
 * Unit tests for the deterministic fault-injection plan: outage
 * schedules, per-exchange draws, crash arming, and wear-correlated bit
 * flips.
 */

#include <gtest/gtest.h>

#include "fault/fault_plan.h"

namespace pc::fault {
namespace {

TEST(FaultPlanTest, DisabledPlanInjectsNothing)
{
    FaultPlan plan;
    for (SimTime t = 0; t < 100 * kSecond; t += kSecond)
        EXPECT_FALSE(plan.inOutage(t));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(plan.drawExchangeFailure());
        EXPECT_FALSE(plan.drawLatencySpike());
    }
    std::string buf(64, 'x');
    EXPECT_FALSE(plan.maybeFlipBit(buf, 0, buf.size(), 10'000));
    EXPECT_EQ(buf, std::string(64, 'x'));
    EXPECT_EQ(plan.stats().exchangeFailures, 0u);
    EXPECT_EQ(plan.stats().bitFlips, 0u);
    EXPECT_EQ(plan.toCounters().total(), 0u);
}

TEST(FaultPlanTest, OutageScheduleIsDeterministic)
{
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.radio.outageShare = 0.3;
    cfg.radio.meanOutageDuration = 20 * kSecond;
    FaultPlan a(cfg);
    FaultPlan b(cfg);
    for (SimTime t = 0; t < 3600 * kSecond; t += 500 * kMillisecond)
        ASSERT_EQ(a.inOutage(t), b.inOutage(t)) << "at t=" << t;
}

TEST(FaultPlanTest, OutageShareApproximatesTarget)
{
    FaultConfig cfg;
    cfg.seed = 11;
    cfg.radio.outageShare = 0.25;
    cfg.radio.meanOutageDuration = 30 * kSecond;
    FaultPlan plan(cfg);
    u64 out = 0, total = 0;
    // A long walk at fine granularity; the alternating-exponential
    // schedule must hit the long-run share within a small tolerance.
    for (SimTime t = 0; t < 200'000 * kSecond; t += kSecond) {
        ++total;
        if (plan.inOutage(t))
            ++out;
    }
    EXPECT_NEAR(double(out) / double(total), 0.25, 0.03);
}

TEST(FaultPlanTest, OutageEndIsConsistent)
{
    FaultConfig cfg;
    cfg.seed = 3;
    cfg.radio.outageShare = 0.5;
    cfg.radio.meanOutageDuration = 10 * kSecond;
    FaultPlan plan(cfg);
    for (SimTime t = 0; t < 1000 * kSecond; t += kSecond) {
        if (plan.inOutage(t)) {
            const SimTime end = plan.outageEnd(t);
            EXPECT_GT(end, t);
            EXPECT_FALSE(plan.inOutage(end)) << "coverage back at end";
        } else {
            EXPECT_EQ(plan.outageEnd(t), t);
        }
    }
}

TEST(FaultPlanTest, ExchangeFailureRateAndCounting)
{
    FaultConfig cfg;
    cfg.seed = 5;
    cfg.radio.exchangeFailureRate = 0.2;
    FaultPlan plan(cfg);
    u64 failures = 0;
    const int kDraws = 20'000;
    for (int i = 0; i < kDraws; ++i)
        failures += plan.drawExchangeFailure() ? 1 : 0;
    EXPECT_NEAR(double(failures) / kDraws, 0.2, 0.02);
    EXPECT_EQ(plan.stats().exchangeFailures, failures)
        << "every injected failure is counted";
}

TEST(FaultPlanTest, FailurePointStaysInsideOpenInterval)
{
    FaultConfig cfg;
    cfg.seed = 9;
    FaultPlan plan(cfg);
    for (int i = 0; i < 1000; ++i) {
        const double p = plan.drawFailurePoint();
        EXPECT_GT(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

TEST(FaultPlanTest, JitterBounds)
{
    FaultConfig cfg;
    cfg.seed = 13;
    FaultPlan plan(cfg);
    for (int i = 0; i < 1000; ++i) {
        const double j = plan.jitter(0.25);
        EXPECT_GE(j, 0.75);
        EXPECT_LE(j, 1.25);
    }
    EXPECT_EQ(plan.jitter(0.0), 1.0);
}

TEST(FaultPlanTest, CrashBudgetTearsAtTheArmedByte)
{
    FaultPlan plan;
    EXPECT_EQ(plan.programBudget(100), 100u) << "unarmed: full budget";
    EXPECT_FALSE(plan.powerLost());

    plan.armCrashAfterBytes(10);
    EXPECT_EQ(plan.programBudget(4), 4u);
    EXPECT_FALSE(plan.powerLost());
    EXPECT_EQ(plan.programBudget(10), 6u) << "crash fires mid-program";
    EXPECT_TRUE(plan.powerLost());
    EXPECT_EQ(plan.programBudget(50), 0u) << "power is out";
    EXPECT_EQ(plan.stats().crashes, 1u);

    plan.reboot();
    EXPECT_FALSE(plan.powerLost());
    EXPECT_EQ(plan.programBudget(50), 50u) << "disarmed after reboot";
    EXPECT_EQ(plan.stats().crashes, 1u) << "a crash fires only once";
}

TEST(FaultPlanTest, BitFlipsScaleWithWearAndAreCounted)
{
    FaultConfig cfg;
    cfg.seed = 17;
    cfg.storage.bitFlipPerReadPerKiloErase = 0.5;
    FaultPlan plan(cfg);

    std::string pristine(32, 'p');
    // Unworn block: never flips.
    for (int i = 0; i < 1000; ++i) {
        std::string buf = pristine;
        EXPECT_FALSE(plan.maybeFlipBit(buf, 0, buf.size(), 0));
        EXPECT_EQ(buf, pristine);
    }
    // Heavily worn block (2000 erases -> p == 1): always flips one bit.
    u64 flips = 0;
    for (int i = 0; i < 100; ++i) {
        std::string buf = pristine;
        ASSERT_TRUE(plan.maybeFlipBit(buf, 0, buf.size(), 2000));
        int diff_bits = 0;
        for (std::size_t b = 0; b < buf.size(); ++b) {
            u8 x = u8(buf[b]) ^ u8(pristine[b]);
            while (x) {
                diff_bits += x & 1;
                x >>= 1;
            }
        }
        EXPECT_EQ(diff_bits, 1) << "exactly one bit flips";
        ++flips;
    }
    EXPECT_EQ(plan.stats().bitFlips, flips);
}

TEST(FaultPlanTest, SameSeedSameDrawSequence)
{
    FaultConfig cfg;
    cfg.seed = 2024;
    cfg.radio.exchangeFailureRate = 0.37;
    cfg.radio.latencySpikeRate = 0.11;
    FaultPlan a(cfg);
    FaultPlan b(cfg);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(a.drawExchangeFailure(), b.drawExchangeFailure());
        ASSERT_EQ(a.drawLatencySpike(), b.drawLatencySpike());
        ASSERT_DOUBLE_EQ(a.jitter(0.25), b.jitter(0.25));
    }
}

} // namespace
} // namespace pc::fault
