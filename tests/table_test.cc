/**
 * @file
 * Unit tests for the ASCII table / CSV emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace pc {
namespace {

TEST(AsciiTable, RendersAlignedColumns)
{
    AsciiTable t("Demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(AsciiTable, EmptyTitleOmitsHeaderLine)
{
    AsciiTable t("");
    t.header({"x"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_EQ(oss.str().find("=="), std::string::npos);
}

TEST(AsciiTableDeath, RowWidthMismatchPanics)
{
    AsciiTable t("d");
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(CsvWriter, EmitsRows)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.row({"a", "b", "c"});
    csv.row({"1", "2", "3"});
    EXPECT_EQ(oss.str(), "a,b,c\n1,2,3\n");
}

} // namespace
} // namespace pc
