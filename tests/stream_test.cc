/**
 * @file
 * Unit tests for per-user stream generation.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/stream.h"

namespace pc::workload {
namespace {

UniverseConfig
tinyUniverse()
{
    UniverseConfig cfg;
    cfg.navResults = 500;
    cfg.nonNavResults = 2000;
    cfg.navHead = 60;
    cfg.nonNavHead = 60;
    cfg.habitNavHead = 40;
    cfg.habitNonNavHead = 25;
    return cfg;
}

UserProfile
profile(u32 volume, double new_rate)
{
    UserProfile p;
    p.id = 1;
    p.monthlyVolume = volume;
    p.newRate = new_rate;
    p.hotSetSize = 5;
    return p;
}

class StreamTest : public ::testing::Test
{
  protected:
    StreamTest() : uni_(tinyUniverse()) {}
    QueryUniverse uni_;
};

TEST_F(StreamTest, MonthProducesExactlyVolumeEvents)
{
    UserStream s(uni_, profile(57, 0.4), 7);
    const auto events = s.month(0);
    EXPECT_EQ(events.size(), 57u);
    EXPECT_EQ(s.eventsGenerated(), 57u);
}

TEST_F(StreamTest, EventTimesAscendWithinMonthWindow)
{
    UserStream s(uni_, profile(100, 0.4), 11);
    const auto events = s.month(0);
    SimTime prev = -1;
    for (const auto &ev : events) {
        EXPECT_GE(ev.time, 0);
        EXPECT_LT(ev.time, kMonth);
        EXPECT_GE(ev.time, prev);
        prev = ev.time;
    }
}

TEST_F(StreamTest, SecondMonthShiftsWindow)
{
    UserStream s(uni_, profile(30, 0.4), 13);
    s.month(0);
    const auto events = s.month(kMonth);
    for (const auto &ev : events) {
        EXPECT_GE(ev.time, kMonth);
        EXPECT_LT(ev.time, 2 * kMonth);
    }
}

TEST_F(StreamTest, RepeatDrawFlagConsistent)
{
    UserStream s(uni_, profile(200, 0.3), 17);
    s.beginMonth(0);
    std::unordered_set<u64> seen;
    const auto key = [](const PairRef &p) {
        return (u64(p.query) << 32) | p.result;
    };
    // First event can never be an episodic repeat; repeatDraw events
    // must target the hot set or previously issued pairs.
    UserStream probe(uni_, profile(200, 0.3), 17);
    probe.beginMonth(0);
    std::unordered_set<u64> hot;
    for (const auto &p : probe.hotSet())
        hot.insert(key(p));
    for (int i = 0; i < 200; ++i) {
        const auto ev = probe.next();
        if (ev.repeatDraw) {
            EXPECT_TRUE(hot.count(key(ev.pair)) ||
                        seen.count(key(ev.pair)))
                << "repeat draw must come from hot set or history";
        }
        seen.insert(key(ev.pair));
    }
}

TEST_F(StreamTest, ZeroNewRateUserMostlyRepeats)
{
    UserStream s(uni_, profile(300, 0.02), 19);
    const auto events = s.month(0);
    std::unordered_set<u64> distinct;
    for (const auto &ev : events)
        distinct.insert((u64(ev.pair.query) << 32) | ev.pair.result);
    // A near-pure repeater touches few distinct pairs.
    EXPECT_LT(distinct.size(), 40u);
}

TEST_F(StreamTest, HighNewRateUserExplores)
{
    UserStream s(uni_, profile(300, 0.95), 23);
    const auto events = s.month(0);
    std::unordered_set<u64> distinct;
    for (const auto &ev : events)
        distinct.insert((u64(ev.pair.query) << 32) | ev.pair.result);
    EXPECT_GT(distinct.size(), 150u);
}

TEST_F(StreamTest, HistoryGrowsMonotonically)
{
    UserStream s(uni_, profile(50, 0.5), 29);
    s.beginMonth(0);
    std::size_t prev = 0;
    for (int i = 0; i < 50; ++i) {
        s.next();
        EXPECT_GE(s.historySize(), prev);
        prev = s.historySize();
    }
    EXPECT_LE(prev, 50u);
}

TEST_F(StreamTest, DeterministicForSeed)
{
    UserStream a(uni_, profile(80, 0.4), 31);
    UserStream b(uni_, profile(80, 0.4), 31);
    const auto ea = a.month(0);
    const auto eb = b.month(0);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_TRUE(ea[i].pair == eb[i].pair);
        EXPECT_EQ(ea[i].time, eb[i].time);
    }
}

TEST_F(StreamTest, HotSetSizeMatchesProfile)
{
    UserStream s(uni_, profile(30, 0.4), 37);
    EXPECT_EQ(s.hotSet().size(), 5u);
}

} // namespace
} // namespace pc::workload
