/**
 * @file
 * Unit tests for community log generation.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "workload/loggen.h"

namespace pc::workload {
namespace {

UniverseConfig
tinyUniverse()
{
    UniverseConfig cfg;
    cfg.navResults = 500;
    cfg.nonNavResults = 2000;
    cfg.navHead = 60;
    cfg.nonNavHead = 60;
    cfg.habitNavHead = 40;
    cfg.habitNonNavHead = 25;
    return cfg;
}

class LogGenTest : public ::testing::Test
{
  protected:
    LogGenTest() : uni_(tinyUniverse())
    {
        LogGenConfig lg;
        lg.seed = 5;
        lg.numUsers = 300;
        gen_ = std::make_unique<LogGenerator>(uni_, PopulationConfig{},
                                              lg);
    }

    QueryUniverse uni_;
    std::unique_ptr<LogGenerator> gen_;
};

TEST_F(LogGenTest, RecordCountEqualsSumOfVolumes)
{
    const auto log = gen_->generateMonth();
    std::size_t expected = 0;
    for (const auto &p : gen_->population())
        expected += p.monthlyVolume;
    EXPECT_EQ(log.size(), expected);
}

TEST_F(LogGenTest, RecordsSortedByTime)
{
    const auto log = gen_->generateMonth();
    SimTime prev = -1;
    for (const auto &rec : log.records()) {
        EXPECT_GE(rec.time, prev);
        prev = rec.time;
    }
}

TEST_F(LogGenTest, RecordsCarryDeviceOfUser)
{
    const auto log = gen_->generateMonth();
    std::unordered_map<u64, DeviceType> devices;
    for (const auto &p : gen_->population())
        devices[p.id] = p.device;
    for (const auto &rec : log.records())
        EXPECT_EQ(rec.device, devices.at(rec.user));
}

TEST_F(LogGenTest, ConsecutiveMonthsAdvanceWindow)
{
    const auto m1 = gen_->generateMonth();
    const auto m2 = gen_->generateMonth();
    EXPECT_LT(m1.records().back().time, kMonth);
    EXPECT_GE(m2.records().front().time, kMonth);
    EXPECT_LT(m2.records().back().time, 2 * kMonth);
}

TEST_F(LogGenTest, AllUsersAppear)
{
    const auto log = gen_->generateMonth();
    std::unordered_map<u64, u64> per_user;
    for (const auto &rec : log.records())
        ++per_user[rec.user];
    EXPECT_EQ(per_user.size(), gen_->population().size());
    for (const auto &p : gen_->population())
        EXPECT_EQ(per_user.at(p.id), p.monthlyVolume);
}

TEST(SearchLog, SortByUserTimeGroupsUsers)
{
    UniverseConfig ucfg = tinyUniverse();
    QueryUniverse uni(ucfg);
    SearchLog log(uni);
    log.add({2, 50, {0, 0}, DeviceType::Smartphone});
    log.add({1, 99, {0, 0}, DeviceType::Smartphone});
    log.add({2, 10, {0, 0}, DeviceType::Smartphone});
    log.sortByUserTime();
    const auto &r = log.records();
    EXPECT_EQ(r[0].user, 1u);
    EXPECT_EQ(r[1].user, 2u);
    EXPECT_EQ(r[1].time, 10);
    EXPECT_EQ(r[2].time, 50);
}

} // namespace
} // namespace pc::workload
