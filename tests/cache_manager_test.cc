/**
 * @file
 * Unit tests for the Figure 14 cache update protocol.
 */

#include <gtest/gtest.h>

#include "core/cache_manager.h"

namespace pc::core {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class CacheManagerTest : public ::testing::Test
{
  protected:
    CacheManagerTest() : uni_(tinyUniverse()), manager_(uni_)
    {
        pc::nvm::FlashConfig fc;
        fc.capacity = 64 * kMiB;
        device_ = std::make_unique<pc::nvm::FlashDevice>(fc);
        store_ = std::make_unique<pc::simfs::FlashStore>(*device_);
        ps_ = std::make_unique<PocketSearch>(uni_, *store_);
    }

    workload::PairRef
    canonicalPair(u32 result)
    {
        return {uni_.result(result).queries.front().first, result};
    }

    /** Log with volume per pair, for building fresh triplet tables. */
    logs::TripletTable
    makeTable(const std::vector<std::pair<workload::PairRef, int>> &pvs)
    {
        workload::SearchLog log(uni_);
        for (const auto &[pair, vol] : pvs) {
            for (int i = 0; i < vol; ++i) {
                log.add({1, SimTime(i), pair,
                         workload::DeviceType::Smartphone});
            }
        }
        return logs::TripletTable::fromLog(log);
    }

    UpdatePolicy
    fullPolicy()
    {
        UpdatePolicy p;
        p.content.kind = ThresholdKind::VolumeShare;
        p.content.volumeShare = 1.0;
        return p;
    }

    workload::QueryUniverse uni_;
    CacheManager manager_;
    std::unique_ptr<pc::nvm::FlashDevice> device_;
    std::unique_ptr<pc::simfs::FlashStore> store_;
    std::unique_ptr<PocketSearch> ps_;
};

TEST_F(CacheManagerTest, PrunesUntouchedCommunityPairs)
{
    SimTime t = 0;
    CacheContentBuilder builder(uni_);
    const auto old_table = makeTable({{canonicalPair(0), 10},
                                      {canonicalPair(1), 5}});
    ps_->loadCommunity(builder.build(old_table, fullPolicy().content), t);
    EXPECT_EQ(ps_->pairs(), 2u);

    // Fresh month: only pair 2 is popular; the user touched nothing.
    const auto fresh = makeTable({{canonicalPair(2), 8}});
    const auto stats =
        manager_.update(*ps_, fresh, fullPolicy(), t);
    EXPECT_EQ(stats.pairsPruned, 2u);
    EXPECT_EQ(stats.pairsAdded, 1u);
    EXPECT_EQ(ps_->pairs(), 1u);
    EXPECT_TRUE(ps_->containsPair(canonicalPair(2)));
    EXPECT_FALSE(ps_->containsPair(canonicalPair(0)));

    // The cycle accounting folds into a metrics registry under
    // "core.update.*" and accumulates across cycles.
    obs::MetricRegistry reg;
    stats.publishMetrics(reg);
    stats.publishMetrics(reg);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counterValue("core.update.pairs_pruned"), 4u);
    EXPECT_EQ(snap.counterValue("core.update.pairs_added"), 2u);
    EXPECT_EQ(snap.counterValue("core.update.bytes_to_server"),
              2 * stats.bytesToServer);
    EXPECT_EQ(stats.toCounters().value("core.update.records_patched"),
              stats.recordsPatched);
}

TEST_F(CacheManagerTest, KeepsUserAccessedPairs)
{
    SimTime t = 0;
    CacheContentBuilder builder(uni_);
    const auto old_table = makeTable({{canonicalPair(0), 10}});
    ps_->loadCommunity(builder.build(old_table, fullPolicy().content), t);
    // The user clicked pair 0 (flag set) and learned pair 42.
    ps_->recordClick(canonicalPair(0), t);
    ps_->recordClick(canonicalPair(42), t);

    const auto fresh = makeTable({{canonicalPair(2), 8}});
    const auto stats = manager_.update(*ps_, fresh, fullPolicy(), t);
    EXPECT_EQ(stats.pairsKept, 2u);
    EXPECT_TRUE(ps_->containsPair(canonicalPair(0)));
    EXPECT_TRUE(ps_->containsPair(canonicalPair(42)));
    EXPECT_TRUE(ps_->containsPair(canonicalPair(2)));
}

TEST_F(CacheManagerTest, ExpiresDecayedUserPairs)
{
    SimTime t = 0;
    // The user once clicked pair 5, but its score has decayed away.
    ps_->recordClick(canonicalPair(5), t);
    ps_->table().setScore(uni_.query(canonicalPair(5).query).text,
                          urlHash(uni_.result(5).url), 0.01);
    UpdatePolicy policy = fullPolicy();
    policy.expiryScore = 0.05;
    const auto fresh = makeTable({{canonicalPair(2), 8}});
    const auto stats = manager_.update(*ps_, fresh, policy, t);
    EXPECT_EQ(stats.pairsExpired, 1u);
    EXPECT_FALSE(ps_->containsPair(canonicalPair(5)));
}

TEST_F(CacheManagerTest, ConflictKeepsMaxScore)
{
    SimTime t = 0;
    // The user clicked pair 0 many times: device score 3.0 exceeds any
    // normalized fresh score.
    for (int i = 0; i < 3; ++i)
        ps_->recordClick(canonicalPair(0), t);
    const auto fresh = makeTable({{canonicalPair(0), 8}});
    const auto stats = manager_.update(*ps_, fresh, fullPolicy(), t);
    EXPECT_EQ(stats.conflicts, 1u);
    const auto refs =
        ps_->table().lookup(uni_.query(canonicalPair(0).query).text);
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_NEAR(refs[0].score, 3.0, 1e-9)
        << "conflict resolution adopts the maximum score";
    EXPECT_TRUE(refs[0].userAccessed) << "accessed flag survives update";
}

TEST_F(CacheManagerTest, PatchesOnlyMissingRecords)
{
    SimTime t = 0;
    CacheContentBuilder builder(uni_);
    const auto old_table = makeTable({{canonicalPair(0), 10}});
    ps_->loadCommunity(builder.build(old_table, fullPolicy().content), t);
    ps_->recordClick(canonicalPair(0), t); // keep it across the update
    const auto fresh = makeTable({{canonicalPair(0), 9},
                                  {canonicalPair(7), 8}});
    const auto stats = manager_.update(*ps_, fresh, fullPolicy(), t);
    EXPECT_EQ(stats.recordsPatched, 1u)
        << "record 0 already on the phone; only 7 ships";
    EXPECT_TRUE(ps_->db().contains(urlHash(uni_.result(7).url)));
}

TEST_F(CacheManagerTest, ByteAccountingIsPlausible)
{
    SimTime t = 0;
    CacheContentBuilder builder(uni_);
    std::vector<std::pair<workload::PairRef, int>> pvs;
    for (u32 i = 0; i < 50; ++i)
        pvs.push_back({canonicalPair(i), 100 - int(i)});
    const auto table = makeTable(pvs);
    ps_->loadCommunity(builder.build(table, fullPolicy().content), t);
    const auto stats = manager_.update(*ps_, table, fullPolicy(), t);
    // The upload is the encoded wire blob: one fixed-width record per
    // cached pair (cheaper than the in-memory table with its container
    // overhead and empty slots).
    EXPECT_EQ(stats.bytesToServer, wireSize(50));
    EXPECT_LE(stats.bytesToServer, ps_->dramBytes());
    EXPECT_GE(stats.bytesToPhone, ps_->dramBytes());
    // The paper: the whole exchange stays under ~1.5 MB.
    EXPECT_LT(stats.bytesToPhone, Bytes(1.5 * double(kMiB)));
}

TEST_F(CacheManagerTest, UpdateIsIdempotentOnSameLogs)
{
    SimTime t = 0;
    const auto fresh = makeTable({{canonicalPair(0), 10},
                                  {canonicalPair(1), 5}});
    manager_.update(*ps_, fresh, fullPolicy(), t);
    const auto pairs_after_first = ps_->pairs();
    const auto stats = manager_.update(*ps_, fresh, fullPolicy(), t);
    EXPECT_EQ(ps_->pairs(), pairs_after_first);
    EXPECT_EQ(stats.recordsPatched, 0u);
}

} // namespace
} // namespace pc::core
