/**
 * @file
 * Cross-layer observability integration tests: a device wired to a
 * metrics registry and a tracer, under fault injection, must produce
 * (a) trace spans whose per-query "device"-category durations sum to
 * the reported end-to-end latency EXACTLY (probe + fetch/exchange +
 * backoff + render tiling, no gaps, no double counting), (b) an
 * umbrella "query" span matching the latency, (c) registry counters
 * that agree with the device's ResilienceStats, and (d) valid Chrome
 * trace JSON.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "device/mobile_device.h"
#include "logs/triplets.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pc::device {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class ObsIntegrationTest : public ::testing::Test
{
  protected:
    ObsIntegrationTest() : uni_(tinyUniverse()), device_(uni_)
    {
        device_.attachMetrics(&registry_);
        device_.attachTracer(&tracer_, "device");
        warmCache();
    }

    void
    warmCache()
    {
        workload::SearchLog log(uni_);
        for (u32 r = 0; r < 20; ++r) {
            const u32 q = uni_.result(r).queries.front().first;
            for (int i = 0; i < int(40 - r); ++i) {
                log.add({1, SimTime(i), {q, r},
                         workload::DeviceType::Smartphone});
            }
        }
        const auto table = logs::TripletTable::fromLog(log);
        core::CacheContentBuilder builder(uni_);
        core::ContentPolicy policy;
        policy.kind = core::ThresholdKind::VolumeShare;
        policy.volumeShare = 1.0;
        device_.installCommunityCache(builder.build(table, policy));
    }

    workload::PairRef
    cachedPair(u32 r = 0)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    workload::PairRef
    uncachedPair(u32 r = 500)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    /**
     * Serve one query and check the span-tiling invariant: the spans
     * recorded for it (category "device") sum exactly to its latency,
     * and the umbrella span (category "query") equals the latency.
     * @return The outcome.
     */
    QueryOutcome
    serveAndCheckSpans(const workload::PairRef &pair, ServePath path)
    {
        const std::size_t before = tracer_.spans().size();
        const SimTime t0 = device_.now();
        const auto out = device_.serveQuery(pair, path, false);

        SimTime componentSum = 0;
        SimTime umbrella = -1;
        for (std::size_t i = before; i < tracer_.spans().size(); ++i) {
            const auto &sp = tracer_.spans()[i];
            EXPECT_GE(sp.start, t0);
            EXPECT_LE(sp.start + sp.duration, t0 + out.latency);
            if (sp.category == "device")
                componentSum += sp.duration;
            else if (sp.category == "query")
                umbrella = sp.duration;
        }
        EXPECT_EQ(componentSum, out.latency)
            << "device spans must tile the query latency exactly";
        EXPECT_EQ(umbrella, out.latency)
            << "umbrella span must equal the end-to-end latency";
        return out;
    }

    workload::QueryUniverse uni_;
    MobileDevice device_;
    obs::MetricRegistry registry_;
    obs::Tracer tracer_;
};

TEST_F(ObsIntegrationTest, CacheHitSpansTileLatency)
{
    const auto out =
        serveAndCheckSpans(cachedPair(), ServePath::PocketSearch);
    EXPECT_TRUE(out.cacheHit);
    EXPECT_EQ(registry_.counter("device.queries").value(), 1u);
    EXPECT_EQ(registry_.counter("device.cache_hits").value(), 1u);
}

TEST_F(ObsIntegrationTest, RadioMissSpansTileLatency)
{
    const auto out =
        serveAndCheckSpans(uncachedPair(), ServePath::ThreeG);
    EXPECT_FALSE(out.cacheHit);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(registry_.counter("device.radio.attempts").value(), 1u);
}

TEST_F(ObsIntegrationTest, FaultedRetriesAndBackoffsStillTileExactly)
{
    // High failure rate forces multi-attempt queries with backoff
    // spans; the tiling invariant must hold through all of it.
    fault::FaultConfig fc;
    fc.seed = 7;
    fc.radio.exchangeFailureRate = 0.6;
    fc.radio.latencySpikeRate = 0.3;
    fault::FaultPlan plan(fc);
    device_.attachFaults(&plan);

    u64 sawRetries = 0;
    u64 sawDegraded = 0;
    for (u32 i = 0; i < 30; ++i) {
        const auto out = serveAndCheckSpans(uncachedPair(500 + i),
                                            ServePath::PocketSearch);
        if (out.attempts > 1)
            ++sawRetries;
        if (out.degraded)
            ++sawDegraded;
        device_.advanceTime(kSecond);
    }
    EXPECT_GT(sawRetries, 0u)
        << "seeded fault plan should force at least one retry";

    // The registry counters must agree with the device's own ledger.
    const auto &res = device_.resilience();
    const auto snap = registry_.snapshot();
    EXPECT_EQ(snap.counterValue("device.radio.attempts"),
              res.radioAttempts);
    EXPECT_EQ(snap.counterValue("device.radio.retries"), res.retries);
    EXPECT_EQ(snap.counterValue("device.radio.failed"),
              res.failedAttempts);
    EXPECT_EQ(snap.counterValue("device.radio.latency_spikes"),
              res.latencySpikes);
    EXPECT_EQ(snap.counterValue("device.degraded.serves"),
              res.degradedServes);
    EXPECT_EQ(snap.counterValue("device.degraded.stale"),
              res.staleServes);
    EXPECT_EQ(snap.counterValue("device.degraded.offline_pages"),
              res.offlinePages);
    EXPECT_EQ(snap.counterValue("device.missq.queued"),
              res.queuedMisses);
    EXPECT_EQ(snap.counterValue("device.queries"), 30u);
    (void)sawDegraded;

    // Fault ground truth folds into the same registry.
    plan.publishMetrics(registry_);
    const auto snap2 = registry_.snapshot();
    EXPECT_EQ(snap2.counterValue("fault.exchange_failures"),
              plan.stats().exchangeFailures);
}

TEST_F(ObsIntegrationTest, OutageBackoffSpansTile)
{
    fault::FaultConfig fc;
    fc.seed = 11;
    fc.radio.outageShare = 0.5;
    fc.radio.meanOutageDuration = 30 * kSecond;
    fault::FaultPlan plan(fc);
    device_.attachFaults(&plan);

    u64 sawNoCoverage = 0;
    for (u32 i = 0; i < 20; ++i) {
        serveAndCheckSpans(uncachedPair(600 + i),
                           ServePath::PocketSearch);
        device_.advanceTime(5 * kSecond);
    }
    sawNoCoverage = device_.resilience().noCoverageAttempts;
    EXPECT_GT(sawNoCoverage, 0u) << "outage plan should deny coverage";
    EXPECT_EQ(registry_.counter("device.radio.no_coverage").value(),
              sawNoCoverage);
}

TEST_F(ObsIntegrationTest, PerPathHistogramsMatchOutcomes)
{
    std::vector<double> hit_ms;
    for (u32 r = 0; r < 5; ++r) {
        const auto out =
            device_.serveQuery(cachedPair(r), ServePath::PocketSearch,
                               false);
        ASSERT_TRUE(out.cacheHit);
        hit_ms.push_back(toMillis(out.latency));
    }
    const auto *h = registry_.findHistogram("device.latency_ms.pocket");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 5u);
    double sum = 0;
    for (double x : hit_ms)
        sum += x;
    EXPECT_NEAR(h->sum(), sum, 1e-9);
}

TEST_F(ObsIntegrationTest, SimfsAndCoreCountersFlow)
{
    device_.serveQuery(cachedPair(), ServePath::PocketSearch, false);
    const auto snap = registry_.snapshot();
    EXPECT_GT(snap.counterValue("simfs.reads"), 0u)
        << "a cache hit fetches results from flash";
    EXPECT_GT(snap.counterValue("core.search.lookups"), 0u);
    EXPECT_GT(snap.counterValue("core.search.query_hits"), 0u);
}

TEST_F(ObsIntegrationTest, ChromeTraceExportIsValidJson)
{
    fault::FaultConfig fc;
    fc.seed = 3;
    fc.radio.exchangeFailureRate = 0.5;
    fault::FaultPlan plan(fc);
    device_.attachFaults(&plan);
    for (u32 i = 0; i < 5; ++i)
        device_.serveQuery(uncachedPair(700 + i),
                           ServePath::PocketSearch, false);

    std::ostringstream os;
    tracer_.writeChromeTrace(os);
    const std::string out = os.str();

    // Structural check: balanced scopes outside strings.
    std::string stack;
    bool inString = false, escaped = false;
    for (char c : out) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{' || c == '[')
            stack.push_back(c);
        else if (c == '}') {
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(stack.back(), '{');
            stack.pop_back();
        } else if (c == ']') {
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(stack.back(), '[');
            stack.pop_back();
        }
    }
    EXPECT_TRUE(stack.empty());
    EXPECT_FALSE(inString);
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsIntegrationTest, MetricsAreZeroCostWhenDetached)
{
    // A second device with nothing attached must behave identically:
    // observability is read-only instrumentation.
    MobileDevice bare(uni_);
    workload::SearchLog log(uni_);
    for (u32 r = 0; r < 20; ++r) {
        const u32 q = uni_.result(r).queries.front().first;
        for (int i = 0; i < int(40 - r); ++i) {
            log.add({1, SimTime(i), {q, r},
                     workload::DeviceType::Smartphone});
        }
    }
    const auto table = logs::TripletTable::fromLog(log);
    core::CacheContentBuilder builder(uni_);
    core::ContentPolicy policy;
    policy.kind = core::ThresholdKind::VolumeShare;
    policy.volumeShare = 1.0;
    bare.installCommunityCache(builder.build(table, policy));

    const auto a =
        device_.serveQuery(cachedPair(), ServePath::PocketSearch, false);
    const auto b =
        bare.serveQuery(cachedPair(), ServePath::PocketSearch, false);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.cacheHit, b.cacheHit);
}

} // namespace
} // namespace pc::device
