/**
 * @file
 * Unit tests for the synthetic vocabulary and alias generator.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "workload/vocab.h"

namespace pc::workload {
namespace {

TEST(Vocabulary, WordsAreDeterministic)
{
    EXPECT_EQ(Vocabulary::word(7), Vocabulary::word(7));
    EXPECT_EQ(Vocabulary::domainToken(42), Vocabulary::domainToken(42));
    EXPECT_EQ(Vocabulary::topicPhrase(9, 100),
              Vocabulary::topicPhrase(9, 100));
}

TEST(Vocabulary, WordsAreMostlyDistinct)
{
    std::set<std::string> seen;
    int dups = 0;
    for (u64 i = 0; i < 20000; ++i) {
        if (!seen.insert(Vocabulary::word(i)).second)
            ++dups;
    }
    // Pronounceable syllable words collide occasionally; just require
    // the space to be large.
    EXPECT_LT(dups, 600);
}

TEST(Vocabulary, WordsAreLowercaseAlpha)
{
    for (u64 i = 0; i < 1000; ++i) {
        for (char c : Vocabulary::word(i))
            EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)));
    }
}

TEST(Vocabulary, TopicPhraseHasOneToThreeWords)
{
    for (u64 i = 0; i < 2000; ++i) {
        const std::string p = Vocabulary::topicPhrase(i, 5000);
        int words = 1;
        for (char c : p)
            words += (c == ' ');
        EXPECT_GE(words, 1);
        EXPECT_LE(words, 3);
    }
}

TEST(MakeAlias, AliasDiffersFromCanonical)
{
    for (u64 salt = 1; salt < 50; ++salt) {
        EXPECT_NE(makeAlias("youtube", AliasKind::Misspelling, salt),
                  "youtube");
        EXPECT_NE(makeAlias("bank of america", AliasKind::Shortcut, salt),
                  "bank of america");
    }
}

TEST(MakeAlias, ShortcutUsesInitialsForPhrases)
{
    // "bank of america" -> "boa" (the paper's example).
    EXPECT_EQ(makeAlias("bank of america", AliasKind::Shortcut, 1), "boa");
}

TEST(MakeAlias, ShortcutUsesPrefixForSingleWords)
{
    const std::string alias =
        makeAlias("plentyoffish", AliasKind::Shortcut, 1);
    EXPECT_LE(alias.size(), 4u);
    EXPECT_EQ(alias, std::string("plentyoffish").substr(0, alias.size()));
}

TEST(MakeAlias, MisspellingKeepsLengthClose)
{
    for (u64 salt = 1; salt < 100; ++salt) {
        const std::string a =
            makeAlias("facebook", AliasKind::Misspelling, salt);
        EXPECT_GE(a.size(), 7u);
        EXPECT_LE(a.size(), 9u);
    }
}

TEST(MakeAlias, DeterministicPerSalt)
{
    EXPECT_EQ(makeAlias("youtube", AliasKind::Misspelling, 3),
              makeAlias("youtube", AliasKind::Misspelling, 3));
}

TEST(MakeAlias, SaltsSpreadOverManyAliases)
{
    // Individual salts may collide (few corruption sites in a short
    // word), but a span of salts must produce real variety.
    std::set<std::string> aliases;
    for (u64 salt = 1; salt <= 30; ++salt)
        aliases.insert(makeAlias("youtube", AliasKind::Misspelling, salt));
    EXPECT_GE(aliases.size(), 8u);
}

TEST(MakeAlias, TinyStringsHandled)
{
    EXPECT_NE(makeAlias("ab", AliasKind::Misspelling, 1), "ab");
    EXPECT_NE(makeAlias("ab", AliasKind::Shortcut, 1), "ab");
}

} // namespace
} // namespace pc::workload
