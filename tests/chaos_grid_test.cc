/**
 * @file
 * Chaos grid (slow tier): over {bit-flip rate} x {shed budget} cells —
 * each with a correlated outage storm and a version-skew cohort — the
 * fleet invariant checker must stay silent and every parallel run must
 * reproduce the threads=1 bytes (series CSV, fleet snapshot, service
 * registry), extending PR 5's byte-identity contract to chaos runs.
 * A sabotage cell then breaks a device table on purpose and checks
 * the postmortem engine explains every violation with a two-tier
 * causal chain — byte-identically at any thread count. CI re-runs
 * this under ThreadSanitizer and AddressSanitizer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "harness/fleet.h"
#include "obs/fleet.h"
#include "server/service.h"

namespace pc::harness {
namespace {

Workbench &
sharedWorkbench()
{
    static Workbench wb(smallWorkbenchConfig());
    return wb;
}

workload::SearchLog
slicedLog(const Workbench &wb, std::size_t n)
{
    workload::SearchLog log(wb.universe());
    const auto &records = wb.buildLog().records();
    log.reserve(std::min(n, records.size()));
    for (std::size_t i = 0; i < records.size() && i < n; ++i)
        log.add(records[i]);
    return log;
}

/**
 * The third log window, generated once: every cell's service must see
 * identical logs or the cells would not be comparable.
 */
const workload::SearchLog &
thirdMonth()
{
    static const workload::SearchLog log =
        sharedWorkbench().nextCommunityMonth();
    return log;
}

/** Everything a cell run is compared by across thread counts. */
struct RunBytes
{
    std::string snapshotJson;
    std::string seriesCsv;
    std::string cloudJson;
    std::string postmortemJson;
    FleetRunResult result;
};

/** Drop scheduling-dependent build-timing gauges (see fleet_parallel). */
std::string
scrubTimingLines(const std::string &json)
{
    static const char *const kTiming[] = {
        "server.build.wall_ms",
        "server.ingest.records_per_s",
        "server.queue.max_depth",
        "server.queue.mean_depth",
    };
    std::string out;
    out.reserve(json.size());
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        bool timing = false;
        for (const char *name : kTiming)
            timing = timing || line.find(name) != std::string::npos;
        if (!timing) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

RunBytes
runCell(unsigned threads, double corruptRate, u64 herdBudget,
        u32 sabotageEvery = 0)
{
    Workbench &wb = sharedWorkbench();

    // Fresh service per run: its registry accumulates sync accounting.
    // maxVersions=2 slides the window so the skew cohort's off-window
    // claim (version 1) really is off the window.
    server::ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    scfg.maxVersions = 2;
    auto svc = std::make_unique<server::CloudUpdateService>(
        wb.universe(), scfg);
    svc->ingest(slicedLog(wb, wb.buildLog().size() / 2));
    svc->ingest(wb.buildLog());
    svc->ingest(thirdMonth());

    FleetRunConfig cfg;
    cfg.devices = 24;
    cfg.months = 6;
    cfg.threads = threads;
    cfg.cloud = svc.get();
    cfg.chaos.enabled = true;
    cfg.chaos.stormStartMonth = 1;
    cfg.chaos.stormMonths = 1;
    cfg.chaos.payloadCorruptRate = corruptRate;
    cfg.chaos.skewEvery = 5;
    cfg.chaos.herdBudgetPerMonth = herdBudget;
    cfg.chaos.sabotageEvery = sabotageEvery;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);

    RunBytes out;
    out.result = runFleet(wb, cfg, collector);
    {
        std::ostringstream os;
        collector.fleetRegistry().snapshot().writeJson(os, true);
        out.snapshotJson = scrubTimingLines(os.str());
    }
    {
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        out.seriesCsv = os.str();
    }
    {
        std::ostringstream os;
        svc->metrics().snapshot().writeJson(os, true);
        out.cloudJson = scrubTimingLines(os.str());
    }
    {
        std::ostringstream os;
        obs::JsonWriter w(os, /*pretty=*/true);
        writePostmortem(w, out.result.invariantReports);
        out.postmortemJson = os.str();
    }
    return out;
}

class ChaosGrid
    : public ::testing::TestWithParam<std::tuple<double, u64>>
{
};

TEST_P(ChaosGrid, InvariantsHoldAndParallelRunsMatchSequentialBytes)
{
    const auto [corruptRate, herdBudget] = GetParam();
    const RunBytes want = runCell(1, corruptRate, herdBudget);

    EXPECT_EQ(want.result.invariantViolations, 0u)
        << "chaos corrupted a device the checker caught";
    EXPECT_GT(want.result.devicesVerified, 0u);
    EXPECT_GT(want.result.rejectedDeltas, 0u)
        << "the skew cohort must trip validation";
    if (corruptRate > 0.0)
        EXPECT_GT(want.result.corruptRejected, 0u);
    else
        EXPECT_EQ(want.result.corruptRejected, 0u);
    if (herdBudget > 0)
        EXPECT_GT(want.result.cloudSyncsShed, 0u)
            << "a tight budget must shed part of the reconnect herd";
    else
        EXPECT_EQ(want.result.cloudSyncsShed, 0u);

    for (const unsigned threads : {4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const RunBytes got = runCell(threads, corruptRate, herdBudget);
        EXPECT_EQ(got.snapshotJson, want.snapshotJson);
        EXPECT_EQ(got.seriesCsv, want.seriesCsv);
        EXPECT_EQ(got.cloudJson, want.cloudJson);
        EXPECT_EQ(got.result.invariantViolations,
                  want.result.invariantViolations);
        EXPECT_EQ(got.result.devicesVerified,
                  want.result.devicesVerified);
        EXPECT_EQ(got.result.corruptRejected,
                  want.result.corruptRejected);
        EXPECT_EQ(got.result.rejectedDeltas, want.result.rejectedDeltas);
        EXPECT_EQ(got.result.cloudSyncsShed, want.result.cloudSyncsShed);
        EXPECT_EQ(got.result.escalatedFullInstalls,
                  want.result.escalatedFullInstalls);
        EXPECT_EQ(got.result.queries, want.result.queries);
        EXPECT_EQ(got.result.cacheHits, want.result.cacheHits);
    }
}

/**
 * The deliberately-broken cell: sabotage silently corrupts every 3rd
 * converged device's table. Ground truth for the postmortem engine —
 * violations must equal sabotaged devices exactly, each must come
 * back as an explained DigestMismatch whose causal chain spans both
 * tiers, and the postmortem bytes must not depend on the thread
 * count.
 */
TEST(ChaosSabotage, EveryViolationExplainedAndBytesThreadInvariant)
{
    const RunBytes want = runCell(1, 0.5, 0, /*sabotageEvery=*/3);

    EXPECT_GT(want.result.devicesSabotaged, 0u);
    EXPECT_EQ(want.result.invariantViolations,
              want.result.devicesSabotaged)
        << "every sabotage — and nothing else — must trip the digest "
           "invariant";
    ASSERT_EQ(want.result.invariantReports.size(),
              want.result.invariantViolations);
    for (const InvariantReport &r : want.result.invariantReports) {
        EXPECT_EQ(r.kind, InvariantKind::DigestMismatch);
        EXPECT_TRUE(r.sabotaged);
        EXPECT_NE(r.deviceDigest, r.serverDigest);
        EXPECT_FALSE(r.chain.empty());
        bool dev = false, srv = false, marker = false;
        for (const auto &ev : r.chain) {
            dev = dev || ev.tier == obs::SyncTier::Device;
            srv = srv || ev.tier == obs::SyncTier::Server;
            marker = marker || ev.stage == obs::SyncStage::Sabotage;
        }
        EXPECT_TRUE(dev && srv) << "chain must span both tiers";
        EXPECT_TRUE(marker) << "chain must carry the sabotage marker";
    }

    for (const unsigned threads : {4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const RunBytes got = runCell(threads, 0.5, 0, 3);
        EXPECT_EQ(got.postmortemJson, want.postmortemJson)
            << "postmortem artifact must be byte-identical at any "
               "thread count";
        EXPECT_EQ(got.snapshotJson, want.snapshotJson);
        EXPECT_EQ(got.seriesCsv, want.seriesCsv);
        EXPECT_EQ(got.result.devicesSabotaged,
                  want.result.devicesSabotaged);
    }
}

std::string
gridCellName(const ::testing::TestParamInfo<ChaosGrid::ParamType> &info)
{
    const double rate = std::get<0>(info.param);
    const u64 budget = std::get<1>(info.param);
    return std::string("flip") + (rate > 0.0 ? "50" : "0") + "_budget" +
           std::to_string(budget);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChaosGrid,
    ::testing::Combine(::testing::Values(0.0, 0.5),
                       ::testing::Values(u64(0), u64(6))),
    gridCellName);

} // namespace
} // namespace pc::harness
