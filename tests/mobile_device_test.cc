/**
 * @file
 * Unit tests for the end-to-end device timing/energy model (Figures
 * 15/16, Tables 4/5).
 */

#include <gtest/gtest.h>

#include "device/mobile_device.h"
#include "logs/triplets.h"

namespace pc::device {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class MobileDeviceTest : public ::testing::Test
{
  protected:
    MobileDeviceTest() : uni_(tinyUniverse()), device_(uni_)
    {
        // Warm the cache with a handful of popular pairs.
        workload::SearchLog log(uni_);
        for (u32 r = 0; r < 20; ++r) {
            const u32 q = uni_.result(r).queries.front().first;
            for (int i = 0; i < int(40 - r); ++i) {
                log.add({1, SimTime(i), {q, r},
                         workload::DeviceType::Smartphone});
            }
        }
        const auto table = logs::TripletTable::fromLog(log);
        core::CacheContentBuilder builder(uni_);
        core::ContentPolicy policy;
        policy.kind = core::ThresholdKind::VolumeShare;
        policy.volumeShare = 1.0;
        device_.installCommunityCache(builder.build(table, policy));
    }

    workload::PairRef
    cachedPair(u32 r = 0)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    workload::PairRef
    uncachedPair()
    {
        return {uni_.result(500).queries.front().first, 500};
    }

    workload::QueryUniverse uni_;
    MobileDevice device_;
};

TEST_F(MobileDeviceTest, CacheHitNear378Milliseconds)
{
    const auto out = device_.serveQuery(cachedPair(), ServePath::PocketSearch,
                                        /*record_click=*/false);
    EXPECT_TRUE(out.cacheHit);
    // Table 4: 378 ms total, render-dominated.
    EXPECT_NEAR(toMillis(out.latency), 378.0, 40.0);
    EXPECT_GT(out.renderTime, 9 * out.latency / 10 - fromMillis(50));
    EXPECT_EQ(out.hashLookupTime, 10 * kMicrosecond);
    EXPECT_GT(out.fetchTime, 0);
    EXPECT_EQ(out.radioTime, 0);
}

TEST_F(MobileDeviceTest, MissFallsBackTo3G)
{
    const auto out = device_.serveQuery(uncachedPair(),
                                        ServePath::PocketSearch, false);
    EXPECT_FALSE(out.cacheHit);
    EXPECT_GT(out.radioTime, kSecond);
    EXPECT_GT(out.latency, 3 * kSecond);
}

TEST_F(MobileDeviceTest, RadioPathsOrderedLikeFigure15a)
{
    // Fresh devices per path so every link starts cold.
    auto latency_of = [&](ServePath path) {
        MobileDevice d(uni_);
        return d.serveQuery(uncachedPair(), path, false).latency;
    };
    const SimTime t3g = latency_of(ServePath::ThreeG);
    const SimTime tedge = latency_of(ServePath::Edge);
    const SimTime twifi = latency_of(ServePath::Wifi);
    MobileDevice d(uni_);
    const SimTime tps =
        device_.serveQuery(cachedPair(1), ServePath::PocketSearch, false)
            .latency;
    EXPECT_GT(tedge, t3g);
    EXPECT_GT(t3g, twifi);
    EXPECT_GT(twifi, tps);
    // Paper speedups: 16x vs 3G, 25x vs EDGE, 7x vs WiFi — require the
    // right ballpark, not exactness.
    EXPECT_NEAR(double(t3g) / double(tps), 16.0, 5.0);
    EXPECT_NEAR(double(tedge) / double(tps), 25.0, 8.0);
    EXPECT_NEAR(double(twifi) / double(tps), 7.0, 3.0);
}

TEST_F(MobileDeviceTest, EnergyOrderedLikeFigure15b)
{
    auto energy_of = [&](ServePath path) {
        MobileDevice d(uni_);
        return d.serveQuery(uncachedPair(), path, false).energy;
    };
    const MicroJoules e3g = energy_of(ServePath::ThreeG);
    const MicroJoules eedge = energy_of(ServePath::Edge);
    const MicroJoules ewifi = energy_of(ServePath::Wifi);
    const MicroJoules eps =
        device_.serveQuery(cachedPair(2), ServePath::PocketSearch, false)
            .energy;
    EXPECT_GT(eedge, e3g);
    EXPECT_GT(e3g, ewifi);
    EXPECT_GT(ewifi, eps);
    EXPECT_NEAR(e3g / eps, 23.0, 10.0);
    EXPECT_NEAR(eedge / eps, 41.0, 16.0);
    EXPECT_NEAR(ewifi / eps, 11.0, 5.0);
}

TEST_F(MobileDeviceTest, ConsecutiveQueriesSkipWakeup)
{
    // Figure 16: 10 back-to-back 3G queries — only the first pays the
    // wake-up ramp.
    MobileDevice d(uni_);
    const auto first = d.serveQuery(uncachedPair(), ServePath::ThreeG,
                                    false);
    const auto second = d.serveQuery(uncachedPair(), ServePath::ThreeG,
                                     false);
    EXPECT_LT(second.latency, first.latency);
    bool first_has_wakeup = false, second_has_wakeup = false;
    for (const auto &s : first.trace)
        first_has_wakeup |= (s.label == "wakeup");
    for (const auto &s : second.trace)
        second_has_wakeup |= (s.label == "wakeup");
    EXPECT_TRUE(first_has_wakeup);
    EXPECT_FALSE(second_has_wakeup);
}

TEST_F(MobileDeviceTest, TracePowerLevelsMatchFigure16)
{
    // Local serving stays near base power (~900 mW in the paper's
    // figure, base+render here); radio serving peaks several hundred
    // mW higher.
    const auto hit = device_.serveQuery(cachedPair(3),
                                        ServePath::PocketSearch, false);
    MobileDevice d(uni_);
    const auto miss = d.serveQuery(uncachedPair(), ServePath::ThreeG,
                                   false);
    MilliWatts hit_peak = 0, miss_peak = 0;
    for (const auto &s : hit.trace)
        hit_peak = std::max(hit_peak, s.power);
    for (const auto &s : miss.trace)
        miss_peak = std::max(miss_peak, s.power);
    EXPECT_GT(miss_peak, hit_peak + 200.0);
}

TEST_F(MobileDeviceTest, NavigationLatencyAddsPageLoad)
{
    const auto out = device_.serveQuery(cachedPair(4),
                                        ServePath::PocketSearch, false);
    const SimTime light =
        device_.navigationLatency(out, PageWeight::Lightweight);
    const SimTime heavy =
        device_.navigationLatency(out, PageWeight::Heavyweight);
    EXPECT_EQ(light, out.latency + 15 * kSecond);
    EXPECT_EQ(heavy, out.latency + 30 * kSecond);
}

TEST_F(MobileDeviceTest, ClockAdvancesWithQueries)
{
    const SimTime t0 = device_.now();
    const auto out = device_.serveQuery(cachedPair(5),
                                        ServePath::PocketSearch, false);
    EXPECT_EQ(device_.now(), t0 + out.latency);
    device_.advanceTime(kSecond);
    EXPECT_EQ(device_.now(), t0 + out.latency + kSecond);
}

TEST_F(MobileDeviceTest, RecordClickLearnsThroughDevice)
{
    const auto p = uncachedPair();
    device_.serveQuery(p, ServePath::PocketSearch, /*record_click=*/true);
    EXPECT_TRUE(device_.pocketSearch().containsPair(p))
        << "clicked miss must be cached for next time";
    const auto again = device_.serveQuery(p, ServePath::PocketSearch,
                                          false);
    EXPECT_TRUE(again.cacheHit);
}

} // namespace
} // namespace pc::device
