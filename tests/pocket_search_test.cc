/**
 * @file
 * Unit tests for the PocketSearch facade: community load, lookup paths,
 * operating modes, and click-driven learning.
 */

#include <gtest/gtest.h>

#include "core/pocket_search.h"
#include "logs/triplets.h"

namespace pc::core {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class PocketSearchTest : public ::testing::Test
{
  protected:
    PocketSearchTest()
        : uni_(tinyUniverse()), log_(uni_)
    {
        pc::nvm::FlashConfig fc;
        fc.capacity = 64 * kMiB;
        device_ = std::make_unique<pc::nvm::FlashDevice>(fc);
        store_ = std::make_unique<pc::simfs::FlashStore>(*device_);
    }

    /** Build community contents from a few hand-crafted popular pairs. */
    CacheContents
    makeContents(const std::vector<std::pair<workload::PairRef, int>>
                     &pair_volumes)
    {
        for (const auto &[pair, vol] : pair_volumes) {
            for (int i = 0; i < vol; ++i) {
                log_.add({1, SimTime(i), pair,
                          workload::DeviceType::Smartphone});
            }
        }
        const auto table = logs::TripletTable::fromLog(log_);
        CacheContentBuilder builder(uni_);
        ContentPolicy policy;
        policy.kind = ThresholdKind::VolumeShare;
        policy.volumeShare = 1.0;
        return builder.build(table, policy);
    }

    /** Canonical pair of a result. */
    workload::PairRef
    canonicalPair(u32 result)
    {
        return {uni_.result(result).queries.front().first, result};
    }

    workload::QueryUniverse uni_;
    workload::SearchLog log_;
    std::unique_ptr<pc::nvm::FlashDevice> device_;
    std::unique_ptr<pc::simfs::FlashStore> store_;
};

TEST_F(PocketSearchTest, CommunityHitServesRankedResults)
{
    PocketSearch ps(uni_, *store_);
    const auto p = canonicalPair(0);
    SimTime t = 0;
    ps.loadCommunity(makeContents({{p, 10}}), t);
    EXPECT_GT(t, 0) << "community push costs flash writes";

    auto out = ps.lookupPair(p);
    EXPECT_TRUE(out.hit);
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_EQ(out.results[0].url, uni_.result(0).url);
    EXPECT_EQ(out.hashLookupTime, QueryHashTable::kLookupLatency);
    EXPECT_GT(out.fetchTime, 0);
    EXPECT_EQ(ps.stats().queryHits, 1u);
    EXPECT_EQ(ps.stats().pairHits, 1u);
}

TEST_F(PocketSearchTest, MissOnUncachedQuery)
{
    PocketSearch ps(uni_, *store_);
    SimTime t = 0;
    ps.loadCommunity(makeContents({{canonicalPair(0), 10}}), t);
    auto out = ps.lookupPair(canonicalPair(57));
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.results.empty());
    EXPECT_EQ(ps.stats().lookups, 1u);
    EXPECT_EQ(ps.stats().queryHits, 0u);
}

TEST_F(PocketSearchTest, MaxResultsLimitsFetch)
{
    PocketSearch ps(uni_, *store_);
    // One query with three results.
    const u32 q = canonicalPair(300).query;
    SimTime t = 0;
    ps.loadCommunity(makeContents({{{q, 300}, 9},
                                   {{q, 301}, 6},
                                   {{q, 302}, 3}}),
                     t);
    auto out = ps.lookup(uni_.query(q).text, 2);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(out.results.size(), 2u)
        << "auto-suggest box shows the top two";
    EXPECT_EQ(out.results[0].url, uni_.result(300).url)
        << "highest-volume result ranks first";
}

TEST_F(PocketSearchTest, PersonalizationLearnsNewPair)
{
    PocketSearch ps(uni_, *store_);
    SimTime t = 0;
    ps.loadCommunity(makeContents({{canonicalPair(0), 10}}), t);
    const auto newp = canonicalPair(42);
    EXPECT_FALSE(ps.containsPair(newp));
    ps.recordClick(newp, t);
    EXPECT_TRUE(ps.containsPair(newp));
    EXPECT_EQ(ps.stats().pairsLearned, 1u);
    EXPECT_EQ(ps.stats().recordsLearned, 1u);
    auto out = ps.lookupPair(newp);
    EXPECT_TRUE(out.hit);
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_EQ(out.results[0].url, uni_.result(42).url);
}

TEST_F(PocketSearchTest, CommunityOnlyModeDoesNotLearn)
{
    PocketSearchConfig cfg;
    cfg.mode = CacheMode::CommunityOnly;
    PocketSearch ps(uni_, *store_, cfg);
    SimTime t = 0;
    ps.loadCommunity(makeContents({{canonicalPair(0), 10}}), t);
    const auto newp = canonicalPair(42);
    ps.recordClick(newp, t);
    EXPECT_FALSE(ps.containsPair(newp));
    EXPECT_EQ(ps.stats().pairsLearned, 0u);
}

TEST_F(PocketSearchTest, PersonalizationOnlyModeStartsCold)
{
    PocketSearchConfig cfg;
    cfg.mode = CacheMode::PersonalizationOnly;
    PocketSearch ps(uni_, *store_, cfg);
    SimTime t = 0;
    ps.loadCommunity(makeContents({{canonicalPair(0), 10}}), t);
    EXPECT_EQ(ps.pairs(), 0u) << "community push ignored when cold";
    const auto p = canonicalPair(0);
    EXPECT_FALSE(ps.lookupPair(p).hit);
    ps.recordClick(p, t);
    EXPECT_TRUE(ps.lookupPair(p).hit);
}

TEST_F(PocketSearchTest, ClickReRanksResults)
{
    PocketSearch ps(uni_, *store_);
    const u32 q = canonicalPair(300).query;
    SimTime t = 0;
    ps.loadCommunity(makeContents({{{q, 300}, 9}, {{q, 301}, 6}}), t);
    // The community ranks 300 first; the user keeps clicking 301.
    for (int i = 0; i < 3; ++i)
        ps.recordClick({q, 301}, t);
    auto out = ps.lookup(uni_.query(q).text, 2);
    ASSERT_GE(out.results.size(), 2u);
    EXPECT_EQ(out.results[0].url, uni_.result(301).url)
        << "personal clicks must override community ranking";
}

TEST_F(PocketSearchTest, SharedResultStoredOnceInFlash)
{
    PocketSearch ps(uni_, *store_);
    const u32 q1 = canonicalPair(5).query;
    SimTime t = 0;
    // Two queries -> same result: one record in flash.
    CacheContents contents = makeContents({{{q1, 5}, 9}});
    ScoredPair extra;
    extra.pair = {canonicalPair(6).query, 5};
    extra.score = 0.5;
    contents.pairs.push_back(extra);
    ps.loadCommunity(contents, t);
    EXPECT_EQ(ps.pairs(), 2u);
    EXPECT_EQ(ps.db().records(), 1u);
}

TEST_F(PocketSearchTest, FootprintAccessors)
{
    PocketSearch ps(uni_, *store_);
    SimTime t = 0;
    ps.loadCommunity(makeContents({{canonicalPair(0), 10},
                                   {canonicalPair(1), 5}}),
                     t);
    EXPECT_GT(ps.dramBytes(), 0u);
    EXPECT_GT(ps.flashLogicalBytes(), 0u);
    EXPECT_GE(ps.flashPhysicalBytes(), ps.flashLogicalBytes());
}

TEST_F(PocketSearchTest, CacheModeNames)
{
    EXPECT_EQ(cacheModeName(CacheMode::Combined), "combined");
    EXPECT_EQ(cacheModeName(CacheMode::CommunityOnly), "community-only");
    EXPECT_EQ(cacheModeName(CacheMode::PersonalizationOnly),
              "personalization-only");
}

} // namespace
} // namespace pc::core
