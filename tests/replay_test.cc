/**
 * @file
 * Unit tests for the hit-rate replay driver on a small world.
 */

#include <gtest/gtest.h>

#include "device/replay.h"
#include "harness/workbench.h"

namespace pc::device {
namespace {

class ReplayTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wb_ = new pc::harness::Workbench(
            pc::harness::smallWorkbenchConfig());
    }

    static void
    TearDownTestSuite()
    {
        delete wb_;
        wb_ = nullptr;
    }

    static pc::harness::Workbench *wb_;
};

pc::harness::Workbench *ReplayTest::wb_ = nullptr;

TEST_F(ReplayTest, RunProducesPerClassResults)
{
    ReplayDriver driver(wb_->universe(), wb_->communityCache(),
                        wb_->population());
    ReplayConfig cfg;
    cfg.usersPerClass = 10;
    const auto res = driver.run(cfg);
    EXPECT_EQ(res.users.size(), 40u);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(res.classes[c].users, 10u);
        EXPECT_GT(res.classes[c].meanHitRate, 0.0);
        EXPECT_LE(res.classes[c].meanHitRate, 1.0);
        EXPECT_NEAR(res.classes[c].navHitShare +
                        res.classes[c].nonNavHitShare,
                    1.0, 1e-9);
    }
    EXPECT_GT(res.overallMeanHitRate, 0.3);
    EXPECT_LT(res.overallMeanHitRate, 0.95);
}

TEST_F(ReplayTest, CombinedBeatsBothComponents)
{
    ReplayDriver driver(wb_->universe(), wb_->communityCache(),
                        wb_->population());
    ReplayConfig cfg;
    cfg.usersPerClass = 15;
    cfg.mode = core::CacheMode::Combined;
    const double combined = driver.run(cfg).overallMeanHitRate;
    cfg.mode = core::CacheMode::CommunityOnly;
    const double community = driver.run(cfg).overallMeanHitRate;
    cfg.mode = core::CacheMode::PersonalizationOnly;
    const double pers = driver.run(cfg).overallMeanHitRate;
    EXPECT_GT(combined, community);
    EXPECT_GT(combined, pers);
    // Figure 17's magnitudes, with generous bands for the small world.
    EXPECT_NEAR(combined, 0.65, 0.15);
    EXPECT_NEAR(community, 0.55, 0.15);
    EXPECT_NEAR(pers, 0.565, 0.12);
}

TEST_F(ReplayTest, CommunityGivesWarmStartInWeekOne)
{
    // Figure 18: in week 1 the community component must already be at
    // its steady hit rate while personalization is still warming up.
    ReplayDriver driver(wb_->universe(), wb_->communityCache(),
                        wb_->population());
    ReplayConfig cfg;
    cfg.usersPerClass = 15;
    cfg.mode = core::CacheMode::CommunityOnly;
    const auto community = driver.run(cfg);
    cfg.mode = core::CacheMode::PersonalizationOnly;
    const auto pers = driver.run(cfg);
    double comm_w1 = 0, pers_w1 = 0, pers_month = 0;
    for (int c = 0; c < 4; ++c) {
        comm_w1 += community.classes[c].meanWeek1HitRate / 4;
        pers_w1 += pers.classes[c].meanWeek1HitRate / 4;
        pers_month += pers.classes[c].meanHitRate / 4;
    }
    // Topic drift deliberately costs the community cache a little; in
    // the small world the margin over warming personalization is thin,
    // so allow near-equality (the standard-world bench asserts the
    // strict ordering).
    EXPECT_GT(comm_w1, pers_w1 - 0.03)
        << "community warm start beats cold personalization in week 1";
    EXPECT_GT(pers_month, pers_w1)
        << "personalization improves as the month progresses";
}

TEST_F(ReplayTest, ReplayUserCountsWindows)
{
    ReplayDriver driver(wb_->universe(), wb_->communityCache(),
                        wb_->population());
    workload::PopulationSampler sampler(wb_->population());
    Rng rng(3);
    auto profile = sampler.sampleUserOfClass(rng, UserClass::Medium);
    workload::UserStream stream(wb_->universe(), profile, 77);
    const auto events = stream.month(0);

    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    core::PocketSearch ps(wb_->universe(), store);
    SimTime sink = 0;
    ps.loadCommunity(wb_->communityCache(), sink);

    const auto res = driver.replayUser(profile, events, ps);
    EXPECT_EQ(res.events, events.size());
    EXPECT_EQ(res.windowEvents[2], res.events);
    EXPECT_LE(res.windowEvents[0], res.windowEvents[1]);
    EXPECT_LE(res.windowEvents[1], res.windowEvents[2]);
    EXPECT_EQ(res.hits, res.navHits + res.nonNavHits);
    EXPECT_LE(res.hits, res.events);
}

TEST_F(ReplayTest, DeterministicForSeed)
{
    ReplayDriver driver(wb_->universe(), wb_->communityCache(),
                        wb_->population());
    ReplayConfig cfg;
    cfg.usersPerClass = 5;
    cfg.seed = 123;
    const auto a = driver.run(cfg);
    const auto b = driver.run(cfg);
    EXPECT_DOUBLE_EQ(a.overallMeanHitRate, b.overallMeanHitRate);
}

} // namespace
} // namespace pc::device
