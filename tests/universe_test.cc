/**
 * @file
 * Unit and statistical tests for the query/result universe.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/strings.h"
#include "workload/universe.h"

namespace pc::workload {
namespace {

UniverseConfig
smallConfig()
{
    UniverseConfig cfg;
    cfg.navResults = 2000;
    cfg.nonNavResults = 8000;
    cfg.navHead = 250;
    cfg.nonNavHead = 250;
    cfg.habitNavHead = 120;
    cfg.habitNonNavHead = 80;
    return cfg;
}

class UniverseTest : public ::testing::Test
{
  protected:
    UniverseTest() : uni_(smallConfig()) {}
    QueryUniverse uni_;
};

TEST_F(UniverseTest, PoolSizes)
{
    // Base pools plus companion results for head nav queries.
    EXPECT_GE(uni_.numResults(), 10000u);
    EXPECT_LE(uni_.numResults(), 10000u + smallConfig().navResults / 20);
    EXPECT_GE(uni_.numQueries(), 10000u) << "every result has >= 1 query";
}

TEST_F(UniverseTest, CompanionResultsAreNavigational)
{
    for (u32 r = 10000; r < uni_.numResults(); ++r) {
        const auto &res = uni_.result(r);
        EXPECT_TRUE(res.navigational);
        EXPECT_EQ(res.poolRank, kNoPoolRank);
        ASSERT_FALSE(res.queries.empty());
        const PairRef p{res.queries.front().first, r};
        EXPECT_TRUE(uni_.isNavigationalPair(p))
            << res.url << " vs " << uni_.query(p.query).text;
    }
}

TEST_F(UniverseTest, NavResultsComeFirst)
{
    EXPECT_TRUE(uni_.result(0).navigational);
    EXPECT_TRUE(uni_.result(1999).navigational);
    EXPECT_FALSE(uni_.result(2000).navigational);
    EXPECT_FALSE(uni_.result(9999).navigational);
    EXPECT_EQ(uni_.result(0).poolRank, 0u);
    EXPECT_EQ(uni_.result(2000).poolRank, 0u);
}

TEST_F(UniverseTest, EveryResultHasAQueryAndEveryQueryAResult)
{
    for (u32 r = 0; r < uni_.numResults(); ++r)
        EXPECT_FALSE(uni_.result(r).queries.empty()) << "result " << r;
    for (u32 q = 0; q < uni_.numQueries(); ++q)
        EXPECT_FALSE(uni_.query(q).results.empty()) << "query " << q;
}

TEST_F(UniverseTest, NavigationalDefinitionHolds)
{
    // The paper's footnote-1 definition: a query is navigational when
    // the query string is a substring of the clicked URL. Canonical
    // nav pairs must satisfy it; canonical non-nav pairs must not.
    int checked = 0;
    for (u32 r = 0; r < uni_.numResults(); ++r) {
        const auto &res = uni_.result(r);
        const u32 canonical = res.queries.front().first;
        const PairRef p{canonical, r};
        if (res.navigational)
            EXPECT_TRUE(uni_.isNavigationalPair(p)) << res.url;
        else
            EXPECT_FALSE(uni_.isNavigationalPair(p)) << res.url;
        ++checked;
    }
    EXPECT_EQ(checked, int(uni_.numResults()));
}

TEST_F(UniverseTest, QueryResultLinksAreBidirectional)
{
    for (u32 r = 0; r < uni_.numResults(); ++r) {
        for (const auto &[qid, w] : uni_.result(r).queries) {
            (void)w;
            bool found = false;
            for (const auto &[rid, rw] : uni_.query(qid).results) {
                (void)rw;
                found |= (rid == r);
            }
            EXPECT_TRUE(found)
                << "query " << qid << " missing backlink to " << r;
        }
    }
}

TEST_F(UniverseTest, SamplePairIsValidAndConsistent)
{
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const PairRef p = uni_.samplePair(rng, DeviceType::Smartphone);
        ASSERT_LT(p.result, uni_.numResults());
        ASSERT_LT(p.query, uni_.numQueries());
        // The sampled query must actually map to the sampled result.
        bool linked = false;
        for (const auto &[rid, w] : uni_.query(p.query).results) {
            (void)w;
            linked |= (rid == p.result);
        }
        ASSERT_TRUE(linked);
    }
}

TEST_F(UniverseTest, FeaturephoneMoreConcentrated)
{
    Rng rng(5);
    const int n = 40000;
    const u32 head = 100;
    int fp_head = 0, sp_head = 0;
    for (int i = 0; i < n; ++i) {
        auto fp = uni_.samplePair(rng, DeviceType::Featurephone);
        auto sp = uni_.samplePair(rng, DeviceType::Smartphone);
        const auto pool_rank = [&](const PairRef &p) {
            return uni_.result(p.result).navigational
                ? p.result : p.result - smallConfig().navResults;
        };
        fp_head += pool_rank(fp) < head;
        sp_head += pool_rank(sp) < head;
    }
    EXPECT_GT(fp_head, sp_head)
        << "featurephone traffic must be more head-concentrated";
}

TEST_F(UniverseTest, HabitualDrawsMoreConcentratedThanFresh)
{
    Rng rng(7);
    const int n = 30000;
    int habit_in_head = 0, fresh_in_head = 0;
    const auto &cfg = uni_.config();
    for (int i = 0; i < n; ++i) {
        const auto h = uni_.samplePairHabitual(rng,
                                               DeviceType::Smartphone);
        const auto f = uni_.samplePair(rng, DeviceType::Smartphone);
        const auto in_head = [&](const PairRef &p) {
            const auto &res = uni_.result(p.result);
            const u32 rank = res.navigational
                ? p.result : p.result - cfg.navResults;
            return res.navigational ? rank < cfg.habitNavHead
                                    : rank < cfg.habitNonNavHead;
        };
        habit_in_head += in_head(h);
        fresh_in_head += in_head(f);
    }
    EXPECT_GT(habit_in_head, fresh_in_head * 2);
    // Click redistribution sends some habitual clicks to shared/
    // companion results outside the nominal head, so allow slack below
    // the raw mainstream share.
    EXPECT_GT(double(habit_in_head) / n, 0.60);
}

TEST_F(UniverseTest, PairProbabilityMatchesSampling)
{
    // Empirical frequency of the most popular nav pair should match
    // pairProbability within sampling error.
    Rng rng(11);
    const u32 top_query = uni_.result(0).queries.front().first;
    const PairRef top{top_query, 0};
    const double p = uni_.pairProbability(top);
    ASSERT_GT(p, 0.0);
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
        const auto s = uni_.samplePair(rng, DeviceType::Smartphone);
        hits += (s == top);
    }
    EXPECT_NEAR(double(hits) / n, p, 4.0 * std::sqrt(p / n) + 0.001);
}

TEST_F(UniverseTest, DeterministicRebuild)
{
    QueryUniverse other(smallConfig());
    ASSERT_EQ(other.numQueries(), uni_.numQueries());
    for (u32 q = 0; q < uni_.numQueries(); q += 997)
        EXPECT_EQ(other.query(q).text, uni_.query(q).text);
}

TEST_F(UniverseTest, RecordSizeNear500Bytes)
{
    // The paper: ~500 bytes per stored search result.
    for (u32 r = 0; r < 100; ++r) {
        const Bytes sz = QueryUniverse::recordSize(uni_.result(r));
        EXPECT_GE(sz, 400u);
        EXPECT_LE(sz, 700u);
    }
}

TEST_F(UniverseTest, SharedQueriesExist)
{
    // Some non-nav queries map to two results (Table 3's "michael
    // jackson" effect).
    int multi = 0;
    for (u32 q = 0; q < uni_.numQueries(); ++q)
        multi += uni_.query(q).results.size() > 1;
    EXPECT_GT(multi, 0);
}

TEST_F(UniverseTest, UrlsAreWellFormed)
{
    for (u32 r = 0; r < uni_.numResults(); r += 53) {
        const auto &url = uni_.result(r).url;
        EXPECT_TRUE(pc::startsWith(url, "www.") ||
                    pc::startsWith(url, "m."))
            << url;
        EXPECT_NE(url.find(".com"), std::string::npos);
    }
}

} // namespace
} // namespace pc::workload
