/**
 * @file
 * Unit tests for the hash-table wire codec (the Figure 14 upload).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/table_codec.h"
#include "util/hash.h"

namespace pc::core {
namespace {

TEST(TableCodec, EmptyTableRoundTrip)
{
    QueryHashTable t;
    const std::string blob = encodeTable(t);
    EXPECT_EQ(blob.size(), wireSize(0));
    const auto decoded = decodeTable(blob);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->empty());
}

TEST(TableCodec, RoundTripPreservesEveryField)
{
    QueryHashTable t;
    t.insert("youtube", 111, 0.9, true);
    t.insert("youtube", 222, 0.1, false);
    t.insert("facebook", 333, 1.5, true);

    const std::string blob = encodeTable(t);
    EXPECT_EQ(blob.size(), wireSize(3));
    const auto decoded = decodeTable(blob);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->size(), 3u);

    auto find = [&](u64 url) -> const WirePair * {
        for (const auto &w : *decoded) {
            if (w.urlHash == url)
                return &w;
        }
        return nullptr;
    };
    const WirePair *a = find(111);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->queryFnv, fnv1a("youtube"));
    EXPECT_DOUBLE_EQ(a->score, 0.9);
    EXPECT_TRUE(a->accessed);

    const WirePair *b = find(222);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->accessed);
    EXPECT_DOUBLE_EQ(b->score, 0.1);

    const WirePair *c = find(333);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->queryFnv, fnv1a("facebook"));
}

TEST(TableCodec, WireSizeMatchesPaperBudget)
{
    // The paper's ~200 KB hash-table upload at ~4-6k pairs: our
    // 25-byte records land in the same regime.
    EXPECT_LT(wireSize(6000), 200 * kKiB);
    EXPECT_GT(wireSize(6000), 100u * kKiB / 2);
}

TEST(TableCodec, RejectsBadMagic)
{
    QueryHashTable t;
    t.insert("q", 1, 0.5);
    std::string blob = encodeTable(t);
    blob[0] = 'X';
    EXPECT_FALSE(decodeTable(blob).has_value());
}

TEST(TableCodec, RejectsTruncatedBlob)
{
    QueryHashTable t;
    t.insert("q", 1, 0.5);
    t.insert("r", 2, 0.6);
    std::string blob = encodeTable(t);
    blob.resize(blob.size() - 5);
    EXPECT_FALSE(decodeTable(blob).has_value());
    EXPECT_FALSE(decodeTable("").has_value());
    EXPECT_FALSE(decodeTable("PCH").has_value());
}

TEST(TableCodec, RejectsCountMismatch)
{
    QueryHashTable t;
    t.insert("q", 1, 0.5);
    std::string blob = encodeTable(t);
    // Extra trailing byte breaks the length invariant.
    blob.push_back('\0');
    EXPECT_FALSE(decodeTable(blob).has_value());
}

TEST(TableCodec, LargeTableRoundTrip)
{
    QueryHashTable t;
    for (u64 i = 1; i <= 5000; ++i) {
        t.insert("query" + std::to_string(i % 997), i,
                 double(i) / 5000.0, i % 3 == 0);
    }
    const std::string blob = encodeTable(t);
    EXPECT_EQ(blob.size(), wireSize(t.pairs()));
    const auto decoded = decodeTable(blob);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->size(), t.pairs());
    u64 accessed = 0;
    for (const auto &w : *decoded)
        accessed += w.accessed;
    EXPECT_GT(accessed, 0u);
    EXPECT_LT(accessed, decoded->size());
}

} // namespace
} // namespace pc::core
