/**
 * @file
 * Unit tests for the deterministic hashing primitives.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/hash.h"

namespace pc {
namespace {

TEST(Fnv1a, MatchesKnownVectors)
{
    // Independently computed FNV-1a 64 test vectors.
    EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, SeedChainsFields)
{
    const u64 h1 = fnv1a("world", fnv1a("hello"));
    const u64 h2 = fnv1a("helloworld");
    EXPECT_EQ(h1, h2) << "chaining must equal hashing the concatenation";
}

TEST(Fnv1a, DistinctStringsDistinctHashes)
{
    std::set<u64> seen;
    for (int i = 0; i < 10000; ++i) {
        const u64 h = fnv1a("query-" + std::to_string(i));
        EXPECT_TRUE(seen.insert(h).second) << "collision at " << i;
    }
}

TEST(Mix64, IsBijectiveOnSamples)
{
    // mix64 is a bijection; consecutive inputs must map to distinct,
    // well-spread outputs.
    std::set<u64> seen;
    for (u64 i = 0; i < 10000; ++i)
        EXPECT_TRUE(seen.insert(mix64(i)).second);
}

TEST(Mix64, AvalanchesLowBits)
{
    // Flipping one input bit should flip roughly half the output bits.
    int total = 0;
    for (u64 i = 1; i <= 64; ++i) {
        const u64 d = mix64(i) ^ mix64(i ^ 1);
        total += __builtin_popcountll(d);
    }
    const double avg = double(total) / 64.0;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(QueryHash, SlotPerturbsHash)
{
    const u64 h0 = queryHash("youtube", 0);
    const u64 h1 = queryHash("youtube", 1);
    const u64 h2 = queryHash("youtube", 2);
    EXPECT_NE(h0, h1);
    EXPECT_NE(h1, h2);
    EXPECT_NE(h0, h2);
}

TEST(QueryHash, DeterministicAcrossCalls)
{
    EXPECT_EQ(queryHash("facebook", 3), queryHash("facebook", 3));
}

TEST(UrlHash, NeverZeroForRealUrls)
{
    // 0 is the hash table's empty-slot sentinel; real URLs must not
    // collide with it (probabilistically guaranteed, spot-check many).
    for (int i = 0; i < 50000; ++i)
        ASSERT_NE(urlHash("www.site" + std::to_string(i) + ".com"), 0u);
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

} // namespace
} // namespace pc
