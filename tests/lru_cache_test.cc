/**
 * @file
 * Unit tests for the LRU pair-cache baseline.
 */

#include <gtest/gtest.h>

#include "baseline/lru_cache.h"

namespace pc::baseline {
namespace {

workload::PairRef
pair(u32 q, u32 r)
{
    return {q, r};
}

TEST(LruPairCache, InsertAndLookup)
{
    LruPairCache c(4);
    c.insert(pair(1, 1));
    EXPECT_TRUE(c.lookup(pair(1, 1)));
    EXPECT_FALSE(c.lookup(pair(1, 2)));
    EXPECT_EQ(c.size(), 1u);
}

TEST(LruPairCache, EvictsLeastRecentlyUsed)
{
    LruPairCache c(2);
    c.insert(pair(1, 1));
    c.insert(pair(2, 2));
    c.insert(pair(3, 3)); // evicts (1,1)
    EXPECT_FALSE(c.contains(pair(1, 1)));
    EXPECT_TRUE(c.contains(pair(2, 2)));
    EXPECT_TRUE(c.contains(pair(3, 3)));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruPairCache, LookupRefreshesRecency)
{
    LruPairCache c(2);
    c.insert(pair(1, 1));
    c.insert(pair(2, 2));
    EXPECT_TRUE(c.lookup(pair(1, 1))); // 1 becomes MRU
    c.insert(pair(3, 3));              // evicts (2,2)
    EXPECT_TRUE(c.contains(pair(1, 1)));
    EXPECT_FALSE(c.contains(pair(2, 2)));
}

TEST(LruPairCache, ContainsHasNoSideEffect)
{
    LruPairCache c(2);
    c.insert(pair(1, 1));
    c.insert(pair(2, 2));
    EXPECT_TRUE(c.contains(pair(1, 1))); // no recency refresh
    c.insert(pair(3, 3));                // evicts (1,1), still LRU
    EXPECT_FALSE(c.contains(pair(1, 1)));
}

TEST(LruPairCache, ReinsertRefreshesWithoutGrowth)
{
    LruPairCache c(2);
    c.insert(pair(1, 1));
    c.insert(pair(2, 2));
    c.insert(pair(1, 1)); // refresh, no eviction
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.evictions(), 0u);
    c.insert(pair(3, 3)); // evicts (2,2)
    EXPECT_TRUE(c.contains(pair(1, 1)));
}

TEST(LruPairCache, QueryAndResultBothKeyed)
{
    LruPairCache c(8);
    c.insert(pair(1, 1));
    EXPECT_FALSE(c.contains(pair(1, 2)));
    EXPECT_FALSE(c.contains(pair(2, 1)));
}

TEST(LruPairCache, CapacityOne)
{
    LruPairCache c(1);
    c.insert(pair(1, 1));
    c.insert(pair(2, 2));
    EXPECT_EQ(c.size(), 1u);
    EXPECT_TRUE(c.contains(pair(2, 2)));
}

/** Property: size never exceeds capacity across random workloads. */
class LruCapacitySweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LruCapacitySweep, SizeBounded)
{
    LruPairCache c(GetParam());
    pc::Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        c.insert(pair(u32(rng.below(100)), u32(rng.below(100))));
        ASSERT_LE(c.size(), GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruCapacitySweep,
                         ::testing::Values(1u, 3u, 10u, 100u, 10000u));

} // namespace
} // namespace pc::baseline
