/**
 * @file
 * QuantileSketch contract tests: exactness before compaction, the
 * documented rank-error bound on 1M-sample streams, the hard memory
 * cap, merge (union, associativity/commutativity up to epsilon) and
 * determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/sketch.h"
#include "util/stats.h"

namespace pc {
namespace {

/** Exact rank of x in a sorted sample (share of items <= x). */
double
exactRank(const std::vector<double> &sorted, double x)
{
    const auto it =
        std::upper_bound(sorted.begin(), sorted.end(), x);
    return double(it - sorted.begin()) / double(sorted.size());
}

const double kProbes[] = {0.01, 0.05, 0.25, 0.50, 0.75, 0.90,
                          0.95, 0.99};

TEST(QuantileSketch, EmptyAndSingle)
{
    QuantileSketch s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.rank(1.0), 0.0);

    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(QuantileSketch, ExactBeforeFirstCompaction)
{
    // Until the first compaction every item has weight 1 and the
    // sketch must reproduce the exact empirical quantiles bit for bit
    // — this is what keeps small-stream unit tests exact after the
    // registry's histograms switched to sketches.
    QuantileSketch s;
    EmpiricalCdf cdf;
    Rng rng(7);
    for (int i = 0; i < 250; ++i) {
        const double x = rng.uniform(-50.0, 150.0);
        s.add(x);
        cdf.add(x);
    }
    ASSERT_EQ(s.compactions(), 0u)
        << "250 < k items must not trigger compaction";
    for (double q : kProbes)
        EXPECT_DOUBLE_EQ(s.quantile(q), cdf.quantile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(s.quantile(0.0), cdf.quantile(0.0));
    EXPECT_DOUBLE_EQ(s.quantile(1.0), cdf.quantile(1.0));
}

TEST(QuantileSketch, ErrorBoundOnMillionSamples)
{
    // The documented contract: on a 1M-sample stream, the estimated
    // q-quantile's exact rank is within epsilon() of q.
    struct Dist
    {
        const char *name;
        double (*draw)(Rng &);
    };
    const Dist dists[] = {
        {"uniform", [](Rng &r) { return r.uniform(0.0, 1000.0); }},
        {"lognormal", [](Rng &r) { return r.logNormal(3.0, 1.2); }},
    };

    for (const auto &d : dists) {
        QuantileSketch s;
        std::vector<double> sample;
        sample.reserve(1'000'000);
        Rng rng(2011);
        for (int i = 0; i < 1'000'000; ++i) {
            const double x = d.draw(rng);
            s.add(x);
            sample.push_back(x);
        }
        std::sort(sample.begin(), sample.end());
        ASSERT_GT(s.compactions(), 0u);
        for (double q : kProbes) {
            const double v = s.quantile(q);
            EXPECT_NEAR(exactRank(sample, v), q, s.epsilon())
                << d.name << " q=" << q;
        }
        // Extremes are tracked exactly.
        EXPECT_DOUBLE_EQ(s.quantile(0.0), sample.front());
        EXPECT_DOUBLE_EQ(s.quantile(1.0), sample.back());
    }
}

TEST(QuantileSketch, SortedAdversarialStream)
{
    // Monotone input is the classic failure mode of naive samplers.
    QuantileSketch s;
    const int n = 300'000;
    for (int i = 0; i < n; ++i)
        s.add(double(i));
    for (double q : kProbes) {
        const double v = s.quantile(q);
        EXPECT_NEAR(v / double(n - 1), q, s.epsilon()) << "q=" << q;
    }
}

TEST(QuantileSketch, MemoryStaysBounded)
{
    QuantileSketch s;
    Rng rng(3);
    for (int i = 0; i < 1'000'000; ++i) {
        s.add(rng.uniform());
        if (i % 100'000 == 0) {
            ASSERT_LE(s.retained(), s.maxRetained());
        }
    }
    EXPECT_LE(s.retained(), s.maxRetained());
    EXPECT_LE(s.maxRetained(), std::size_t(3) * s.k() + 129)
        << "documented O(k) cap";
    EXPECT_EQ(s.count(), 1'000'000u);
}

TEST(QuantileSketch, WeightConservation)
{
    QuantileSketch s;
    Rng rng(11);
    for (int i = 0; i < 123'457; ++i)
        s.add(rng.uniform());
    u64 weight = 0;
    for (const auto &[v, w] : s.weightedItems()) {
        (void)v;
        weight += w;
    }
    EXPECT_EQ(weight, s.count())
        << "compaction must neither create nor destroy mass";
}

TEST(QuantileSketch, MergeMatchesUnion)
{
    QuantileSketch a, b, merged;
    std::vector<double> all;
    Rng rng(17);
    for (int i = 0; i < 200'000; ++i) {
        const double x = rng.logNormal(1.0, 0.8);
        (i % 2 ? a : b).add(x);
        all.push_back(x);
    }
    merged.mergeFrom(a);
    merged.mergeFrom(b);
    EXPECT_EQ(merged.count(), 200'000u);
    std::sort(all.begin(), all.end());
    // Merging two sketches degrades the bound only additively.
    for (double q : kProbes) {
        EXPECT_NEAR(exactRank(all, merged.quantile(q)), q,
                    2.0 * merged.epsilon())
            << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(merged.min(), all.front());
    EXPECT_DOUBLE_EQ(merged.max(), all.back());
}

TEST(QuantileSketch, MergeOrderInvariantUpToEpsilon)
{
    // Associativity/commutativity: different merge orders summarize
    // the same union, so their quantile estimates must agree within
    // the (merged) error bound even though internal layouts differ.
    const int parts = 5;
    std::vector<QuantileSketch> shards(parts);
    std::vector<double> all;
    Rng rng(23);
    for (int i = 0; i < 150'000; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        shards[i % parts].add(x);
        all.push_back(x);
    }
    std::sort(all.begin(), all.end());

    QuantileSketch fwd, rev, pairwise;
    for (int i = 0; i < parts; ++i)
        fwd.mergeFrom(shards[i]);
    for (int i = parts - 1; i >= 0; --i)
        rev.mergeFrom(shards[i]);
    // ((0+1) + (2+3)) + 4 — a different association.
    QuantileSketch left, right;
    left.mergeFrom(shards[0]);
    left.mergeFrom(shards[1]);
    right.mergeFrom(shards[2]);
    right.mergeFrom(shards[3]);
    pairwise.mergeFrom(left);
    pairwise.mergeFrom(right);
    pairwise.mergeFrom(shards[4]);

    EXPECT_EQ(fwd.count(), rev.count());
    EXPECT_EQ(fwd.count(), pairwise.count());
    const double eps = 3.0 * fwd.epsilon();
    for (double q : kProbes) {
        const double exact = all[std::size_t(q * double(all.size() - 1))];
        (void)exact;
        EXPECT_NEAR(exactRank(all, fwd.quantile(q)), q, eps);
        EXPECT_NEAR(exactRank(all, rev.quantile(q)), q, eps);
        EXPECT_NEAR(exactRank(all, pairwise.quantile(q)), q, eps);
    }
}

TEST(QuantileSketch, DeterministicAcrossRuns)
{
    // Identical call sequences produce identical sketches — the
    // byte-identical bench-output contract depends on it.
    auto build = [] {
        QuantileSketch s;
        Rng rng(29);
        for (int i = 0; i < 400'000; ++i)
            s.add(rng.uniform());
        return s;
    };
    const QuantileSketch a = build();
    const QuantileSketch b = build();
    ASSERT_EQ(a.retained(), b.retained());
    EXPECT_EQ(a.weightedItems(), b.weightedItems());
    for (double q : kProbes)
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(QuantileSketch, RankTracksExactCdf)
{
    QuantileSketch s;
    EmpiricalCdf cdf;
    Rng rng(31);
    for (int i = 0; i < 500'000; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        s.add(x);
        cdf.add(x);
    }
    for (double x : {1.0, 10.0, 25.0, 50.0, 90.0, 99.0})
        EXPECT_NEAR(s.rank(x), cdf.at(x), s.epsilon()) << "x=" << x;
}

} // namespace
} // namespace pc
