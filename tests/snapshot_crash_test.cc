/**
 * @file
 * Crash-safety property tests for the snapshot commit protocol: power
 * can die after ANY number of programmed bytes during a commit, and the
 * store must still restore to either the previous good snapshot or the
 * complete new one — never to garbage, never to partial state.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/persistence.h"
#include "fault/fault_plan.h"

namespace pc::core {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class SnapshotCrashTest : public ::testing::Test
{
  protected:
    SnapshotCrashTest() : uni_(tinyUniverse()) {}

    workload::PairRef
    canonicalPair(u32 r)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    /** Fresh flash + store for one simulated boot history. */
    struct Rig
    {
        explicit Rig(Bytes capacity)
        {
            pc::nvm::FlashConfig fc;
            fc.capacity = capacity;
            flash = std::make_unique<pc::nvm::FlashDevice>(fc);
            store = std::make_unique<pc::simfs::FlashStore>(*flash);
        }
        std::unique_ptr<pc::nvm::FlashDevice> flash;
        std::unique_ptr<pc::simfs::FlashStore> store;
    };

    workload::QueryUniverse uni_;
};

constexpr u32 kPairsA = 10; ///< Pairs in the first (good) snapshot.
constexpr u32 kPairsB = 15; ///< Pairs in the snapshot torn by the crash.

TEST_F(SnapshotCrashTest, CrashAtAnyByteLeavesARecoverableStore)
{
    // Dry run with no faults to learn the second snapshot's exact size.
    Bytes blob_bytes = 0;
    {
        Rig rig(64 * kMiB);
        PocketSearch ps(uni_, *rig.store);
        SimTime t = 0;
        for (u32 r = 0; r < kPairsA; ++r)
            ps.installPair(canonicalPair(r), 0.5 + 0.01 * r, false, t);
        ASSERT_TRUE(persistIndex(ps, *rig.store, "snap", t).ok);
        for (u32 r = kPairsA; r < kPairsB; ++r)
            ps.installPair(canonicalPair(r), 0.5 + 0.01 * r, false, t);
        const auto second = persistIndex(ps, *rig.store, "snap", t);
        ASSERT_TRUE(second.ok);
        blob_bytes = second.bytes;
    }
    ASSERT_GT(blob_bytes, 150u) << "property sweep needs enough offsets";

    // Crash after k programmed bytes for >= 100 distinct k, including
    // the extremes (0 = crash before any byte; >= blob_bytes = the
    // whole slot commits and the power dies afterwards).
    const Bytes step = std::max<Bytes>(1, blob_bytes / 120);
    std::vector<Bytes> crash_points;
    for (Bytes k = 0; k < blob_bytes; k += step)
        crash_points.push_back(k);
    crash_points.push_back(blob_bytes - 1);
    crash_points.push_back(blob_bytes);
    crash_points.push_back(blob_bytes + 64);
    u32 points = 0, torn = 0, survived_new = 0;
    for (const Bytes k : crash_points) {
        ++points;
        Rig rig(64 * kMiB);
        SimTime t = 0;
        PocketSearch ps(uni_, *rig.store);
        for (u32 r = 0; r < kPairsA; ++r)
            ps.installPair(canonicalPair(r), 0.5 + 0.01 * r, false, t);
        ASSERT_TRUE(persistIndex(ps, *rig.store, "snap", t).ok);
        for (u32 r = kPairsA; r < kPairsB; ++r)
            ps.installPair(canonicalPair(r), 0.5 + 0.01 * r, false, t);

        pc::fault::FaultPlan plan;
        rig.store->attachFaults(&plan);
        plan.armCrashAfterBytes(k);
        const auto commit = persistIndex(ps, *rig.store, "snap", t);

        // Power comes back; a fresh boot restores over the same flash.
        plan.reboot();
        rig.store->attachFaults(nullptr);
        PocketSearch ps2(uni_, *rig.store);
        const auto res = restoreIndex(ps2, *rig.store, "snap");

        ASSERT_TRUE(res.ok) << "crash after " << k
                            << " bytes must leave a loadable snapshot";
        ASSERT_TRUE(res.pairs == kPairsA || res.pairs == kPairsB)
            << "crash after " << k << " bytes loaded " << res.pairs
            << " pairs: partial state escaped";
        ASSERT_EQ(ps2.pairs(), res.pairs);
        if (res.pairs == kPairsA) {
            // Fell back to the pre-crash snapshot.
            ++torn;
            EXPECT_EQ(res.sequence, 1u);
            EXPECT_FALSE(commit.ok)
                << "a torn commit must not report success";
            EXPECT_FALSE(ps2.containsPair(canonicalPair(kPairsB - 1)));
        } else {
            // The whole new snapshot made it down before the crash.
            ++survived_new;
            EXPECT_EQ(res.sequence, 2u);
            EXPECT_TRUE(ps2.containsPair(canonicalPair(kPairsB - 1)));
        }
        EXPECT_TRUE(ps2.containsPair(canonicalPair(0)))
            << "the old snapshot's pairs must never be lost";
    }
    EXPECT_GE(points, 100u);
    EXPECT_GT(torn, 0u) << "the sweep must actually tear some commits";
    EXPECT_GT(survived_new, 0u)
        << "crashes after the commit must keep the new snapshot";
}

TEST_F(SnapshotCrashTest, CommitAfterRebootRecoversTheStore)
{
    // A torn commit followed by a reboot and a clean commit must leave
    // the newest snapshot loadable again (the torn slot is reused).
    Rig rig(64 * kMiB);
    SimTime t = 0;
    PocketSearch ps(uni_, *rig.store);
    for (u32 r = 0; r < kPairsA; ++r)
        ps.installPair(canonicalPair(r), 0.5 + 0.01 * r, false, t);
    ASSERT_TRUE(persistIndex(ps, *rig.store, "snap", t).ok);

    pc::fault::FaultPlan plan;
    rig.store->attachFaults(&plan);
    ps.installPair(canonicalPair(kPairsA), 0.7, false, t);
    plan.armCrashAfterBytes(40); // tear the second commit mid-header
    EXPECT_FALSE(persistIndex(ps, *rig.store, "snap", t).ok);

    plan.reboot();
    const auto redo = persistIndex(ps, *rig.store, "snap", t);
    ASSERT_TRUE(redo.ok);

    PocketSearch ps2(uni_, *rig.store);
    const auto res = restoreIndex(ps2, *rig.store, "snap");
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.pairs, std::size_t(kPairsA) + 1);
    EXPECT_EQ(res.sequence, redo.sequence);
}

TEST_F(SnapshotCrashTest, ZeroLengthSlotNeverCrashesRestore)
{
    Rig rig(64 * kMiB);
    // A create that never got its append (crash at byte 0 of the very
    // first commit) leaves an empty slot file and no other snapshot.
    ASSERT_NE(rig.store->create("snap.s0"), pc::simfs::kNoFile);
    PocketSearch ps(uni_, *rig.store);
    const auto res = restoreIndex(ps, *rig.store, "snap");
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.corruptSlots, 1u);
    EXPECT_EQ(res.pairs, 0u);
    EXPECT_EQ(ps.pairs(), 0u);
}

TEST_F(SnapshotCrashTest, BitFlippedSlotFallsBackToOlderSnapshot)
{
    Rig rig(64 * kMiB);
    SimTime t = 0;
    PocketSearch ps(uni_, *rig.store);
    ps.installPair(canonicalPair(0), 0.9, false, t);
    ASSERT_TRUE(persistIndex(ps, *rig.store, "snap", t).ok); // seq 1
    ps.installPair(canonicalPair(1), 0.8, false, t);
    const auto second = persistIndex(ps, *rig.store, "snap", t); // seq 2
    ASSERT_TRUE(second.ok);

    // Retention loss: flip one bit in the middle of the newer slot.
    const auto f = rig.store->lookup(second.slot);
    ASSERT_NE(f, pc::simfs::kNoFile);
    std::string blob;
    rig.store->read(f, 0, rig.store->size(f), blob, t);
    blob[blob.size() / 2] = char(u8(blob[blob.size() / 2]) ^ 0x10);
    rig.store->truncateAndWrite(f, blob, t);

    PocketSearch ps2(uni_, *rig.store);
    const auto res = restoreIndex(ps2, *rig.store, "snap");
    ASSERT_TRUE(res.ok) << "the older slot still restores";
    EXPECT_TRUE(res.usedFallback);
    EXPECT_EQ(res.corruptSlots, 1u);
    EXPECT_EQ(res.sequence, 1u);
    EXPECT_EQ(res.pairs, 1u);
    EXPECT_TRUE(ps2.containsPair(canonicalPair(0)));
    EXPECT_FALSE(ps2.containsPair(canonicalPair(1)));
}

TEST_F(SnapshotCrashTest, EveryBitFlipInEitherSlotIsDetected)
{
    // Exhaustive single-bit corruption over the whole newest slot: the
    // CRC must catch every flip (restore falls back, never loads it).
    Rig rig(64 * kMiB);
    SimTime t = 0;
    PocketSearch ps(uni_, *rig.store);
    ps.installPair(canonicalPair(0), 0.9, false, t);
    ASSERT_TRUE(persistIndex(ps, *rig.store, "snap", t).ok);
    ps.installPair(canonicalPair(1), 0.8, false, t);
    const auto second = persistIndex(ps, *rig.store, "snap", t);
    ASSERT_TRUE(second.ok);

    const auto f = rig.store->lookup(second.slot);
    std::string clean;
    rig.store->read(f, 0, rig.store->size(f), clean, t);

    for (std::size_t byte = 0; byte < clean.size(); ++byte) {
        std::string bad = clean;
        bad[byte] = char(u8(bad[byte]) ^ 0x01);
        rig.store->truncateAndWrite(f, bad, t);
        PocketSearch fresh(uni_, *rig.store);
        const auto res = restoreIndex(fresh, *rig.store, "snap");
        ASSERT_TRUE(res.ok) << "flip at byte " << byte;
        ASSERT_EQ(res.sequence, 1u)
            << "flip at byte " << byte << " went undetected";
        ASSERT_EQ(res.pairs, 1u);
    }
    // Restore the clean blob so the rig ends consistent.
    rig.store->truncateAndWrite(f, clean, t);
}

} // namespace
} // namespace pc::core
