/**
 * @file
 * Unit tests for cache content generation (Section 5.1).
 */

#include <gtest/gtest.h>

#include "core/cache_content.h"

namespace pc::core {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 100;
    cfg.nonNavResults = 400;
    cfg.navHead = 20;
    cfg.nonNavHead = 20;
    cfg.habitNavHead = 10;
    cfg.habitNonNavHead = 10;
    cfg.sharedQueryProb = 0.0;
    cfg.meanAliases = 0.0;
    return cfg;
}

class CacheContentTest : public ::testing::Test
{
  protected:
    CacheContentTest()
        : uni_(tinyUniverse()), log_(uni_), builder_(uni_)
    {
    }

    void
    addN(u32 query, u32 result, int n)
    {
        for (int i = 0; i < n; ++i) {
            log_.add({1, SimTime(i), {query, result},
                      workload::DeviceType::Smartphone});
        }
    }

    workload::QueryUniverse uni_;
    workload::SearchLog log_;
    CacheContentBuilder builder_;
};

TEST_F(CacheContentTest, ScoresNormalizePerQuery)
{
    // The paper's example: "michael jackson" -> imdb 10/19 = 0.53,
    // azlyrics 9/19 = 0.47.
    addN(7, 10, 1000000 / 1000); // scale down the Table 3 numbers
    addN(7, 11, 900000 / 1000);
    addN(8, 12, 500);
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    policy.kind = ThresholdKind::VolumeShare;
    policy.volumeShare = 1.0;
    const auto contents = builder_.build(table, policy);
    ASSERT_EQ(contents.pairs.size(), 3u);
    double imdb = 0, azlyrics = 0, single = 0;
    for (const auto &sp : contents.pairs) {
        if (sp.pair.result == 10)
            imdb = sp.score;
        else if (sp.pair.result == 11)
            azlyrics = sp.score;
        else
            single = sp.score;
    }
    EXPECT_NEAR(imdb, 10.0 / 19.0, 1e-9);
    EXPECT_NEAR(azlyrics, 9.0 / 19.0, 1e-9);
    EXPECT_DOUBLE_EQ(single, 1.0);
}

TEST_F(CacheContentTest, VolumeShareThresholdStopsAtTarget)
{
    addN(1, 10, 50);
    addN(2, 11, 30);
    addN(3, 12, 20);
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    policy.kind = ThresholdKind::VolumeShare;
    policy.volumeShare = 0.55;
    const auto contents = builder_.build(table, policy);
    // 50% after one pair < 55%, 80% after two -> stops after adding the
    // second pair.
    EXPECT_EQ(contents.pairs.size(), 2u);
    EXPECT_NEAR(contents.cumulativeShare, 0.8, 1e-9);
}

TEST_F(CacheContentTest, SaturationThresholdDropsColdPairs)
{
    addN(1, 10, 96);
    addN(2, 11, 3);
    addN(3, 12, 1);
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    policy.kind = ThresholdKind::CacheSaturation;
    policy.saturationVth = 0.02; // 2% normalized volume
    const auto contents = builder_.build(table, policy);
    ASSERT_EQ(contents.pairs.size(), 2u);
    EXPECT_EQ(contents.pairs[1].pair.query, 2u);
}

TEST_F(CacheContentTest, FlashBudgetThreshold)
{
    for (u32 i = 0; i < 20; ++i)
        addN(i, i, 100 - int(i));
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    policy.kind = ThresholdKind::FlashBudget;
    policy.flashBudget = 5 * 500; // roughly five 500-byte records
    const auto contents = builder_.build(table, policy);
    EXPECT_GE(contents.pairs.size(), 4u);
    EXPECT_LE(contents.pairs.size(), 6u);
    EXPECT_LE(contents.flashBytes, policy.flashBudget);
}

TEST_F(CacheContentTest, DramBudgetThreshold)
{
    for (u32 i = 0; i < 50; ++i)
        addN(i, i, 100 - int(i));
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    policy.kind = ThresholdKind::DramBudget;
    HashEntryLayout layout;
    policy.dramBudget = 10 * layout.entryBytes();
    const auto contents = builder_.build(table, policy);
    EXPECT_EQ(contents.pairs.size(), 10u)
        << "single-result queries: one entry each";
    EXPECT_LE(contents.dramBytes, policy.dramBudget);
}

TEST_F(CacheContentTest, SharedResultStoredOnce)
{
    // Two queries pointing at one result: flash counts the record once
    // (the paper's 8x storage-reduction argument).
    addN(1, 10, 50);
    addN(2, 10, 40);
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    policy.kind = ThresholdKind::VolumeShare;
    policy.volumeShare = 1.0;
    const auto contents = builder_.build(table, policy);
    EXPECT_EQ(contents.pairs.size(), 2u);
    EXPECT_EQ(contents.uniqueResults, 1u);
    EXPECT_EQ(contents.flashBytes,
              workload::QueryUniverse::recordSize(uni_.result(10)));
}

TEST_F(CacheContentTest, FootprintOfTopMonotone)
{
    for (u32 i = 0; i < 30; ++i)
        addN(i, i, 100 - int(i));
    const auto table = logs::TripletTable::fromLog(log_);
    Bytes prev_dram = 0, prev_flash = 0;
    for (std::size_t k = 0; k <= 30; k += 5) {
        Bytes dram = 0, flash = 0;
        builder_.footprintOfTop(table, k, dram, flash);
        EXPECT_GE(dram, prev_dram);
        EXPECT_GE(flash, prev_flash);
        prev_dram = dram;
        prev_flash = flash;
    }
    EXPECT_GT(prev_dram, 0u);
    EXPECT_GT(prev_flash, 0u);
}

TEST_F(CacheContentTest, DramFootprintFigure11Shape)
{
    // Build contents where most queries have 1-2 results and verify the
    // two-slot layout beats one- and four-slot layouts, the Figure 11
    // minimum.
    std::vector<ScoredPair> pairs;
    u32 next_result = 0;
    for (u32 q = 0; q < 100; ++q) {
        const u32 results = (q % 10 == 0) ? 3 : (q % 2 ? 2 : 1);
        for (u32 r = 0; r < results; ++r)
            pairs.push_back({{q, next_result++}, 1.0, 1});
    }
    HashEntryLayout l1{1}, l2{2}, l4{4};
    const Bytes b1 = builder_.dramFootprint(pairs, l1);
    const Bytes b2 = builder_.dramFootprint(pairs, l2);
    const Bytes b4 = builder_.dramFootprint(pairs, l4);
    EXPECT_LT(b2, b1);
    EXPECT_LT(b2, b4);
}

TEST_F(CacheContentTest, EmptyTable)
{
    const auto table = logs::TripletTable::fromLog(log_);
    ContentPolicy policy;
    const auto contents = builder_.build(table, policy);
    EXPECT_TRUE(contents.pairs.empty());
    EXPECT_EQ(contents.flashBytes, 0u);
    EXPECT_EQ(contents.dramBytes, 0u);
}

} // namespace
} // namespace pc::core
