/**
 * @file
 * Fleet telemetry tests: TimeSeries windowing/downsampling/CSV
 * determinism, EWMA drift detection, the FleetCollector merge
 * property (N registries folded == one registry fed the union), and a
 * small end-to-end runFleet with an injected outage that must be
 * byte-deterministic and flagged by the anomaly scan.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/fleet.h"
#include "obs/fleet.h"
#include "obs/timeseries.h"
#include "util/rng.h"
#include "workload/stream.h"

namespace pc::obs {
namespace {

TEST(TimeSeries, WindowsBinByTime)
{
    TimeSeries ts(100);
    ts.recordCounter(10, "q", 3);
    ts.recordCounter(99, "q", 2);
    ts.recordCounter(150, "q", 7);
    ts.recordAccum(10, "e", 1.5);
    ts.recordAccum(150, "e", 2.5);
    ts.recordValue(20, "r", 0.5);
    ts.recordValue(30, "r", 1.5);

    ASSERT_EQ(ts.windows().size(), 2u);
    const SeriesWindow &w0 = ts.windows()[0];
    const SeriesWindow &w1 = ts.windows()[1];
    EXPECT_EQ(w0.start, 0);
    EXPECT_EQ(w1.start, 100);
    EXPECT_EQ(w0.counters.at("q"), 5u);
    EXPECT_EQ(w1.counters.at("q"), 7u);
    EXPECT_DOUBLE_EQ(w0.accums.at("e"), 1.5);
    EXPECT_DOUBLE_EQ(w1.accums.at("e"), 2.5);
    EXPECT_EQ(w0.points.at("r").count(), 2u);
    EXPECT_DOUBLE_EQ(w0.points.at("r").mean(), 1.0);
    EXPECT_DOUBLE_EQ(w0.sketches.at("r").quantile(0.5), 1.0);

    EXPECT_EQ(ts.counterSeries("q"), (std::vector<double>{5.0, 7.0}));
    EXPECT_EQ(ts.accumSeries("e"), (std::vector<double>{1.5, 2.5}));
    EXPECT_EQ(ts.valueMeanSeries("r"),
              (std::vector<double>{1.0, 0.0}));
}

TEST(TimeSeries, DownsampleDoublesWidthAndConservesMass)
{
    TimeSeries ts(10, /*maxWindows=*/4);
    for (SimTime t = 0; t < 160; t += 2) {
        ts.recordCounter(t, "q", 1);
        ts.recordValue(t, "v", double(t));
    }
    EXPECT_GT(ts.downsamples(), 0u);
    EXPECT_LE(ts.windows().size(), 4u);
    EXPECT_GE(ts.windowWidth(), 40) << "10ns windows doubled at least twice";

    double total = 0.0;
    u64 points = 0;
    for (const auto &w : ts.windows()) {
        EXPECT_EQ(w.start % ts.windowWidth(), 0)
            << "window starts realign to the new width";
        total += double(w.counters.at("q"));
        points += w.points.at("v").count();
        EXPECT_EQ(w.sketches.at("v").count(), w.points.at("v").count())
            << "sketch and stat fold the same observations";
    }
    EXPECT_DOUBLE_EQ(total, 80.0) << "downsampling conserves counts";
    EXPECT_EQ(points, 80u);
}

TEST(TimeSeries, CsvIsDeterministic)
{
    const auto build = [] {
        TimeSeries ts(workload::kMonth);
        Rng rng(5);
        for (int m = 0; m < 6; ++m) {
            const SimTime t = SimTime(m) * workload::kMonth;
            ts.recordCounter(t, "device.queries", 70 + u64(m));
            ts.recordAccum(t, "device.energy_mj.pocket.sum",
                           rng.uniform(100.0, 200.0));
            for (int d = 0; d < 10; ++d)
                ts.recordValue(t, "device.hit_rate",
                               rng.uniform(0.5, 0.8));
        }
        std::ostringstream os;
        ts.writeCsv(os);
        return os.str();
    };
    const std::string a = build();
    const std::string b = build();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("start_s,width_s,kind,name,value,count,mean,p50,"
                     "p90,p99\n"),
              std::string::npos);
    EXPECT_NE(a.find("counter,device.queries"), std::string::npos);
    EXPECT_NE(a.find("value,device.hit_rate"), std::string::npos);
}

TEST(DriftScan, FlagsAStepAndStaysQuietOnFlat)
{
    std::vector<double> flat(12, 0.65);
    std::vector<SimTime> starts;
    for (int i = 0; i < 12; ++i)
        starts.push_back(SimTime(i) * 100);
    EXPECT_TRUE(driftScan("flat", flat, starts).empty());

    // A clean step: the variance floor keeps z finite, the threshold
    // flags the first anomalous window.
    std::vector<double> step = flat;
    step[8] = 0.15;
    step[9] = 0.15;
    const auto found = driftScan("hit_rate", step, starts);
    ASSERT_FALSE(found.empty());
    EXPECT_EQ(found.front().series, "hit_rate");
    EXPECT_EQ(found.front().windowStart, 800);
    EXPECT_DOUBLE_EQ(found.front().value, 0.15);
    EXPECT_LT(found.front().zscore, 0.0) << "a dip has negative z";
}

TEST(DriftScan, WarmupSuppressesEarlyWindows)
{
    std::vector<double> vals{0.5, 5.0, 0.5, 0.5};
    std::vector<SimTime> starts{0, 100, 200, 300};
    DriftConfig cfg;
    cfg.warmup = 3;
    EXPECT_TRUE(driftScan("s", vals, starts, cfg).empty())
        << "the spike lands inside warmup";
    cfg.warmup = 1;
    EXPECT_FALSE(driftScan("s", vals, starts, cfg).empty());
}

/** Feed `n` synthetic device registries; also build their union. */
void
fillRegistry(MetricRegistry &reg, u64 seed, int queries)
{
    Rng rng(seed);
    reg.counter("device.queries").bump(u64(queries));
    reg.counter("device.cache_hits").bump(u64(queries) / 2);
    for (int i = 0; i < queries; ++i)
        reg.histogram("device.latency_ms.pocket")
            .observe(rng.uniform(20.0, 400.0));
}

TEST(FleetCollector, MergingNRegistriesEqualsTheUnion)
{
    FleetConfig cfg;
    cfg.windowWidth = workload::kMonth;
    FleetCollector collector(cfg);

    MetricRegistry unionReg;
    const int kDevices = 8;
    for (int d = 0; d < kDevices; ++d) {
        MetricRegistry reg;
        fillRegistry(reg, u64(d) + 1, 50 + d);
        fillRegistry(unionReg, u64(d) + 1, 50 + d);
        collector.beginDevice(d % 2 ? "low" : "high");
        collector.collect(0, reg);
        collector.endDevice(reg);
    }
    EXPECT_EQ(collector.devices(), std::size_t(kDevices));
    EXPECT_EQ(collector.classDevices().at("low"), 4u);
    EXPECT_EQ(collector.classDevices().at("high"), 4u);

    const auto fleet = collector.fleetRegistry().snapshot();
    const auto want = unionReg.snapshot();
    EXPECT_EQ(fleet.counters, want.counters)
        << "counter sums are exact";
    ASSERT_EQ(fleet.histograms.size(), want.histograms.size());
    const auto &fh = fleet.histograms[0];
    const auto &wh = want.histograms[0];
    EXPECT_EQ(fh.count, wh.count);
    EXPECT_DOUBLE_EQ(fh.sum, wh.sum) << "Welford merge is exact";
    EXPECT_NEAR(fh.mean, wh.mean, 1e-9);
    EXPECT_DOUBLE_EQ(fh.min, wh.min);
    EXPECT_DOUBLE_EQ(fh.max, wh.max);
    // Quantiles: merged sketches vs one straight-line sketch agree
    // within the (additively degraded) documented bound.
    const Histogram *merged =
        collector.fleetRegistry().findHistogram("device.latency_ms.pocket");
    ASSERT_NE(merged, nullptr);
    const double eps =
        2.0 * merged->sketch().epsilon() * (wh.max - wh.min);
    EXPECT_NEAR(fh.p50, wh.p50, eps);
    EXPECT_NEAR(fh.p90, wh.p90, eps);
}

TEST(FleetCollector, WindowedDeltasAndRatios)
{
    FleetConfig cfg;
    cfg.windowWidth = 100;
    FleetCollector collector(cfg);

    // Device A: 10 queries/6 hits in window 0, then 10/2 in window 1.
    MetricRegistry a;
    collector.beginDevice("low");
    a.counter("device.queries").bump(10);
    a.counter("device.cache_hits").bump(6);
    collector.collect(0, a);
    a.counter("device.queries").bump(10);
    a.counter("device.cache_hits").bump(2);
    collector.collect(100, a);
    collector.endDevice(a);

    // Device B: 30 queries/24 hits in window 0 only.
    MetricRegistry b;
    collector.beginDevice("high");
    b.counter("device.queries").bump(30);
    b.counter("device.cache_hits").bump(24);
    collector.collect(0, b);
    collector.endDevice(b);

    const TimeSeries &fleet = collector.fleetSeries();
    EXPECT_EQ(fleet.counterSeries("device.queries"),
              (std::vector<double>{40.0, 10.0}));
    EXPECT_EQ(fleet.counterSeries("device.cache_hits"),
              (std::vector<double>{30.0, 2.0}));
    // Window 0 saw two per-device hit-rate observations: 0.6 and 0.8.
    const auto &w0 = fleet.windows()[0];
    EXPECT_EQ(w0.points.at("device.hit_rate").count(), 2u);
    EXPECT_DOUBLE_EQ(w0.points.at("device.hit_rate").mean(), 0.7);
    // Window 1: only device A, at 0.2.
    EXPECT_DOUBLE_EQ(
        fleet.windows()[1].points.at("device.hit_rate").mean(), 0.2);
    // Class series split the same data.
    EXPECT_EQ(collector.classSeries().at("high").counterSeries(
                  "device.queries"),
              (std::vector<double>{30.0}));
}

TEST(FleetCollector, AnomalyScanFlagsAnInjectedDip)
{
    FleetConfig cfg;
    cfg.windowWidth = 100;
    FleetCollector collector(cfg);

    MetricRegistry reg;
    collector.beginDevice("medium");
    for (int m = 0; m < 12; ++m) {
        const bool outage = (m == 8);
        reg.counter("device.queries").bump(100);
        reg.counter("device.cache_hits").bump(outage ? 10 : 65);
        collector.collect(SimTime(m) * 100, reg);
    }
    collector.endDevice(reg);

    const auto anomalies = collector.scanAnomalies();
    ASSERT_FALSE(anomalies.empty());
    bool sawHitRate = false;
    for (const auto &a : anomalies) {
        if (a.series == "fleet.hit_rate" && a.windowStart == 800)
            sawHitRate = true;
    }
    EXPECT_TRUE(sawHitRate)
        << "the dip window must be flagged on the fleet hit-rate series";

    std::ostringstream os;
    FleetCollector::writeAnomaliesCsv(os, anomalies);
    EXPECT_NE(os.str().find("series,window_start_s,value,expected,z\n"),
              std::string::npos);
    EXPECT_NE(os.str().find("fleet.hit_rate"), std::string::npos);
}

} // namespace
} // namespace pc::obs

namespace pc::harness {
namespace {

/** One shared small world: Workbench construction dominates runtime. */
const Workbench &
sharedWorkbench()
{
    static const Workbench wb(smallWorkbenchConfig());
    return wb;
}

TEST(RunFleet, DeterministicSeriesAndFlaggedOutage)
{
    const Workbench &wb = sharedWorkbench();
    FleetRunConfig cfg;
    cfg.devices = 6;
    cfg.months = 4;
    cfg.outageStartMonth = 2;
    cfg.outageMonths = 1;

    const auto runOnce = [&](std::string *csv) {
        obs::FleetConfig fc;
        fc.windowWidth = workload::kMonth;
        obs::FleetCollector collector(fc);
        const FleetRunResult r = runFleet(wb, cfg, collector);
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        *csv = os.str();

        EXPECT_EQ(r.devices, cfg.devices);
        EXPECT_GT(r.queries, 0u);
        EXPECT_GT(r.cacheHits, 0u);
        EXPECT_GT(r.degradedServes, 0u)
            << "the outage month must force degraded serves";

        obs::DriftConfig dc;
        dc.warmup = 2;
        const auto anomalies = collector.scanAnomalies(dc);
        bool flagged = false;
        for (const auto &a : anomalies) {
            if (a.series == "fleet.degraded_rate" &&
                a.windowStart == 2 * workload::kMonth)
                flagged = true;
        }
        EXPECT_TRUE(flagged)
            << "outage month absent from the anomaly report";
        return r;
    };

    std::string csvA, csvB;
    const FleetRunResult a = runOnce(&csvA);
    const FleetRunResult b = runOnce(&csvB);
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(csvA, csvB) << "fleet series must be byte-deterministic";
}

TEST(RunFleet, ClassSeriesCoverSampledClasses)
{
    const Workbench &wb = sharedWorkbench();
    FleetRunConfig cfg;
    cfg.devices = 5;
    cfg.months = 2;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    runFleet(wb, cfg, collector);

    EXPECT_EQ(collector.devices(), 5u);
    std::size_t total = 0;
    for (const auto &[cls, n] : collector.classDevices()) {
        EXPECT_FALSE(collector.classSeries().at(cls).windows().empty());
        total += n;
    }
    EXPECT_EQ(total, 5u);
    // Fleet registry folded every device's counters.
    const auto snap = collector.fleetRegistry().snapshot();
    EXPECT_GT(snap.counterValue("device.queries"), 0u);
}

} // namespace
} // namespace pc::harness
