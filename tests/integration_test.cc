/**
 * @file
 * Integration tests: the full pipeline from synthetic logs through
 * cache generation, device serving, updates and baselines — the
 * system-level invariants the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "baseline/browser_cache.h"
#include "baseline/lru_cache.h"
#include "core/cache_manager.h"
#include "device/mobile_device.h"
#include "device/replay.h"
#include "harness/workbench.h"
#include "logs/analyzer.h"

namespace pc {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wb_ = new harness::Workbench(harness::smallWorkbenchConfig());
    }

    static void
    TearDownTestSuite()
    {
        delete wb_;
        wb_ = nullptr;
    }

    static harness::Workbench *wb_;
};

harness::Workbench *IntegrationTest::wb_ = nullptr;

TEST_F(IntegrationTest, CommunityLogIsHeadHeavy)
{
    logs::LogAnalyzer an(wb_->buildLog());
    const auto pop = an.resultPopularity();
    // The top 2% of distinct results must carry far more than 2% of
    // clicks (Figure 4's qualitative claim).
    const std::size_t top = pop.distinctItems() / 50;
    EXPECT_GT(pop.shareOfTop(top), 0.25);
}

TEST_F(IntegrationTest, CacheFootprintIsTiny)
{
    const auto &cache = wb_->communityCache();
    // Less than 1% of a phone's memory (the paper's Section 5.1 point),
    // scaled to the small test world.
    EXPECT_LT(cache.dramBytes, 512 * kKiB);
    EXPECT_LT(cache.flashBytes, 4 * kMiB);
    EXPECT_GT(cache.pairs.size(), 100u);
    EXPECT_NEAR(cache.cumulativeShare, 0.55, 0.02);
}

TEST_F(IntegrationTest, EndToEndServeOnDevice)
{
    device::MobileDevice dev(wb_->universe());
    dev.installCommunityCache(wb_->communityCache());

    // Replay a user's month through the full device; hits must be
    // served locally ~16x faster than 3G misses.
    workload::PopulationSampler sampler(wb_->population());
    Rng rng(21);
    auto profile =
        sampler.sampleUserOfClass(rng, workload::UserClass::Medium);
    workload::UserStream stream(wb_->universe(), profile, 55);

    RunningStat hit_ms, miss_ms;
    for (const auto &ev : stream.month(0)) {
        const auto out =
            dev.serveQuery(ev.pair, device::ServePath::PocketSearch);
        (out.cacheHit ? hit_ms : miss_ms).add(toMillis(out.latency));
        dev.advanceTime(30 * kSecond);
    }
    ASSERT_GT(hit_ms.count(), 0u);
    ASSERT_GT(miss_ms.count(), 0u);
    EXPECT_LT(hit_ms.mean(), 500.0);
    EXPECT_GT(miss_ms.mean(), 3000.0);
    EXPECT_GT(miss_ms.mean() / hit_ms.mean(), 8.0);
}

TEST_F(IntegrationTest, UpdateCycleKeepsCacheEffective)
{
    // Serve a month, run the Figure 14 nightly update with the next
    // community month, and verify the cache stays effective and the
    // exchange stays small.
    pc::nvm::FlashConfig fc;
    fc.capacity = 256 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    core::PocketSearch ps(wb_->universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb_->communityCache(), t);

    workload::PopulationSampler sampler(wb_->population());
    Rng rng(31);
    auto profile =
        sampler.sampleUserOfClass(rng, workload::UserClass::High);
    workload::UserStream stream(wb_->universe(), profile, 99);
    for (const auto &ev : stream.month(0))
        ps.recordClick(ev.pair, t);

    harness::Workbench local(harness::smallWorkbenchConfig());
    const auto fresh_log = local.nextCommunityMonth();
    const auto fresh = logs::TripletTable::fromLog(fresh_log);

    core::CacheManager manager(wb_->universe());
    core::UpdatePolicy policy;
    policy.content.kind = core::ThresholdKind::VolumeShare;
    policy.content.volumeShare = 0.55;
    const auto stats = manager.update(ps, fresh, policy, t);

    EXPECT_GT(stats.pairsAdded + stats.pairsKept, 100u);
    EXPECT_LT(stats.bytesToPhone, Bytes(1.5 * double(kMiB)))
        << "paper: the nightly exchange stays under ~1.5 MB";

    // The user's habitual pairs survive the update.
    workload::UserStream stream2(wb_->universe(), profile, 99);
    u64 hits = 0, events = 0;
    for (const auto &ev : stream2.month(workload::kMonth)) {
        hits += ps.containsPair(ev.pair);
        ++events;
        ps.recordClick(ev.pair, t);
    }
    EXPECT_GT(double(hits) / double(events), 0.5);
}

TEST_F(IntegrationTest, PocketSearchBeatsBaselines)
{
    // Replay the same user streams against PocketSearch, the browser
    // substring cache and a same-capacity LRU; PocketSearch must win.
    workload::PopulationSampler sampler(wb_->population());
    Rng rng(41);
    u64 ps_hits = 0, browser_hits = 0, lru_hits = 0, events = 0;
    for (int u = 0; u < 20; ++u) {
        auto profile = sampler.sampleUser(rng);
        workload::UserStream stream(wb_->universe(), profile,
                                    1000 + u);

        pc::nvm::FlashConfig fc;
        fc.capacity = 64 * kMiB;
        pc::nvm::FlashDevice flash(fc);
        pc::simfs::FlashStore store(flash);
        core::PocketSearch ps(wb_->universe(), store);
        SimTime t = 0;
        ps.loadCommunity(wb_->communityCache(), t);
        baseline::BrowserSubstringCache browser(wb_->universe());
        baseline::LruPairCache lru(wb_->communityCache().pairs.size());

        for (const auto &ev : stream.month(0)) {
            ++events;
            ps_hits += ps.containsPair(ev.pair);
            browser_hits += browser.wouldHit(ev.pair);
            lru_hits += lru.lookup(ev.pair);
            ps.recordClick(ev.pair, t);
            browser.recordVisit(ev.pair);
            lru.insert(ev.pair);
        }
    }
    EXPECT_GT(ps_hits, lru_hits)
        << "community warm start must beat pure-recency caching";
    // The substring cache generalizes across query strings for visited
    // URLs but has nothing for unvisited or non-navigational targets;
    // PocketSearch must win overall.
    EXPECT_GT(ps_hits, browser_hits);
    EXPECT_GT(double(ps_hits) / double(events), 0.45);
}

TEST_F(IntegrationTest, DeterministicWorkbench)
{
    harness::Workbench a(harness::smallWorkbenchConfig());
    harness::Workbench b(harness::smallWorkbenchConfig());
    EXPECT_EQ(a.buildLog().size(), b.buildLog().size());
    EXPECT_EQ(a.communityCache().pairs.size(),
              b.communityCache().pairs.size());
    EXPECT_EQ(a.triplets().totalVolume(), b.triplets().totalVolume());
}

} // namespace
} // namespace pc
