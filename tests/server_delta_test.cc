/**
 * @file
 * Delta-sync tests: diffContents list construction, the core equality
 * "apply delta to a clean device == fresh install of the target
 * version", personalization retention across syncs, the full-install
 * fallback, sync failure under a dead radio, and a fleet run wired
 * through the cloud service whose snapshot must carry "server.*"
 * metrics next to the device ones.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/table_codec.h"
#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "server/service.h"

namespace pc::server {
namespace {

using harness::smallWorkbenchConfig;
using harness::Workbench;

const Workbench &
sharedWorkbench()
{
    static const Workbench wb(smallWorkbenchConfig());
    return wb;
}

workload::SearchLog
slicedLog(const Workbench &wb, std::size_t n)
{
    workload::SearchLog log(wb.universe());
    const auto &records = wb.buildLog().records();
    log.reserve(std::min(n, records.size()));
    for (std::size_t i = 0; i < records.size() && i < n; ++i)
        log.add(records[i]);
    return log;
}

/**
 * Canonical view of a device table: decoded wire pairs, sorted. Two
 * tables hold the same pairs/scores/flags iff these compare equal
 * (encodeTable itself iterates an unordered_map, so raw blobs of
 * equal tables may differ).
 */
std::vector<core::WirePair>
canonicalTable(const core::PocketSearch &ps)
{
    const auto decoded = core::decodeTable(core::encodeTable(ps.table()));
    EXPECT_TRUE(decoded.has_value());
    auto pairs = *decoded;
    std::sort(pairs.begin(), pairs.end(),
              [](const core::WirePair &a, const core::WirePair &b) {
                  if (a.queryFnv != b.queryFnv)
                      return a.queryFnv < b.queryFnv;
                  return a.urlHash < b.urlHash;
              });
    return pairs;
}

/** A service with versions 1 (partial month) and 2 (full month). */
CloudUpdateService &
sharedService()
{
    static CloudUpdateService *svc = [] {
        const Workbench &wb = sharedWorkbench();
        ServiceConfig cfg;
        cfg.build.shards = 4;
        cfg.build.threads = 2;
        auto *s = new CloudUpdateService(wb.universe(), cfg);
        s->ingest(slicedLog(wb, wb.buildLog().size() / 2));
        s->ingest(wb.buildLog());
        return s;
    }();
    return *svc;
}

TEST(DiffContents, BuildsAddEvictRerankLists)
{
    core::CacheContents from;
    from.pairs = {{{1, 10}, 0.9, 90}, // survives unchanged
                  {{2, 20}, 0.8, 80}, // re-ranked
                  {{3, 30}, 0.7, 70}}; // evicted
    core::CacheContents to;
    to.pairs = {{{1, 10}, 0.9, 90},
                {{2, 20}, 0.5, 50},
                {{4, 40}, 0.6, 60}}; // added

    const auto d = core::diffContents(from, to, 1, 2);
    EXPECT_EQ(d.fromVersion, 1u);
    EXPECT_EQ(d.toVersion, 2u);
    ASSERT_EQ(d.adds.size(), 1u);
    EXPECT_EQ(d.adds[0].pair.query, 4u);
    EXPECT_DOUBLE_EQ(d.adds[0].score, 0.6);
    ASSERT_EQ(d.evicts.size(), 1u);
    EXPECT_EQ(d.evicts[0].query, 3u);
    ASSERT_EQ(d.reranks.size(), 1u);
    EXPECT_EQ(d.reranks[0].pair.query, 2u);
    EXPECT_DOUBLE_EQ(d.reranks[0].score, 0.5);
    EXPECT_EQ(d.ops(), 3u);
    EXPECT_FALSE(d.empty());

    const auto same = core::diffContents(to, to, 2, 2);
    EXPECT_TRUE(same.empty());
    EXPECT_GT(core::deltaWireBytes(d, sharedWorkbench().universe()),
              core::deltaWireBytes(same, sharedWorkbench().universe()));
}

TEST(DeltaSync, ApplyEqualsFreshInstall)
{
    const Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = sharedService();

    // Device A: full install of v1, then the v1 -> v2 delta.
    device::MobileDevice devA(wb.universe());
    auto r1 = svc.syncDevice(devA, 1);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(devA.communityVersion(), 1u);
    EXPECT_EQ(r1.apply.added, svc.model(1).contents.pairs.size());
    auto r2 = svc.syncDevice(devA, 2);
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(devA.communityVersion(), 2u);
    EXPECT_GT(r2.apply.added + r2.apply.evicted + r2.apply.reranked, 0u)
        << "the two versions must actually differ";

    // Device B: straight to v2 (full install).
    device::MobileDevice devB(wb.universe());
    ASSERT_TRUE(svc.syncDevice(devB, 2).ok);

    EXPECT_EQ(canonicalTable(devA.pocketSearch()),
              canonicalTable(devB.pocketSearch()))
        << "delta path must land on the fresh-install table";
    EXPECT_EQ(devA.pocketSearch().pairs(), devB.pocketSearch().pairs());

    // The incremental delta must be smaller than a full install.
    EXPECT_LT(r2.deltaBytes,
              core::deltaWireBytes(svc.makeDelta(0, 2), wb.universe()));
}

TEST(DeltaSync, PersonalizationSurvivesSync)
{
    const Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = sharedService();
    const auto delta = svc.makeDelta(1, 2);
    ASSERT_FALSE(delta.evicts.empty())
        << "need an evicted pair to exercise retention";

    device::MobileDevice dev(wb.universe());
    ASSERT_TRUE(svc.syncDevice(dev, 1).ok);

    // The user clicks a pair v2 would evict: it must survive the sync.
    const workload::PairRef kept = delta.evicts.front();
    SimTime t = 0;
    dev.pocketSearch().recordClick(kept, t);

    const auto res = svc.syncDevice(dev, 2);
    ASSERT_TRUE(res.ok);
    EXPECT_GE(res.apply.keptAccessed, 1u);
    const auto state = dev.pocketSearch().findPair(kept);
    ASSERT_TRUE(state.has_value()) << "user pair evicted by the delta";
    EXPECT_TRUE(state->userAccessed);

    // And an accessed re-ranked pair only ratchets up, never down.
    if (!delta.reranks.empty()) {
        device::MobileDevice dev2(wb.universe());
        ASSERT_TRUE(svc.syncDevice(dev2, 1).ok);
        const auto &rr = delta.reranks.front();
        SimTime t2 = 0;
        dev2.pocketSearch().recordClick(rr.pair, t2);
        const double before =
            dev2.pocketSearch().findPair(rr.pair)->score;
        ASSERT_TRUE(svc.syncDevice(dev2, 2).ok);
        const double after =
            dev2.pocketSearch().findPair(rr.pair)->score;
        EXPECT_DOUBLE_EQ(after, std::max(before, rr.score));
    }
}

TEST(DeltaSync, FailedSyncLeavesDeviceUntouched)
{
    const Workbench &wb = sharedWorkbench();
    CloudUpdateService &svc = sharedService();

    device::MobileDevice dev(wb.universe());
    fault::FaultConfig fc;
    fc.radio.exchangeFailureRate = 1.0; // the cloud is unreachable
    fc.seed = 7;
    fault::FaultPlan faults(fc);
    dev.attachFaults(&faults);

    const u64 failedBefore =
        svc.metrics().snapshot().counterValue("server.syncs.failed");
    const auto res = svc.syncDevice(dev, 2);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.attempts, dev.config().retry.maxAttempts);
    EXPECT_EQ(dev.communityVersion(), 0u);
    EXPECT_EQ(dev.pocketSearch().pairs(), 0u);
    EXPECT_EQ(
        svc.metrics().snapshot().counterValue("server.syncs.failed"),
        failedBefore + 1);

    // Coverage returns: the same sync now lands.
    dev.attachFaults(nullptr);
    ASSERT_TRUE(svc.syncDevice(dev, 2).ok);
    EXPECT_EQ(dev.communityVersion(), 2u);
    EXPECT_GT(dev.pocketSearch().pairs(), 0u);
}

TEST(DeltaSync, FleetRunThroughCloudServiceCarriesServerMetrics)
{
    const Workbench &wb = sharedWorkbench();
    ServiceConfig scfg;
    scfg.build.shards = 4;
    scfg.build.threads = 2;
    CloudUpdateService svc(wb.universe(), scfg);
    svc.ingest(wb.buildLog());

    harness::FleetRunConfig cfg;
    cfg.devices = 4;
    cfg.months = 2;
    cfg.cloud = &svc;

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    const auto r = runFleet(wb, cfg, collector);

    EXPECT_EQ(r.devices, cfg.devices);
    EXPECT_EQ(r.cloudSyncs, u64(cfg.devices))
        << "every device full-installs at month 0";
    EXPECT_EQ(r.cloudSyncFailures, 0u);
    EXPECT_GT(r.cacheHits, 0u) << "synced model must serve hits";

    // Cloud metrics folded into the same fleet snapshot as devices'.
    const auto snap = collector.fleetRegistry().snapshot();
    EXPECT_GT(snap.counterValue("device.queries"), 0u);
    EXPECT_EQ(snap.counterValue("server.syncs.ok"), u64(cfg.devices));
    EXPECT_EQ(snap.counterValue("server.deltas.served"),
              u64(cfg.devices));
    EXPECT_EQ(snap.counterValue("server.ingest.records"),
              wb.buildLog().size());
    bool sawQueueGauge = false;
    for (const auto &[name, value] : snap.gauges) {
        (void)value;
        if (name == "server.queue.max_depth")
            sawQueueGauge = true;
    }
    EXPECT_TRUE(sawQueueGauge);
}

} // namespace
} // namespace pc::server
