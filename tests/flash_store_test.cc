/**
 * @file
 * Unit and property tests for the flash file store.
 */

#include <gtest/gtest.h>

#include <string>

#include "simfs/flash_store.h"

namespace pc::simfs {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.pageSize = 4 * kKiB;
    cfg.pagesPerBlock = 4;
    cfg.capacity = 4 * kMiB;
    return cfg;
}

class FlashStoreTest : public ::testing::Test
{
  protected:
    FlashStoreTest() : device_(deviceConfig()), store_(device_) {}

    pc::nvm::FlashDevice device_;
    FlashStore store_;
};

TEST_F(FlashStoreTest, CreateOpenRoundTrip)
{
    const FileId id = store_.create("a.dat");
    SimTime t = 0;
    EXPECT_EQ(store_.open("a.dat", t), id);
    EXPECT_GT(t, 0) << "open must cost metadata time";
    EXPECT_EQ(store_.open("missing", t), kNoFile);
    EXPECT_EQ(store_.lookup("a.dat"), id);
    EXPECT_TRUE(store_.valid(id));
}

TEST_F(FlashStoreTest, AppendReadRoundTrip)
{
    const FileId id = store_.create("f");
    SimTime t = 0;
    store_.append(id, "hello ", t);
    store_.append(id, "world", t);
    std::string out;
    const Bytes n = store_.read(id, 0, 100, out, t);
    EXPECT_EQ(n, 11u);
    EXPECT_EQ(out, "hello world");
    EXPECT_EQ(store_.size(id), 11u);
}

TEST_F(FlashStoreTest, ReadAtOffsetAndClamp)
{
    const FileId id = store_.create("f");
    SimTime t = 0;
    store_.append(id, "0123456789", t);
    std::string out;
    EXPECT_EQ(store_.read(id, 4, 3, out, t), 3u);
    EXPECT_EQ(out, "456");
    EXPECT_EQ(store_.read(id, 8, 100, out, t), 2u);
    EXPECT_EQ(out, "89");
    EXPECT_EQ(store_.read(id, 20, 5, out, t), 0u);
    EXPECT_EQ(out, "");
}

TEST_F(FlashStoreTest, PhysicalSizeIsBlockRounded)
{
    const FileId id = store_.create("tiny");
    SimTime t = 0;
    store_.append(id, std::string(500, 'x'), t);
    // The paper's Section 5.2.2 point: a 500-byte file occupies a whole
    // allocation block.
    EXPECT_EQ(store_.size(id), 500u);
    EXPECT_EQ(store_.physicalSize(id), store_.config().allocUnit);
    const auto stats = store_.stats();
    EXPECT_EQ(stats.logicalBytes, 500u);
    EXPECT_EQ(stats.physicalBytes, store_.config().allocUnit);
    EXPECT_EQ(stats.internalWaste(), store_.config().allocUnit - 500);
    EXPECT_GT(stats.wasteRatio(), 0.85);
}

TEST_F(FlashStoreTest, AppendAcrossBlockBoundary)
{
    const FileId id = store_.create("big");
    SimTime t = 0;
    const std::string chunk(store_.config().allocUnit - 10, 'a');
    store_.append(id, chunk, t);
    store_.append(id, std::string(100, 'b'), t);
    EXPECT_EQ(store_.physicalSize(id), 2 * store_.config().allocUnit);
    std::string out;
    store_.read(id, chunk.size(), 100, out, t);
    EXPECT_EQ(out, std::string(100, 'b'));
}

TEST_F(FlashStoreTest, TruncateAndWriteReplacesContents)
{
    const FileId id = store_.create("f");
    SimTime t = 0;
    store_.append(id, "old contents", t);
    store_.truncateAndWrite(id, "new", t);
    std::string out;
    store_.read(id, 0, 100, out, t);
    EXPECT_EQ(out, "new");
    EXPECT_EQ(store_.size(id), 3u);
    EXPECT_GT(device_.blocksErased(), 0u)
        << "rewrite must charge block erases";
}

TEST_F(FlashStoreTest, RemoveFreesBlocksForReuse)
{
    const FileId id = store_.create("f");
    SimTime t = 0;
    store_.append(id, std::string(10000, 'x'), t);
    const Bytes before = store_.stats().physicalBytes;
    EXPECT_GT(before, 0u);
    store_.remove(id);
    EXPECT_FALSE(store_.valid(id));
    EXPECT_EQ(store_.stats().physicalBytes, 0u);
    EXPECT_EQ(store_.lookup("f"), kNoFile);
    // The name can be recreated and blocks get reused.
    const FileId id2 = store_.create("f");
    store_.append(id2, "y", t);
    EXPECT_TRUE(store_.valid(id2));
}

TEST_F(FlashStoreTest, ListFilesSorted)
{
    store_.create("b");
    store_.create("a");
    store_.create("c");
    const auto names = store_.listFiles();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "c");
}

TEST_F(FlashStoreTest, TimingAccumulatesMonotonically)
{
    const FileId id = store_.create("f");
    SimTime t = 0;
    store_.append(id, "data", t);
    const SimTime after_append = t;
    EXPECT_GT(after_append, 0);
    std::string out;
    store_.read(id, 0, 4, out, t);
    EXPECT_GT(t, after_append);
}

TEST_F(FlashStoreTest, DuplicateCreateReturnsError)
{
    // Regression: creating an existing name used to be an undocumented
    // precondition (assert). It now reports a defined error and leaves
    // the existing file untouched.
    const FileId id = store_.create("dup");
    SimTime t = 0;
    store_.append(id, "payload", t);
    EXPECT_EQ(store_.create("dup"), kNoFile);
    EXPECT_EQ(store_.lookup("dup"), id);
    EXPECT_EQ(store_.size(id), 7u);
    // A removed name can be created again.
    store_.remove(id);
    const FileId id2 = store_.create("dup");
    EXPECT_NE(id2, kNoFile);
    EXPECT_NE(id2, id);
}

TEST_F(FlashStoreTest, OutOfSpaceDies)
{
    const FileId id = store_.create("huge");
    SimTime t = 0;
    const std::string chunk(256 * kKiB, 'x');
    EXPECT_DEATH(
        {
            for (int i = 0; i < 64; ++i)
                store_.append(id, chunk, t);
        },
        "out of space");
}

/** Property sweep over the paper's allocation-unit sizes. */
class AllocUnitSweep : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(AllocUnitSweep, WasteMatchesBlockArithmetic)
{
    pc::nvm::FlashDevice device(deviceConfig());
    StoreConfig cfg;
    cfg.allocUnit = GetParam();
    FlashStore store(device, cfg);
    SimTime t = 0;
    // 33 files of 500 B each: classic small-record fragmentation.
    for (int i = 0; i < 33; ++i) {
        const FileId id = store.create("r" + std::to_string(i));
        store.append(id, std::string(500, 'x'), t);
    }
    const auto stats = store.stats();
    EXPECT_EQ(stats.logicalBytes, 33u * 500u);
    EXPECT_EQ(stats.physicalBytes, 33u * cfg.allocUnit);
}

INSTANTIATE_TEST_SUITE_P(PaperBlockSizes, AllocUnitSweep,
                         ::testing::Values(4 * kKiB, 8 * kKiB, 16 * kKiB));

} // namespace
} // namespace pc::simfs

namespace pc::simfs {
namespace {

TEST(WearLeveling, FlattensEraseDistribution)
{
    // Hammer one file with rewrites while other files pin most blocks;
    // the levelled allocator must spread erases over the free pool it
    // is given, the naive LIFO allocator reuses the same blocks.
    auto max_wear = [](bool leveling) {
        pc::nvm::FlashConfig fc;
        fc.pageSize = 4 * kKiB;
        fc.pagesPerBlock = 1; // device block == allocation unit
        fc.capacity = 4 * kMiB;
        pc::nvm::FlashDevice device(fc);
        StoreConfig cfg;
        cfg.wearLeveling = leveling;
        FlashStore store(device, cfg);
        SimTime t = 0;
        // Create a pool of blocks by allocating then freeing 32 files.
        std::vector<FileId> pool;
        for (int i = 0; i < 32; ++i) {
            const FileId id = store.create("pool" + std::to_string(i));
            store.append(id, std::string(4096, 'x'), t);
            pool.push_back(id);
        }
        for (const FileId id : pool)
            store.remove(id);
        // Now rewrite one small file many times.
        const FileId hot = store.create("hot");
        store.append(hot, "seed", t);
        for (int i = 0; i < 320; ++i)
            store.truncateAndWrite(hot, std::string(100, 'y'), t);
        return device.maxWear();
    };
    const u64 naive = max_wear(false);
    const u64 levelled = max_wear(true);
    EXPECT_LT(levelled, naive)
        << "levelling must flatten the erase distribution";
    EXPECT_LE(levelled, naive / 4) << "and by a wide margin";
}

} // namespace
} // namespace pc::simfs

namespace pc::simfs {
namespace {

TEST(FlashStoreTimedRemove, ChargesEraseLatencyAndWearForFreedBlocks)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    FlashStore store(device);
    SimTime t = 0;
    const FileId id = store.create("victim");
    store.append(id, std::string(3 * store.config().allocUnit, 'x'), t);
    const u64 wearBefore = device.blocksErased();

    SimTime removeTime = 0;
    store.remove(id, removeTime);
    ASSERT_GT(removeTime, 0) << "freed blocks must pay their erases";
    ASSERT_EQ(device.blocksErased(), wearBefore + 3);
    ASSERT_FALSE(store.valid(id));
}

TEST(FlashStoreTimedRemove, UntimedOverloadStillChargesWear)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    FlashStore store(device);
    SimTime t = 0;
    const FileId id = store.create("victim");
    store.append(id, std::string(store.config().allocUnit, 'x'), t);
    const u64 wearBefore = device.blocksErased();
    store.remove(id); // legacy signature: time discarded, wear not
    ASSERT_EQ(device.blocksErased(), wearBefore + 1);
}

TEST(FlashStoreMetrics, CreateConflictsAndLatencyAccumulatorsCount)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    FlashStore store(device);
    obs::MetricRegistry reg;
    store.attachMetrics(&reg);

    ASSERT_NE(store.create("dup"), kNoFile);
    ASSERT_EQ(store.create("dup"), kNoFile); // duplicate name
    ASSERT_EQ(reg.counter("simfs.create_conflicts").value(), 1u);

    SimTime t = 0;
    const FileId id = store.lookup("dup");
    store.append(id, std::string(2000, 'x'), t);
    std::string out;
    store.read(id, 0, 2000, out, t);
    SimTime rt = 0;
    store.remove(id, rt);
    ASSERT_GT(reg.counter("simfs.write_ns").value(), 0u);
    ASSERT_GT(reg.counter("simfs.read_ns").value(), 0u);
    ASSERT_EQ(reg.counter("simfs.remove_ns").value(), u64(rt));
}

TEST(FlashStoreWriteAt, InPlaceRewriteAndSparseExtension)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    FlashStore store(device);
    SimTime t = 0;
    const FileId id = store.create("slab");

    store.writeAt(id, 0, "AAAA", t);
    ASSERT_EQ(store.size(id), 4u);
    // Sparse extension: the gap reads back as zeros.
    store.writeAt(id, 100, "BBBB", t);
    ASSERT_EQ(store.size(id), 104u);
    std::string out;
    store.read(id, 0, 104, out, t);
    ASSERT_EQ(out.substr(0, 4), "AAAA");
    ASSERT_EQ(out[50], '\0');
    ASSERT_EQ(out.substr(100, 4), "BBBB");
    // In-place rewrite does not grow the file.
    store.writeAt(id, 0, "CCCC", t);
    ASSERT_EQ(store.size(id), 104u);
    store.read(id, 0, 4, out, t);
    ASSERT_EQ(out, "CCCC");
}

} // namespace
} // namespace pc::simfs
