/**
 * @file
 * Unit tests for the PocketWeb content cloudlet's freshness policy
 * (Section 3.2) and the index-tier boot model (Section 3.3).
 */

#include <gtest/gtest.h>

#include "core/pocket_search.h"
#include "core/web_cloudlet.h"

namespace pc::core {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.capacity = 2 * kGiB;
    return cfg;
}

class WebCloudletTest : public ::testing::Test
{
  protected:
    WebCloudletTest() : device_(deviceConfig()), store_(device_)
    {
        WebCloudletConfig cfg;
        cfg.realtimeSetSize = 2;
        web_ = std::make_unique<WebContentCloudlet>(store_, cfg);
    }

    pc::nvm::FlashDevice device_;
    pc::simfs::FlashStore store_;
    std::unique_ptr<WebContentCloudlet> web_;
};

TEST_F(WebCloudletTest, StaticPageAlwaysFresh)
{
    SimTime t = 0;
    web_->installPage("www.wiki.org/page", /*dynamic=*/false, 0, t);
    SimTime serve = 0;
    // Even a month later, static content serves from flash.
    EXPECT_TRUE(web_->visit("www.wiki.org/page",
                            28ll * 24 * 3600 * kSecond, serve));
    EXPECT_GT(serve, 0);
    EXPECT_EQ(web_->stats().hitsFresh, 1u);
}

TEST_F(WebCloudletTest, DynamicPageGoesStale)
{
    SimTime t = 0;
    web_->installPage("www.cnn.com", /*dynamic=*/true, 0, t);
    SimTime serve = 0;
    // Fresh shortly after the push...
    EXPECT_TRUE(web_->visit("www.cnn.com", kSecond, serve));
    // ...stale a day later without refresh.
    EXPECT_FALSE(web_->visit("www.cnn.com", 24ll * 3600 * kSecond,
                             serve));
    EXPECT_EQ(web_->stats().missStale, 1u);
}

TEST_F(WebCloudletTest, UncachedPageMisses)
{
    SimTime serve = 0;
    EXPECT_FALSE(web_->visit("www.unknown.com", 0, serve));
    EXPECT_EQ(web_->stats().missUncached, 1u);
    EXPECT_EQ(serve, 0);
}

TEST_F(WebCloudletTest, RealtimeSetKeepsHotDynamicPagesFresh)
{
    SimTime t = 0;
    web_->installPage("www.cnn.com", true, 0, t);
    web_->installPage("www.stocks.com", true, 0, t);
    web_->installPage("www.rarelyread.com", true, 0, t);

    // The user revisits cnn and stocks a lot.
    SimTime serve = 0;
    for (int i = 0; i < 5; ++i) {
        web_->visit("www.cnn.com", kSecond * i, serve);
        web_->visit("www.stocks.com", kSecond * i, serve);
    }
    web_->visit("www.rarelyread.com", kSecond, serve);
    web_->recomputeRealtimeSet();

    EXPECT_TRUE(web_->find("www.cnn.com")->inRealtimeSet);
    EXPECT_TRUE(web_->find("www.stocks.com")->inRealtimeSet);
    EXPECT_FALSE(web_->find("www.rarelyread.com")->inRealtimeSet)
        << "realtimeSetSize=2 keeps only the hottest two";

    // Hourly background refreshes keep the hot pages fresh all day.
    for (int hour = 1; hour <= 24; ++hour)
        web_->realtimeRefresh(SimTime(hour) * 3600 * kSecond);

    const SimTime evening = 23ll * 3600 * kSecond;
    EXPECT_TRUE(web_->visit("www.cnn.com", evening, serve));
    EXPECT_FALSE(web_->visit("www.rarelyread.com", evening, serve))
        << "cold dynamic pages are allowed to go stale";
    EXPECT_GT(web_->stats().realtimeBytes, 0u);
}

TEST_F(WebCloudletTest, RealtimeBeatsBulkRefreshBandwidth)
{
    SimTime t = 0;
    for (int i = 0; i < 50; ++i) {
        web_->installPage("www.dyn" + std::to_string(i) + ".com", true,
                          0, t);
    }
    web_->recomputeRealtimeSet();
    for (int hour = 1; hour <= 24; ++hour)
        web_->realtimeRefresh(SimTime(hour) * 3600 * kSecond);
    // A day of real-time refreshes for the hot set must cost far less
    // than ONE bulk refresh of all dynamic pages (Section 3.2's point).
    EXPECT_LT(web_->stats().realtimeBytes, web_->bulkRefreshBytes() / 5);
}

TEST_F(WebCloudletTest, ShrinkEvictsLeastRevisited)
{
    SimTime t = 0;
    web_->installPage("www.hot.com", false, 0, t);
    web_->installPage("www.cold.com", false, 0, t);
    SimTime serve = 0;
    for (int i = 0; i < 5; ++i)
        web_->visit("www.hot.com", kSecond, serve);
    const Bytes released = web_->shrinkTo(WebCloudletConfig{}.pageSize);
    EXPECT_GT(released, 0u);
    EXPECT_NE(web_->find("www.hot.com"), nullptr);
    EXPECT_EQ(web_->find("www.cold.com"), nullptr);
}

TEST(IndexTier, PcmBootsInstantlyDramReloads)
{
    workload::UniverseConfig ucfg;
    ucfg.navResults = 200;
    ucfg.nonNavResults = 800;
    ucfg.navHead = 30;
    ucfg.nonNavHead = 30;
    ucfg.habitNavHead = 20;
    ucfg.habitNonNavHead = 15;
    workload::QueryUniverse uni(ucfg);
    pc::nvm::FlashDevice device(deviceConfig());
    pc::simfs::FlashStore store(device);

    PocketSearchConfig dram_cfg;
    dram_cfg.indexTier = IndexTier::DramFromNand;
    PocketSearch dram_ps(uni, store, dram_cfg);

    pc::nvm::FlashDevice device2(deviceConfig());
    pc::simfs::FlashStore store2(device2);
    PocketSearchConfig pcm_cfg;
    pcm_cfg.indexTier = IndexTier::Pcm;
    PocketSearch pcm_ps(uni, store2, pcm_cfg);

    SimTime t = 0;
    for (u32 r = 0; r < 50; ++r) {
        const workload::PairRef p{uni.result(r).queries.front().first,
                                  r};
        dram_ps.installPair(p, 0.5, false, t);
        pcm_ps.installPair(p, 0.5, false, t);
    }

    EXPECT_GT(dram_ps.bootIndexLoadTime(), 0)
        << "DRAM index must stream in from NAND at boot";
    EXPECT_EQ(pcm_ps.bootIndexLoadTime(), 0)
        << "PCM index is persistent in place";

    // PCM pays a per-probe penalty instead.
    const std::string &q = uni.query(
        uni.result(0).queries.front().first).text;
    const auto dram_out = dram_ps.lookup(q);
    const auto pcm_out = pcm_ps.lookup(q);
    EXPECT_GT(pcm_out.hashLookupTime, dram_out.hashLookupTime);
    EXPECT_EQ(indexTierName(IndexTier::Pcm), "pcm");
    EXPECT_EQ(indexTierName(IndexTier::DramFromNand), "dram-from-nand");
}

} // namespace
} // namespace pc::core
