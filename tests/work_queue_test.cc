/**
 * @file
 * WorkQueue tests: FIFO + close/drain semantics single-threaded,
 * backpressure (bounded depth, blocked producers resume), and an MPMC
 * stress run that must hand every item to exactly one consumer. The
 * stress tests are the payload of the ThreadSanitizer CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "server/work_queue.h"

namespace pc::server {
namespace {

TEST(WorkQueue, FifoSingleThreaded)
{
    WorkQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.depth(), 3u);

    int out = 0;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 3);
    EXPECT_EQ(q.depth(), 0u);
    EXPECT_EQ(q.pushes(), 3u);
    EXPECT_EQ(q.maxDepth(), 3u);
}

TEST(WorkQueue, TryPushRespectsCapacity)
{
    WorkQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)) << "queue is full";
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_TRUE(q.tryPush(3)) << "slot freed by the pop";
}

TEST(WorkQueue, CloseDrainsThenStops)
{
    WorkQueue<int> q(4);
    ASSERT_TRUE(q.push(7));
    ASSERT_TRUE(q.push(8));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(9)) << "push after close must fail";
    EXPECT_FALSE(q.tryPush(9));

    int out = 0;
    EXPECT_TRUE(q.pop(out)) << "remaining items drain after close";
    EXPECT_EQ(out, 7);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 8);
    EXPECT_FALSE(q.pop(out)) << "closed and drained";
    q.close(); // idempotent
}

TEST(WorkQueue, CloseWakesBlockedConsumers)
{
    WorkQueue<int> q(2);
    std::atomic<int> finished{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i) {
        consumers.emplace_back([&] {
            int out;
            while (q.pop(out)) {
            }
            finished.fetch_add(1);
        });
    }
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(finished.load(), 3);
}

TEST(WorkQueue, BackpressureBlocksAndResumes)
{
    WorkQueue<int> q(2);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(3)); // blocks: the queue is full
        pushed.store(true);
    });

    int out = 0;
    ASSERT_TRUE(q.pop(out)); // frees a slot; the producer resumes
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_LE(q.maxDepth(), q.capacity())
        << "backpressure must bound the queue depth";
}

TEST(WorkQueue, MpmcDeliversEveryItemExactlyOnce)
{
    constexpr int kProducers = 3;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;
    WorkQueue<int> q(8);

    std::atomic<long long> sum{0};
    std::atomic<int> received{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            int v;
            long long local = 0;
            int n = 0;
            while (q.pop(v)) {
                local += v;
                ++n;
            }
            sum.fetch_add(local);
            received.fetch_add(n);
        });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    constexpr int kTotal = kProducers * kPerProducer;
    EXPECT_EQ(received.load(), kTotal);
    // Sum of 0..kTotal-1: every item arrived exactly once.
    EXPECT_EQ(sum.load(), (long long)kTotal * (kTotal - 1) / 2);
    EXPECT_EQ(q.pushes(), u64(kTotal));
    EXPECT_LE(q.maxDepth(), q.capacity());
}

} // namespace
} // namespace pc::server
