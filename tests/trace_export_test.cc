/**
 * @file
 * Chrome trace export escaping: span names, categories and args
 * containing quotes, backslashes and control characters must survive
 * the JSON writer and parse back verbatim through the obs JSON parser
 * (the same shape chrome://tracing consumes).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/jsonparse.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pc::obs {
namespace {

/** Export `tracer` and hand back the parsed traceEvents array. */
const JsonValue *
exportAndParse(const Tracer &tracer, JsonValue &doc)
{
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    std::string err;
    if (!parseJson(os.str(), doc, &err)) {
        ADD_FAILURE() << "export did not parse: " << err;
        return nullptr;
    }
    return doc.find("traceEvents");
}

/** The first "X" event named via args-free lookup by category. */
const JsonValue *
findSpan(const JsonValue &events, const std::string &cat)
{
    for (const JsonValue &ev : events.array())
        if (ev.strOr("ph", "") == "X" && ev.strOr("cat", "") == cat)
            return &ev;
    return nullptr;
}

TEST(TraceExport, HostileStringsRoundTrip)
{
    Tracer tracer;
    TraceSpan sp;
    sp.name = "he said \"quote\" and used a \\backslash\\";
    sp.category = "hostile";
    sp.start = 1000;
    sp.duration = 500;
    sp.args.emplace_back("newline\nkey", "tab\tvalue");
    sp.args.emplace_back("control", std::string("\x01\x02\x1f"));
    sp.args.emplace_back("empty", "");
    tracer.record(sp);

    JsonValue doc;
    const JsonValue *events = exportAndParse(tracer, doc);
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    const JsonValue *ev = findSpan(*events, "hostile");
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->strOr("name", ""),
              "he said \"quote\" and used a \\backslash\\");
    const JsonValue *args = ev->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->strOr("newline\nkey", ""), "tab\tvalue");
    EXPECT_EQ(args->strOr("control", ""), std::string("\x01\x02\x1f"));
    const JsonValue *empty = args->find("empty");
    ASSERT_NE(empty, nullptr);
    EXPECT_TRUE(empty->isString());
    EXPECT_EQ(empty->str(), "");
}

TEST(TraceExport, TrackLabelsWithEscapesRoundTrip)
{
    Tracer tracer;
    const u32 tid = tracer.track("track \"zero\"\n\\one");
    tracer.span(tid, "plain", "c", 0, 1);

    JsonValue doc;
    const JsonValue *events = exportAndParse(tracer, doc);
    ASSERT_NE(events, nullptr);

    bool found = false;
    for (const JsonValue &ev : events->array()) {
        if (ev.strOr("ph", "") != "M")
            continue;
        const JsonValue *args = ev.find("args");
        if (args != nullptr &&
            args->strOr("name", "") == "track \"zero\"\n\\one")
            found = true;
    }
    EXPECT_TRUE(found) << "escaped track label did not survive";
}

TEST(TraceExport, TimesAndDropCountSurvive)
{
    Tracer tracer(/*capacity=*/2);
    tracer.span(0, "a", "c", 1500, 250); // will be evicted
    tracer.span(0, "b", "c", 3000, 750);
    tracer.span(0, "c", "c", 5000, 1250);
    ASSERT_EQ(tracer.dropped(), 1u);

    JsonValue doc;
    const JsonValue *events = exportAndParse(tracer, doc);
    ASSERT_NE(events, nullptr);
    EXPECT_DOUBLE_EQ(doc.numberOr("droppedSpans", -1), 1.0);

    std::size_t xEvents = 0;
    for (const JsonValue &ev : events->array()) {
        if (ev.strOr("ph", "") != "X")
            continue;
        ++xEvents;
        if (ev.strOr("name", "") == "b") {
            // ns -> us with decimals.
            EXPECT_DOUBLE_EQ(ev.numberOr("ts", 0), 3.0);
            EXPECT_DOUBLE_EQ(ev.numberOr("dur", 0), 0.75);
        }
    }
    EXPECT_EQ(xEvents, 2u) << "ring keeps the newest spans";
}

TEST(TraceExport, MetricsAttachmentCountsRecordingLive)
{
    MetricRegistry reg;
    Tracer tracer(/*capacity=*/2);
    tracer.span(0, "pre", "c", 0, 1); // before attach: folded in
    tracer.attachMetrics(&reg);
    tracer.span(0, "live1", "c", 1, 1);
    tracer.span(0, "live2", "c", 2, 1); // evicts "pre"
    EXPECT_EQ(reg.counter("obs.trace.recorded").value(), 3u);
    EXPECT_EQ(reg.counter("obs.trace.dropped").value(), 1u);
    tracer.attachMetrics(nullptr); // detach: no further counting
    tracer.span(0, "after", "c", 3, 1);
    EXPECT_EQ(reg.counter("obs.trace.recorded").value(), 3u);
}

} // namespace
} // namespace pc::obs
