/**
 * @file
 * pc::store engine tests: backend-equivalence grid against a reference
 * model, page-cache invariants, GC integrity, write batching, recovery,
 * and the ResultDatabase engine mode.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "core/result_db.h"
#include "nvm/flash_device.h"
#include "store/engine.h"
#include "store/page_cache.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pc::store {
namespace {

std::string
valueFor(u64 key, u64 version, Bytes size)
{
    std::string v = std::to_string(key) + ":" + std::to_string(version) + ":";
    while (v.size() < size)
        v.push_back(char('a' + (key + version + v.size()) % 26));
    return v.substr(0, size);
}

// ---------------------------------------------------------------------
// Backend-equivalence grid: every (index backend × cache size × batch
// window) cell must agree with an in-memory reference model under the
// same randomized op sequence.
// ---------------------------------------------------------------------

class EngineVsReference
    : public ::testing::TestWithParam<std::tuple<IndexBackend, u32, u32>>
{
};

TEST_P(EngineVsReference, RandomOpsMatchReferenceModel)
{
    const auto [backend, cachePages, batchWindow] = GetParam();

    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);

    StoreEngineConfig cfg;
    cfg.backend = backend;
    cfg.cache.capacityPages = cachePages;
    cfg.batchWindow = batchWindow;
    cfg.slotsPerSlab = 32;
    StoreEngine eng(store, cfg);

    std::map<u64, std::string> ref;
    Rng rng(u64(backend) * 1000 + cachePages * 10 + batchWindow + 5);
    SimTime t = 0;
    SimTime prev = 0;
    u64 version = 0;

    for (int step = 0; step < 1500; ++step) {
        const u64 key = rng.below(120);
        const u64 op = rng.below(100);
        if (op < 45) { // put/update
            const Bytes size = 20 + rng.below(2800);
            const std::string v = valueFor(key, ++version, size);
            ASSERT_TRUE(eng.put(key, v, t));
            ref[key] = v;
        } else if (op < 60) { // remove
            ASSERT_EQ(eng.remove(key, t), ref.erase(key) > 0);
        } else { // get
            std::string out;
            const bool found = eng.get(key, out, t);
            ASSERT_EQ(found, ref.count(key) > 0) << "key " << key;
            if (found) {
                ASSERT_EQ(out, ref[key]);
            }
        }
        ASSERT_GE(t, prev); // simulated time never runs backwards
        prev = t;
        ASSERT_EQ(eng.items(), ref.size());
    }

    // Full sweep at the end: every reference key present and exact.
    for (const auto &[key, val] : ref) {
        std::string out;
        ASSERT_TRUE(eng.get(key, out, t));
        ASSERT_EQ(out, val);
        ASSERT_TRUE(eng.contains(key));
    }
    Bytes logical = 0;
    for (const auto &[key, val] : ref)
        logical += val.size();
    ASSERT_EQ(eng.logicalBytes(), logical);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineVsReference,
    ::testing::Combine(::testing::Values(IndexBackend::Hash,
                                         IndexBackend::Ordered),
                       ::testing::Values(0u, 8u, 256u),
                       ::testing::Values(0u, 8u)));

// ---------------------------------------------------------------------
// Page cache
// ---------------------------------------------------------------------

TEST(PageCacheTest, CapacityIsRespectedAndLruEvicts)
{
    PageCacheConfig cfg;
    cfg.capacityPages = 3;
    PageCache cache(cfg);

    cache.insert(1, 0, "a");
    cache.insert(1, 1, "b");
    cache.insert(1, 2, "c");
    ASSERT_EQ(cache.pagesCached(), 3u);

    // Touch page 0 so page 1 becomes the LRU victim.
    ASSERT_NE(cache.lookup(1, 0), nullptr);
    cache.insert(1, 3, "d");
    ASSERT_EQ(cache.pagesCached(), 3u);
    ASSERT_EQ(cache.stats().evictions, 1u);
    ASSERT_TRUE(cache.contains(1, 0));
    ASSERT_FALSE(cache.contains(1, 1)); // evicted
    ASSERT_TRUE(cache.contains(1, 2));
    ASSERT_TRUE(cache.contains(1, 3));
}

TEST(PageCacheTest, HitMissAndInvalidationCounting)
{
    PageCache cache(PageCacheConfig{4 * kKiB, 4});
    ASSERT_EQ(cache.lookup(7, 0), nullptr);
    ASSERT_EQ(cache.stats().misses, 1u);
    cache.insert(7, 0, "x");
    const std::string *p = cache.lookup(7, 0);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(*p, "x");
    ASSERT_EQ(cache.stats().hits, 1u);

    cache.insert(7, 1, "y");
    cache.insert(8, 0, "z");
    cache.invalidate(7, 0);
    ASSERT_FALSE(cache.contains(7, 0));
    cache.invalidateFile(7);
    ASSERT_FALSE(cache.contains(7, 1));
    ASSERT_TRUE(cache.contains(8, 0)); // other file untouched
    ASSERT_EQ(cache.stats().invalidations, 2u);
}

TEST(PageCacheTest, ZeroCapacityDisablesCaching)
{
    PageCache cache(PageCacheConfig{4 * kKiB, 0});
    cache.insert(1, 0, "a");
    ASSERT_EQ(cache.pagesCached(), 0u);
    ASSERT_EQ(cache.lookup(1, 0), nullptr);
}

TEST(StoreEngineTest, CachedRereadIsCheaperThanFirstRead)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    StoreEngineConfig cfg;
    cfg.cache.capacityPages = 64;
    StoreEngine eng(store, cfg);

    SimTime t = 0;
    ASSERT_TRUE(eng.put(42, valueFor(42, 1, 400), t));
    eng.flush(t);

    std::string out;
    SimTime cold = 0;
    ASSERT_TRUE(eng.get(42, out, cold));
    SimTime warm = 0;
    ASSERT_TRUE(eng.get(42, out, warm));
    ASSERT_LT(warm, cold);
    ASSERT_GT(eng.cacheStats().hits, 0u);
}

// ---------------------------------------------------------------------
// Write batching
// ---------------------------------------------------------------------

TEST(WriteBatchTest, ContiguousOpsCoalesceIntoOneRun)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    const auto id = store.create("wb");

    WriteBatch batch(store, 16);
    SimTime t = 0;
    for (int i = 0; i < 8; ++i)
        batch.enqueue(id, Bytes(i) * 10, std::string(10, char('a' + i)), t);
    batch.flush(t);

    ASSERT_EQ(batch.stats().ops, 8u);
    ASSERT_EQ(batch.stats().runs, 1u); // one contiguous program
    ASSERT_GT(batch.stats().coalescing(), 7.0);

    std::string out;
    store.read(id, 0, 80, out, t);
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(out[std::size_t(i) * 10], char('a' + i));
}

TEST(WriteBatchTest, NonContiguousOpsKeepTheirOrder)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    const auto id = store.create("wb");

    WriteBatch batch(store, 16);
    SimTime t = 0;
    batch.enqueue(id, 100, "BBBB", t);
    batch.enqueue(id, 0, "AAAA", t);  // backwards jump: no merge
    batch.enqueue(id, 4, "CCCC", t);  // contiguous with previous
    batch.flush(t);
    ASSERT_EQ(batch.stats().runs, 2u);

    std::string out;
    store.read(id, 0, 8, out, t);
    ASSERT_EQ(out, "AAAACCCC");
}

// ---------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------

TEST(StoreEngineTest, GcReclaimsSlabsAndPreservesEveryLiveItem)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);

    StoreEngineConfig cfg;
    cfg.sizeClasses = {256};
    cfg.slotsPerSlab = 16;
    cfg.gcAuto = false; // collect explicitly below
    StoreEngine eng(store, cfg);

    SimTime t = 0;
    std::map<u64, std::string> ref;
    for (u64 k = 0; k < 96; ++k) {
        ref[k] = valueFor(k, 1, 180);
        ASSERT_TRUE(eng.put(k, ref[k], t));
    }
    eng.flush(t);
    // Kill most of the early keys: early slabs go fragmented.
    for (u64 k = 0; k < 96; ++k) {
        if (k % 4 != 0) {
            ASSERT_TRUE(eng.remove(k, t));
            ref.erase(k);
        }
    }
    const Bytes before = eng.physicalBytes();
    const u32 reclaimed = eng.gcSweep(t);
    ASSERT_GT(reclaimed, 0u);
    ASSERT_LT(eng.physicalBytes(), before);
    ASSERT_EQ(eng.gcStats().slabsReclaimed, reclaimed);
    ASSERT_GT(eng.gcStats().relocated, 0u);

    // Every surviving key intact after relocation.
    for (const auto &[key, val] : ref) {
        std::string out;
        ASSERT_TRUE(eng.get(key, out, t));
        ASSERT_EQ(out, val);
    }
    ASSERT_EQ(eng.items(), ref.size());
}

TEST(StoreEngineTest, AutoGcTriggersUnderUpdateChurn)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);

    StoreEngineConfig cfg;
    cfg.sizeClasses = {256};
    cfg.slotsPerSlab = 16;
    cfg.gcDeadFraction = 0.5;
    StoreEngine eng(store, cfg);

    SimTime t = 0;
    Rng rng(11);
    for (int step = 0; step < 2000; ++step) {
        const u64 k = rng.below(64);
        ASSERT_TRUE(eng.put(k, valueFor(k, u64(step), 150), t));
    }
    ASSERT_GT(eng.gcStats().collections, 0u);
    // Churn over 64 keys can never legitimately need more than a few
    // slabs' worth of space once GC keeps up.
    ASSERT_LT(eng.physicalBytes(), 64 * Bytes(10) * 256);
}

// ---------------------------------------------------------------------
// Recovery / attach
// ---------------------------------------------------------------------

TEST(StoreEngineTest, ReattachRecoversIndexFromSlabs)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);

    StoreEngineConfig cfg;
    cfg.slotsPerSlab = 16;
    std::map<u64, std::string> ref;
    {
        StoreEngine eng(store, cfg);
        SimTime t = 0;
        for (u64 k = 0; k < 40; ++k) {
            ref[k] = valueFor(k, 1, 100 + k * 20);
            ASSERT_TRUE(eng.put(k, ref[k], t));
        }
        // Updates + removes so recovery must pick winners by seq.
        for (u64 k = 0; k < 40; k += 3) {
            ref[k] = valueFor(k, 2, 90);
            ASSERT_TRUE(eng.put(k, ref[k], t));
        }
        for (u64 k = 1; k < 40; k += 5) {
            ASSERT_TRUE(eng.remove(k, t));
            ref.erase(k);
        }
        eng.flush(t);
    } // engine gone; flash survives

    StoreEngine eng2(store, cfg);
    ASSERT_GT(eng2.recoveryTime(), 0);
    ASSERT_EQ(eng2.items(), ref.size());
    SimTime t = 0;
    for (const auto &[key, val] : ref) {
        std::string out;
        ASSERT_TRUE(eng2.get(key, out, t));
        ASSERT_EQ(out, val);
    }
    // New writes must not collide with recovered slab files.
    ASSERT_TRUE(eng2.put(999, valueFor(999, 1, 50), t));
    std::string out;
    ASSERT_TRUE(eng2.get(999, out, t));
}

TEST(StoreEngineTest, RejectsOversizedValues)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    pc::simfs::FlashStore store(device);
    StoreEngine eng(store);

    SimTime t = 0;
    const Bytes cap = eng.config().sizeClasses.back() -
                      StoreEngine::kHeaderSize;
    ASSERT_FALSE(eng.put(1, std::string(cap + 1, 'x'), t));
    ASSERT_TRUE(eng.put(1, std::string(cap, 'x'), t));
}

TEST(StoreEngineTest, IndexProbeCostsMatchBackendShape)
{
    auto hash = makeIndex(IndexBackend::Hash);
    auto ordered = makeIndex(IndexBackend::Ordered);
    // Hash probes are size-independent; tree probes grow with log n.
    ASSERT_EQ(hash->probeCost(10), hash->probeCost(1'000'000));
    ASSERT_LT(ordered->probeCost(16), ordered->probeCost(1'000'000));
}

// ---------------------------------------------------------------------
// ResultDatabase engine mode
// ---------------------------------------------------------------------

TEST(ResultDbEngineMode, EngineAndFlatModesAgree)
{
    using pc::core::DbConfig;
    using pc::core::ResultDatabase;
    using pc::core::ResultRecord;

    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice devFlat(fc), devEng(fc);
    pc::simfs::FlashStore flatStore(devFlat), engStore(devEng);

    DbConfig flatCfg;
    DbConfig engCfg;
    engCfg.useStoreEngine = true;
    ResultDatabase flat(flatStore, flatCfg);
    ResultDatabase eng(engStore, engCfg);
    ASSERT_EQ(flat.engine(), nullptr);
    ASSERT_NE(eng.engine(), nullptr);

    SimTime tf = 0, te = 0;
    std::vector<pc::workload::ResultInfo> infos;
    for (int i = 0; i < 50; ++i) {
        pc::workload::ResultInfo r;
        r.navigational = false;
        r.url = "http://example.org/page/" + std::to_string(i);
        r.title = "Title " + std::to_string(i);
        r.description = "Description of page " + std::to_string(i);
        infos.push_back(r);
        ASSERT_EQ(flat.addRecord(r, tf), eng.addRecord(r, te));
    }
    ASSERT_EQ(flat.records(), eng.records());

    // Updates replace in both modes.
    for (int i = 0; i < 50; i += 7) {
        auto r = infos[std::size_t(i)];
        r.title = "Updated " + std::to_string(i);
        infos[std::size_t(i)] = r;
        ASSERT_TRUE(flat.updateRecord(r, tf));
        ASSERT_TRUE(eng.updateRecord(r, te));
    }
    ASSERT_EQ(flat.records(), eng.records());

    for (const auto &r : infos) {
        const u64 key = pc::urlHash(r.url);
        ResultRecord a, b;
        SimTime ta = 0, tb = 0;
        ASSERT_TRUE(flat.fetch(key, a, ta));
        ASSERT_TRUE(eng.fetch(key, b, tb));
        ASSERT_EQ(a.title, b.title);
        ASSERT_EQ(a.description, b.description);
        ASSERT_EQ(a.url, b.url);
        ASSERT_EQ(a.title, r.title);
    }
}

} // namespace
} // namespace pc::store
