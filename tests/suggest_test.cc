/**
 * @file
 * Unit tests for the auto-suggest prefix index and PocketSearch's
 * instant-results-while-typing path (Figure 1).
 */

#include <gtest/gtest.h>

#include "core/pocket_search.h"
#include "core/suggest.h"

namespace pc::core {
namespace {

TEST(SuggestIndex, InsertAndPrefixLookup)
{
    SuggestIndex idx;
    EXPECT_TRUE(idx.insert("youtube", 0.9));
    EXPECT_TRUE(idx.insert("yotube", 0.2));
    EXPECT_TRUE(idx.insert("yellow pages", 0.5));
    EXPECT_TRUE(idx.insert("facebook", 1.0));
    EXPECT_EQ(idx.size(), 4u);

    SimTime t = 0;
    const auto y = idx.suggest("y", 10, &t);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_EQ(y[0].query, "youtube") << "ordered by score";
    EXPECT_EQ(y[1].query, "yellow pages");
    EXPECT_EQ(y[2].query, "yotube");
    EXPECT_EQ(t, SuggestIndex::kKeystrokeLatency);

    const auto you = idx.suggest("you", 10);
    ASSERT_EQ(you.size(), 1u);
    EXPECT_EQ(you[0].query, "youtube");
}

TEST(SuggestIndex, EmptyPrefixMatchesEverything)
{
    SuggestIndex idx;
    idx.insert("a", 0.1);
    idx.insert("b", 0.9);
    const auto all = idx.suggest("", 10);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].query, "b");
}

TEST(SuggestIndex, TopKLimits)
{
    SuggestIndex idx;
    for (int i = 0; i < 20; ++i)
        idx.insert("query" + std::to_string(i), double(i));
    const auto top3 = idx.suggest("query", 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3[0].query, "query19");
    EXPECT_TRUE(idx.suggest("query", 0).empty());
}

TEST(SuggestIndex, ScoresOnlyRatchetUp)
{
    SuggestIndex idx;
    idx.insert("cnn", 0.8);
    EXPECT_FALSE(idx.insert("cnn", 0.3)) << "existing entry";
    const auto s = idx.suggest("cnn", 1);
    EXPECT_DOUBLE_EQ(s[0].score, 0.8);
    idx.insert("cnn", 1.5);
    EXPECT_DOUBLE_EQ(idx.suggest("cnn", 1)[0].score, 1.5);
}

TEST(SuggestIndex, EraseAndClear)
{
    SuggestIndex idx;
    idx.insert("abc", 1.0);
    idx.insert("abd", 1.0);
    EXPECT_TRUE(idx.erase("abc"));
    EXPECT_FALSE(idx.erase("abc"));
    EXPECT_EQ(idx.suggest("ab", 10).size(), 1u);
    idx.clear();
    EXPECT_EQ(idx.size(), 0u);
}

TEST(SuggestIndex, NoFalsePrefixMatches)
{
    SuggestIndex idx;
    idx.insert("car", 1.0);
    idx.insert("cart", 1.0);
    idx.insert("cat", 1.0);
    EXPECT_EQ(idx.suggest("car", 10).size(), 2u);
    EXPECT_EQ(idx.suggest("cart", 10).size(), 1u);
    EXPECT_TRUE(idx.suggest("carts", 10).empty());
    EXPECT_TRUE(idx.suggest("d", 10).empty());
}

TEST(SuggestIndex, MemoryBytesGrowWithContent)
{
    SuggestIndex idx;
    const Bytes empty = idx.memoryBytes();
    idx.insert("some query string", 1.0);
    EXPECT_GT(idx.memoryBytes(), empty);
}

class PocketSuggestTest : public ::testing::Test
{
  protected:
    PocketSuggestTest()
    {
        workload::UniverseConfig ucfg;
        ucfg.navResults = 200;
        ucfg.nonNavResults = 800;
        ucfg.navHead = 30;
        ucfg.nonNavHead = 30;
        ucfg.habitNavHead = 20;
        ucfg.habitNonNavHead = 15;
        uni_ = std::make_unique<workload::QueryUniverse>(ucfg);
        pc::nvm::FlashConfig fc;
        fc.capacity = 64 * kMiB;
        flash_ = std::make_unique<pc::nvm::FlashDevice>(fc);
        store_ = std::make_unique<pc::simfs::FlashStore>(*flash_);
        ps_ = std::make_unique<PocketSearch>(*uni_, *store_);
    }

    std::unique_ptr<workload::QueryUniverse> uni_;
    std::unique_ptr<pc::nvm::FlashDevice> flash_;
    std::unique_ptr<pc::simfs::FlashStore> store_;
    std::unique_ptr<PocketSearch> ps_;
};

TEST_F(PocketSuggestTest, TypingSurfacesCachedQueryWithResults)
{
    const workload::PairRef p{uni_->result(0).queries.front().first, 0};
    const std::string &q = uni_->query(p.query).text;
    SimTime t = 0;
    ps_->installPair(p, 0.9, false, t);

    // Type the query one character at a time; once the prefix is
    // unambiguous the full query with its result must appear.
    const auto out = ps_->suggestWithResults(q.substr(0, 2), 5, 1);
    bool found = false;
    for (const auto &row : out.rows) {
        if (row.suggestion.query == q) {
            found = true;
            ASSERT_EQ(row.results.size(), 1u);
            EXPECT_EQ(row.results[0].url, uni_->result(0).url);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_GT(out.latency, 0);
}

TEST_F(PocketSuggestTest, ClicksFeedTheBox)
{
    const workload::PairRef p{
        uni_->result(42).queries.front().first, 42};
    const std::string &q = uni_->query(p.query).text;
    EXPECT_TRUE(ps_->suggestWithResults(q.substr(0, 3), 5).rows.empty());
    SimTime t = 0;
    ps_->recordClick(p, t);
    const auto out = ps_->suggestWithResults(q.substr(0, 3), 5);
    ASSERT_FALSE(out.rows.empty());
    EXPECT_EQ(out.rows[0].suggestion.query, q);
}

TEST_F(PocketSuggestTest, DisabledIndexStaysEmpty)
{
    PocketSearchConfig cfg;
    cfg.enableSuggest = false;
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    PocketSearch ps(*uni_, store, cfg);
    SimTime t = 0;
    ps.installPair({uni_->result(0).queries.front().first, 0}, 0.9,
                   false, t);
    EXPECT_EQ(ps.suggestIndex().size(), 0u);
}

TEST_F(PocketSuggestTest, ClearTableClearsSuggestions)
{
    SimTime t = 0;
    ps_->installPair({uni_->result(0).queries.front().first, 0}, 0.9,
                     false, t);
    EXPECT_GT(ps_->suggestIndex().size(), 0u);
    ps_->clearTable();
    EXPECT_EQ(ps_->suggestIndex().size(), 0u);
}

} // namespace
} // namespace pc::core
