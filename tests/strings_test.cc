/**
 * @file
 * Unit tests for string helpers.
 */

#include <gtest/gtest.h>

#include "util/strings.h"

namespace pc {
namespace {

TEST(Strformat, FormatsLikePrintf)
{
    EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strformat("plain"), "plain");
}

TEST(HumanBytes, PicksUnits)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(2 * kKiB), "2.00 KiB");
    EXPECT_EQ(humanBytes(kMiB + kMiB / 2), "1.50 MiB");
    EXPECT_EQ(humanBytes(3 * kGiB), "3.00 GiB");
    EXPECT_EQ(humanBytes(2048 * kGiB), "2.00 TiB");
}

TEST(HumanTime, PicksUnits)
{
    EXPECT_EQ(humanTime(500), "500 ns");
    EXPECT_EQ(humanTime(1500), "1.500 us");
    EXPECT_EQ(humanTime(fromMillis(378)), "378.000 ms");
    EXPECT_EQ(humanTime(6 * kSecond), "6.000 s");
}

TEST(Split, KeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleField)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Join, RoundTripsWithSplit)
{
    const std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, AsciiOnly)
{
    EXPECT_EQ(toLower("YouTube"), "youtube");
    EXPECT_EQ(toLower("already lower 123"), "already lower 123");
}

TEST(Contains, Substrings)
{
    EXPECT_TRUE(contains("www.youtube.com", "youtube"));
    EXPECT_FALSE(contains("www.youtube.com", "facebook"));
    EXPECT_TRUE(contains("abc", ""));
}

TEST(StartsWith, Prefixes)
{
    EXPECT_TRUE(startsWith("www.x.com", "www."));
    EXPECT_FALSE(startsWith("x.com", "www."));
    EXPECT_FALSE(startsWith("ab", "abc"));
}

TEST(StripUrlDecoration, RemovesSchemeAndWww)
{
    EXPECT_EQ(stripUrlDecoration("http://www.youtube.com"), "youtube.com");
    EXPECT_EQ(stripUrlDecoration("https://site.org/p"), "site.org/p");
    EXPECT_EQ(stripUrlDecoration("www.bank.com"), "bank.com");
    EXPECT_EQ(stripUrlDecoration("bare.com"), "bare.com");
}

} // namespace
} // namespace pc
