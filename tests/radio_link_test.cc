/**
 * @file
 * Unit tests for the radio link models.
 */

#include <gtest/gtest.h>

#include "radio/link.h"

namespace pc::radio {
namespace {

TEST(TransferTime, BasicArithmetic)
{
    // 100 KB at 800 kbit/s = 1.024 s.
    const SimTime t = transferTime(100 * 1024, 800e3);
    EXPECT_NEAR(toSeconds(t), 1.024, 0.001);
    EXPECT_EQ(transferTime(0, 1e6), 0);
}

TEST(RadioLink, ColdStartPaysWakeup)
{
    RadioLink link(threeGConfig());
    EXPECT_TRUE(link.needsWakeup(0));
    const auto r = link.request(0, 1024, 100 * 1024, fromMillis(250));
    ASSERT_FALSE(r.segments.empty());
    EXPECT_EQ(r.segments.front().label, "wakeup");
    EXPECT_GE(r.segments.front().duration, fromMillis(1500))
        << "paper: 1.5-2 s radio wake-up";
    EXPECT_LE(r.segments.front().duration, fromMillis(2000));
}

TEST(RadioLink, BackToBackSkipsWakeup)
{
    RadioLink link(threeGConfig());
    const auto first = link.request(0, 1024, 100 * 1024, fromMillis(250));
    // A second query right after the first lands inside the tail.
    const SimTime now = first.latency + fromMillis(100);
    EXPECT_FALSE(link.needsWakeup(now));
    const auto second =
        link.request(now, 1024, 100 * 1024, fromMillis(250));
    EXPECT_NE(second.segments.front().label, "wakeup");
    EXPECT_LT(second.latency, first.latency);
}

TEST(RadioLink, IdleGapForcesWakeupAgain)
{
    RadioLink link(threeGConfig());
    const auto first = link.request(0, 1024, 100 * 1024, fromMillis(250));
    const SimTime later = first.latency + fromMillis(10'000);
    EXPECT_TRUE(link.needsWakeup(later));
}

TEST(RadioLink, ResetForgetsState)
{
    RadioLink link(wifiConfig());
    link.request(0, 1024, 1024, 0);
    link.reset();
    EXPECT_TRUE(link.needsWakeup(fromMillis(1)));
}

TEST(RadioLink, LatencyOrderingMatchesPaper)
{
    // Figure 15a ordering for a search exchange: EDGE > 3G > WiFi.
    RadioLink threeg(threeGConfig());
    RadioLink edge(edgeConfig());
    RadioLink wifi(wifiConfig());
    const Bytes up = 1 * kKiB, down = 100 * kKiB;
    const SimTime server = fromMillis(250);
    const SimTime t3g = threeg.request(0, up, down, server).latency;
    const SimTime tedge = edge.request(0, up, down, server).latency;
    const SimTime twifi = wifi.request(0, up, down, server).latency;
    EXPECT_GT(tedge, t3g);
    EXPECT_GT(t3g, twifi);
}

TEST(RadioLink, EnergyIncludesTail)
{
    RadioLink link(threeGConfig());
    const auto r = link.request(0, 1024, 100 * 1024, fromMillis(250));
    MicroJoules sum = 0;
    SimTime latency = 0;
    bool has_tail = false;
    for (const auto &seg : r.segments) {
        sum += energyOver(seg.power, seg.duration);
        if (seg.label == "tail") {
            has_tail = true;
        } else {
            latency += seg.duration;
        }
    }
    EXPECT_TRUE(has_tail);
    EXPECT_NEAR(r.radioEnergy, sum, 1e-6);
    EXPECT_EQ(r.latency, latency) << "tail costs energy, not latency";
}

TEST(RadioLink, StatsAccumulate)
{
    RadioLink link(edgeConfig());
    link.request(0, 100, 100, 0);
    link.request(kSecond * 100, 100, 100, 0);
    EXPECT_EQ(link.requests(), 2u);
    EXPECT_GT(link.totalEnergy(), 0.0);
}

TEST(RadioLink, ServerTimeCountsTowardLatency)
{
    RadioLink a(threeGConfig()), b(threeGConfig());
    const SimTime t0 = a.request(0, 100, 100, 0).latency;
    const SimTime t1 = b.request(0, 100, 100, fromMillis(500)).latency;
    EXPECT_EQ(t1 - t0, fromMillis(500));
}

TEST(RadioLink, ThroughputAffectsDownlinkOnly)
{
    LinkConfig fast = threeGConfig();
    fast.downlinkBps = 10e6;
    RadioLink slow(threeGConfig());
    RadioLink quick(fast);
    const SimTime ts = slow.request(0, 100, 1000 * 1024, 0).latency;
    const SimTime tq = quick.request(0, 100, 1000 * 1024, 0).latency;
    EXPECT_GT(ts, tq);
}

} // namespace
} // namespace pc::radio
