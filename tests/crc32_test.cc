/**
 * @file
 * Known-answer tests for the CRC-32 used by the snapshot commit
 * protocol. The check values are the standard CRC-32/ISO-HDLC vectors
 * (zlib's crc32 produces the same numbers).
 */

#include <gtest/gtest.h>

#include <string>

#include "util/crc32.h"

namespace pc {
namespace {

TEST(Crc32Test, KnownAnswers)
{
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u) << "the check value";
    EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
    EXPECT_EQ(crc32("abc"), 0x352441C2u);
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
              0x414FA339u);
}

TEST(Crc32Test, BinaryDataAndNulBytes)
{
    const std::string zeros(4, '\0');
    EXPECT_EQ(crc32(zeros), 0x2144DF1Cu); // standard 4x00 vector
    const std::string ff(4, char(0xFF));
    EXPECT_EQ(crc32(ff), 0xFFFFFFFFu); // standard 4xFF vector
}

TEST(Crc32Test, ChainingMatchesOneShot)
{
    const std::string s = "123456789";
    for (std::size_t split = 0; split <= s.size(); ++split) {
        const u32 first = crc32(s.substr(0, split));
        EXPECT_EQ(crc32(s.substr(split), first), crc32(s))
            << "split at " << split;
    }
}

TEST(Crc32Test, SingleBitFlipChangesChecksum)
{
    std::string data = "pocket cloudlets snapshot payload";
    const u32 clean = crc32(data);
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string flipped = data;
            flipped[byte] = char(u8(flipped[byte]) ^ (1u << bit));
            EXPECT_NE(crc32(flipped), clean)
                << "flip at byte " << byte << " bit " << bit;
        }
    }
}

} // namespace
} // namespace pc
