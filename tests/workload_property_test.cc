/**
 * @file
 * Property tests on the workload generator: statistical invariants
 * that must hold across user classes and process parameters.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "logs/analyzer.h"
#include "logs/triplets.h"
#include "workload/loggen.h"
#include "workload/stream.h"

namespace pc::workload {
namespace {

UniverseConfig
tinyUniverse()
{
    UniverseConfig cfg;
    cfg.navResults = 1000;
    cfg.nonNavResults = 4000;
    cfg.navHead = 120;
    cfg.nonNavHead = 120;
    cfg.habitNavHead = 60;
    cfg.habitNonNavHead = 40;
    cfg.trendStride = 10;
    return cfg;
}

/** Measured per-user repeat rate over one generated month. */
double
measuredRepeatRate(const QueryUniverse &uni, double new_rate, u64 seed)
{
    UserProfile p;
    p.monthlyVolume = 400;
    p.newRate = new_rate;
    p.hotSetSize = 6;
    UserStream stream(uni, p, seed);
    std::unordered_set<u64> seen;
    u64 repeats = 0, events = 0;
    for (const auto &ev : stream.month(0)) {
        const u64 key = (u64(ev.pair.query) << 32) | ev.pair.result;
        ++events;
        repeats += !seen.insert(key).second;
    }
    return double(repeats) / double(events);
}

TEST(WorkloadProperties, RepeatRateMonotoneInNewRate)
{
    QueryUniverse uni(tinyUniverse());
    // Averaged over several seeds to control sampling noise.
    auto avg = [&](double nr) {
        double sum = 0.0;
        for (u64 s = 1; s <= 5; ++s)
            sum += measuredRepeatRate(uni, nr, s * 101);
        return sum / 5.0;
    };
    const double lo = avg(0.05);
    const double mid = avg(0.40);
    const double hi = avg(0.90);
    EXPECT_GT(lo, mid);
    EXPECT_GT(mid, hi);
    EXPECT_GT(lo, 0.75) << "a near-pure repeater repeats mostly";
}

class ClassSweep : public ::testing::TestWithParam<UserClass>
{
};

TEST_P(ClassSweep, StreamsRespectVolumeAndDeterminism)
{
    QueryUniverse uni(tinyUniverse());
    PopulationSampler sampler(PopulationConfig{});
    Rng rng(u64(GetParam()) * 7 + 3);
    for (int i = 0; i < 10; ++i) {
        const auto profile = sampler.sampleUserOfClass(rng, GetParam());
        UserStream a(uni, profile, 42 + u64(i));
        UserStream b(uni, profile, 42 + u64(i));
        const auto ea = a.month(0);
        const auto eb = b.month(0);
        ASSERT_EQ(ea.size(), profile.monthlyVolume);
        for (std::size_t k = 0; k < ea.size(); ++k)
            ASSERT_TRUE(ea[k].pair == eb[k].pair);
    }
}

TEST_P(ClassSweep, HistoryBoundedByEvents)
{
    QueryUniverse uni(tinyUniverse());
    PopulationSampler sampler(PopulationConfig{});
    Rng rng(u64(GetParam()) * 13 + 5);
    const auto profile = sampler.sampleUserOfClass(rng, GetParam());
    UserStream s(uni, profile, 9);
    s.month(0);
    EXPECT_LE(s.historySize(), profile.monthlyVolume);
    EXPECT_GE(s.historySize(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, ClassSweep,
                         ::testing::Values(UserClass::Low,
                                           UserClass::Medium,
                                           UserClass::High,
                                           UserClass::Extreme));

TEST(WorkloadProperties, TripletVolumeConservation)
{
    // Aggregation must conserve event counts exactly, whatever the
    // population shape.
    QueryUniverse uni(tinyUniverse());
    for (u64 seed : {1ull, 2ull, 3ull}) {
        LogGenConfig lg;
        lg.seed = seed;
        lg.numUsers = 150;
        LogGenerator gen(uni, PopulationConfig{}, lg);
        const auto log = gen.generateMonth();
        const auto tt = logs::TripletTable::fromLog(log);
        ASSERT_EQ(tt.totalVolume(), log.size());
        u64 sum = 0;
        for (const auto &row : tt.rows())
            sum += row.volume;
        ASSERT_EQ(sum, log.size());
        ASSERT_DOUBLE_EQ(tt.cumulativeShare(tt.rows().size()), 1.0);
    }
}

TEST(WorkloadProperties, EpochChangesFreshDrawsOnly)
{
    // Two streams with the same seed, different epochs: their hot sets
    // at construction differ only via epoch-dependent trending ids;
    // within one epoch, generation stays deterministic.
    QueryUniverse uni(tinyUniverse());
    UserProfile p;
    p.monthlyVolume = 100;
    p.newRate = 0.5;
    p.hotSetSize = 6;
    UserStream e0(uni, p, 5, 0);
    UserStream e0b(uni, p, 5, 0);
    const auto a = e0.month(0);
    const auto b = e0b.month(0);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i].pair == b[i].pair);
}

TEST(WorkloadProperties, TrendingSliceChurnsTopNonNav)
{
    // At epoch > 0, the top non-nav ranks map to deep-tail trending
    // ids; epoch 0 is undisturbed; distinct epochs trend differently.
    UniverseConfig cfg = tinyUniverse();
    QueryUniverse uni(cfg);
    std::unordered_set<u32> e1_ids, e2_ids;
    Rng rng(3);
    for (int i = 0; i < 4000; ++i) {
        const auto p1 = uni.samplePairHabitual(
            rng, DeviceType::Smartphone, 0.0, 1); // non-nav only
        const auto p2 = uni.samplePairHabitual(
            rng, DeviceType::Smartphone, 0.0, 2);
        e1_ids.insert(p1.result);
        e2_ids.insert(p2.result);
    }
    // Some results must be epoch-exclusive trending topics.
    u64 only_e1 = 0;
    for (u32 id : e1_ids)
        only_e1 += !e2_ids.count(id);
    EXPECT_GT(only_e1, 0u) << "epochs must churn the trending slice";
}

TEST(WorkloadProperties, AnalyzerCensusMatchesGeneratorShares)
{
    QueryUniverse uni(tinyUniverse());
    LogGenConfig lg;
    lg.seed = 77;
    lg.numUsers = 4000;
    LogGenerator gen(uni, PopulationConfig{}, lg);
    const auto log = gen.generateMonth();
    logs::LogAnalyzer an(log);
    const auto census = an.classCensus(20);
    EXPECT_NEAR(census[0].share, 0.55, 0.03);
    EXPECT_NEAR(census[1].share, 0.36, 0.03);
    EXPECT_NEAR(census[2].share, 0.08, 0.02);
    EXPECT_NEAR(census[3].share, 0.01, 0.01);
}

} // namespace
} // namespace pc::workload
