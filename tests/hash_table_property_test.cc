/**
 * @file
 * Property tests: the query hash table against a plain-map reference
 * model under randomized insert/click/score/erase sequences, across
 * entry layouts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "core/hash_table.h"
#include "util/rng.h"

namespace pc::core {
namespace {

struct RefSlot
{
    double score = 0.0;
    bool accessed = false;
};

/** query -> url -> state. */
using RefModel = std::map<std::string, std::map<u64, RefSlot>>;

class TableVsReference : public ::testing::TestWithParam<u32>
{
};

TEST_P(TableVsReference, RandomOpsMatchReferenceModel)
{
    HashEntryLayout layout;
    layout.resultsPerEntry = GetParam();
    QueryHashTable table(layout);
    RefModel ref;
    Rng rng(GetParam() * 1000 + 17);
    const double lambda = 0.2;

    auto query_name = [&](u64 i) {
        return "query-" + std::to_string(i);
    };

    for (int step = 0; step < 4000; ++step) {
        const std::string q = query_name(rng.below(30));
        const u64 url = rng.below(12) + 1;
        const u64 op = rng.below(100);

        if (op < 35) { // insert
            const double score = rng.uniform();
            const bool inserted = table.insert(q, url, score);
            const bool ref_new = !ref[q].count(url);
            ASSERT_EQ(inserted, ref_new);
            if (ref_new)
                ref[q][url] = RefSlot{score, false};
        } else if (op < 65) { // click (Equations 1/2)
            const bool existed = table.applyClick(q, url, lambda);
            const bool ref_existed = ref.count(q) && ref[q].count(url);
            ASSERT_EQ(existed, ref_existed);
            const double decay = std::exp(-lambda);
            for (auto &[u, slot] : ref[q]) {
                if (u == url) {
                    slot.score += 1.0;
                    slot.accessed = true;
                } else {
                    slot.score *= decay;
                }
            }
            if (!ref_existed)
                ref[q][url] = RefSlot{1.0, true};
        } else if (op < 75) { // set score
            const double s = rng.uniform() * 3.0;
            const bool ok = table.setScore(q, url, s);
            const bool ref_ok = ref.count(q) && ref[q].count(url);
            ASSERT_EQ(ok, ref_ok);
            if (ref_ok)
                ref[q][url].score = s;
        } else if (op < 85) { // erase pair
            const bool ok = table.erasePair(q, url);
            const bool ref_ok = ref.count(q) && ref[q].count(url);
            ASSERT_EQ(ok, ref_ok);
            if (ref_ok) {
                ref[q].erase(url);
                if (ref[q].empty())
                    ref.erase(q);
            }
        } else if (op < 90) { // erase whole query
            const std::size_t removed = table.eraseQuery(q);
            const std::size_t ref_removed =
                ref.count(q) ? ref[q].size() : 0;
            ASSERT_EQ(removed, ref_removed);
            ref.erase(q);
        } else { // verify a random query's full state
            const auto refs = table.lookup(q);
            const std::size_t ref_n =
                ref.count(q) ? ref[q].size() : 0;
            ASSERT_EQ(refs.size(), ref_n) << "query " << q;
            double prev = 1e300;
            for (const auto &r : refs) {
                ASSERT_LE(r.score, prev + 1e-12) << "ranking order";
                prev = r.score;
                ASSERT_TRUE(ref[q].count(r.urlHash));
                const RefSlot &slot = ref[q][r.urlHash];
                ASSERT_NEAR(r.score, slot.score, 1e-9);
                ASSERT_EQ(r.userAccessed, slot.accessed);
            }
        }

        if (step % 200 == 0) {
            std::size_t ref_pairs = 0;
            for (const auto &[qq, slots] : ref)
                ref_pairs += slots.size();
            ASSERT_EQ(table.pairs(), ref_pairs);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Layouts, TableVsReference,
                         ::testing::Values(1u, 2u, 3u, 8u));

} // namespace
} // namespace pc::core
