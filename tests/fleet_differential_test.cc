/**
 * @file
 * Differential gate for the event-driven fleet engine: with an
 * epoch-granular schedule, `FleetEngine::EventDriven` must reproduce
 * every artifact of the `EpochStepped` harness byte for byte — fleet
 * registry snapshot, per-class snapshots, series CSV, anomaly CSV,
 * cloud-service registry, chaos postmortem JSON and a BENCH-style
 * report — across a devices x months x threads x chaos grid. The two
 * engines share the per-month step bodies (DeviceSim in fleet.cc), so
 * a divergence here means the event schedule reordered an operation:
 * exactly the class of bug a discrete-event refactor introduces.
 *
 * Also pins the harness edge cases the gate depends on: 0-device
 * fleets, 1-month horizons, a cloud sync landing in the final epoch,
 * chaos + sabotage under the event engine, and the clean-error paths
 * of validateFleetRunConfig. Labelled `fast` — it IS the tier-1
 * correctness anchor for the event core.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "harness/fleet.h"
#include "harness/postmortem.h"
#include "obs/fleet.h"
#include "obs/json.h"
#include "obs/report.h"
#include "server/service.h"

namespace pc::harness {
namespace {

const Workbench &
sharedWorkbench()
{
    static const Workbench wb(smallWorkbenchConfig());
    return wb;
}

/** Everything one engine run is compared by. */
struct RunBytes
{
    std::string snapshotJson;  ///< Fleet registry (incl. server.*).
    std::string classJson;     ///< Per-class registries, class order.
    std::string seriesCsv;     ///< Fleet time series.
    std::string anomaliesCsv;  ///< Drift report.
    std::string cloudJson;     ///< Service registry after replay.
    std::string postmortemJson; ///< Chaos invariant reports.
    std::string benchJson;     ///< BENCH-style report document.
    FleetRunResult result;
};

/** Scheduling-dependent service build gauges (console-only by doc). */
std::string
scrubTimingLines(const std::string &json)
{
    static const char *const kTiming[] = {
        "server.build.wall_ms",
        "server.ingest.records_per_s",
        "server.queue.max_depth",
        "server.queue.mean_depth",
    };
    std::string out;
    out.reserve(json.size());
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        bool timing = false;
        for (const char *name : kTiming)
            timing = timing || line.find(name) != std::string::npos;
        if (!timing) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

struct CellShape
{
    std::size_t devices = 7;
    u32 months = 3;
    unsigned threads = 1;
    bool cloud = false;
    bool chaos = false;
};

RunBytes
runCell(FleetEngine engine, const CellShape &shape)
{
    const Workbench &wb = sharedWorkbench();

    std::unique_ptr<server::CloudUpdateService> svc;
    if (shape.cloud || shape.chaos) {
        server::ServiceConfig scfg;
        scfg.build.shards = 4;
        scfg.build.threads = 2;
        svc = std::make_unique<server::CloudUpdateService>(wb.universe(),
                                                           scfg);
        svc->ingest(wb.buildLog());
    }

    FleetRunConfig cfg;
    cfg.engine = engine;
    cfg.devices = shape.devices;
    cfg.months = shape.months;
    cfg.threads = shape.threads;
    cfg.outageStartMonth = 1;
    cfg.outageMonths = 1;
    cfg.cloud = svc.get();
    if (shape.chaos) {
        cfg.outageMonths = 0;
        cfg.chaos.enabled = true;
        cfg.chaos.stormStartMonth = 1;
        cfg.chaos.stormMonths = 1;
        cfg.chaos.payloadCorruptRate = 0.3;
        cfg.chaos.skewEvery = 3;
        cfg.chaos.sabotageEvery = 4;
    }

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);

    RunBytes out;
    out.result = runFleet(wb, cfg, collector);
    EXPECT_EQ(out.result.error, "");

    {
        std::ostringstream os;
        collector.fleetRegistry().snapshot().writeJson(os, true);
        out.snapshotJson = scrubTimingLines(os.str());
    }
    {
        std::ostringstream os;
        for (const auto &[cls, reg] : collector.classRegistries()) {
            os << cls << "\n";
            reg.snapshot().writeJson(os, true);
        }
        out.classJson = os.str();
    }
    {
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        out.seriesCsv = os.str();
    }
    {
        obs::DriftConfig dc;
        dc.warmup = 1;
        std::ostringstream os;
        obs::FleetCollector::writeAnomaliesCsv(
            os, collector.scanAnomalies(dc));
        out.anomaliesCsv = os.str();
    }
    if (svc) {
        std::ostringstream os;
        svc->metrics().snapshot().writeJson(os, true);
        out.cloudJson = scrubTimingLines(os.str());
    }
    {
        std::ostringstream os;
        obs::JsonWriter w(os, /*pretty=*/true);
        writePostmortem(w, out.result.invariantReports);
        out.postmortemJson = os.str();
    }
    {
        // BENCH-artifact shape: the scalar metrics + embedded snapshot
        // a gated bench would ship (identical builder for both
        // engines, so the comparison covers the report pipeline too).
        obs::BenchReport report("fleet_differential",
                                "engine differential cell");
        report.metric("queries", double(out.result.queries));
        report.metric("cache_hits", double(out.result.cacheHits));
        report.metric("degraded_serves",
                      double(out.result.degradedServes));
        report.metric("cloud_syncs", double(out.result.cloudSyncs));
        report.metric("violations",
                      double(out.result.invariantViolations));
        report.attachSnapshot(collector.fleetRegistry().snapshot());
        std::ostringstream os;
        report.writeJson(os);
        out.benchJson = scrubTimingLines(os.str());
    }
    return out;
}

void
expectSameBytes(const RunBytes &event, const RunBytes &epoch)
{
    EXPECT_EQ(event.snapshotJson, epoch.snapshotJson)
        << "fleet registry snapshot diverged";
    EXPECT_EQ(event.classJson, epoch.classJson)
        << "per-class snapshots diverged";
    EXPECT_EQ(event.seriesCsv, epoch.seriesCsv)
        << "series CSV diverged";
    EXPECT_EQ(event.anomaliesCsv, epoch.anomaliesCsv)
        << "anomaly CSV diverged";
    EXPECT_EQ(event.cloudJson, epoch.cloudJson)
        << "cloud service registry diverged";
    EXPECT_EQ(event.postmortemJson, epoch.postmortemJson)
        << "postmortem artifact diverged";
    EXPECT_EQ(event.benchJson, epoch.benchJson)
        << "BENCH report diverged";
    EXPECT_EQ(event.result.queries, epoch.result.queries);
    EXPECT_EQ(event.result.cacheHits, epoch.result.cacheHits);
    EXPECT_EQ(event.result.degradedServes,
              epoch.result.degradedServes);
    EXPECT_EQ(event.result.cloudSyncs, epoch.result.cloudSyncs);
    EXPECT_EQ(event.result.cloudSyncFailures,
              epoch.result.cloudSyncFailures);
    EXPECT_EQ(event.result.cloudSyncsShed, epoch.result.cloudSyncsShed);
    EXPECT_EQ(event.result.invariantViolations,
              epoch.result.invariantViolations);
    EXPECT_EQ(event.result.devicesSabotaged,
              epoch.result.devicesSabotaged);
    EXPECT_EQ(event.result.devicesVerified,
              epoch.result.devicesVerified);
}

/** devices x months x threads x mode (0 plain, 1 cloud, 2 chaos). */
class EngineDifferentialGrid
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, u32, unsigned, int>>
{
};

TEST_P(EngineDifferentialGrid, EventDrivenMatchesEpochSteppedBytes)
{
    const auto [devices, months, threads, mode] = GetParam();
    CellShape shape;
    shape.devices = devices;
    shape.months = months;
    shape.threads = threads;
    shape.cloud = mode >= 1;
    shape.chaos = mode == 2;

    const RunBytes epoch = runCell(FleetEngine::EpochStepped, shape);
    const RunBytes event = runCell(FleetEngine::EventDriven, shape);
    expectSameBytes(event, epoch);

    EXPECT_EQ(epoch.result.devices, devices);
    if (devices > 0 && months > 0) {
        EXPECT_GT(epoch.result.queries, 0u);
    }
    if (shape.chaos && devices >= 4) {
        EXPECT_GT(epoch.result.devicesSabotaged, 0u)
            << "sabotage cells must actually sabotage";
        EXPECT_EQ(epoch.result.invariantViolations,
                  epoch.result.devicesSabotaged)
            << "only sabotage may trip invariants";
    }
}

std::string
gridCellName(const ::testing::TestParamInfo<
             EngineDifferentialGrid::ParamType> &info)
{
    static const char *const kMode[] = {"plain", "cloud", "chaos"};
    return "d" + std::to_string(std::get<0>(info.param)) + "_m" +
           std::to_string(std::get<1>(info.param)) + "_t" +
           std::to_string(std::get<2>(info.param)) + "_" +
           kMode[std::get<3>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineDifferentialGrid,
    ::testing::Combine(::testing::Values(std::size_t(1), std::size_t(7),
                                         std::size_t(25)),
                       ::testing::Values(u32(1), u32(3)),
                       ::testing::Values(1u, 3u),
                       ::testing::Values(0, 1, 2)),
    gridCellName);

// ---------------------------------------------------------------------
// Edge cases the differential gate needs pinned.

TEST(FleetEdgeCases, ZeroDeviceFleetIsACleanEmptyRun)
{
    for (const FleetEngine engine :
         {FleetEngine::EpochStepped, FleetEngine::EventDriven}) {
        FleetRunConfig cfg;
        cfg.engine = engine;
        cfg.devices = 0;
        cfg.months = 3;
        obs::FleetConfig fc;
        fc.windowWidth = workload::kMonth;
        obs::FleetCollector collector(fc);
        const FleetRunResult r =
            runFleet(sharedWorkbench(), cfg, collector);
        EXPECT_EQ(r.error, "");
        EXPECT_EQ(r.devices, 0u);
        EXPECT_EQ(r.queries, 0u);
        EXPECT_EQ(collector.devices(), 0u);
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        EXPECT_EQ(os.str().find("device.queries"), std::string::npos)
            << "empty run must not invent series rows";
    }
}

TEST(FleetEdgeCases, ZeroMonthHorizonFoldsDevicesWithNoWindows)
{
    for (const FleetEngine engine :
         {FleetEngine::EpochStepped, FleetEngine::EventDriven}) {
        FleetRunConfig cfg;
        cfg.engine = engine;
        cfg.devices = 3;
        cfg.months = 0;
        obs::FleetConfig fc;
        fc.windowWidth = workload::kMonth;
        obs::FleetCollector collector(fc);
        const FleetRunResult r =
            runFleet(sharedWorkbench(), cfg, collector);
        EXPECT_EQ(r.error, "");
        EXPECT_EQ(r.devices, 3u);
        EXPECT_EQ(r.queries, 0u);
        EXPECT_EQ(collector.devices(), 3u);
    }
}

TEST(FleetEdgeCases, OutageLongerThanHorizonClampsCleanly)
{
    CellShape shape;
    shape.devices = 5;
    shape.months = 2;
    const auto run = [&](FleetEngine engine) {
        FleetRunConfig cfg;
        cfg.engine = engine;
        cfg.devices = shape.devices;
        cfg.months = shape.months;
        cfg.outageStartMonth = 0;
        cfg.outageMonths = 100; // dwarfs the horizon
        obs::FleetConfig fc;
        fc.windowWidth = workload::kMonth;
        obs::FleetCollector collector(fc);
        const FleetRunResult r =
            runFleet(sharedWorkbench(), cfg, collector);
        EXPECT_EQ(r.error, "");
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        return std::make_pair(r.degradedServes, os.str());
    };
    const auto epoch = run(FleetEngine::EpochStepped);
    const auto event = run(FleetEngine::EventDriven);
    EXPECT_GT(epoch.first, 0u) << "whole-run outage must degrade serves";
    EXPECT_EQ(event.first, epoch.first);
    EXPECT_EQ(event.second, epoch.second);
}

TEST(FleetEdgeCases, CloudSyncInFinalEpochMatchesAcrossEngines)
{
    // months=1: the only sync epoch IS the final epoch; the miss-queue
    // drain and window snapshot follow it with no later month to paper
    // over ordering bugs.
    CellShape shape;
    shape.devices = 6;
    shape.months = 1;
    shape.cloud = true;
    const RunBytes epoch = runCell(FleetEngine::EpochStepped, shape);
    const RunBytes event = runCell(FleetEngine::EventDriven, shape);
    expectSameBytes(event, epoch);
    EXPECT_GT(epoch.result.cloudSyncs + epoch.result.cloudSyncFailures,
              0u)
        << "final-epoch cell must actually sync";
}

TEST(FleetEdgeCases, ChaosSabotagePostmortemIdenticalAcrossEngines)
{
    CellShape shape;
    shape.devices = 12;
    shape.months = 3;
    shape.chaos = true;
    for (const unsigned threads : {1u, 4u}) {
        shape.threads = threads;
        const RunBytes epoch = runCell(FleetEngine::EpochStepped, shape);
        const RunBytes event = runCell(FleetEngine::EventDriven, shape);
        EXPECT_GT(epoch.result.devicesSabotaged, 0u);
        EXPECT_EQ(event.postmortemJson, epoch.postmortemJson)
            << "postmortem must be byte-identical across engines at "
               "threads="
            << threads;
        expectSameBytes(event, epoch);
    }
}

TEST(FleetEdgeCases, ValidationRejectsImpossibleConfigs)
{
    const Workbench &wb = sharedWorkbench();
    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;

    {
        // Flash crowd on the epoch engine: the whole point of the
        // event core is that the epoch harness cannot express it.
        FleetRunConfig cfg;
        cfg.devices = 2;
        cfg.flashCrowd.enabled = true;
        obs::FleetCollector collector(fc);
        const FleetRunResult r = runFleet(wb, cfg, collector);
        EXPECT_NE(r.error, "");
        EXPECT_EQ(r.devices, 0u);
        EXPECT_EQ(collector.devices(), 0u)
            << "refused runs must not touch the collector";
    }
    {
        // Chaos without a cloud service.
        FleetRunConfig cfg;
        cfg.devices = 2;
        cfg.chaos.enabled = true;
        obs::FleetCollector collector(fc);
        const FleetRunResult r = runFleet(wb, cfg, collector);
        EXPECT_NE(r.error, "");
        EXPECT_EQ(collector.devices(), 0u);
    }
    {
        // Negative flash-crowd rate.
        FleetRunConfig cfg;
        cfg.devices = 2;
        cfg.engine = FleetEngine::EventDriven;
        cfg.flashCrowd.enabled = true;
        cfg.flashCrowd.arrivalsPerHour = -1.0;
        obs::FleetCollector collector(fc);
        const FleetRunResult r = runFleet(wb, cfg, collector);
        EXPECT_NE(r.error, "");
    }
}

TEST(FleetEdgeCases, FlashCrowdBurstWindowStraddlingEndClamps)
{
    FleetRunConfig cfg;
    cfg.engine = FleetEngine::EventDriven;
    cfg.devices = 4;
    cfg.months = 1;
    cfg.flashCrowd.enabled = true;
    cfg.flashCrowd.arrivalsPerHour = 3.0;
    cfg.flashCrowd.burstMultiplier = 8.0;
    // Burst opens mid-month and nominally runs far past the horizon.
    cfg.flashCrowd.burstStart = workload::kMonth / 2;
    cfg.flashCrowd.burstLen = 40 * workload::kMonth;
    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);
    const FleetRunResult r = runFleet(sharedWorkbench(), cfg, collector);
    EXPECT_EQ(r.error, "");
    EXPECT_EQ(r.devices, 4u);
    EXPECT_GT(r.queries, 0u);

    // Determinism: same config, same bytes, regardless of threads.
    obs::FleetCollector again(fc);
    cfg.threads = 3;
    const FleetRunResult r2 = runFleet(sharedWorkbench(), cfg, again);
    EXPECT_EQ(r2.queries, r.queries);
    std::ostringstream a, b;
    collector.writeSeriesCsv(a);
    again.writeSeriesCsv(b);
    EXPECT_EQ(a.str(), b.str());
}

} // namespace
} // namespace pc::harness
