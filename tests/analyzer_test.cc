/**
 * @file
 * Unit tests for the log analyzer (Figures 4, 5; Table 6 census).
 */

#include <gtest/gtest.h>

#include "logs/analyzer.h"

namespace pc::logs {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 100;
    cfg.nonNavResults = 400;
    cfg.navHead = 20;
    cfg.nonNavHead = 20;
    cfg.habitNavHead = 10;
    cfg.habitNonNavHead = 10;
    return cfg;
}

class AnalyzerTest : public ::testing::Test
{
  protected:
    AnalyzerTest() : uni_(tinyUniverse()), log_(uni_) {}

    void
    add(u64 user, SimTime t, u32 query, u32 result,
        workload::DeviceType dev = workload::DeviceType::Smartphone)
    {
        log_.add({user, t, {query, result}, dev});
    }

    /** Canonical query id of a result. */
    u32 canon(u32 result) { return uni_.result(result).queries.front().first; }

    workload::QueryUniverse uni_;
    workload::SearchLog log_;
};

TEST_F(AnalyzerTest, QueryPopularityCountsVolumes)
{
    add(1, 0, 5, 10);
    add(1, 1, 5, 10);
    add(2, 2, 6, 11);
    LogAnalyzer an(log_);
    const auto pop = an.queryPopularity();
    EXPECT_EQ(pop.distinctItems(), 2u);
    EXPECT_DOUBLE_EQ(pop.shareOfTop(1), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(pop.shareOfTop(2), 1.0);
}

TEST_F(AnalyzerTest, ResultPopularityMergesQueries)
{
    // Two different queries clicking the same result: result curve sees
    // one item with volume 2 (the paper's misspelling effect).
    add(1, 0, 5, 10);
    add(1, 1, 6, 10);
    LogAnalyzer an(log_);
    EXPECT_EQ(an.queryPopularity().distinctItems(), 2u);
    EXPECT_EQ(an.resultPopularity().distinctItems(), 1u);
}

TEST_F(AnalyzerTest, NavigationalFilter)
{
    const u32 nav_r = 0;          // nav pool
    const u32 nonnav_r = 150;     // non-nav pool
    add(1, 0, canon(nav_r), nav_r);
    add(1, 1, canon(nonnav_r), nonnav_r);
    LogAnalyzer an(log_);
    RecordFilter nav_f;
    nav_f.navigational = true;
    RecordFilter nonnav_f;
    nonnav_f.navigational = false;
    EXPECT_EQ(an.queryPopularity(nav_f).distinctItems(), 1u);
    EXPECT_EQ(an.queryPopularity(nonnav_f).distinctItems(), 1u);
}

TEST_F(AnalyzerTest, DeviceFilter)
{
    add(1, 0, 5, 10, workload::DeviceType::Featurephone);
    add(2, 1, 6, 11, workload::DeviceType::Smartphone);
    LogAnalyzer an(log_);
    RecordFilter fp;
    fp.device = workload::DeviceType::Featurephone;
    EXPECT_EQ(an.queryPopularity(fp).distinctItems(), 1u);
}

TEST_F(AnalyzerTest, RepeatabilityExactOnCraftedSequence)
{
    // User 1: pairs A B A A B -> 2 new of 5 events (newRate 0.4).
    add(1, 0, 5, 10);
    add(1, 1, 6, 11);
    add(1, 2, 5, 10);
    add(1, 3, 5, 10);
    add(1, 4, 6, 11);
    LogAnalyzer an(log_);
    const auto stats = an.userRepeatability(/*min_events=*/1);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].events, 5u);
    EXPECT_EQ(stats[0].newPairs, 2u);
    EXPECT_DOUBLE_EQ(stats[0].newRate(), 0.4);
    EXPECT_DOUBLE_EQ(stats[0].repeatRate(), 0.6);
    EXPECT_DOUBLE_EQ(an.meanRepeatRate(1), 0.6);
}

TEST_F(AnalyzerTest, SameQueryDifferentClickIsNotARepeat)
{
    // The paper: repeated only if same query AND same clicked result.
    add(1, 0, 5, 10);
    add(1, 1, 5, 11);
    LogAnalyzer an(log_);
    const auto stats = an.userRepeatability(1);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].newPairs, 2u);
}

TEST_F(AnalyzerTest, MinEventsFiltersLightUsers)
{
    for (int i = 0; i < 25; ++i)
        add(1, i, 5, 10);
    for (int i = 0; i < 5; ++i)
        add(2, i, 6, 11);
    LogAnalyzer an(log_);
    const auto stats = an.userRepeatability(20);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].user, 1u);
}

TEST_F(AnalyzerTest, FractionUsersNewRateAtMost)
{
    // User 1: newRate 1/3; user 2: newRate 1.0.
    add(1, 0, 5, 10);
    add(1, 1, 5, 10);
    add(1, 2, 5, 10);
    add(2, 0, 6, 11);
    add(2, 1, 7, 12);
    add(2, 2, 8, 13);
    LogAnalyzer an(log_);
    EXPECT_DOUBLE_EQ(an.fractionUsersNewRateAtMost(0.5, 1), 0.5);
    EXPECT_DOUBLE_EQ(an.fractionUsersNewRateAtMost(1.0, 1), 1.0);
}

TEST_F(AnalyzerTest, RepeatabilityUsesTimeOrderNotInsertionOrder)
{
    // Insert out of order: the repeat at t=0 precedes the "first"
    // occurrence at t=5 once sorted.
    add(1, 5, 5, 10);
    add(1, 0, 5, 10);
    add(1, 1, 6, 11);
    LogAnalyzer an(log_);
    const auto stats = an.userRepeatability(1);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].newPairs, 2u) << "one repeat among three events";
}

TEST_F(AnalyzerTest, ClassCensus)
{
    for (int i = 0; i < 25; ++i)
        add(1, i, 5, 10); // Low (25)
    for (int i = 0; i < 200; ++i)
        add(2, i, 6, 11); // High (200)
    for (int i = 0; i < 10; ++i)
        add(3, i, 7, 12); // below min_events -> ignored
    LogAnalyzer an(log_);
    const auto census = an.classCensus(20);
    ASSERT_EQ(census.size(), 4u);
    EXPECT_EQ(census[0].users, 1u); // Low
    EXPECT_EQ(census[2].users, 1u); // High
    EXPECT_DOUBLE_EQ(census[0].share, 0.5);
    EXPECT_DOUBLE_EQ(census[2].share, 0.5);
}

} // namespace
} // namespace pc::logs
