/**
 * @file
 * Unit and property tests for the 32-file flash result database
 * (Figure 13 / Figure 12 behaviour).
 */

#include <gtest/gtest.h>

#include "core/result_db.h"
#include "util/hash.h"
#include "util/strings.h"

namespace pc::core {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.capacity = 64 * kMiB;
    return cfg;
}

workload::ResultInfo
makeResult(int i, bool nav = true)
{
    workload::ResultInfo r;
    r.url = "www.site" + std::to_string(i) + ".com";
    r.title = "site" + std::to_string(i);
    r.description = "Description of site " + std::to_string(i) + ".";
    r.navigational = nav;
    return r;
}

class ResultDbTest : public ::testing::Test
{
  protected:
    ResultDbTest() : device_(deviceConfig()), store_(device_) {}

    pc::nvm::FlashDevice device_;
    pc::simfs::FlashStore store_;
};

TEST_F(ResultDbTest, AddFetchRoundTrip)
{
    ResultDatabase db(store_);
    SimTime t = 0;
    const auto r = makeResult(1);
    EXPECT_TRUE(db.addRecord(r, t));
    EXPECT_TRUE(db.contains(urlHash(r.url)));
    ResultRecord rec;
    SimTime fetch = 0;
    ASSERT_TRUE(db.fetch(urlHash(r.url), rec, fetch));
    EXPECT_EQ(rec.title, r.title);
    EXPECT_EQ(rec.description, r.description);
    EXPECT_EQ(rec.url, r.url);
    EXPECT_GT(fetch, 0);
}

TEST_F(ResultDbTest, DuplicateAddIsNoop)
{
    ResultDatabase db(store_);
    SimTime t = 0;
    const auto r = makeResult(1);
    EXPECT_TRUE(db.addRecord(r, t));
    EXPECT_FALSE(db.addRecord(r, t));
    EXPECT_EQ(db.records(), 1u);
}

TEST_F(ResultDbTest, FetchMissingReturnsFalse)
{
    ResultDatabase db(store_);
    ResultRecord rec;
    SimTime t = 0;
    EXPECT_FALSE(db.fetch(12345, rec, t));
    EXPECT_EQ(t, 0) << "a miss is resolved in memory, no flash cost";
}

TEST_F(ResultDbTest, RecordsSpreadAcrossFiles)
{
    DbConfig cfg;
    cfg.numFiles = 8;
    ResultDatabase db(store_, cfg);
    SimTime t = 0;
    for (int i = 0; i < 200; ++i)
        db.addRecord(makeResult(i), t);
    // Every file should hold some records (hash spreading).
    int used_files = 0;
    for (u32 f = 0; f < cfg.numFiles; ++f) {
        const auto id = store_.lookup(
            pc::strformat("psearch_%02u.dat", f));
        if (store_.size(id) > 0)
            ++used_files;
    }
    EXPECT_EQ(used_files, 8);
    EXPECT_EQ(db.records(), 200u);
}

TEST_F(ResultDbTest, FileOfMatchesHashModulo)
{
    DbConfig cfg;
    cfg.numFiles = 32;
    ResultDatabase db(store_, cfg);
    const auto r = makeResult(9);
    EXPECT_EQ(db.fileOf(urlHash(r.url)), urlHash(r.url) % 32);
}

TEST_F(ResultDbTest, LogicalAndPhysicalBytes)
{
    ResultDatabase db(store_);
    SimTime t = 0;
    for (int i = 0; i < 50; ++i)
        db.addRecord(makeResult(i), t);
    EXPECT_GE(db.logicalBytes(), 50u * 480u);
    EXPECT_GE(db.physicalBytes(), db.logicalBytes());
    // Physical is block-rounded per file.
    EXPECT_EQ(db.physicalBytes() % store_.config().allocUnit, 0u);
}

TEST_F(ResultDbTest, PaddedRecordSizeMatchesModel)
{
    ResultDatabase db(store_);
    SimTime t = 0;
    const auto r = makeResult(3);
    db.addRecord(r, t);
    EXPECT_EQ(db.logicalBytes(),
              workload::QueryUniverse::recordSize(r));
}

TEST_F(ResultDbTest, TwoCloudletsShareAStore)
{
    ResultDatabase search(store_, {}, "search");
    ResultDatabase ads(store_, {}, "ads");
    SimTime t = 0;
    search.addRecord(makeResult(1), t);
    ads.addRecord(makeResult(2), t);
    EXPECT_EQ(search.records(), 1u);
    EXPECT_EQ(ads.records(), 1u);
    ResultRecord rec;
    EXPECT_TRUE(search.fetch(urlHash(makeResult(1).url), rec, t));
    EXPECT_FALSE(search.fetch(urlHash(makeResult(2).url), rec, t));
}

/** Figure 12 property: fetch time falls then flattens with file count,
 *  while fragmentation (physical bytes) grows. */
class FileCountSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(FileCountSweep, FetchWorksAtAnyFileCount)
{
    pc::nvm::FlashDevice device(deviceConfig());
    pc::simfs::FlashStore store(device);
    DbConfig cfg;
    cfg.numFiles = GetParam();
    ResultDatabase db(store, cfg);
    SimTime t = 0;
    for (int i = 0; i < 300; ++i)
        db.addRecord(makeResult(i), t);
    ResultRecord rec;
    SimTime fetch = 0;
    for (int i = 0; i < 300; i += 17) {
        ASSERT_TRUE(db.fetch(urlHash(makeResult(i).url), rec, fetch));
        EXPECT_EQ(rec.url, makeResult(i).url);
    }
}

INSTANTIATE_TEST_SUITE_P(FileCounts, FileCountSweep,
                         ::testing::Values(1u, 2u, 8u, 32u, 128u));

TEST(ResultDbFigure12, SingleFileSlowerThan32Files)
{
    // One big header per lookup (1 file) must cost more than the
    // 32-file layout; 32 files must waste more flash than 1 file.
    auto measure = [](u32 files, SimTime &fetch_time, Bytes &physical) {
        pc::nvm::FlashDevice device(deviceConfig());
        pc::simfs::FlashStore store(device);
        DbConfig cfg;
        cfg.numFiles = files;
        ResultDatabase db(store, cfg);
        SimTime t = 0;
        for (int i = 0; i < 2500; ++i)
            db.addRecord(makeResult(i), t);
        fetch_time = 0;
        ResultRecord rec;
        for (int i = 0; i < 2500; i += 100)
            db.fetch(urlHash(makeResult(i).url), rec, fetch_time);
        physical = db.physicalBytes();
    };
    SimTime t1 = 0, t32 = 0;
    Bytes p1 = 0, p32 = 0;
    measure(1, t1, p1);
    measure(32, t32, p32);
    EXPECT_GT(t1, t32) << "single-file header parse dominates";
    EXPECT_GE(p32, p1) << "more files, more block-rounding waste";
}

} // namespace
} // namespace pc::core
