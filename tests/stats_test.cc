/**
 * @file
 * Unit tests for statistics containers.
 */

#include <gtest/gtest.h>

#include "util/stats.h"

namespace pc {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic dataset: population var 4, n=8 ->
    // sample var = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, MergeMatchesSingleStream)
{
    // Parallel Welford combine: splitting a stream across two
    // accumulators and merging must match feeding one accumulator.
    const std::vector<double> xs = {2.0, -4.0, 4.5,  4.0, 5.0,
                                    5.5, 7.0,  -9.0, 0.0, 12.5};
    RunningStat whole;
    for (double x : xs)
        whole.add(x);

    for (std::size_t split = 0; split <= xs.size(); ++split) {
        RunningStat a, b;
        for (std::size_t i = 0; i < xs.size(); ++i)
            (i < split ? a : b).add(xs[i]);
        a.merge(b);
        EXPECT_EQ(a.count(), whole.count()) << "split=" << split;
        EXPECT_NEAR(a.mean(), whole.mean(), 1e-12) << "split=" << split;
        EXPECT_NEAR(a.variance(), whole.variance(), 1e-12)
            << "split=" << split;
        EXPECT_DOUBLE_EQ(a.min(), whole.min()) << "split=" << split;
        EXPECT_DOUBLE_EQ(a.max(), whole.max()) << "split=" << split;
        EXPECT_NEAR(a.sum(), whole.sum(), 1e-12) << "split=" << split;
    }
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat full;
    full.add(3.0);
    full.add(7.0);

    RunningStat a = full, empty;
    a.merge(empty); // no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);

    RunningStat b;
    b.merge(full); // adopt the other stream wholesale
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);
    EXPECT_DOUBLE_EQ(b.min(), 3.0);
    EXPECT_DOUBLE_EQ(b.max(), 7.0);
}

TEST(EmpiricalCdf, AtComputesFraction)
{
    EmpiricalCdf cdf;
    cdf.add({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInterpolates)
{
    EmpiricalCdf cdf;
    cdf.add({0.0, 10.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdf, QuantileUnsortedInput)
{
    EmpiricalCdf cdf;
    cdf.add({9.0, 1.0, 5.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 9.0);
}

TEST(EmpiricalCdf, AddAfterQueryResorts)
{
    EmpiricalCdf cdf;
    cdf.add(5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
    cdf.add(10.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdf, QuantileSingleSample)
{
    EmpiricalCdf cdf;
    cdf.add(7.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 7.0);
}

TEST(EmpiricalCdf, QuantileExtremesHitOrderStatistics)
{
    EmpiricalCdf cdf;
    cdf.add({3.0, 1.0, 4.0, 1.0, 5.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0) << "q=0 is the minimum";
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0) << "q=1 is the maximum";
}

TEST(EmpiricalCdf, QuantileWithDuplicates)
{
    EmpiricalCdf cdf;
    cdf.add({2.0, 2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.37), 2.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 2.0);

    // A run of duplicates pins the interior quantiles that land on it.
    EmpiricalCdf mixed;
    mixed.add({1.0, 5.0, 5.0, 5.0, 9.0});
    EXPECT_DOUBLE_EQ(mixed.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(mixed.quantile(0.25), 5.0);
    EXPECT_DOUBLE_EQ(mixed.quantile(0.75), 5.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bucket 0
    h.add(9.9);   // bucket 4
    h.add(-3.0);  // clamps to 0
    h.add(42.0);  // clamps to 4
    h.add(5.0);   // bucket 2
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLow(2), 4.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(2), 6.0);
}

TEST(Histogram, ClampToEdgeBuckets)
{
    Histogram h(0.0, 10.0, 4);
    h.add(-1e9);  // far below -> bucket 0
    h.add(0.0);   // exactly lo -> bucket 0
    h.add(10.0);  // exactly hi (exclusive) clamps to the last bucket
    h.add(1e9);   // far above -> last bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 2u);
}

TEST(CumulativeShare, SortsAndAccumulates)
{
    auto cs = CumulativeShare::fromVolumes({10, 50, 20, 20});
    EXPECT_EQ(cs.total, 100u);
    EXPECT_DOUBLE_EQ(cs.shareOfTop(0), 0.0);
    EXPECT_DOUBLE_EQ(cs.shareOfTop(1), 0.5);
    EXPECT_DOUBLE_EQ(cs.shareOfTop(2), 0.7);
    EXPECT_DOUBLE_EQ(cs.shareOfTop(4), 1.0);
    EXPECT_DOUBLE_EQ(cs.shareOfTop(100), 1.0); // clamped
}

TEST(CumulativeShare, TopForShare)
{
    auto cs = CumulativeShare::fromVolumes({10, 50, 20, 20});
    EXPECT_EQ(cs.topForShare(0.5), 1u);
    EXPECT_EQ(cs.topForShare(0.51), 2u);
    EXPECT_EQ(cs.topForShare(0.7), 2u);
    EXPECT_EQ(cs.topForShare(1.0), 4u);
}

TEST(CumulativeShare, EmptyVolumes)
{
    auto cs = CumulativeShare::fromVolumes({});
    EXPECT_EQ(cs.total, 0u);
    EXPECT_DOUBLE_EQ(cs.shareOfTop(5), 0.0);
    EXPECT_EQ(cs.topForShare(0.5), 0u);
}

TEST(CounterBag, BumpSetAndValue)
{
    CounterBag bag;
    EXPECT_EQ(bag.value("x"), 0u);
    EXPECT_FALSE(bag.contains("x"));
    bag.bump("x");
    bag.bump("x", 4);
    EXPECT_EQ(bag.value("x"), 5u);
    EXPECT_TRUE(bag.contains("x"));
    bag.set("x", 2);
    EXPECT_EQ(bag.value("x"), 2u);
    bag.set("y", 0);
    EXPECT_TRUE(bag.contains("y")) << "a set counter exists even at zero";
    EXPECT_EQ(bag.size(), 2u);
    EXPECT_EQ(bag.total(), 2u);
}

TEST(CounterBag, KeepsFirstBumpOrder)
{
    CounterBag bag;
    bag.bump("c");
    bag.bump("a");
    bag.bump("b");
    bag.bump("a"); // must not reorder
    const auto &items = bag.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, "c");
    EXPECT_EQ(items[1].first, "a");
    EXPECT_EQ(items[2].first, "b");
    EXPECT_EQ(items[1].second, 2u);
}

TEST(CounterBag, MergeAddsAndAppends)
{
    CounterBag a;
    a.bump("hits", 3);
    a.bump("misses", 1);
    CounterBag b;
    b.bump("misses", 2);
    b.bump("retries", 7);
    a.merge(b);
    EXPECT_EQ(a.value("hits"), 3u);
    EXPECT_EQ(a.value("misses"), 3u);
    EXPECT_EQ(a.value("retries"), 7u);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.items()[2].first, "retries") << "new keys append at the end";
    EXPECT_EQ(a.total(), 13u);
}

TEST(CounterBag, MergeOrderingIsDeterministicAcrossMerges)
{
    // The documented guarantee: existing counters keep their positions
    // (values accumulate in place); counters new to this bag append in
    // the other bag's first-bump order. Merging the same sequence of
    // bags therefore always yields the same item order.
    CounterBag b1;
    b1.bump("alpha");
    b1.bump("beta");
    CounterBag b2;
    b2.bump("gamma");
    b2.bump("alpha");
    b2.bump("delta");

    CounterBag merged;
    merged.merge(b1);
    merged.merge(b2);
    const auto &items = merged.items();
    ASSERT_EQ(items.size(), 4u);
    EXPECT_EQ(items[0].first, "alpha");
    EXPECT_EQ(items[1].first, "beta");
    EXPECT_EQ(items[2].first, "gamma");
    EXPECT_EQ(items[3].first, "delta");
    EXPECT_EQ(merged.value("alpha"), 2u);

    // Re-running the same merge sequence reproduces the exact order.
    CounterBag again;
    again.merge(b1);
    again.merge(b2);
    ASSERT_EQ(again.items().size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(again.items()[i], items[i]) << "index " << i;
}

TEST(CounterBag, ClearEmpties)
{
    CounterBag bag;
    bag.bump("x", 9);
    bag.clear();
    EXPECT_EQ(bag.size(), 0u);
    EXPECT_EQ(bag.total(), 0u);
    EXPECT_FALSE(bag.contains("x"));
}

} // namespace
} // namespace pc
