/**
 * @file
 * Concurrency soak: the shared WorkQueue hammered from many producers
 * and consumers (move-only payloads, mid-run close, watermark
 * assertions) plus a parallel fleet run — the payloads of the
 * ThreadSanitizer CI job, next to work_queue_test's functional
 * coverage. Labelled `slow`: the soak loops are sized to give tsan
 * real interleavings to chew on, not to finish instantly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/fleet.h"
#include "obs/fleet.h"
#include "server/work_queue.h"

namespace pc::server {
namespace {

TEST(ConcurrencySoak, MpmcMoveOnlyPayloadsDeliverExactlyOnce)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 5000;
    WorkQueue<std::unique_ptr<int>> q(16);

    std::mutex mu;
    std::set<int> seen;
    std::atomic<int> received{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            std::unique_ptr<int> v;
            std::set<int> local;
            while (q.pop(v)) {
                ASSERT_NE(v, nullptr);
                local.insert(*v);
            }
            std::lock_guard<std::mutex> lk(mu);
            for (int x : local) {
                ASSERT_TRUE(seen.insert(x).second)
                    << "item " << x << " delivered twice";
            }
            received.fetch_add(int(local.size()));
        });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(std::make_unique<int>(
                    p * kPerProducer + i)));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(received.load(), kProducers * kPerProducer);
    EXPECT_EQ(seen.size(), std::size_t(kProducers * kPerProducer));
    EXPECT_LE(q.maxDepth(), q.capacity())
        << "backpressure must bound the depth watermark";
    EXPECT_GT(q.maxDepth(), 0u);
    EXPECT_GT(q.meanDepth(), 0.0);
    EXPECT_LE(q.meanDepth(), double(q.capacity()));
    EXPECT_EQ(q.pushes(), u64(kProducers) * kPerProducer);
}

TEST(ConcurrencySoak, MidRunCloseStopsProducersAndDrainsConsumers)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    WorkQueue<int> q(8);

    std::atomic<long long> pushed{0};
    std::atomic<long long> popped{0};
    std::atomic<bool> stop{false};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            int i = 0;
            // push() returning false is the close signal; tryPush
            // exercises the non-blocking edge under contention.
            while (!stop.load()) {
                if ((i & 7) == 0 ? q.tryPush(i) : q.push(i))
                    pushed.fetch_add(1);
                else if (q.closed())
                    return;
                ++i;
            }
        });
    }
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            int v;
            while (q.pop(v))
                popped.fetch_add(1);
        });
    }

    // Let the pipeline churn, then slam the door mid-flight.
    while (pushed.load() < 20000)
        std::this_thread::yield();
    q.close();
    stop.store(true);
    for (auto &t : producers)
        t.join();
    for (auto &t : consumers)
        t.join();

    // Consumers drained exactly what producers managed to push.
    EXPECT_EQ(popped.load(), pushed.load());
    EXPECT_FALSE(q.push(1)) << "closed queue must refuse new work";
    EXPECT_FALSE(q.tryPush(1));
    int v;
    EXPECT_FALSE(q.tryPop(v)) << "closed and drained";
    EXPECT_LE(q.maxDepth(), q.capacity());
}

TEST(ConcurrencySoak, TryPopInterleavesWithBlockingPop)
{
    WorkQueue<int> q(4);
    std::atomic<int> got{0};
    std::thread poller([&] {
        int v;
        for (;;) {
            if (q.tryPop(v))
                got.fetch_add(1);
            else if (q.closed())
                return;
            else
                std::this_thread::yield();
        }
    });
    std::thread blocker([&] {
        int v;
        while (q.pop(v))
            got.fetch_add(1);
    });
    for (int i = 0; i < 10000; ++i)
        ASSERT_TRUE(q.push(i));
    q.close();
    poller.join();
    blocker.join();
    EXPECT_EQ(got.load(), 10000);
}

TEST(ConcurrencySoak, CloseWhileTryPopPollersDrainRemainder)
{
    // close() racing a crowd of tryPop pollers: whatever was pushed
    // before the close must still drain exactly once — close gates
    // new work, never buffered work — and every poller must exit via
    // the closed-and-empty path, not wedge or double-deliver.
    constexpr int kPollers = 4;
    constexpr int kItems = 8000;
    for (int round = 0; round < 8; ++round) {
        WorkQueue<int> q(16);
        std::mutex mu;
        std::set<int> seen;
        std::atomic<bool> closed{false};

        std::vector<std::thread> pollers;
        for (int c = 0; c < kPollers; ++c) {
            pollers.emplace_back([&] {
                int v;
                std::set<int> local;
                for (;;) {
                    if (q.tryPop(v)) {
                        local.insert(v);
                        // Items landing after close() must not exist.
                        if (closed.load()) {
                            ASSERT_LT(v, kItems);
                        }
                    } else if (q.closed()) {
                        // Closed is not drained: one more sweep until
                        // tryPop comes up dry with closed() still set.
                        while (q.tryPop(v))
                            local.insert(v);
                        break;
                    } else {
                        std::this_thread::yield();
                    }
                }
                std::lock_guard<std::mutex> lk(mu);
                for (int x : local) {
                    ASSERT_TRUE(seen.insert(x).second)
                        << "item " << x << " delivered twice";
                }
            });
        }

        int accepted = 0;
        std::thread producer([&] {
            for (int i = 0; i < kItems; ++i) {
                if (!q.push(i))
                    break;
                ++accepted;
            }
            q.close();
            closed.store(true);
        });

        producer.join();
        for (auto &t : pollers)
            t.join();

        EXPECT_EQ(int(seen.size()), accepted)
            << "round " << round
            << ": pre-close pushes must drain exactly once";
        int v;
        EXPECT_FALSE(q.tryPop(v)) << "closed and drained";
        EXPECT_FALSE(q.push(1));
    }
}

} // namespace
} // namespace pc::server

namespace pc::harness {
namespace {

/**
 * The parallel fleet under tsan: worker pool + in-order fold, with
 * byte-equality against the sequential run as the functional check.
 * Small world — the point is the interleavings, not the scale.
 */
TEST(ConcurrencySoak, ParallelFleetRunsRaceFree)
{
    static const Workbench wb(smallWorkbenchConfig());

    const auto runOnce = [&](unsigned threads) {
        FleetRunConfig cfg;
        cfg.devices = 12;
        cfg.months = 2;
        cfg.outageStartMonth = 1;
        cfg.outageMonths = 1;
        cfg.threads = threads;
        obs::FleetConfig fc;
        fc.windowWidth = workload::kMonth;
        obs::FleetCollector collector(fc);
        const FleetRunResult r = runFleet(wb, cfg, collector);
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        return std::make_pair(r.queries, os.str());
    };

    const auto [seqQueries, seqCsv] = runOnce(1);
    for (unsigned threads : {2u, 4u}) {
        const auto [parQueries, parCsv] = runOnce(threads);
        EXPECT_EQ(parQueries, seqQueries);
        EXPECT_EQ(parCsv, seqCsv)
            << "parallel fleet diverged at threads=" << threads;
    }
}

} // namespace
} // namespace pc::harness
