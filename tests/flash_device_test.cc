/**
 * @file
 * Unit and property tests for the NAND flash timing model.
 */

#include <gtest/gtest.h>

#include "nvm/flash_device.h"

namespace pc::nvm {
namespace {

FlashConfig
smallConfig()
{
    FlashConfig cfg;
    cfg.pageSize = 4 * kKiB;
    cfg.pagesPerBlock = 4;
    cfg.capacity = 1 * kMiB;
    return cfg;
}

TEST(FlashDevice, PagesSpanned)
{
    FlashDevice d(smallConfig());
    EXPECT_EQ(d.pagesSpanned(0, 0), 0u);
    EXPECT_EQ(d.pagesSpanned(0, 1), 1u);
    EXPECT_EQ(d.pagesSpanned(0, 4096), 1u);
    EXPECT_EQ(d.pagesSpanned(0, 4097), 2u);
    EXPECT_EQ(d.pagesSpanned(4095, 2), 2u) << "straddles a page boundary";
    EXPECT_EQ(d.pagesSpanned(4096, 4096), 1u);
}

TEST(FlashDevice, ReadLatencyScalesWithPages)
{
    FlashDevice d(smallConfig());
    const SimTime one = d.read(0, 100);
    const SimTime two = d.read(0, 5000); // 2 pages
    EXPECT_EQ(two, 2 * one)
        << "a sub-page read still costs a full page; two pages cost 2x";
}

TEST(FlashDevice, SmallReadPaysFullPage)
{
    FlashDevice d(smallConfig());
    EXPECT_EQ(d.read(0, 1), d.read(0, 4096));
}

TEST(FlashDevice, WriteSlowerThanRead)
{
    FlashDevice d(smallConfig());
    EXPECT_GT(d.write(0, 100), d.read(0, 100));
}

TEST(FlashDevice, EraseTracksWear)
{
    FlashDevice d(smallConfig());
    EXPECT_EQ(d.maxWear(), 0u);
    d.eraseBlockAt(0);
    d.eraseBlockAt(0);
    d.eraseBlockAt(16 * kKiB); // second block (4 pages * 4KiB)
    EXPECT_EQ(d.blockEraseCount(0), 2u);
    EXPECT_EQ(d.blockEraseCount(1), 1u);
    EXPECT_EQ(d.maxWear(), 2u);
    EXPECT_EQ(d.blocksErased(), 3u);
}

TEST(FlashDevice, StatsAccumulate)
{
    FlashDevice d(smallConfig());
    d.read(0, 100);
    d.write(0, 200);
    const auto &s = d.stats();
    EXPECT_EQ(s.readOps, 1u);
    EXPECT_EQ(s.writeOps, 1u);
    EXPECT_EQ(s.bytesRead, 100u);
    EXPECT_EQ(s.bytesWritten, 200u);
    EXPECT_GT(s.busyTime, 0);
    EXPECT_GT(s.energy, 0.0);
    EXPECT_EQ(d.pagesRead(), 1u);
    EXPECT_EQ(d.pagesProgrammed(), 1u);
}

TEST(FlashDevice, ResetStatsKeepsWear)
{
    FlashDevice d(smallConfig());
    d.eraseBlockAt(0);
    d.resetStats();
    EXPECT_EQ(d.stats().writeOps, 0u);
    EXPECT_EQ(d.blockEraseCount(0), 1u) << "wear is physical, not a stat";
}

TEST(FlashDeviceDeath, OutOfRangeAccessPanics)
{
    FlashDevice d(smallConfig());
    EXPECT_DEATH(d.read(kMiB - 10, 100), "beyond capacity");
    EXPECT_DEATH(d.write(kMiB, 1), "beyond capacity");
}

TEST(FlashDeviceDeath, MisalignedCapacityPanics)
{
    FlashConfig cfg = smallConfig();
    cfg.capacity = 4 * kKiB + 1;
    EXPECT_DEATH(FlashDevice d(cfg), "page-aligned");
}

/** Property sweep over paper-relevant block sizes (Section 5.2.2). */
class FlashGeometry : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(FlashGeometry, EnergyProportionalToBusyTime)
{
    FlashConfig cfg;
    cfg.pageSize = GetParam();
    cfg.pagesPerBlock = 8;
    cfg.capacity = 4 * kMiB;
    FlashDevice d(cfg);
    const SimTime t = d.read(0, 3 * cfg.pageSize);
    EXPECT_NEAR(d.stats().energy, energyOver(cfg.activePower, t), 1e-9);
}

TEST_P(FlashGeometry, ReadTimeMonotoneInLength)
{
    FlashConfig cfg;
    cfg.pageSize = GetParam();
    cfg.pagesPerBlock = 8;
    cfg.capacity = 4 * kMiB;
    FlashDevice d(cfg);
    SimTime prev = 0;
    for (Bytes len = 1; len <= 8 * cfg.pageSize; len *= 2) {
        const SimTime t = d.read(0, len);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, FlashGeometry,
                         ::testing::Values(2 * kKiB, 4 * kKiB, 8 * kKiB));

} // namespace
} // namespace pc::nvm
