/**
 * @file
 * Unit tests for the OS resource arbiter (Section 7).
 */

#include <gtest/gtest.h>

#include "core/tile_cloudlet.h"
#include "device/arbiter.h"

namespace pc::device {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.capacity = 1 * kGiB;
    return cfg;
}

core::TileCloudletConfig
tileConfig(const std::string &name, double skew)
{
    core::TileCloudletConfig cfg;
    cfg.name = name;
    cfg.itemSize = 5 * kKiB;
    cfg.universeItems = 100'000;
    cfg.popularitySkew = skew;
    return cfg;
}

class ArbiterTest : public ::testing::Test
{
  protected:
    ArbiterTest()
        : device_(deviceConfig()), store_(device_),
          hot_(store_, tileConfig("hot", 1.1)),
          cold_(store_, tileConfig("cold", 1.1))
    {
        SimTime t = 0;
        hot_.fillTop(2000, t);
        cold_.fillTop(2000, t);
        arbiter_.attach(hot_);
        arbiter_.attach(cold_);
        // The hot cloudlet earns its keep; the cold one sits idle.
        Rng rng(3);
        for (int i = 0; i < 500; ++i) {
            SimTime tt = 0;
            hot_.access(hot_.sampleAccess(rng), tt);
        }
    }

    pc::nvm::FlashDevice device_;
    pc::simfs::FlashStore store_;
    core::TileCloudlet hot_;
    core::TileCloudlet cold_;
    ResourceArbiter arbiter_;
};

TEST_F(ArbiterTest, TotalsSumAttachedCloudlets)
{
    EXPECT_EQ(arbiter_.totalDataBytes(),
              hot_.dataBytes() + cold_.dataBytes());
    EXPECT_EQ(arbiter_.totalIndexBytes(),
              hot_.indexBytes() + cold_.indexBytes());
}

TEST_F(ArbiterTest, UnderBudgetIsNoop)
{
    const auto r = arbiter_.enforceDataBudget(arbiter_.totalDataBytes());
    EXPECT_EQ(r.released(), 0u);
    EXPECT_TRUE(r.actions.empty());
}

TEST_F(ArbiterTest, ShrinksLowValueCloudletFirst)
{
    const Bytes before_hot = hot_.dataBytes();
    const Bytes total = arbiter_.totalDataBytes();
    // Reclaim a quarter: the idle 'cold' cloudlet alone can cover it.
    const auto r = arbiter_.enforceDataBudget(total * 3 / 4);
    EXPECT_LE(arbiter_.totalDataBytes(), total * 3 / 4);
    EXPECT_EQ(hot_.dataBytes(), before_hot)
        << "the productive cloudlet must be untouched";
    ASSERT_EQ(r.actions.size(), 1u);
    EXPECT_EQ(r.actions[0].cloudlet, "cold");
    EXPECT_EQ(r.released(), total / 4);
}

TEST_F(ArbiterTest, DeepCutReachesTheHotCloudlet)
{
    const Bytes total = arbiter_.totalDataBytes();
    const auto r = arbiter_.enforceDataBudget(total / 10);
    EXPECT_LE(arbiter_.totalDataBytes(), total / 10 + 5 * kKiB);
    EXPECT_EQ(r.actions.size(), 2u) << "both cloudlets must shrink";
    EXPECT_LT(hot_.dataBytes(), total / 2);
    // Popular heads survive inside each cloudlet.
    SimTime t = 0;
    EXPECT_TRUE(hot_.access(0, t));
}

TEST_F(ArbiterTest, BudgetZeroReleasesEverything)
{
    arbiter_.enforceDataBudget(0);
    EXPECT_EQ(arbiter_.totalDataBytes(), 0u);
    EXPECT_EQ(hot_.itemsCached(), 0u);
    EXPECT_EQ(cold_.itemsCached(), 0u);
}

TEST(ArbiterEdge, EmptyArbiter)
{
    ResourceArbiter a;
    EXPECT_EQ(a.totalDataBytes(), 0u);
    const auto r = a.enforceDataBudget(0);
    EXPECT_EQ(r.released(), 0u);
}

} // namespace
} // namespace pc::device
