/**
 * @file
 * Unit tests for the browser URL-substring-matching baseline.
 */

#include <gtest/gtest.h>

#include "baseline/browser_cache.h"

namespace pc::baseline {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class BrowserCacheTest : public ::testing::Test
{
  protected:
    BrowserCacheTest() : uni_(tinyUniverse()), cache_(uni_) {}

    workload::PairRef
    canonicalPair(u32 r)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    workload::QueryUniverse uni_;
    BrowserSubstringCache cache_;
};

TEST_F(BrowserCacheTest, EmptyHistoryNeverHits)
{
    EXPECT_FALSE(cache_.wouldHit(canonicalPair(0)));
    EXPECT_EQ(cache_.historySize(), 0u);
}

TEST_F(BrowserCacheTest, NavigationalRepeatHits)
{
    const auto p = canonicalPair(0); // nav: query is URL substring
    cache_.recordVisit(p);
    EXPECT_TRUE(cache_.wouldHit(p));
}

TEST_F(BrowserCacheTest, NonNavigationalRepeatMisses)
{
    const auto p = canonicalPair(500); // non-nav pool
    cache_.recordVisit(p);
    EXPECT_FALSE(cache_.wouldHit(p))
        << "substring matching cannot serve topic queries";
}

TEST_F(BrowserCacheTest, UnvisitedNavigationalMisses)
{
    cache_.recordVisit(canonicalPair(0));
    EXPECT_FALSE(cache_.wouldHit(canonicalPair(1)))
        << "the browser only suggests visited addresses";
}

TEST_F(BrowserCacheTest, HistoryDeduplicates)
{
    cache_.recordVisit(canonicalPair(0));
    cache_.recordVisit(canonicalPair(0));
    EXPECT_EQ(cache_.historySize(), 1u);
}

TEST_F(BrowserCacheTest, MisspelledNavigationalQueryMisses)
{
    // An alias ("yotube") is not a substring of the URL, so the
    // browser suggestion fails even for a visited site — exactly why
    // PocketSearch caches misspellings explicitly.
    const u32 r = 0;
    cache_.recordVisit(canonicalPair(r));
    for (const auto &[qid, w] : uni_.result(r).queries) {
        (void)w;
        const workload::PairRef alias{qid, r};
        if (!uni_.isNavigationalPair(alias))
            EXPECT_FALSE(cache_.wouldHit(alias));
    }
}

} // namespace
} // namespace pc::baseline
