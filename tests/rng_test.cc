/**
 * @file
 * Unit tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace pc {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(11);
    for (u64 n : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            ASSERT_LT(rng.below(n), n);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(13);
    const u64 n = 10;
    std::vector<int> counts(n, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(n)];
    for (u64 k = 0; k < n; ++k) {
        EXPECT_NEAR(double(counts[k]) / draws, 0.1, 0.01)
            << "bucket " << k;
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(17);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const i64 v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(4.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, GammaMeanAndVariance)
{
    Rng rng(37);
    const double shape = 3.0, scale = 2.0;
    const int n = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.gamma(shape, scale);
        ASSERT_GT(x, 0.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, shape * scale, 0.1);        // 6
    EXPECT_NEAR(var, shape * scale * scale, 0.5); // 12
}

TEST(Rng, GammaSmallShape)
{
    Rng rng(41);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gamma(0.5, 1.0);
    EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, BetaInUnitIntervalWithCorrectMean)
{
    Rng rng(43);
    const double a = 2.0, b = 5.0;
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.beta(a, b);
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(Rng, WeightedFollowsWeights)
{
    Rng rng(47);
    const std::vector<double> w = {1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weighted(w)];
    EXPECT_NEAR(double(counts[0]) / n, 0.1, 0.01);
    EXPECT_NEAR(double(counts[1]) / n, 0.3, 0.01);
    EXPECT_NEAR(double(counts[2]) / n, 0.6, 0.01);
}

TEST(Rng, WeightedHandlesZeroWeights)
{
    Rng rng(53);
    const std::vector<double> w = {0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(61);
    Rng b = a.fork();
    // The fork and the parent should not emit identical sequences.
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(67);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto orig = v;
    rng.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
    EXPECT_NE(v, orig) << "100-element shuffle should move something";
}

TEST(Rng, ShuffleUniformFirstElement)
{
    Rng rng(71);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 50000; ++i) {
        std::vector<int> v = {0, 1, 2, 3, 4};
        rng.shuffle(v);
        ++counts[v[0]];
    }
    for (int c : counts)
        EXPECT_NEAR(double(c) / 50000.0, 0.2, 0.015);
}

} // namespace
} // namespace pc
