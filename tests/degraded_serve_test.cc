/**
 * @file
 * Graceful-degradation tests: under injected radio faults the device
 * must never surface an error — cached queries still hit, unreachable
 * misses degrade to stale/offline answers and queue for later sync —
 * and the resilience counters must account for every injected fault.
 */

#include <gtest/gtest.h>

#include "device/mobile_device.h"
#include "logs/triplets.h"

namespace pc::device {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class DegradedServeTest : public ::testing::Test
{
  protected:
    DegradedServeTest() : uni_(tinyUniverse()), device_(uni_)
    {
        warmCache(device_);
    }

    void
    warmCache(MobileDevice &device)
    {
        workload::SearchLog log(uni_);
        for (u32 r = 0; r < 20; ++r) {
            const u32 q = uni_.result(r).queries.front().first;
            for (int i = 0; i < int(40 - r); ++i) {
                log.add({1, SimTime(i), {q, r},
                         workload::DeviceType::Smartphone});
            }
        }
        const auto table = logs::TripletTable::fromLog(log);
        core::CacheContentBuilder builder(uni_);
        core::ContentPolicy policy;
        policy.kind = core::ThresholdKind::VolumeShare;
        policy.volumeShare = 1.0;
        device.installCommunityCache(builder.build(table, policy));
    }

    workload::PairRef
    cachedPair(u32 r = 0)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    workload::PairRef
    uncachedPair(u32 r = 500)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    workload::QueryUniverse uni_;
    MobileDevice device_;
};

TEST_F(DegradedServeTest, TwentyPercentFailureRateSurfacesNoErrors)
{
    fault::FaultConfig fc;
    fc.seed = 2011;
    fc.radio.exchangeFailureRate = 0.2;
    fault::FaultPlan plan(fc);
    device_.attachFaults(&plan);

    u64 radio_queries = 0, attempts_seen = 0, hits = 0;
    for (u32 i = 0; i < 120; ++i) {
        const bool cached = (i % 3 != 2);
        const auto pair =
            cached ? cachedPair(i % 20) : uncachedPair(400 + i);
        const auto out =
            device_.serveQuery(pair, ServePath::PocketSearch,
                               /*record_click=*/false);
        // Graceful degradation means the caller NEVER sees an error:
        // every query yields a rendered page with sane accounting.
        ASSERT_GT(out.latency, 0);
        ASSERT_GT(out.energy, 0.0);
        ASSERT_GT(out.renderTime, 0);
        if (cached) {
            EXPECT_TRUE(out.cacheHit)
                << "faults must not break cache hits (query " << i << ")";
            EXPECT_EQ(out.attempts, 0u);
            EXPECT_FALSE(out.degraded);
            ++hits;
        } else {
            ++radio_queries;
            attempts_seen += out.attempts;
            EXPECT_GE(out.attempts, 1u);
            EXPECT_LE(out.attempts, device_.config().retry.maxAttempts);
            if (out.degraded) {
                EXPECT_FALSE(out.cacheHit);
            }
        }
    }
    EXPECT_EQ(hits, 80u);

    // Every injected fault is accounted for by a device counter.
    const auto &rs = device_.resilience();
    const auto &in = plan.stats();
    EXPECT_EQ(rs.failedAttempts, in.exchangeFailures);
    EXPECT_GT(rs.failedAttempts, 0u) << "20% of ~40 queries must fail";
    EXPECT_EQ(rs.noCoverageAttempts, in.outageAttempts);
    EXPECT_EQ(rs.latencySpikes, in.latencySpikes);
    EXPECT_EQ(rs.radioAttempts, attempts_seen);
    EXPECT_EQ(rs.retries, rs.radioAttempts - radio_queries);
    EXPECT_EQ(rs.degradedServes, rs.staleServes + rs.offlinePages);
    EXPECT_EQ(rs.queuedMisses, rs.degradedServes);
    EXPECT_EQ(device_.missQueue().size(),
              rs.queuedMisses - rs.syncedMisses);
    // The counter bag mirrors the struct.
    const auto bag = rs.toCounters();
    EXPECT_EQ(bag.value("device.failed_attempts"), rs.failedAttempts);
    EXPECT_EQ(bag.value("device.retries"), rs.retries);
}

TEST_F(DegradedServeTest, UnreachableCloudDegradesThenSyncs)
{
    fault::FaultConfig fc;
    fc.seed = 5;
    fc.radio.exchangeFailureRate = 1.0; // the cloud is unreachable
    fault::FaultPlan plan(fc);
    device_.attachFaults(&plan);

    // Cache hits are untouched by a dead radio.
    const auto hit = device_.serveQuery(cachedPair(0),
                                        ServePath::PocketSearch, false);
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_FALSE(hit.degraded);

    // An uncached query degrades to the offline page and queues.
    const auto p1 = uncachedPair(501);
    const auto offline =
        device_.serveQuery(p1, ServePath::PocketSearch, true);
    EXPECT_FALSE(offline.cacheHit);
    EXPECT_TRUE(offline.degraded);
    EXPECT_FALSE(offline.staleServe);
    EXPECT_EQ(offline.attempts, device_.config().retry.maxAttempts);
    EXPECT_GT(offline.backoffTime, 0);

    // A cached query string whose clicked result is NOT cached serves
    // the stale cached results instead of the offline page.
    const workload::PairRef p2{cachedPair(1).query, 502};
    const auto stale =
        device_.serveQuery(p2, ServePath::PocketSearch, true);
    EXPECT_TRUE(stale.degraded);
    EXPECT_TRUE(stale.staleServe);
    EXPECT_GT(stale.fetchTime, 0);

    const auto &rs = device_.resilience();
    EXPECT_EQ(rs.degradedServes, 2u);
    EXPECT_EQ(rs.offlinePages, 1u);
    EXPECT_EQ(rs.staleServes, 1u);
    EXPECT_EQ(rs.queuedMisses, 2u);
    ASSERT_EQ(device_.missQueue().size(), 2u);

    // While the radio is still dead, a sync pass makes no progress but
    // keeps the queue intact.
    const auto stuck = device_.syncMissQueue();
    EXPECT_EQ(stuck.synced, 0u);
    EXPECT_EQ(stuck.remaining, 2u);

    // Coverage returns: the queue drains and the missed pairs are
    // learned as if they had been clicked online.
    device_.attachFaults(nullptr);
    const auto sync = device_.syncMissQueue();
    EXPECT_EQ(sync.synced, 2u);
    EXPECT_EQ(sync.remaining, 0u);
    EXPECT_GT(sync.time, 0);
    EXPECT_GT(sync.energy, 0.0);
    EXPECT_TRUE(device_.missQueue().empty());
    EXPECT_EQ(device_.resilience().syncedMisses, 2u);
    EXPECT_TRUE(device_.pocketSearch().containsPair(p1));
    EXPECT_TRUE(device_.pocketSearch().containsPair(p2));
    const auto again =
        device_.serveQuery(p1, ServePath::PocketSearch, false);
    EXPECT_TRUE(again.cacheHit) << "synced miss serves locally next time";
}

TEST_F(DegradedServeTest, MixedFaultCountersBalanceExactly)
{
    fault::FaultConfig fc;
    fc.seed = 77;
    fc.radio.exchangeFailureRate = 0.3;
    fc.radio.latencySpikeRate = 0.25;
    fc.radio.outageShare = 0.3;
    fc.radio.meanOutageDuration = 20 * kSecond;
    fault::FaultPlan plan(fc);
    device_.attachFaults(&plan);

    for (u32 i = 0; i < 60; ++i) {
        device_.serveQuery(uncachedPair(300 + i), ServePath::PocketSearch,
                           false);
        device_.advanceTime(5 * kSecond);
    }
    device_.syncMissQueue();

    const auto &rs = device_.resilience();
    const auto &in = plan.stats();
    EXPECT_EQ(rs.failedAttempts, in.exchangeFailures);
    EXPECT_EQ(rs.noCoverageAttempts, in.outageAttempts);
    EXPECT_EQ(rs.latencySpikes, in.latencySpikes);
    EXPECT_GT(in.exchangeFailures, 0u);
    EXPECT_GT(in.outageAttempts, 0u);
    EXPECT_GT(in.latencySpikes, 0u);
    // Every attempt is a success, a failure, or an outage probe.
    EXPECT_EQ(rs.radioAttempts,
              rs.failedAttempts + rs.noCoverageAttempts +
                  (rs.radioAttempts - rs.failedAttempts -
                   rs.noCoverageAttempts));
    EXPECT_EQ(rs.degradedServes, rs.staleServes + rs.offlinePages);
    EXPECT_EQ(device_.missQueue().size(),
              rs.queuedMisses - rs.syncedMisses);
}

TEST_F(DegradedServeTest, ZeroRatePlanChangesNothing)
{
    // Attaching a plan whose rates are all zero must leave every number
    // byte-identical to the unfaulted device.
    MobileDevice vanilla(uni_);
    warmCache(vanilla);
    fault::FaultPlan plan; // defaults: everything disabled
    device_.attachFaults(&plan);

    for (u32 i = 0; i < 10; ++i) {
        const auto pair =
            (i % 2) ? cachedPair(i) : uncachedPair(600 + i);
        const auto a =
            device_.serveQuery(pair, ServePath::PocketSearch, true);
        const auto b =
            vanilla.serveQuery(pair, ServePath::PocketSearch, true);
        ASSERT_EQ(a.cacheHit, b.cacheHit) << "query " << i;
        ASSERT_EQ(a.latency, b.latency) << "query " << i;
        ASSERT_DOUBLE_EQ(a.energy, b.energy) << "query " << i;
        ASSERT_EQ(a.attempts, b.attempts);
        ASSERT_EQ(a.degraded, b.degraded);
    }
    EXPECT_EQ(device_.resilience().retries, 0u);
    EXPECT_EQ(device_.resilience().degradedServes, 0u);
    EXPECT_EQ(plan.toCounters().total(), 0u);
}

TEST_F(DegradedServeTest, FaultyWorkloadIsDeterministic)
{
    auto run = [this]() {
        MobileDevice d(uni_);
        warmCache(d);
        fault::FaultConfig fc;
        fc.seed = 31337;
        fc.radio.exchangeFailureRate = 0.25;
        fc.radio.latencySpikeRate = 0.15;
        fc.radio.outageShare = 0.2;
        fc.radio.meanOutageDuration = 30 * kSecond;
        fault::FaultPlan plan(fc);
        d.attachFaults(&plan);
        SimTime latency = 0;
        MicroJoules energy = 0;
        for (u32 i = 0; i < 50; ++i) {
            const auto out = d.serveQuery(uncachedPair(200 + i),
                                          ServePath::PocketSearch, true);
            latency += out.latency;
            energy += out.energy;
            d.advanceTime(3 * kSecond);
        }
        d.attachFaults(nullptr);
        d.syncMissQueue();
        return std::tuple(latency, energy,
                          d.resilience().toCounters().items());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(std::get<0>(a), std::get<0>(b));
    EXPECT_DOUBLE_EQ(std::get<1>(a), std::get<1>(b));
    EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

} // namespace
} // namespace pc::device
