/**
 * @file
 * Regression-gate tests: the JSON parser round-trips the bench
 * reporter's output, reports flatten to comparable metrics, and
 * diffReports passes identical reports, fails seeded regressions and
 * missing metrics, and honours per-metric tolerance rules.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/benchdiff.h"
#include "obs/health.h"
#include "obs/jsonparse.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace pc::obs {
namespace {

/** A representative report with metrics, quantiles and a registry. */
BenchReport
sampleReport(double latencyShift = 0.0)
{
    MetricRegistry reg;
    for (int i = 0; i < 100; ++i)
        reg.histogram("lat_ms").observe(20.0 + double(i) + latencyShift);
    reg.counter("served").bump(100);
    reg.gauge("energy_mj").set(512.5);

    BenchReport report("gate_unittest", "regression gate sample");
    report.metric("speedup", 16.25, "x");
    report.metric("hit_rate", 0.65);
    report.quantiles(reg.histogram("lat_ms"), "ms");
    report.attachSnapshot(reg.snapshot());
    return report;
}

std::string
reportJson(const BenchReport &r)
{
    std::ostringstream os;
    r.writeJson(os);
    return os.str();
}

TEST(JsonParse, RoundTripsTheWritersOutput)
{
    JsonValue root;
    std::string err;
    ASSERT_TRUE(parseJson(reportJson(sampleReport()), root, &err)) << err;
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.strOr("bench", ""), "gate_unittest");
    const JsonValue *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isArray());
    EXPECT_EQ(metrics->array().size(), 2u);
    EXPECT_DOUBLE_EQ(metrics->array()[0].numberOr("value", 0.0), 16.25);
    const JsonValue *reg = root.find("registry");
    ASSERT_NE(reg, nullptr);
    const JsonValue *counters = reg->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(counters->numberOr("served", 0.0), 100.0);
}

TEST(JsonParse, ParsesEscapesAndTypes)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"s":"a\"b\nA","n":-2.5e2,"t":true,"f":false,"z":null,)"
        R"("a":[1,2,3]})",
        v, &err))
        << err;
    EXPECT_EQ(v.find("s")->str(), "a\"b\nA");
    EXPECT_DOUBLE_EQ(v.find("n")->number(), -250.0);
    EXPECT_TRUE(v.find("t")->boolean());
    EXPECT_FALSE(v.find("f")->boolean());
    EXPECT_TRUE(v.find("z")->isNull());
    EXPECT_EQ(v.find("a")->array().size(), 3u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    JsonValue v;
    EXPECT_FALSE(parseJson("{\"a\":1", v));
    EXPECT_FALSE(parseJson("{\"a\" 1}", v));
    EXPECT_FALSE(parseJson("[1,2,]", v));
    EXPECT_FALSE(parseJson("\"unterminated", v));
    EXPECT_FALSE(parseJson("{} trailing", v));
    EXPECT_FALSE(parseJson("tru", v));
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", v, &err));
    EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(GlobMatch, Wildcards)
{
    EXPECT_TRUE(globMatch("*", "anything.at.all"));
    EXPECT_TRUE(globMatch("histogram.*.p99", "histogram.lat_ms.p99"));
    EXPECT_FALSE(globMatch("histogram.*.p99", "histogram.lat_ms.p50"));
    EXPECT_TRUE(globMatch("counter.device.*", "counter.device.queries"));
    EXPECT_TRUE(globMatch("exact", "exact"));
    EXPECT_FALSE(globMatch("exact", "exactly"));
    EXPECT_TRUE(globMatch("*p9?", "metric.p90"));
}

TEST(FlattenBenchReport, NamespacesEverySection)
{
    JsonValue root;
    ASSERT_TRUE(parseJson(reportJson(sampleReport()), root));
    BenchMetrics m;
    std::string err;
    ASSERT_TRUE(flattenBenchReport(root, m, &err)) << err;
    EXPECT_EQ(m.bench, "gate_unittest");
    EXPECT_DOUBLE_EQ(m.values.at("metric.speedup"), 16.25);
    EXPECT_DOUBLE_EQ(m.values.at("metric.hit_rate"), 0.65);
    EXPECT_GT(m.values.at("histogram.lat_ms.p50"), 0.0);
    EXPECT_DOUBLE_EQ(m.values.at("histogram.lat_ms.count"), 100.0);
    EXPECT_DOUBLE_EQ(m.values.at("counter.served"), 100.0);
    EXPECT_DOUBLE_EQ(m.values.at("gauge.energy_mj"), 512.5);
    EXPECT_DOUBLE_EQ(m.values.at("registry.lat_ms.count"), 100.0);

    JsonValue notAReport;
    ASSERT_TRUE(parseJson("{\"x\":1}", notAReport));
    EXPECT_FALSE(flattenBenchReport(notAReport, m, &err));
}

TEST(FlattenHealthReport, NamespacesScenariosComponentsAndSlos)
{
    health::HealthReport hr;
    hr.id = "fleet_health";
    health::HealthAnalysis a;
    a.devices = 8;
    a.horizon = 1000;
    a.queries = 42;
    health::ComponentHealth radio;
    radio.name = "device.radio.3g";
    radio.busyNs = 800;
    radio.ops = 4;
    radio.utilization = 0.1;
    radio.serviceNs = 200.0;
    radio.demandNs = 19.0;
    a.ranked.push_back(radio);
    health::ComponentHealth pipe;
    pipe.name = "device.query";
    pipe.busyNs = 900;
    a.pipelines.push_back(pipe);
    a.bottleneck = "device.radio.3g";
    a.maxUtilization = 0.1;
    a.headroom = 10.0;
    health::SloStatus slo;
    slo.spec = health::defaultFleetSlos()[0];
    slo.events = 42;
    slo.attainment = 1.0;
    slo.met = true;
    a.slos.push_back(slo);
    hr.scenarios.emplace_back("baseline", a);

    std::ostringstream os;
    health::writeHealthJson(os, hr);
    JsonValue root;
    ASSERT_TRUE(parseJson(os.str(), root));
    BenchMetrics m;
    std::string err;
    ASSERT_TRUE(flattenHealthReport(root, m, &err)) << err;
    EXPECT_EQ(m.bench, "fleet_health");
    EXPECT_DOUBLE_EQ(m.values.at("baseline.devices"), 8.0);
    EXPECT_DOUBLE_EQ(m.values.at("baseline.queries"), 42.0);
    EXPECT_DOUBLE_EQ(m.values.at("baseline.bottleneck.utilization"),
                     0.1);
    EXPECT_DOUBLE_EQ(m.values.at("baseline.bottleneck.headroom_x"),
                     10.0);
    EXPECT_DOUBLE_EQ(
        m.values.at("baseline.component.device.radio.3g.rank"), 1.0);
    EXPECT_DOUBLE_EQ(
        m.values.at("baseline.component.device.radio.3g.busy_ns"),
        800.0);
    EXPECT_DOUBLE_EQ(
        m.values.at("baseline.pipeline.device.query.busy_ns"), 900.0);
    EXPECT_DOUBLE_EQ(
        m.values.at("baseline.slo.query_availability.met"), 1.0);

    // A bench report is not a health report, and vice versa.
    JsonValue bench;
    ASSERT_TRUE(parseJson(reportJson(sampleReport()), bench));
    EXPECT_FALSE(flattenHealthReport(bench, m, &err));
}

/** Flatten a report straight from its JSON. */
BenchMetrics
flat(const BenchReport &r)
{
    JsonValue root;
    EXPECT_TRUE(parseJson(reportJson(r), root));
    BenchMetrics m;
    EXPECT_TRUE(flattenBenchReport(root, m, nullptr));
    return m;
}

TEST(DiffReports, IdenticalReportsPass)
{
    const BenchMetrics base = flat(sampleReport());
    const DiffResult r = diffReports(base, base);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.changed, 0u);
    EXPECT_EQ(r.missing, 0u);
    EXPECT_GT(r.compared, 10u);
}

TEST(DiffReports, SeededRegressionFails)
{
    const BenchMetrics base = flat(sampleReport());
    const BenchMetrics cur = flat(sampleReport(/*latencyShift=*/15.0));
    const DiffResult r = diffReports(base, cur);
    EXPECT_FALSE(r.ok());
    EXPECT_GT(r.changed, 0u);
    bool sawLatency = false;
    for (const auto &e : r.entries) {
        if (e.name == "histogram.lat_ms.p50" &&
            e.status == DiffEntry::Status::Changed)
            sawLatency = true;
    }
    EXPECT_TRUE(sawLatency);

    std::ostringstream os;
    writeDiffReport(os, r);
    EXPECT_NE(os.str().find("DRIFT"), std::string::npos);
    EXPECT_NE(os.str().find("drifted"), std::string::npos);
}

TEST(DiffReports, MissingMetricIsARegressionAddedIsNot)
{
    BenchMetrics base, cur;
    base.bench = cur.bench = "b";
    base.values = {{"metric.a", 1.0}, {"metric.b", 2.0}};
    cur.values = {{"metric.a", 1.0}, {"metric.c", 3.0}};
    const DiffResult r = diffReports(base, cur);
    EXPECT_FALSE(r.ok()) << "a vanished metric must fail the gate";
    EXPECT_EQ(r.missing, 1u);
    EXPECT_EQ(r.added, 1u);
    EXPECT_EQ(r.changed, 0u);
}

TEST(DiffReports, ToleranceRulesAreFirstMatchWins)
{
    BenchMetrics base, cur;
    base.bench = cur.bench = "b";
    base.values = {{"histogram.lat.p99", 100.0},
                   {"counter.queries", 1000.0}};
    cur.values = {{"histogram.lat.p99", 108.0},
                  {"counter.queries", 1000.0}};

    EXPECT_FALSE(diffReports(base, cur).ok())
        << "default tolerance is exact";

    DiffConfig cfg;
    cfg.rules.push_back({"histogram.*.p99", 0.10, 0.0});
    EXPECT_TRUE(diffReports(base, cur, cfg).ok())
        << "8% p99 wobble sits inside the 10% rule";

    cfg.rules.insert(cfg.rules.begin(), {"histogram.lat.*", 0.01, 0.0});
    EXPECT_FALSE(diffReports(base, cur, cfg).ok())
        << "an earlier, tighter rule wins";
}

TEST(DiffReports, AbsoluteToleranceCoversZeroBaselines)
{
    BenchMetrics base, cur;
    base.bench = cur.bench = "b";
    base.values = {{"metric.z", 0.0}};
    cur.values = {{"metric.z", 1e-13}};
    EXPECT_TRUE(diffReports(base, cur).ok())
        << "sub-absTol noise around zero must not trip the gate";
    cur.values["metric.z"] = 0.5;
    EXPECT_FALSE(diffReports(base, cur).ok());
}

} // namespace
} // namespace pc::obs
