/**
 * @file
 * Fleet health observatory tests: the accountant's ledgers, merge
 * associativity through MetricRegistry::mergeFrom, SLO burn edge
 * cases (empty windows, exact budget exhaustion, counter resets),
 * deterministic breach events, the bottleneck analyzer's ranking
 * rules, the attach cost contract (behaviour-, RNG- and
 * allocation-neutral, span tiling intact), and the end-to-end
 * saturation flip with a byte-identical artifact at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/fleet.h"
#include "harness/workbench.h"
#include "logs/triplets.h"
#include "obs/causal.h"
#include "obs/fleet.h"
#include "obs/health.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "server/service.h"

// Global allocation counter for the neutrality suite: attached health
// accounting must not allocate on the hot path, and the only way to
// prove it is to count every operator-new in the process and compare
// windows.
namespace {
std::atomic<unsigned long long> g_allocs{0};
}

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

// GCC can't see that the replacement operator new above is
// malloc-backed when it inline-pairs gtest's `new TestClass` with
// these deletes, so it flags free() as mismatched. It isn't.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace pc::obs::health {
namespace {

u64
counter(const MetricRegistry &reg, const std::string &name)
{
    return reg.snapshot().counterValue(name);
}

TEST(HealthAccountant, QuerySampleFoldsIntoLedgers)
{
    MetricRegistry reg;
    HealthAccountant acct(reg);

    QueryHealthSample q;
    q.probe = 100;
    q.fetch = 2000;
    q.radio = 0;
    q.backoff = 0;
    q.render = 300;
    q.misc = 50;
    q.total = 2450;
    q.cacheHit = true;
    acct.onQuery(q);

    EXPECT_EQ(counter(reg, "health.device.cpu.busy_ns"), 450u);
    EXPECT_EQ(counter(reg, "health.device.cpu.ops"), 1u);
    EXPECT_EQ(counter(reg, "health.device.flash.busy_ns"), 2000u);
    EXPECT_EQ(counter(reg, "health.device.flash.ops"), 1u);
    EXPECT_EQ(counter(reg, "health.device.query.busy_ns"), 2450u);
    EXPECT_EQ(counter(reg, "health.device.query.ops"), 1u);
    EXPECT_EQ(counter(reg, "health.device.radio.backoff_ns"), 0u);
}

TEST(HealthAccountant, SyncSampleChargesApplyToCpu)
{
    MetricRegistry reg;
    HealthAccountant acct(reg);

    SyncHealthSample s;
    s.ok = true;
    s.radio = 5000;
    s.backoff = 700;
    s.apply = 1200;
    s.bytes = 4096;
    acct.onSync(s);

    EXPECT_EQ(counter(reg, "health.device.sync.busy_ns"), 6200u);
    EXPECT_EQ(counter(reg, "health.device.sync.ops"), 1u);
    EXPECT_EQ(counter(reg, "health.device.sync.bytes"), 4096u);
    EXPECT_EQ(counter(reg, "health.device.cpu.busy_ns"), 1200u);
    EXPECT_EQ(counter(reg, "health.device.cpu.ops"), 1u);
    EXPECT_EQ(counter(reg, "health.device.radio.backoff_ns"), 700u);
}

TEST(HealthAccountant, MissSyncCountsDrainedEntries)
{
    MetricRegistry reg;
    HealthAccountant acct(reg);
    acct.onMissSync(3, 9000);
    EXPECT_EQ(counter(reg, "health.device.sync.busy_ns"), 9000u);
    EXPECT_EQ(counter(reg, "health.device.sync.ops"), 3u);
}

TEST(HealthAccountant, RadioLedgerRegistersPerLink)
{
    MetricRegistry reg;
    HealthAccountant acct(reg);
    const auto ledger = acct.radioLedger("3g");
    ASSERT_NE(ledger.first, nullptr);
    ASSERT_NE(ledger.second, nullptr);
    ledger.first->bump(7000);
    ledger.second->bump();
    EXPECT_EQ(counter(reg, "health.device.radio.3g.busy_ns"), 7000u);
    EXPECT_EQ(counter(reg, "health.device.radio.3g.ops"), 1u);
}

/** Ledgers are plain counters, so registry merges must associate. */
TEST(HealthLedgers, MergeIsAssociative)
{
    const auto makeDevice = [](u64 seed) {
        auto reg = std::make_unique<MetricRegistry>();
        HealthAccountant acct(*reg);
        QueryHealthSample q;
        q.probe = 10 * seed;
        q.fetch = 100 * seed;
        q.render = 30 * seed;
        q.misc = seed;
        q.total = 141 * seed;
        acct.onQuery(q);
        SyncHealthSample s;
        s.ok = seed % 2 == 0;
        s.radio = 1000 * seed;
        s.apply = s.ok ? 50 * seed : 0;
        s.bytes = s.ok ? 512 * seed : 0;
        acct.onSync(s);
        acct.onMissSync(seed, 200 * seed);
        return reg;
    };
    const auto a = makeDevice(1), b = makeDevice(2), c = makeDevice(3);

    MetricRegistry left;  // (A + B) + C
    left.mergeFrom(*a);
    left.mergeFrom(*b);
    left.mergeFrom(*c);
    MetricRegistry bc; // A + (B + C)
    bc.mergeFrom(*b);
    bc.mergeFrom(*c);
    MetricRegistry right;
    right.mergeFrom(*a);
    right.mergeFrom(bc);

    std::ostringstream l, r;
    left.snapshot().writeJson(l, true);
    right.snapshot().writeJson(r, true);
    EXPECT_EQ(l.str(), r.str());
}

SloSpec
availabilitySpec(double objective = 0.9)
{
    SloSpec s;
    s.name = "avail";
    s.kind = SloKind::Availability;
    s.objective = objective;
    s.eventCounter = "ev";
    s.badCounter = "bad";
    return s;
}

TEST(SloBurn, EmptyWindowBurnsNothing)
{
    TimeSeries ts(100);
    ts.recordCounter(10, "ev", 50);   // window 0: traffic, no errors
    ts.recordCounter(150, "other", 1); // window 1: no ev at all

    MetricRegistry reg;
    reg.counter("ev").bump(50);
    const auto out =
        evaluateSlos({availabilitySpec()}, ts, reg.snapshot());
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].burnByWindow.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0].burnByWindow[0], 0.0);
    EXPECT_DOUBLE_EQ(out[0].burnByWindow[1], 0.0);
    EXPECT_TRUE(out[0].met);
    EXPECT_FALSE(out[0].burning);
}

TEST(SloBurn, ExactBudgetExhaustionStillMeets)
{
    // objective 0.9 over 100 events allows exactly 10 bad ones:
    // consuming all 10 leaves remaining 0 but does not miss.
    TimeSeries ts(100);
    ts.recordCounter(10, "ev", 100);
    ts.recordCounter(10, "bad", 10);

    MetricRegistry reg;
    reg.counter("ev").bump(100);
    reg.counter("bad").bump(10);
    const auto out =
        evaluateSlos({availabilitySpec()}, ts, reg.snapshot());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].budgetAllowed, 10.0);
    EXPECT_DOUBLE_EQ(out[0].budgetConsumed, 10.0);
    EXPECT_DOUBLE_EQ(out[0].budgetRemaining, 0.0);
    EXPECT_TRUE(out[0].met);
    // One more bad event tips it over.
    reg.counter("bad").bump(1);
    ts.recordCounter(10, "bad", 1);
    const auto over =
        evaluateSlos({availabilitySpec()}, ts, reg.snapshot());
    EXPECT_FALSE(over[0].met);
}

TEST(SloBurn, CounterResetAfterIngestClampsToZeroDelta)
{
    SloTracker tracker(100, {availabilitySpec()});

    MetricRegistry reg;
    reg.counter("ev").bump(80);
    reg.counter("bad").bump(8);
    tracker.ingest(10, reg.snapshot());

    // Simulate a restarted process: fresh registry, lower counts.
    MetricRegistry fresh;
    fresh.counter("ev").bump(20);
    fresh.counter("bad").bump(2);
    tracker.ingest(150, fresh.snapshot());

    // The reset window contributes zero, never an unsigned wrap.
    const auto ev = tracker.series().counterSeries("ev");
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_DOUBLE_EQ(ev[0], 80.0);
    EXPECT_DOUBLE_EQ(ev[1], 0.0);

    const auto out = tracker.evaluate();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].events, 20u); // last snapshot, not a sum
    EXPECT_TRUE(out[0].met);
}

TEST(SloBreach, EventsAreDeterministicAcrossEvaluations)
{
    // Two fully-bad windows: burn 10x in each, breaching both.
    TimeSeries ts(100);
    ts.recordCounter(10, "ev", 40);
    ts.recordCounter(10, "bad", 40);
    ts.recordCounter(150, "ev", 40);
    ts.recordCounter(150, "bad", 40);
    MetricRegistry reg;
    reg.counter("ev").bump(80);
    reg.counter("bad").bump(80);

    FlightRecorder recA(1), recB(1);
    const auto a =
        evaluateSlos({availabilitySpec()}, ts, reg.snapshot(), &recA);
    const auto b =
        evaluateSlos({availabilitySpec()}, ts, reg.snapshot(), &recB);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_FALSE(a[0].met);
    EXPECT_TRUE(a[0].burning);
    EXPECT_EQ(a[0].breachWindows.size(), 2u);

    const auto evA = recA.events(), evB = recB.events();
    ASSERT_EQ(evA.size(), 2u);
    ASSERT_EQ(evA.size(), evB.size());
    for (std::size_t i = 0; i < evA.size(); ++i) {
        EXPECT_EQ(evA[i].traceId, evB[i].traceId);
        EXPECT_EQ(evA[i].span, evB[i].span);
        EXPECT_EQ(evA[i].stage, SyncStage::SloBreach);
        EXPECT_FALSE(evA[i].ok);
        EXPECT_EQ(evA[i].attempt, u32(i));
        EXPECT_EQ(evA[i].start, evB[i].start);
        EXPECT_EQ(evA[i].duration, 100u);
    }
}

TEST(Analyzer, RanksByUtilizationAndComputesHeadroom)
{
    MetricRegistry reg;
    reg.counter("device.queries").bump(4);
    reg.counter("health.device.cpu.busy_ns").bump(5000);
    reg.counter("health.device.cpu.ops").bump(10);
    reg.counter("health.device.radio.3g.busy_ns").bump(8000);
    reg.counter("health.device.radio.3g.ops").bump(2);
    reg.counter("health.device.query.busy_ns").bump(13000);
    reg.counter("health.device.query.ops").bump(4);

    const auto a = analyzeHealth(reg.snapshot(), 1, 10000);
    ASSERT_EQ(a.ranked.size(), 2u);
    EXPECT_EQ(a.ranked[0].name, "device.radio.3g");
    EXPECT_DOUBLE_EQ(a.ranked[0].utilization, 0.8);
    EXPECT_DOUBLE_EQ(a.ranked[0].serviceNs, 4000.0);
    EXPECT_DOUBLE_EQ(a.ranked[0].demandNs, 2000.0);
    EXPECT_EQ(a.ranked[1].name, "device.cpu");
    EXPECT_DOUBLE_EQ(a.ranked[1].utilization, 0.5);

    EXPECT_EQ(a.bottleneck, "device.radio.3g");
    EXPECT_DOUBLE_EQ(a.maxUtilization, 0.8);
    EXPECT_DOUBLE_EQ(a.headroom, 1.25);

    // End-to-end pipelines are reported but never ranked — their mass
    // double-counts the per-component ledgers.
    ASSERT_EQ(a.pipelines.size(), 1u);
    EXPECT_EQ(a.pipelines[0].name, "device.query");
}

TEST(Analyzer, ServerCapacityIsSharedNotPerDevice)
{
    MetricRegistry reg;
    reg.counter("health.device.cpu.busy_ns").bump(1000);
    reg.counter("health.device.cpu.ops").bump(1);
    reg.counter("health.server.sync.busy_ns").bump(1000);
    reg.counter("health.server.sync.ops").bump(1);

    // 10 devices: the device component's capacity is 10x the server's,
    // so equal busy time means the server is 10x as utilized.
    const auto a = analyzeHealth(reg.snapshot(), 10, 10000);
    ASSERT_EQ(a.ranked.size(), 2u);
    EXPECT_EQ(a.ranked[0].name, "server.sync");
    EXPECT_DOUBLE_EQ(a.ranked[0].utilization, 0.1);
    EXPECT_DOUBLE_EQ(a.ranked[1].utilization, 0.01);
}

TEST(Analyzer, TiesBreakByNameAscending)
{
    MetricRegistry reg;
    reg.counter("health.device.zeta.busy_ns").bump(100);
    reg.counter("health.device.zeta.ops").bump(1);
    reg.counter("health.device.alpha.busy_ns").bump(100);
    reg.counter("health.device.alpha.ops").bump(1);
    const auto a = analyzeHealth(reg.snapshot(), 1, 1000);
    ASSERT_EQ(a.ranked.size(), 2u);
    EXPECT_EQ(a.ranked[0].name, "device.alpha");
    EXPECT_EQ(a.ranked[1].name, "device.zeta");
    EXPECT_EQ(a.bottleneck, "device.alpha");
}

TEST(Analyzer, IdleFleetHasNoBottleneck)
{
    MetricRegistry reg;
    const auto a = analyzeHealth(reg.snapshot(), 4, 1000);
    EXPECT_TRUE(a.ranked.empty());
    EXPECT_TRUE(a.bottleneck.empty());
    EXPECT_DOUBLE_EQ(a.headroom, 0.0);
}

/** Small world for the device-level neutrality/tiling suite. */
workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

void
warmCache(device::MobileDevice &dev, workload::QueryUniverse &uni)
{
    workload::SearchLog log(uni);
    for (u32 r = 0; r < 20; ++r) {
        const u32 q = uni.result(r).queries.front().first;
        for (int i = 0; i < int(40 - r); ++i)
            log.add({1, SimTime(i), {q, r},
                     workload::DeviceType::Smartphone});
    }
    const auto table = logs::TripletTable::fromLog(log);
    core::CacheContentBuilder builder(uni);
    core::ContentPolicy policy;
    policy.kind = core::ThresholdKind::VolumeShare;
    policy.volumeShare = 1.0;
    dev.installCommunityCache(builder.build(table, policy));
}

struct NeutralityPhase
{
    SimTime latency = 0;
    SimTime radio = 0;
    SimTime backoff = 0;
    u64 hits = 0;
    u64 degraded = 0;
    u64 rngDraws = 0;
    u64 allocs = 0;
};

/**
 * One phase of the cost-contract check: a fresh device under a seeded
 * fault plan serving a mixed hit/miss workload, with or without a
 * health accountant attached. Everything inside the serve window is
 * summed; the accountant (whose construction registers handles — the
 * cold path) is built outside it.
 */
NeutralityPhase
runNeutralityPhase(workload::QueryUniverse &uni, bool attach)
{
    device::MobileDevice dev(uni);
    warmCache(dev, uni);

    fault::FaultConfig fc;
    fc.seed = 99;
    fc.radio.exchangeFailureRate = 0.4;
    fc.radio.latencySpikeRate = 0.2;
    fault::FaultPlan plan(fc);
    dev.attachFaults(&plan);

    MetricRegistry reg;
    std::optional<HealthAccountant> acct;
    if (attach) {
        acct.emplace(reg);
        dev.attachHealth(&*acct);
    }

    NeutralityPhase out;
    for (u32 i = 0; i < 40; ++i) {
        const u32 r = i % 2 == 0 ? i / 2 : 500 + i;
        const workload::PairRef pair{
            uni.result(r).queries.front().first, r};
        const auto path = i % 2 == 0 ? device::ServePath::PocketSearch
                                     : device::ServePath::ThreeG;
        const u64 a0 = g_allocs.load(std::memory_order_relaxed);
        const auto q = dev.serveQuery(pair, path, false);
        out.allocs += g_allocs.load(std::memory_order_relaxed) - a0;
        out.latency += q.latency;
        out.radio += q.radioTime;
        out.backoff += q.backoffTime;
        out.hits += q.cacheHit;
        out.degraded += q.degraded;
    }
    out.rngDraws = plan.rngDraws();
    if (attach)
        dev.attachHealth(nullptr);
    dev.attachFaults(nullptr);
    return out;
}

TEST(HealthNeutrality, AttachIsBehaviourRngAndAllocNeutral)
{
    workload::QueryUniverse uni(tinyUniverse());
    const NeutralityPhase off = runNeutralityPhase(uni, false);
    const NeutralityPhase on = runNeutralityPhase(uni, true);

    EXPECT_EQ(off.latency, on.latency);
    EXPECT_EQ(off.radio, on.radio);
    EXPECT_EQ(off.backoff, on.backoff);
    EXPECT_EQ(off.hits, on.hits);
    EXPECT_EQ(off.degraded, on.degraded);
    EXPECT_EQ(off.rngDraws, on.rngDraws)
        << "health accounting must not consume fault-plan RNG";
    EXPECT_EQ(off.allocs, on.allocs)
        << "health accounting must not allocate on the hot path";
}

TEST(HealthNeutrality, SpanTilingHoldsWithAccountingAttached)
{
    workload::QueryUniverse uni(tinyUniverse());
    device::MobileDevice dev(uni);
    warmCache(dev, uni);

    MetricRegistry reg;
    Tracer tracer;
    dev.attachMetrics(&reg);
    dev.attachTracer(&tracer, "device");
    HealthAccountant acct(reg);
    dev.attachHealth(&acct);

    fault::FaultConfig fc;
    fc.seed = 7;
    fc.radio.exchangeFailureRate = 0.6;
    fault::FaultPlan plan(fc);
    dev.attachFaults(&plan);

    SimTime tiled = 0;
    for (u32 i = 0; i < 20; ++i) {
        const u32 r = 500 + i;
        const workload::PairRef pair{
            uni.result(r).queries.front().first, r};
        const std::size_t before = tracer.spans().size();
        const auto q =
            dev.serveQuery(pair, device::ServePath::ThreeG, false);
        SimTime componentSum = 0;
        for (std::size_t s = before; s < tracer.spans().size(); ++s) {
            if (tracer.spans()[s].category == "device")
                componentSum += tracer.spans()[s].duration;
        }
        EXPECT_EQ(componentSum, q.latency)
            << "device spans must still tile the latency exactly";
        tiled += q.latency;
    }
    // The ledgers must agree with the tiling they observed: busy plus
    // idle backoff covers every query's end-to-end latency.
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counterValue("health.device.query.busy_ns"),
              u64(tiled));
    EXPECT_EQ(snap.counterValue("health.device.query.ops"), 20u);
    const u64 busyParts =
        snap.counterValue("health.device.cpu.busy_ns") +
        snap.counterValue("health.device.flash.busy_ns") +
        snap.counterValue("health.device.radio.3g.busy_ns") +
        snap.counterValue("health.device.radio.backoff_ns");
    EXPECT_EQ(busyParts, u64(tiled))
        << "component ledgers + idle backoff must tile the pipeline "
           "ledger";
}

/** Run a small fleet and return (analysis, artifact bytes). */
std::pair<HealthAnalysis, std::string>
runSmallFleet(const harness::Workbench &wb, bool storm,
              unsigned threads)
{
    server::ServiceConfig scfg;
    scfg.build.shards = 2;
    scfg.build.threads = 2;
    scfg.healthAccounting = true;
    server::CloudUpdateService svc(wb.universe(), scfg);
    svc.ingest(wb.buildLog());

    harness::FleetRunConfig cfg;
    cfg.devices = 16;
    cfg.months = 4;
    cfg.threads = threads;
    cfg.cloud = &svc;
    cfg.health = true;
    if (storm) {
        cfg.outageStartMonth = 0;
        cfg.outageMonths = cfg.months;
        cfg.outageFaults.radio.outageShare = 0.999;
        cfg.outageFaults.radio.meanOutageDuration =
            10ll * workload::kMonth;
        cfg.outageFaults.radio.exchangeFailureRate = 0.0;
        cfg.outageFaults.radio.latencySpikeRate = 0.0;
    }

    FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    FleetCollector collector(fc);
    harness::runFleet(wb, cfg, collector);

    const MetricsSnapshot snap = collector.fleetRegistry().snapshot();
    auto analysis = analyzeHealth(snap, cfg.devices,
                                  SimTime(cfg.months) * workload::kMonth);
    analysis.slos = evaluateSlos(defaultFleetSlos(),
                                 collector.fleetSeries(), snap);

    HealthReport r;
    r.scenarios.emplace_back(storm ? "storm" : "baseline", analysis);
    std::ostringstream os;
    writeHealthJson(os, r);
    return {std::move(analysis), os.str()};
}

TEST(FleetHealth, OutageStormFlipsTheBottleneck)
{
    harness::Workbench wb(harness::smallWorkbenchConfig());
    const auto base = runSmallFleet(wb, false, 1);
    const auto storm = runSmallFleet(wb, true, 1);

    EXPECT_EQ(base.first.bottleneck, "device.radio.3g");
    EXPECT_EQ(storm.first.bottleneck, "device.cpu");
    EXPECT_NE(base.first.bottleneck, storm.first.bottleneck);
    EXPECT_GT(base.first.headroom, 0.0);

    // The storm must also burn the availability budget.
    const auto findSlo = [](const HealthAnalysis &a,
                            const std::string &name) {
        for (const auto &st : a.slos)
            if (st.spec.name == name)
                return &st;
        return static_cast<const SloStatus *>(nullptr);
    };
    const SloStatus *baseAvail =
        findSlo(base.first, "query_availability");
    const SloStatus *stormAvail =
        findSlo(storm.first, "query_availability");
    ASSERT_NE(baseAvail, nullptr);
    ASSERT_NE(stormAvail, nullptr);
    EXPECT_TRUE(baseAvail->met);
    EXPECT_FALSE(stormAvail->met);
    EXPECT_TRUE(stormAvail->burning);
}

TEST(FleetHealth, ArtifactIsByteIdenticalAcrossThreadCounts)
{
    harness::Workbench wb(harness::smallWorkbenchConfig());
    const auto t1 = runSmallFleet(wb, false, 1);
    const auto t4 = runSmallFleet(wb, false, 4);
    EXPECT_EQ(t1.second, t4.second)
        << "health artifact must not depend on the thread count";
}

} // namespace
} // namespace pc::obs::health
