/**
 * @file
 * Unit tests for the NVM technology roadmap (Table 1).
 */

#include <gtest/gtest.h>

#include "nvm/technology.h"

namespace pc::nvm {
namespace {

TEST(TechRoadmap, HasNineGenerations)
{
    TechRoadmap rm;
    EXPECT_EQ(rm.nodes().size(), 9u);
    EXPECT_EQ(rm.firstYear(), 2010);
    EXPECT_EQ(rm.lastYear(), 2026);
}

TEST(TechRoadmap, MatchesTable1Verbatim)
{
    TechRoadmap rm;
    // Spot-check the exact published cells.
    const auto &n2010 = rm.nodeFor(2010);
    EXPECT_EQ(n2010.techNm, 32);
    EXPECT_EQ(n2010.scalingFactor, 1);
    EXPECT_EQ(n2010.chipStack, 4);
    EXPECT_EQ(n2010.cellLayers, 1);
    EXPECT_EQ(n2010.bitsPerCell, 2);
    EXPECT_EQ(n2010.family, TechFamily::Flash);

    const auto &n2012 = rm.nodeFor(2012);
    EXPECT_EQ(n2012.bitsPerCell, 3) << "2012 is the 3-bit MLC point";

    const auto &n2018 = rm.nodeFor(2018);
    EXPECT_EQ(n2018.techNm, 11);
    EXPECT_EQ(n2018.scalingFactor, 8);
    EXPECT_EQ(n2018.chipStack, 8);
    EXPECT_EQ(n2018.cellLayers, 2);
    EXPECT_EQ(n2018.family, TechFamily::OtherNvm)
        << "post-flash NVM takes over in 2018";

    const auto &n2026 = rm.nodeFor(2026);
    EXPECT_EQ(n2026.techNm, 5);
    EXPECT_EQ(n2026.scalingFactor, 32);
    EXPECT_EQ(n2026.chipStack, 16);
    EXPECT_EQ(n2026.cellLayers, 8);
    EXPECT_EQ(n2026.bitsPerCell, 1);
}

TEST(TechRoadmap, ScalingStallsAtTransitionAndAt5nm)
{
    TechRoadmap rm;
    // The flash -> other-NVM hand-off (2016 -> 2018) stalls density
    // scaling for one generation.
    EXPECT_EQ(rm.nodeFor(2016).scalingFactor,
              rm.nodeFor(2018).scalingFactor);
    // Scaling stops when industry hits 5 nm (2022 onward).
    EXPECT_EQ(rm.nodeFor(2022).scalingFactor,
              rm.nodeFor(2026).scalingFactor);
}

TEST(TechRoadmap, NodeForPicksLatestNotAfterYear)
{
    TechRoadmap rm;
    EXPECT_EQ(rm.nodeFor(2011).year, 2010);
    EXPECT_EQ(rm.nodeFor(2012).year, 2012);
    EXPECT_EQ(rm.nodeFor(2013).year, 2012);
    EXPECT_EQ(rm.nodeFor(2040).year, 2026);
}

TEST(TechRoadmap, YearsAscendStrictly)
{
    TechRoadmap rm;
    for (std::size_t i = 1; i < rm.nodes().size(); ++i)
        EXPECT_LT(rm.nodes()[i - 1].year, rm.nodes()[i].year);
}

TEST(TechNode, FullMultiplier2018Is32x)
{
    // The multiplier consistent with the paper's "1 TB by 2018 from a
    // 32 GB 2010 part": 8 (density) * 2 (chip stack) * 2 (layers) *
    // 1 (bits halve 2->2... stay) = 32.
    TechRoadmap rm;
    const double m = rm.nodeFor(2018).fullMultiplier(rm.baseline());
    EXPECT_DOUBLE_EQ(m, 32.0);
}

TEST(TechNode, FamilyNames)
{
    TechRoadmap rm;
    EXPECT_EQ(rm.nodeFor(2010).familyName(), "Flash");
    EXPECT_EQ(rm.nodeFor(2020).familyName(), "Other NVM");
}

TEST(TechRoadmapDeath, PreRoadmapYearPanics)
{
    TechRoadmap rm;
    EXPECT_DEATH((void)rm.nodeFor(2009), "precedes");
}

} // namespace
} // namespace pc::nvm
