/**
 * @file
 * Unit tests for triplet aggregation (Table 3).
 */

#include <gtest/gtest.h>

#include "logs/triplets.h"

namespace pc::logs {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 100;
    cfg.nonNavResults = 400;
    cfg.navHead = 20;
    cfg.nonNavHead = 20;
    cfg.habitNavHead = 10;
    cfg.habitNonNavHead = 10;
    return cfg;
}

class TripletsTest : public ::testing::Test
{
  protected:
    TripletsTest() : uni_(tinyUniverse()), log_(uni_) {}

    void
    addN(u32 query, u32 result, int n)
    {
        for (int i = 0; i < n; ++i) {
            log_.add({1, SimTime(i), {query, result},
                      workload::DeviceType::Smartphone});
        }
    }

    workload::QueryUniverse uni_;
    workload::SearchLog log_;
};

TEST_F(TripletsTest, AggregatesAndSortsByVolume)
{
    addN(1, 10, 5);
    addN(2, 11, 9);
    addN(3, 12, 2);
    const auto t = TripletTable::fromLog(log_);
    ASSERT_EQ(t.rows().size(), 3u);
    EXPECT_EQ(t.rows()[0].volume, 9u);
    EXPECT_EQ(t.rows()[0].pair.query, 2u);
    EXPECT_EQ(t.rows()[1].volume, 5u);
    EXPECT_EQ(t.rows()[2].volume, 2u);
    EXPECT_EQ(t.totalVolume(), 16u);
}

TEST_F(TripletsTest, SameQueryDifferentResultsAreDistinctRows)
{
    // Table 3's "michael jackson" -> imdb and azlyrics rows.
    addN(7, 10, 10);
    addN(7, 11, 9);
    const auto t = TripletTable::fromLog(log_);
    ASSERT_EQ(t.rows().size(), 2u);
    EXPECT_EQ(t.rows()[0].pair.result, 10u);
    EXPECT_EQ(t.rows()[1].pair.result, 11u);
}

TEST_F(TripletsTest, NormalizedVolume)
{
    addN(1, 10, 10); // 106-style head pair
    addN(2, 11, 40);
    const auto t = TripletTable::fromLog(log_);
    EXPECT_DOUBLE_EQ(t.normalizedVolume(0), 0.8);
    EXPECT_DOUBLE_EQ(t.normalizedVolume(1), 0.2);
}

TEST_F(TripletsTest, CumulativeShareAndRowsForShare)
{
    addN(1, 10, 50);
    addN(2, 11, 30);
    addN(3, 12, 20);
    const auto t = TripletTable::fromLog(log_);
    EXPECT_DOUBLE_EQ(t.cumulativeShare(0), 0.0);
    EXPECT_DOUBLE_EQ(t.cumulativeShare(1), 0.5);
    EXPECT_DOUBLE_EQ(t.cumulativeShare(2), 0.8);
    EXPECT_DOUBLE_EQ(t.cumulativeShare(3), 1.0);
    EXPECT_DOUBLE_EQ(t.cumulativeShare(99), 1.0);
    EXPECT_EQ(t.rowsForShare(0.5), 1u);
    EXPECT_EQ(t.rowsForShare(0.55), 2u);
    EXPECT_EQ(t.rowsForShare(1.0), 3u);
}

TEST_F(TripletsTest, UniqueResultsInTop)
{
    addN(1, 10, 50); // result 10 reached via two queries
    addN(2, 10, 30);
    addN(3, 12, 20);
    const auto t = TripletTable::fromLog(log_);
    EXPECT_EQ(t.uniqueResultsInTop(2), 1u);
    EXPECT_EQ(t.uniqueResultsInTop(3), 2u);
}

TEST_F(TripletsTest, EmptyLog)
{
    const auto t = TripletTable::fromLog(log_);
    EXPECT_TRUE(t.rows().empty());
    EXPECT_EQ(t.totalVolume(), 0u);
    EXPECT_EQ(t.rowsForShare(0.5), 0u);
    EXPECT_DOUBLE_EQ(t.cumulativeShare(1), 0.0);
}

TEST_F(TripletsTest, DeterministicTieBreak)
{
    addN(5, 20, 3);
    addN(4, 21, 3);
    addN(6, 19, 3);
    const auto a = TripletTable::fromLog(log_);
    const auto b = TripletTable::fromLog(log_);
    for (std::size_t i = 0; i < a.rows().size(); ++i)
        EXPECT_TRUE(a.rows()[i].pair == b.rows()[i].pair);
}

} // namespace
} // namespace pc::logs
