/**
 * @file
 * Unit tests for the OS isolation layer over cloudlet storage
 * (Section 7's security requirement).
 */

#include <gtest/gtest.h>

#include "simfs/protected_store.h"

namespace pc::simfs {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.capacity = 64 * kMiB;
    return cfg;
}

class ProtectedStoreTest : public ::testing::Test
{
  protected:
    ProtectedStoreTest()
        : device_(deviceConfig()), raw_(device_), os_(raw_)
    {
        bank_ = os_.registerNamespace("bank");
        maps_ = os_.registerNamespace("maps");
    }

    pc::nvm::FlashDevice device_;
    FlashStore raw_;
    ProtectedStore os_;
    Grant bank_ = kNoGrant;
    Grant maps_ = kNoGrant;
};

TEST_F(ProtectedStoreTest, OwnNamespaceWorksEndToEnd)
{
    FileId id = kNoFile;
    ASSERT_EQ(os_.create(bank_, "transactions", id), Access::Ok);
    SimTime t = 0;
    ASSERT_EQ(os_.append(bank_, id, "acct 1234: -$50", t), Access::Ok);

    FileId opened = kNoFile;
    ASSERT_EQ(os_.open(bank_, "transactions", opened, t), Access::Ok);
    EXPECT_EQ(opened, id);

    std::string out;
    Bytes got = 0;
    ASSERT_EQ(os_.read(bank_, id, 0, 100, out, got, t), Access::Ok);
    EXPECT_EQ(out, "acct 1234: -$50");
    EXPECT_EQ(os_.violations(), 0u);
}

TEST_F(ProtectedStoreTest, CrossCloudletReadDenied)
{
    // The paper's example: "a map cloudlet shouldn't be allowed to
    // access information regarding a user's recent bank transactions".
    FileId id = kNoFile;
    os_.create(bank_, "transactions", id);
    SimTime t = 0;
    os_.append(bank_, id, "secret", t);

    std::string out;
    Bytes got = 0;
    EXPECT_EQ(os_.read(maps_, id, 0, 100, out, got, t), Access::Denied);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(os_.violations(), 1u);
}

TEST_F(ProtectedStoreTest, CrossCloudletOpenByNameCannotEscape)
{
    FileId id = kNoFile;
    os_.create(bank_, "transactions", id);
    SimTime t = 0;
    // Even a crafted path stays inside the caller's namespace.
    FileId stolen = kNoFile;
    EXPECT_NE(os_.open(maps_, "bank/transactions", stolen, t),
              Access::Ok);
    EXPECT_EQ(stolen, kNoFile);
}

TEST_F(ProtectedStoreTest, CrossCloudletWriteAndRemoveDenied)
{
    FileId id = kNoFile;
    os_.create(bank_, "transactions", id);
    SimTime t = 0;
    EXPECT_EQ(os_.append(maps_, id, "graffiti", t), Access::Denied);
    EXPECT_EQ(os_.remove(maps_, id), Access::Denied);
    EXPECT_TRUE(raw_.valid(id)) << "the file must survive the attempt";
}

TEST_F(ProtectedStoreTest, RevokedGrantFails)
{
    FileId id = kNoFile;
    os_.create(maps_, "tiles", id);
    EXPECT_TRUE(os_.revoke(maps_));
    EXPECT_FALSE(os_.revoke(maps_)) << "double revoke";
    SimTime t = 0;
    EXPECT_EQ(os_.append(maps_, id, "x", t), Access::BadGrant);
    FileId opened = kNoFile;
    EXPECT_EQ(os_.open(maps_, "tiles", opened, t), Access::BadGrant);
}

TEST_F(ProtectedStoreTest, UnknownGrantFails)
{
    SimTime t = 0;
    FileId id = kNoFile;
    EXPECT_EQ(os_.create(0xdeadbeef, "x", id), Access::BadGrant);
    EXPECT_GT(os_.violations(), 0u);
}

TEST_F(ProtectedStoreTest, DuplicateNamespaceRejected)
{
    EXPECT_EQ(os_.registerNamespace("bank"), kNoGrant);
    EXPECT_NE(os_.registerNamespace("ads"), kNoGrant);
}

TEST_F(ProtectedStoreTest, NamespaceBytesAccounting)
{
    FileId a = kNoFile, b = kNoFile;
    os_.create(bank_, "a", a);
    os_.create(maps_, "b", b);
    SimTime t = 0;
    os_.append(bank_, a, std::string(10000, 'x'), t);
    os_.append(maps_, b, std::string(100, 'y'), t);
    EXPECT_GT(os_.namespaceBytes("bank"), os_.namespaceBytes("maps"));
    EXPECT_EQ(os_.namespaceBytes("nothing"), 0u);
}

TEST_F(ProtectedStoreTest, SameNameDifferentNamespacesCoexist)
{
    FileId a = kNoFile, b = kNoFile;
    ASSERT_EQ(os_.create(bank_, "index", a), Access::Ok);
    ASSERT_EQ(os_.create(maps_, "index", b), Access::Ok);
    EXPECT_NE(a, b);
    SimTime t = 0;
    os_.append(bank_, a, "bank-idx", t);
    os_.append(maps_, b, "maps-idx", t);
    std::string out;
    Bytes got = 0;
    os_.read(maps_, b, 0, 100, out, got, t);
    EXPECT_EQ(out, "maps-idx");
}

} // namespace
} // namespace pc::simfs
