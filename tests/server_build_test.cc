/**
 * @file
 * Sharded-builder determinism properties: for every (shards, threads)
 * combination the built community model must be byte-identical to the
 * sequential build (TripletTable::fromLog + CacheContentBuilder),
 * including the 1-shard, shards >> queries, and empty-log edge cases —
 * and the deltas a service generates must not depend on the pipeline
 * shape that built the models.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cache_content.h"
#include "harness/workbench.h"
#include "logs/triplets.h"
#include "server/builder.h"
#include "server/service.h"

namespace pc::server {
namespace {

using harness::smallWorkbenchConfig;
using harness::Workbench;

/** One shared small world: Workbench construction dominates runtime. */
const Workbench &
sharedWorkbench()
{
    static const Workbench wb(smallWorkbenchConfig());
    return wb;
}

/** A slice of the build month, to keep the config grid fast. */
workload::SearchLog
slicedLog(const Workbench &wb, std::size_t n)
{
    workload::SearchLog log(wb.universe());
    const auto &records = wb.buildLog().records();
    log.reserve(std::min(n, records.size()));
    for (std::size_t i = 0; i < records.size() && i < n; ++i)
        log.add(records[i]);
    return log;
}

/** The sequential reference build the pipeline must reproduce. */
CommunityModel
sequentialBuild(const workload::QueryUniverse &u,
                const workload::SearchLog &log, u64 version,
                const core::ContentPolicy &policy)
{
    CommunityModel m;
    m.version = version;
    m.table = logs::TripletTable::fromLog(log);
    core::CacheContentBuilder builder(u);
    m.contents = builder.build(m.table, policy);
    return m;
}

TEST(CommunityModelBuilder, ShardThreadGridMatchesSequentialBuild)
{
    const Workbench &wb = sharedWorkbench();
    const auto log = slicedLog(wb, 20'000);
    const core::ContentPolicy policy{};
    const std::string want =
        sequentialBuild(wb.universe(), log, 1, policy).encode();

    for (u32 shards : {1u, 2u, 3u, 8u}) {
        for (u32 threads : {1u, 2u, 4u}) {
            BuildConfig cfg;
            cfg.shards = shards;
            cfg.threads = threads;
            cfg.batchRecords = 1024;
            cfg.queueCapacity = 4;
            CommunityModelBuilder b(wb.universe(), cfg);
            const CommunityModel m = b.build(log, 1, policy);
            EXPECT_EQ(m.encode(), want)
                << "shards=" << shards << " threads=" << threads;
            EXPECT_EQ(m.stats.shards, shards);
            EXPECT_EQ(m.stats.threads, threads);
            EXPECT_EQ(m.stats.records, log.size());

            // Shard accounting must cover the whole log exactly.
            u64 records = 0, rows = 0;
            ASSERT_EQ(m.stats.shardStats.size(), shards);
            for (const auto &ss : m.stats.shardStats) {
                records += ss.records;
                rows += ss.rows;
            }
            EXPECT_EQ(records, log.size());
            EXPECT_EQ(rows, m.stats.distinctPairs);
        }
    }
}

TEST(CommunityModelBuilder, RepeatBuildsAreByteIdentical)
{
    const Workbench &wb = sharedWorkbench();
    const auto log = slicedLog(wb, 20'000);
    BuildConfig cfg;
    cfg.shards = 4;
    cfg.threads = 4;
    cfg.batchRecords = 512;
    cfg.queueCapacity = 2;
    CommunityModelBuilder b(wb.universe(), cfg);
    const core::ContentPolicy policy{};
    EXPECT_EQ(b.build(log, 3, policy).encode(),
              b.build(log, 3, policy).encode());
}

TEST(CommunityModelBuilder, EmptyLogBuildsEmptyModel)
{
    const Workbench &wb = sharedWorkbench();
    const workload::SearchLog empty(wb.universe());
    const core::ContentPolicy policy{};
    const std::string want =
        sequentialBuild(wb.universe(), empty, 1, policy).encode();
    for (u32 shards : {1u, 8u}) {
        BuildConfig cfg;
        cfg.shards = shards;
        cfg.threads = 4;
        CommunityModelBuilder b(wb.universe(), cfg);
        const CommunityModel m = b.build(empty, 1, policy);
        EXPECT_EQ(m.encode(), want);
        EXPECT_EQ(m.stats.distinctPairs, 0u);
        EXPECT_EQ(m.table.rows().size(), 0u);
        EXPECT_TRUE(m.contents.pairs.empty());
    }
}

TEST(CommunityModelBuilder, ManyMoreShardsThanQueriesStillMatches)
{
    const Workbench &wb = sharedWorkbench();
    // A tiny log touching a handful of queries, against 64 shards:
    // most shards stay empty and the merge must still be exact.
    const auto log = slicedLog(wb, 50);
    const core::ContentPolicy policy{};
    const std::string want =
        sequentialBuild(wb.universe(), log, 1, policy).encode();
    BuildConfig cfg;
    cfg.shards = 64;
    cfg.threads = 3;
    cfg.batchRecords = 7;
    cfg.queueCapacity = 2;
    CommunityModelBuilder b(wb.universe(), cfg);
    EXPECT_EQ(b.build(log, 1, policy).encode(), want);
}

TEST(CommunityModelBuilder, ShardOfPartitionsByQueryHash)
{
    const Workbench &wb = sharedWorkbench();
    BuildConfig cfg;
    cfg.shards = 5;
    CommunityModelBuilder b(wb.universe(), cfg);
    for (u32 q = 0; q < 100; ++q) {
        EXPECT_LT(b.shardOf(q), cfg.shards);
        EXPECT_EQ(b.shardOf(q), b.shardOf(q)) << "stable";
    }
}

TEST(CloudUpdateService, DeltasIndependentOfPipelineShape)
{
    const Workbench &wb = sharedWorkbench();
    const auto logA = slicedLog(wb, 15'000);
    const auto logB = slicedLog(wb, 30'000);

    const auto deltasFor = [&](u32 shards, u32 threads) {
        ServiceConfig cfg;
        cfg.build.shards = shards;
        cfg.build.threads = threads;
        cfg.build.batchRecords = 2048;
        CloudUpdateService svc(wb.universe(), cfg);
        svc.ingest(logA);
        svc.ingest(logB);
        // Full install to v2 plus incremental v1 -> v2.
        return std::vector<std::string>{
            core::encodeDelta(svc.makeDelta(0, 2)),
            core::encodeDelta(svc.makeDelta(1, 2)),
        };
    };

    const auto want = deltasFor(1, 1);
    EXPECT_EQ(deltasFor(4, 2), want);
    EXPECT_EQ(deltasFor(8, 4), want);
}

TEST(CloudUpdateService, HistoryWindowEvictsOldVersions)
{
    const Workbench &wb = sharedWorkbench();
    ServiceConfig cfg;
    cfg.maxVersions = 2;
    cfg.build.shards = 2;
    cfg.build.threads = 2;
    CloudUpdateService svc(wb.universe(), cfg);
    const auto log = slicedLog(wb, 2'000);
    svc.ingest(log);
    svc.ingest(log);
    svc.ingest(log);
    EXPECT_EQ(svc.latestVersion(), 3u);
    EXPECT_FALSE(svc.hasVersion(1)) << "evicted by the window";
    EXPECT_TRUE(svc.hasVersion(2));
    EXPECT_TRUE(svc.hasVersion(3));

    // A device stuck on the evicted version gets a full install.
    const auto d = svc.makeDelta(1, 3);
    EXPECT_EQ(d.fromVersion, 0u);
    EXPECT_EQ(d.toVersion, 3u);
    EXPECT_TRUE(d.evicts.empty());
    EXPECT_TRUE(d.reranks.empty());
}

} // namespace
} // namespace pc::server
