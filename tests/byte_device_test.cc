/**
 * @file
 * Unit tests for the DRAM/PCM byte-addressable device models.
 */

#include <gtest/gtest.h>

#include "nvm/byte_device.h"

namespace pc::nvm {
namespace {

TEST(ByteDevice, DramDefaults)
{
    ByteDevice d(dramConfig());
    EXPECT_EQ(d.name(), "dram");
    EXPECT_FALSE(d.nonVolatile());
    EXPECT_EQ(d.capacity(), 512 * kMiB);
}

TEST(ByteDevice, PcmDefaults)
{
    ByteDevice p(pcmConfig());
    EXPECT_EQ(p.name(), "pcm");
    EXPECT_TRUE(p.nonVolatile());
}

TEST(ByteDevice, PcmSlowerThanDramFasterThanNothing)
{
    // The three-tier premise (Section 3.3): PCM reads ~3x DRAM, writes
    // much slower, both far faster than NAND's ~100us page access.
    ByteDevice d(dramConfig());
    ByteDevice p(pcmConfig());
    const SimTime dr = d.read(0, 64);
    const SimTime pr = p.read(0, 64);
    EXPECT_GT(pr, dr);
    EXPECT_LT(pr, 100 * kMicrosecond);
    EXPECT_GT(p.write(0, 64), p.read(0, 64))
        << "PCM writes slower than PCM reads";
}

TEST(ByteDevice, LatencyHasPerByteComponent)
{
    ByteDeviceConfig cfg = pcmConfig();
    cfg.perByte = 2;
    ByteDevice p(cfg);
    const SimTime small = p.read(0, 16);
    const SimTime big = p.read(0, 4096);
    EXPECT_EQ(big - small, SimTime(4096 - 16) * 2);
}

TEST(ByteDevice, StatsAccumulate)
{
    ByteDevice d(dramConfig());
    d.read(0, 128);
    d.write(128, 64);
    EXPECT_EQ(d.stats().bytesRead, 128u);
    EXPECT_EQ(d.stats().bytesWritten, 64u);
    EXPECT_GT(d.stats().energy, 0.0);
}

TEST(ByteDeviceDeath, OutOfRangePanics)
{
    ByteDeviceConfig cfg = dramConfig(1 * kMiB);
    ByteDevice d(cfg);
    EXPECT_DEATH(d.read(kMiB, 1), "beyond");
    EXPECT_DEATH(d.write(kMiB - 1, 2), "beyond");
}

TEST(EnergyOver, UnitArithmetic)
{
    // 1000 mW for 1 second = 1 J = 1e6 uJ.
    EXPECT_NEAR(energyOver(1000.0, kSecond), 1e6, 1e-6);
    // 900 mW for 378 ms ~= 0.34 J (the PocketSearch per-query energy).
    EXPECT_NEAR(energyOver(900.0, fromMillis(378)), 340200.0, 1.0);
}

} // namespace
} // namespace pc::nvm
