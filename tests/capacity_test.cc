/**
 * @file
 * Unit tests for the capacity projection (Figure 2) and cloudlet sizing
 * (Table 2).
 */

#include <gtest/gtest.h>

#include "nvm/capacity.h"

namespace pc::nvm {
namespace {

class CapacityFixture : public ::testing::Test
{
  protected:
    TechRoadmap roadmap_;
    CapacityProjection proj_{roadmap_};
};

TEST_F(CapacityFixture, BaselineYearIsUnityMultiplier)
{
    for (const auto &flags : CapacityProjection::figure2Scenarios())
        EXPECT_DOUBLE_EQ(proj_.multiplier(2010, flags), 1.0);
}

TEST_F(CapacityFixture, HighEndReachesTerabyteBy2018)
{
    // The paper's headline projection: ~1 TB of NVM in high-end phones
    // as early as 2018 (all techniques applied).
    ScenarioFlags all{true, true, true, true};
    const auto pt = proj_.project(2018, all);
    EXPECT_GE(pt.highEnd, 1024ull * kGiB);
    EXPECT_EQ(proj_.yearCapacityReaches(1024ull * kGiB, all), 2018);
}

TEST_F(CapacityFixture, LowEndIs64xBehind)
{
    ScenarioFlags all{true, true, true, true};
    const auto pt = proj_.project(2018, all);
    EXPECT_EQ(pt.lowEnd, pt.highEnd / 64);
    // Low-end phones hit 16 GB in 2018 per the paper.
    EXPECT_EQ(pt.lowEnd, 16ull * kGiB);
}

TEST_F(CapacityFixture, LowEndReaches256GBEventually)
{
    ScenarioFlags all{true, true, true, true};
    bool reached = false;
    for (const auto &node : roadmap_.nodes()) {
        if (proj_.project(node.year, all).lowEnd >= 256ull * kGiB)
            reached = true;
    }
    EXPECT_TRUE(reached) << "paper: low-end may eventually reach 256 GB";
}

TEST_F(CapacityFixture, ScenariosAreCumulativelyLargerThroughFlashEra)
{
    // Each added technique grows capacity while flash scales (through
    // 2018). Post-2018 the MLC term *shrinks* capacity (bits per cell
    // fall back to 1), so the ordering legitimately inverts there.
    const auto scenarios = CapacityProjection::figure2Scenarios();
    ASSERT_EQ(scenarios.size(), 4u);
    for (const auto &node : roadmap_.nodes()) {
        if (node.year > 2018)
            break;
        Bytes prev = 0;
        for (const auto &flags : scenarios) {
            const Bytes cap = proj_.project(node.year, flags).highEnd;
            EXPECT_GE(cap, prev)
                << "scenario " << flags.name() << " year " << node.year;
            prev = cap;
        }
    }
}

TEST_F(CapacityFixture, MlcTermShrinksCapacityPost2018)
{
    // Bits per cell drop from 2 to 1 by 2020: the full scenario is
    // half the scaling+stacking scenario from then on.
    ScenarioFlags no_mlc{true, true, true, false};
    ScenarioFlags all{true, true, true, true};
    EXPECT_EQ(proj_.project(2020, all).highEnd,
              proj_.project(2020, no_mlc).highEnd / 2);
}

TEST_F(CapacityFixture, SeriesMonotoneExceptMlcDecline)
{
    // Capacity never shrinks over time for the scaling-only scenario.
    ScenarioFlags scaling_only{true, false, false, false};
    const auto series = proj_.series(scaling_only);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GE(series[i].highEnd, series[i - 1].highEnd);
}

TEST_F(CapacityFixture, MlcSceneDipsWhenBitsPerCellDrops)
{
    // Bits per cell go 2 -> 3 -> 2: the MLC-only contribution peaks in
    // 2012 then falls back; the full scenario still grows because
    // density gains dominate.
    ScenarioFlags all{true, true, true, true};
    const double m2012 = proj_.multiplier(2012, all);
    const double m2014 = proj_.multiplier(2014, all);
    EXPECT_GT(m2014, m2012 * 0.9)
        << "density+stacking must offset the MLC retreat";
}

TEST(ScenarioFlags, NameListsTechniques)
{
    EXPECT_EQ((ScenarioFlags{true, false, false, false}.name()),
              "scaling");
    EXPECT_EQ((ScenarioFlags{true, true, true, true}.name()),
              "scaling+chip-stack+cell-stack+mlc");
    EXPECT_EQ((ScenarioFlags{false, false, false, false}.name()), "none");
}

TEST(Table2, ItemCountsMatchPaper)
{
    // 25.6 GB budget (10% of the projected 256 GB low-end part).
    const Bytes budget = Bytes(25.6 * double(kGiB));
    const auto specs = table2Specs();
    ASSERT_EQ(specs.size(), 5u);

    // Paper's Table 2 counts (approximate; GiB vs GB rounding).
    const u64 search = itemsInBudget(budget, specs[0].itemSize);
    EXPECT_NEAR(double(search), 270'000.0, 15'000.0);

    const u64 ads = itemsInBudget(budget, specs[1].itemSize);
    EXPECT_NEAR(double(ads), 5'500'000.0, 200'000.0);

    const u64 web = itemsInBudget(budget, specs[3].itemSize);
    EXPECT_NEAR(double(web), 17'500.0, 1'000.0);
}

TEST(Table2, WebBrowsingNeedsCovered)
{
    // "90% of mobile users visit fewer than 1000 URLs over several
    // months, 17x fewer than the cacheable count".
    const Bytes budget = Bytes(25.6 * double(kGiB));
    const u64 pages = itemsInBudget(budget, table2Specs()[3].itemSize);
    EXPECT_GE(pages, 17u * 1000u);
}

TEST(ItemsInBudgetDeath, ZeroItemSizePanics)
{
    EXPECT_DEATH((void)itemsInBudget(kGiB, 0), "positive");
}

} // namespace
} // namespace pc::nvm
