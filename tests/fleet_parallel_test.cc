/**
 * @file
 * Parallel == sequential property of the fleet harness: over a grid
 * of {threads} x {devices} x {outage on/off} x {cloud on/off}, the
 * fleet registry snapshot, the series CSV bytes and the anomaly CSV
 * bytes of every parallel run must equal the threads=1 run of the
 * same configuration — the byte-identity contract bench_fleet_telemetry
 * gates at full scale and CI re-checks under ThreadSanitizer.
 *
 * Labelled `slow` (the 100-device cells dominate); the fast tier
 * keeps fleet_test's sequential coverage.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/fleet.h"
#include "obs/fleet.h"
#include "server/service.h"

namespace pc::harness {
namespace {

const Workbench &
sharedWorkbench()
{
    static const Workbench wb(smallWorkbenchConfig());
    return wb;
}

/** Everything a run cell is compared by. */
struct RunBytes
{
    std::string snapshotJson; ///< Fleet registry (incl. server.* when cloud).
    std::string seriesCsv;
    std::string anomaliesCsv;
    std::string cloudJson; ///< Service registry after accounting replay.
    FleetRunResult result;
};

/**
 * Drop the gauges the service records about its *own build timing*
 * (wall ms, queue watermarks, derived throughput). They are
 * scheduling-dependent by design — the registry docs mark them
 * console-only, and bench gates exclude them the same way. Each cell
 * builds a fresh service per run, so these are the only lines two
 * otherwise-identical runs may legitimately disagree on. Everything
 * else in the snapshot stays byte-compared.
 */
std::string
scrubTimingLines(const std::string &json)
{
    static const char *const kTiming[] = {
        "server.build.wall_ms",
        "server.ingest.records_per_s",
        "server.queue.max_depth",
        "server.queue.mean_depth",
    };
    std::string out;
    out.reserve(json.size());
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        bool timing = false;
        for (const char *name : kTiming)
            timing = timing || line.find(name) != std::string::npos;
        if (!timing) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

/**
 * One fleet run. The cloud service (when enabled) is built fresh per
 * run — its registry accumulates sync accounting, so sharing one
 * across cells would entangle their bytes.
 */
RunBytes
runCell(unsigned threads, std::size_t devices, bool outage, bool cloud)
{
    const Workbench &wb = sharedWorkbench();

    std::unique_ptr<server::CloudUpdateService> svc;
    if (cloud) {
        server::ServiceConfig scfg;
        scfg.build.shards = 4;
        scfg.build.threads = 2;
        svc = std::make_unique<server::CloudUpdateService>(wb.universe(),
                                                           scfg);
        svc->ingest(wb.buildLog());
    }

    FleetRunConfig cfg;
    cfg.devices = devices;
    cfg.months = 3;
    cfg.threads = threads;
    if (outage) {
        cfg.outageStartMonth = 1;
        cfg.outageMonths = 1;
    }
    cfg.cloud = svc.get();

    obs::FleetConfig fc;
    fc.windowWidth = workload::kMonth;
    obs::FleetCollector collector(fc);

    RunBytes out;
    out.result = runFleet(wb, cfg, collector);

    {
        std::ostringstream os;
        collector.fleetRegistry().snapshot().writeJson(os, true);
        out.snapshotJson = scrubTimingLines(os.str());
    }
    {
        std::ostringstream os;
        collector.writeSeriesCsv(os);
        out.seriesCsv = os.str();
    }
    {
        obs::DriftConfig dc;
        dc.warmup = 1;
        std::ostringstream os;
        obs::FleetCollector::writeAnomaliesCsv(
            os, collector.scanAnomalies(dc));
        out.anomaliesCsv = os.str();
    }
    if (svc) {
        std::ostringstream os;
        svc->metrics().snapshot().writeJson(os, true);
        out.cloudJson = scrubTimingLines(os.str());
    }
    return out;
}

class FleetParallelGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool, bool>>
{
};

TEST_P(FleetParallelGrid, EveryThreadCountMatchesSequentialBytes)
{
    const auto [devices, outage, cloud] = GetParam();
    const RunBytes want = runCell(1, devices, outage, cloud);

    EXPECT_EQ(want.result.devices, devices);
    EXPECT_GT(want.result.queries, 0u);
    if (cloud) {
        EXPECT_GT(want.result.cloudSyncs + want.result.cloudSyncFailures,
                  0u)
            << "cloud cells must actually sync";
    }

    for (const unsigned threads : {2u, 3u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const RunBytes got = runCell(threads, devices, outage, cloud);
        EXPECT_EQ(got.snapshotJson, want.snapshotJson)
            << "fleet registry snapshot diverged";
        EXPECT_EQ(got.seriesCsv, want.seriesCsv)
            << "series CSV bytes diverged";
        EXPECT_EQ(got.anomaliesCsv, want.anomaliesCsv)
            << "anomaly CSV bytes diverged";
        EXPECT_EQ(got.cloudJson, want.cloudJson)
            << "service registry (sync accounting replay) diverged";
        EXPECT_EQ(got.result.queries, want.result.queries);
        EXPECT_EQ(got.result.cacheHits, want.result.cacheHits);
        EXPECT_EQ(got.result.degradedServes, want.result.degradedServes);
        EXPECT_EQ(got.result.cloudSyncs, want.result.cloudSyncs);
        EXPECT_EQ(got.result.cloudSyncFailures,
                  want.result.cloudSyncFailures);
    }
}

/**
 * Test-name generator. Defined outside the INSTANTIATE macro: commas
 * in a structured binding or template argument list would otherwise
 * be taken as macro argument separators.
 */
std::string
gridCellName(
    const ::testing::TestParamInfo<FleetParallelGrid::ParamType> &info)
{
    const std::size_t devices = std::get<0>(info.param);
    const bool outage = std::get<1>(info.param);
    const bool cloud = std::get<2>(info.param);
    return "d" + std::to_string(devices) +
           (outage ? "_outage" : "_clean") + (cloud ? "_cloud" : "_push");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FleetParallelGrid,
    ::testing::Combine(::testing::Values(std::size_t(1), std::size_t(7),
                                         std::size_t(100)),
                       ::testing::Bool(),  // outage
                       ::testing::Bool()), // cloud
    gridCellName);

TEST(FleetParallel, ThreadsZeroMeansHardwareConcurrency)
{
    // threads=0 must resolve to *some* pool and still match bytes.
    const RunBytes want = runCell(1, 5, /*outage=*/true, /*cloud=*/false);
    const RunBytes got = runCell(0, 5, /*outage=*/true, /*cloud=*/false);
    EXPECT_EQ(got.snapshotJson, want.snapshotJson);
    EXPECT_EQ(got.seriesCsv, want.seriesCsv);
}

TEST(FleetParallel, MoreThreadsThanDevicesClampsCleanly)
{
    const RunBytes want = runCell(1, 2, /*outage=*/false, /*cloud=*/false);
    const RunBytes got = runCell(16, 2, /*outage=*/false,
                                 /*cloud=*/false);
    EXPECT_EQ(got.snapshotJson, want.snapshotJson);
    EXPECT_EQ(got.seriesCsv, want.seriesCsv);
    EXPECT_EQ(got.result.queries, want.result.queries);
}

} // namespace
} // namespace pc::harness
