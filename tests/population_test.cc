/**
 * @file
 * Unit tests for the user population model (Table 6 / Figure 5).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/population.h"

namespace pc::workload {
namespace {

TEST(Table6, SpecsMatchPaper)
{
    const auto &specs = table6Classes();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].minMonthly, 20u);
    EXPECT_EQ(specs[0].maxMonthly, 40u);
    EXPECT_DOUBLE_EQ(specs[0].populationShare, 0.55);
    EXPECT_EQ(specs[1].minMonthly, 40u);
    EXPECT_EQ(specs[1].maxMonthly, 140u);
    EXPECT_DOUBLE_EQ(specs[1].populationShare, 0.36);
    EXPECT_EQ(specs[2].minMonthly, 140u);
    EXPECT_EQ(specs[2].maxMonthly, 460u);
    EXPECT_DOUBLE_EQ(specs[2].populationShare, 0.08);
    EXPECT_EQ(specs[3].minMonthly, 460u);
    EXPECT_DOUBLE_EQ(specs[3].populationShare, 0.01);
    double total = 0.0;
    for (const auto &s : specs)
        total += s.populationShare;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ClassForVolume, BoundariesMatchTable6)
{
    EXPECT_EQ(classForVolume(20), UserClass::Low);
    EXPECT_EQ(classForVolume(39), UserClass::Low);
    EXPECT_EQ(classForVolume(40), UserClass::Medium);
    EXPECT_EQ(classForVolume(139), UserClass::Medium);
    EXPECT_EQ(classForVolume(140), UserClass::High);
    EXPECT_EQ(classForVolume(459), UserClass::High);
    EXPECT_EQ(classForVolume(460), UserClass::Extreme);
    EXPECT_EQ(classForVolume(5000), UserClass::Extreme);
}

TEST(UserClassName, AllNamed)
{
    EXPECT_EQ(userClassName(UserClass::Low), "Low Volume");
    EXPECT_EQ(userClassName(UserClass::Extreme), "Extreme Volume");
}

TEST(PopulationSampler, VolumesRespectClassRanges)
{
    PopulationSampler sampler(PopulationConfig{});
    Rng rng(1);
    for (int c = 0; c < 4; ++c) {
        const auto spec = table6Classes()[c];
        for (int i = 0; i < 500; ++i) {
            const auto u = sampler.sampleUserOfClass(rng, spec.cls);
            EXPECT_GE(u.monthlyVolume, spec.minMonthly);
            EXPECT_LT(u.monthlyVolume, spec.maxMonthly);
            EXPECT_EQ(u.cls, spec.cls);
        }
    }
}

TEST(PopulationSampler, ClassMixMatchesShares)
{
    PopulationSampler sampler(PopulationConfig{});
    const auto pop = sampler.samplePopulation(20000);
    int counts[4] = {0, 0, 0, 0};
    for (const auto &u : pop)
        ++counts[int(u.cls)];
    EXPECT_NEAR(counts[0] / 20000.0, 0.55, 0.02);
    EXPECT_NEAR(counts[1] / 20000.0, 0.36, 0.02);
    EXPECT_NEAR(counts[2] / 20000.0, 0.08, 0.01);
    EXPECT_NEAR(counts[3] / 20000.0, 0.01, 0.005);
}

TEST(PopulationSampler, FeaturephoneShareRespected)
{
    PopulationConfig cfg;
    cfg.featurephoneShare = 0.3;
    PopulationSampler sampler(cfg);
    const auto pop = sampler.samplePopulation(10000);
    int fp = 0;
    for (const auto &u : pop)
        fp += (u.device == DeviceType::Featurephone);
    EXPECT_NEAR(fp / 10000.0, 0.3, 0.02);
}

TEST(PopulationSampler, NewRatesInMixtureBands)
{
    PopulationConfig cfg;
    PopulationSampler sampler(cfg);
    const auto pop = sampler.samplePopulation(10000);
    int low_band = 0;
    for (const auto &u : pop) {
        EXPECT_GE(u.newRate, 0.02);
        EXPECT_LE(u.newRate, 0.98);
        low_band += (u.newRate <= cfg.lowNewMax);
    }
    // At least the lowNewShare of users sit in the habitual band
    // (class shifts only push more users down).
    EXPECT_GT(low_band / 10000.0, cfg.lowNewShare - 0.05);
}

TEST(PopulationSampler, HeavierClassesRepeatMore)
{
    PopulationSampler sampler(PopulationConfig{});
    Rng rng(9);
    double mean_new[4] = {0, 0, 0, 0};
    const int n = 4000;
    for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < n; ++i)
            mean_new[c] +=
                sampler.sampleUserOfClass(rng, UserClass(c)).newRate;
        mean_new[c] /= n;
    }
    EXPECT_GT(mean_new[0], mean_new[1]);
    EXPECT_GT(mean_new[1], mean_new[2]);
    EXPECT_GT(mean_new[2], mean_new[3]);
}

TEST(PopulationSampler, UniqueUserIds)
{
    PopulationSampler sampler(PopulationConfig{});
    const auto pop = sampler.samplePopulation(1000);
    std::set<u64> ids;
    for (const auto &u : pop)
        EXPECT_TRUE(ids.insert(u.id).second);
}

TEST(PopulationSampler, HotSetGrowsWithVolume)
{
    PopulationSampler sampler(PopulationConfig{});
    Rng rng(13);
    const auto low = sampler.sampleUserOfClass(rng, UserClass::Low);
    const auto extreme =
        sampler.sampleUserOfClass(rng, UserClass::Extreme);
    EXPECT_GE(extreme.hotSetSize, low.hotSetSize);
    EXPECT_GE(low.hotSetSize, 1u);
}

} // namespace
} // namespace pc::workload
