/**
 * @file
 * Property tests: the flash store against an in-memory reference model
 * under randomized operation sequences, across allocation units.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "simfs/flash_store.h"
#include "util/rng.h"

namespace pc::simfs {
namespace {

class StoreVsReference : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(StoreVsReference, RandomOpsMatchReferenceModel)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 64 * kMiB;
    pc::nvm::FlashDevice device(fc);
    StoreConfig cfg;
    cfg.allocUnit = GetParam();
    FlashStore store(device, cfg);

    // Reference: name -> contents.
    std::map<std::string, std::string> ref;
    std::map<std::string, FileId> ids;

    Rng rng(u64(GetParam()) + 99);
    SimTime t = 0;

    for (int step = 0; step < 3000; ++step) {
        const u64 op = rng.below(100);
        const std::string name =
            "f" + std::to_string(rng.below(20));

        if (op < 25) { // create (if absent)
            if (!ref.count(name)) {
                ids[name] = store.create(name);
                ref[name] = "";
            }
        } else if (op < 55) { // append
            if (ref.count(name)) {
                std::string data(rng.below(3000) + 1,
                                 char('a' + char(rng.below(26))));
                store.append(ids[name], data, t);
                ref[name] += data;
            }
        } else if (op < 80) { // read at random offset
            if (ref.count(name)) {
                const Bytes off = rng.below(ref[name].size() + 100);
                const Bytes len = rng.below(5000) + 1;
                std::string out;
                const Bytes got =
                    store.read(ids[name], off, len, out, t);
                std::string expect;
                if (off < ref[name].size()) {
                    expect = ref[name].substr(
                        off, std::min<std::size_t>(len,
                                                   ref[name].size() -
                                                       off));
                }
                ASSERT_EQ(got, expect.size());
                ASSERT_EQ(out, expect);
            }
        } else if (op < 90) { // truncate-and-write
            if (ref.count(name)) {
                std::string data(rng.below(2000),
                                 char('A' + char(rng.below(26))));
                store.truncateAndWrite(ids[name], data, t);
                ref[name] = data;
            }
        } else { // remove
            if (ref.count(name)) {
                store.remove(ids[name]);
                ref.erase(name);
                ids.erase(name);
            }
        }

        // Invariants after every step.
        if (step % 100 == 0) {
            const auto stats = store.stats();
            Bytes logical = 0, physical = 0;
            for (const auto &[n, contents] : ref) {
                ASSERT_EQ(store.size(ids.at(n)), contents.size());
                logical += contents.size();
                const Bytes blocks =
                    (contents.size() + cfg.allocUnit - 1) /
                    cfg.allocUnit;
                ASSERT_EQ(store.physicalSize(ids.at(n)),
                          blocks * cfg.allocUnit);
                physical += blocks * cfg.allocUnit;
            }
            ASSERT_EQ(stats.files, ref.size());
            ASSERT_EQ(stats.logicalBytes, logical);
            ASSERT_EQ(stats.physicalBytes, physical);
            ASSERT_EQ(store.listFiles().size(), ref.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllocUnits, StoreVsReference,
                         ::testing::Values(4 * kKiB, 8 * kKiB,
                                           16 * kKiB));

TEST(StoreTiming, TimeNeverDecreasesUnderRandomOps)
{
    pc::nvm::FlashConfig fc;
    fc.capacity = 16 * kMiB;
    pc::nvm::FlashDevice device(fc);
    FlashStore store(device);
    Rng rng(7);
    const FileId id = store.create("t");
    SimTime t = 0;
    SimTime prev = 0;
    for (int i = 0; i < 500; ++i) {
        if (rng.chance(0.5)) {
            store.append(id, std::string(rng.below(2000) + 1, 'x'), t);
        } else {
            std::string out;
            store.read(id, rng.below(store.size(id) + 1),
                       rng.below(2000) + 1, out, t);
        }
        ASSERT_GE(t, prev);
        prev = t;
    }
}

} // namespace
} // namespace pc::simfs
