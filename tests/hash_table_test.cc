/**
 * @file
 * Unit tests for the query hash table (Figure 10) including the
 * Equation (1)/(2) ranking updates and the Figure 11 footprint model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/hash_table.h"

namespace pc::core {
namespace {

TEST(QueryHashTable, InsertAndLookup)
{
    QueryHashTable t;
    EXPECT_TRUE(t.insert("youtube", 100, 0.9));
    EXPECT_TRUE(t.insert("youtube", 200, 0.1));
    SimTime time = 0;
    const auto refs = t.lookup("youtube", &time);
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_EQ(refs[0].urlHash, 100u) << "sorted by descending score";
    EXPECT_EQ(refs[1].urlHash, 200u);
    EXPECT_EQ(time, QueryHashTable::kLookupLatency);
    EXPECT_EQ(t.pairs(), 2u);
    EXPECT_EQ(t.entries(), 1u) << "two results fit one entry";
}

TEST(QueryHashTable, MissReturnsEmpty)
{
    QueryHashTable t;
    t.insert("youtube", 100, 1.0);
    EXPECT_TRUE(t.lookup("facebook").empty());
    EXPECT_FALSE(t.containsPair("youtube", 999));
    EXPECT_TRUE(t.containsPair("youtube", 100));
}

TEST(QueryHashTable, DuplicateInsertIsNoop)
{
    QueryHashTable t;
    EXPECT_TRUE(t.insert("q", 1, 0.5));
    EXPECT_FALSE(t.insert("q", 1, 0.9));
    const auto refs = t.lookup("q");
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_DOUBLE_EQ(refs[0].score, 0.5) << "original score kept";
}

TEST(QueryHashTable, ChainsBeyondTwoResults)
{
    // "michael jackson" with 5 results spans 3 entries (Figure 10's
    // second-hash-argument chaining).
    QueryHashTable t;
    for (u64 i = 1; i <= 5; ++i)
        t.insert("michael jackson", i * 10, 1.0 / double(i));
    EXPECT_EQ(t.pairs(), 5u);
    EXPECT_EQ(t.entries(), 3u);
    const auto refs = t.lookup("michael jackson");
    ASSERT_EQ(refs.size(), 5u);
    for (std::size_t i = 1; i < refs.size(); ++i)
        EXPECT_LE(refs[i].score, refs[i - 1].score);
}

TEST(QueryHashTable, ApplyClickImplementsEquations)
{
    // Section 5.3: clicked score += 1; unclicked sibling *= e^-lambda.
    QueryHashTable t;
    t.insert("michael jackson", 1, 0.53); // imdb
    t.insert("michael jackson", 2, 0.47); // azlyrics
    const double lambda = 0.1;
    EXPECT_TRUE(t.applyClick("michael jackson", 1, lambda));
    const auto refs = t.lookup("michael jackson");
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_DOUBLE_EQ(refs[0].score, 1.53);
    EXPECT_NEAR(refs[1].score, 0.47 * std::exp(-lambda), 1e-12);
    EXPECT_TRUE(refs[0].userAccessed);
    EXPECT_FALSE(refs[1].userAccessed);
}

TEST(QueryHashTable, ApplyClickInsertsUnknownPairWithScoreOne)
{
    QueryHashTable t;
    EXPECT_FALSE(t.applyClick("new query", 42, 0.1));
    const auto refs = t.lookup("new query");
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_DOUBLE_EQ(refs[0].score, 1.0)
        << "new pairs get the maximum initial score";
    EXPECT_TRUE(refs[0].userAccessed);
}

TEST(QueryHashTable, RepeatedClicksFavorFreshness)
{
    // 100 old clicks on R1, then recent clicks on R2: R2 overtakes
    // (the paper's freshness argument).
    QueryHashTable t;
    t.insert("q", 1, 0.5);
    t.insert("q", 2, 0.5);
    for (int i = 0; i < 5; ++i)
        t.applyClick("q", 1, 0.2);
    for (int i = 0; i < 7; ++i)
        t.applyClick("q", 2, 0.2);
    const auto refs = t.lookup("q");
    EXPECT_EQ(refs[0].urlHash, 2u);
}

TEST(QueryHashTable, ClickDecaysAcrossChainEntries)
{
    QueryHashTable t;
    for (u64 i = 1; i <= 4; ++i)
        t.insert("q", i, 1.0);
    t.applyClick("q", 1, 0.5);
    for (const auto &r : t.lookup("q")) {
        if (r.urlHash == 1)
            EXPECT_DOUBLE_EQ(r.score, 2.0);
        else
            EXPECT_NEAR(r.score, std::exp(-0.5), 1e-12)
                << "decay must reach slot " << r.urlHash;
    }
}

TEST(QueryHashTable, SetScoreAndMarkAccessed)
{
    QueryHashTable t;
    t.insert("q", 1, 0.3);
    EXPECT_TRUE(t.setScore("q", 1, 0.8));
    EXPECT_FALSE(t.setScore("q", 2, 0.8));
    EXPECT_TRUE(t.markAccessed("q", 1));
    EXPECT_FALSE(t.markAccessed("x", 1));
    const auto refs = t.lookup("q");
    EXPECT_DOUBLE_EQ(refs[0].score, 0.8);
    EXPECT_TRUE(refs[0].userAccessed);
}

TEST(QueryHashTable, ErasePairCompactsChain)
{
    QueryHashTable t;
    for (u64 i = 1; i <= 5; ++i)
        t.insert("q", i, double(i));
    EXPECT_TRUE(t.erasePair("q", 3));
    EXPECT_EQ(t.pairs(), 4u);
    EXPECT_EQ(t.entries(), 2u) << "chain must compact to 2 entries";
    const auto refs = t.lookup("q");
    ASSERT_EQ(refs.size(), 4u);
    for (const auto &r : refs)
        EXPECT_NE(r.urlHash, 3u);
    EXPECT_FALSE(t.erasePair("q", 99));
}

TEST(QueryHashTable, EraseQueryRemovesEverything)
{
    QueryHashTable t;
    for (u64 i = 1; i <= 5; ++i)
        t.insert("q", i, 1.0);
    t.insert("other", 7, 1.0);
    EXPECT_EQ(t.eraseQuery("q"), 5u);
    EXPECT_TRUE(t.lookup("q").empty());
    EXPECT_EQ(t.pairs(), 1u);
    EXPECT_FALSE(t.lookup("other").empty());
}

TEST(QueryHashTable, ClearResets)
{
    QueryHashTable t;
    t.insert("a", 1, 1.0);
    t.insert("b", 2, 1.0);
    t.clear();
    EXPECT_EQ(t.pairs(), 0u);
    EXPECT_EQ(t.entries(), 0u);
    EXPECT_EQ(t.memoryBytes(), 0u);
}

TEST(QueryHashTable, ForEachPairVisitsAll)
{
    QueryHashTable t;
    t.insert("a", 1, 1.0);
    t.insert("a", 2, 1.0);
    t.insert("b", 3, 1.0, true);
    std::size_t count = 0;
    bool saw_accessed = false;
    t.forEachPair([&](u64 qh, const ResultRef &r) {
        (void)qh;
        ++count;
        saw_accessed |= r.userAccessed;
    });
    EXPECT_EQ(count, 3u);
    EXPECT_TRUE(saw_accessed);
}

TEST(QueryHashTable, MemoryBytesTracksEntries)
{
    HashEntryLayout layout;
    layout.resultsPerEntry = 2;
    QueryHashTable t(layout);
    t.insert("a", 1, 1.0);
    EXPECT_EQ(t.memoryBytes(), layout.entryBytes());
    t.insert("a", 2, 1.0);
    EXPECT_EQ(t.memoryBytes(), layout.entryBytes());
    t.insert("a", 3, 1.0);
    EXPECT_EQ(t.memoryBytes(), 2 * layout.entryBytes());
}

/** Figure 11's layout arithmetic across slots-per-entry. */
class LayoutSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(LayoutSweep, EntryBytesFormula)
{
    HashEntryLayout layout;
    layout.resultsPerEntry = GetParam();
    EXPECT_EQ(layout.entryBytes(),
              HashEntryLayout::fixedBytes +
                  HashEntryLayout::overheadBytes +
                  HashEntryLayout::slotBytes * GetParam());
}

TEST_P(LayoutSweep, InsertLookupWorkUnderAnyLayout)
{
    HashEntryLayout layout;
    layout.resultsPerEntry = GetParam();
    QueryHashTable t(layout);
    for (u64 i = 1; i <= 7; ++i)
        t.insert("q", i, double(8 - i));
    const auto refs = t.lookup("q");
    ASSERT_EQ(refs.size(), 7u);
    EXPECT_EQ(refs[0].urlHash, 1u);
    const u64 expected_entries = (7 + GetParam() - 1) / GetParam();
    EXPECT_EQ(t.entries(), expected_entries);
}

INSTANTIATE_TEST_SUITE_P(SlotsPerEntry, LayoutSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

} // namespace
} // namespace pc::core
