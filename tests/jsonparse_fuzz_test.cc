/**
 * @file
 * Fuzz-style robustness of the obs JSON parser. bench_diff's whole
 * job is reading BENCH_*.json artifacts back; a corrupt, truncated or
 * adversarial file must produce a clean parse error (or a correct
 * value, if the damage happened to preserve validity) — never a
 * crash, a hang, or stack exhaustion. The corpus is a real
 * BenchReport document (the same writer that produces the committed
 * baselines), put through seeded deterministic truncation, byte
 * mutation, splice and deep-nesting generators.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/jsonparse.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/rng.h"

namespace pc::obs {
namespace {

/** A representative BENCH report, as the writer really emits it. */
std::string
corpusJson()
{
    MetricRegistry reg;
    reg.counter("device.queries").bump(420000);
    reg.counter("device.cache_hits").bump(273000);
    reg.gauge("server.model.version").set(2.0);
    auto &h = reg.histogram("device.latency_ms.pocket");
    Rng rng(7);
    for (int i = 0; i < 500; ++i)
        h.observe(rng.uniform(20.0, 400.0));

    BenchReport report("fuzz_corpus", "Fleet telemetry — fuzz corpus");
    report.note("devices", "1000");
    report.note("escape check", "quote \" slash \\ tab \t unicode \u00e9");
    report.metric("queries", 420000.0);
    report.metric("hit_rate", 0.65);
    report.metric("nan_guard", -1.25e-9);
    report.quantiles(h, "ms");
    report.attachSnapshot(reg.snapshot());

    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

/** Parse must terminate and either fail with a message or succeed. */
void
mustNotWedge(const std::string &input)
{
    JsonValue v;
    std::string err;
    const bool ok = parseJson(input, v, &err);
    if (!ok) {
        EXPECT_FALSE(err.empty()) << "failures must carry a message";
    }
}

TEST(JsonFuzz, CorpusParsesAndRoundTripsKeyFacts)
{
    const std::string doc = corpusJson();
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.strOr("bench", ""), "fuzz_corpus");
    const JsonValue *metrics = v.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_TRUE(metrics->isArray() || metrics->isObject());
}

TEST(JsonFuzz, EveryTruncationFailsCleanlyOrParses)
{
    const std::string doc = corpusJson();
    ASSERT_GT(doc.size(), 100u);
    // Every prefix, every suffix-trimmed middle chunk on a stride.
    for (std::size_t n = 0; n < doc.size(); ++n)
        mustNotWedge(doc.substr(0, n));
    for (std::size_t n = 1; n < doc.size(); n += 7)
        mustNotWedge(doc.substr(n));
}

TEST(JsonFuzz, SeededByteMutationsNeverCrash)
{
    const std::string doc = corpusJson();
    Rng rng(2011);
    for (int iter = 0; iter < 4000; ++iter) {
        std::string mutated = doc;
        // 1-8 byte substitutions, full byte range (controls, quotes,
        // brackets, high bytes).
        const int edits = 1 + int(rng.below(8));
        for (int e = 0; e < edits; ++e)
            mutated[rng.below(mutated.size())] =
                char(u8(rng.below(256)));
        mustNotWedge(mutated);
    }
}

TEST(JsonFuzz, SeededSplicesAndDeletionsNeverCrash)
{
    const std::string doc = corpusJson();
    Rng rng(4099);
    for (int iter = 0; iter < 1000; ++iter) {
        const std::size_t a = rng.below(doc.size());
        const std::size_t b = a + rng.below(doc.size() - a);
        std::string mutated;
        switch (rng.below(3)) {
          case 0: // delete [a, b)
            mutated = doc.substr(0, a) + doc.substr(b);
            break;
          case 1: // duplicate [a, b) in place
            mutated = doc.substr(0, b) + doc.substr(a);
            break;
          default: // splice two halves from different offsets
            mutated = doc.substr(a) + doc.substr(0, b);
            break;
        }
        mustNotWedge(mutated);
    }
}

TEST(JsonFuzz, DeepNestingIsRejectedNotFatal)
{
    // Way past any real artifact: must be a parse error, not a stack
    // overflow. (The writer emits < 10 levels; the parser caps at 64.)
    for (const std::size_t depth :
         {std::size_t(65), std::size_t(4096), std::size_t(200000)}) {
        std::string arrays(depth, '[');
        mustNotWedge(arrays); // unterminated as well as deep
        std::string closed = arrays + std::string(depth, ']');
        JsonValue v;
        std::string err;
        EXPECT_FALSE(parseJson(closed, v, &err))
            << "depth " << depth << " must be rejected";
        EXPECT_NE(err.find("nesting"), std::string::npos) << err;

        std::string objects;
        objects.reserve(depth * 6);
        for (std::size_t i = 0; i < depth; ++i)
            objects += "{\"k\":";
        mustNotWedge(objects);
    }
}

TEST(JsonFuzz, ShallowNestingStillParses)
{
    // The cap must not reject documents the writer can produce.
    std::string doc = "1";
    for (int i = 0; i < 20; ++i)
        doc = "{\"k\":[" + doc + "]}";
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(doc, v, &err)) << err;
}

TEST(JsonFuzz, AdversarialScalarsFailCleanly)
{
    for (const char *input :
         {"", " ", "\"", "\"\\", "\"\\u", "\"\\u12", "-", "1e", "1e+",
          "nul", "tru", "falsx", "01x", "{", "[", "{\"a\"", "{\"a\":}",
          "[1,]", "[1 2]", "{\"a\":1,}", "\xff\xfe", "1.2.3",
          "\"\\u0000\"", "9999999999999999999999999999999e999999"}) {
        mustNotWedge(input);
    }
}

} // namespace
} // namespace pc::obs
