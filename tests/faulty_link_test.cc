/**
 * @file
 * Tests for the fault-injecting radio wrapper: a plan-less wrapper must
 * be byte-identical to the perfect link, and each injected fault class
 * must charge the right time/energy and touch (or not touch) link state.
 */

#include <gtest/gtest.h>

#include "fault/faulty_link.h"

namespace pc::fault {
namespace {

constexpr Bytes kUp = 1 * kKiB;
constexpr Bytes kDown = 100 * kKiB;
const SimTime kServer = fromMillis(250);

TEST(FaultyLinkTest, NoPlanIsByteIdenticalToPerfectLink)
{
    radio::RadioLink plain(radio::threeGConfig());
    radio::RadioLink wrapped_link(radio::threeGConfig());
    FaultyLink wrapped(wrapped_link, nullptr);

    SimTime now = 0;
    for (int i = 0; i < 5; ++i) {
        const auto want = plain.request(now, kUp, kDown, kServer);
        const auto got = wrapped.attempt(now, kUp, kDown, kServer);
        ASSERT_TRUE(got.ok);
        EXPECT_FALSE(got.noCoverage);
        EXPECT_FALSE(got.failed);
        EXPECT_FALSE(got.latencySpike);
        ASSERT_EQ(got.xfer.latency, want.latency);
        ASSERT_DOUBLE_EQ(got.xfer.radioEnergy, want.radioEnergy);
        ASSERT_EQ(got.xfer.segments.size(), want.segments.size());
        for (std::size_t s = 0; s < want.segments.size(); ++s) {
            EXPECT_EQ(got.xfer.segments[s].label, want.segments[s].label);
            EXPECT_EQ(got.xfer.segments[s].duration,
                      want.segments[s].duration);
            EXPECT_DOUBLE_EQ(got.xfer.segments[s].power,
                             want.segments[s].power);
        }
        // Link state evolves identically (tail windows, totals).
        EXPECT_EQ(wrapped_link.requests(), plain.requests());
        EXPECT_DOUBLE_EQ(wrapped_link.totalEnergy(), plain.totalEnergy());
        now += (i % 2) ? kSecond : 30 * kSecond; // inside & outside tail
    }
}

TEST(FaultyLinkTest, OutageBurnsProbeAndLeavesLinkUntouched)
{
    FaultConfig cfg;
    cfg.seed = 21;
    cfg.radio.outageShare = 0.5;
    cfg.radio.meanOutageDuration = 60 * kSecond;
    FaultPlan plan(cfg);

    // Walk forward to a moment inside an outage (the schedule is lazy
    // and idempotent for nondecreasing times).
    SimTime t = 0;
    while (!plan.inOutage(t))
        t += kSecond;

    radio::RadioLink link(radio::threeGConfig());
    FaultyLink fl(link, &plan);
    const auto out = fl.attempt(t, kUp, kDown, kServer);

    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.noCoverage);
    EXPECT_FALSE(out.failed);
    ASSERT_EQ(out.xfer.segments.size(), 1u);
    EXPECT_EQ(out.xfer.segments[0].label, "no-coverage");
    EXPECT_EQ(out.xfer.latency, cfg.radio.noCoverageProbe);
    EXPECT_DOUBLE_EQ(out.xfer.radioEnergy,
                     energyOver(link.config().wakeupPower,
                                cfg.radio.noCoverageProbe));
    EXPECT_EQ(link.requests(), 0u) << "the link never connected";
    EXPECT_DOUBLE_EQ(link.totalEnergy(), 0.0);
    EXPECT_TRUE(link.needsWakeup(t)) << "no tail was started";
    EXPECT_EQ(plan.stats().outageAttempts, 1u);
}

TEST(FaultyLinkTest, FailureTruncatesThenStallsThenTails)
{
    FaultConfig cfg;
    cfg.seed = 4;
    cfg.radio.exchangeFailureRate = 1.0;
    FaultPlan plan(cfg);

    radio::RadioLink link(radio::threeGConfig());
    radio::RadioLink reference(radio::threeGConfig());
    const auto full = reference.request(0, kUp, kDown, kServer);

    FaultyLink fl(link, &plan);
    const auto out = fl.attempt(0, kUp, kDown, kServer);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.failed);
    ASSERT_GE(out.xfer.segments.size(), 3u);
    // Timeline ends with the stall and the tail.
    const auto &segs = out.xfer.segments;
    EXPECT_EQ(segs[segs.size() - 2].label, "stall");
    EXPECT_EQ(segs[segs.size() - 2].duration, cfg.radio.failureStall);
    EXPECT_EQ(segs.back().label, "tail");
    EXPECT_EQ(segs.back().duration, link.config().tailDuration);
    // The truncated exchange is strictly shorter than the full one but
    // the stall still costs something.
    EXPECT_LT(out.xfer.latency, full.latency + cfg.radio.failureStall);
    EXPECT_GT(out.xfer.latency, cfg.radio.failureStall);
    // The failed attempt is committed: it charges energy and starts a
    // tail window, so an immediate retry skips the wake-up ramp.
    EXPECT_EQ(link.requests(), 1u);
    EXPECT_GT(link.totalEnergy(), 0.0);
    EXPECT_FALSE(link.needsWakeup(out.xfer.latency + kSecond));
    EXPECT_EQ(plan.stats().exchangeFailures, 1u);
}

TEST(FaultyLinkTest, LatencySpikeMultipliesPreTailLatency)
{
    FaultConfig cfg;
    cfg.seed = 8;
    cfg.radio.latencySpikeRate = 1.0;
    cfg.radio.latencySpikeFactor = 4.0;
    FaultPlan plan(cfg);

    radio::RadioLink link(radio::threeGConfig());
    radio::RadioLink reference(radio::threeGConfig());
    const auto full = reference.request(0, kUp, kDown, kServer);

    FaultyLink fl(link, &plan);
    const auto out = fl.attempt(0, kUp, kDown, kServer);
    ASSERT_TRUE(out.ok);
    EXPECT_TRUE(out.latencySpike);
    // TransferResult::latency excludes the tail, so a 4x spike on the
    // pre-tail time quadruples the reported latency (rounding aside).
    EXPECT_NEAR(double(out.xfer.latency), 4.0 * double(full.latency), 2.0);
    EXPECT_GT(out.xfer.radioEnergy, full.radioEnergy);
    // The congestion segment sits before the tail.
    const auto &segs = out.xfer.segments;
    ASSERT_GE(segs.size(), 2u);
    EXPECT_EQ(segs[segs.size() - 2].label, "congestion");
    EXPECT_EQ(segs.back().label, "tail");
    EXPECT_EQ(plan.stats().latencySpikes, 1u);
}

TEST(FaultyLinkTest, MixedFaultStreamIsDeterministic)
{
    FaultConfig cfg;
    cfg.seed = 99;
    cfg.radio.exchangeFailureRate = 0.3;
    cfg.radio.latencySpikeRate = 0.2;
    cfg.radio.outageShare = 0.2;
    cfg.radio.meanOutageDuration = 30 * kSecond;

    auto run = [&cfg]() {
        FaultPlan plan(cfg);
        radio::RadioLink link(radio::threeGConfig());
        FaultyLink fl(link, &plan);
        std::vector<ExchangeOutcome> outs;
        SimTime now = 0;
        for (int i = 0; i < 200; ++i) {
            outs.push_back(fl.attempt(now, kUp, kDown, kServer));
            now += outs.back().xfer.latency + 10 * kSecond;
        }
        return outs;
    };

    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ok, b[i].ok) << "attempt " << i;
        ASSERT_EQ(a[i].noCoverage, b[i].noCoverage);
        ASSERT_EQ(a[i].failed, b[i].failed);
        ASSERT_EQ(a[i].latencySpike, b[i].latencySpike);
        ASSERT_EQ(a[i].xfer.latency, b[i].xfer.latency);
        ASSERT_DOUBLE_EQ(a[i].xfer.radioEnergy, b[i].xfer.radioEnergy);
    }
}

} // namespace
} // namespace pc::fault
