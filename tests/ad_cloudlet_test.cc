/**
 * @file
 * Unit tests for the ad cloudlet and the Section 7 serving/eviction
 * coordinator.
 */

#include <gtest/gtest.h>

#include "core/ad_cloudlet.h"
#include "core/coordinator.h"

namespace pc::core {
namespace {

pc::nvm::FlashConfig
deviceConfig()
{
    pc::nvm::FlashConfig cfg;
    cfg.capacity = 256 * kMiB;
    return cfg;
}

AdRecord
makeAd(int i)
{
    AdRecord ad;
    ad.advertiser = "advertiser" + std::to_string(i);
    ad.banner = "BUY NOW #" + std::to_string(i);
    ad.targetUrl = "www.shop" + std::to_string(i) + ".com";
    return ad;
}

class AdCloudletTest : public ::testing::Test
{
  protected:
    AdCloudletTest() : device_(deviceConfig()), store_(device_),
                       ads_(store_)
    {
    }

    pc::nvm::FlashDevice device_;
    pc::simfs::FlashStore store_;
    AdCloudlet ads_;
};

TEST_F(AdCloudletTest, InstallServeRoundTrip)
{
    SimTime t = 0;
    ads_.installAd("shoes", makeAd(1), t);
    EXPECT_GT(t, 0) << "banner write costs flash time";
    EXPECT_TRUE(ads_.containsQuery("shoes"));

    AdRecord ad;
    SimTime serve = 0;
    EXPECT_TRUE(ads_.serve("shoes", ad, serve));
    EXPECT_EQ(ad.advertiser, "advertiser1");
    EXPECT_GT(serve, 0);
    EXPECT_EQ(ads_.hits(), 1u);
    EXPECT_EQ(ads_.lookups(), 1u);
}

TEST_F(AdCloudletTest, MissLeavesTimeUntouched)
{
    AdRecord ad;
    SimTime t = 0;
    EXPECT_FALSE(ads_.serve("nothing", ad, t));
    EXPECT_EQ(t, 0);
    EXPECT_EQ(ads_.lookups(), 1u);
    EXPECT_EQ(ads_.hits(), 0u);
}

TEST_F(AdCloudletTest, ReinstallReplacesWithoutGrowth)
{
    SimTime t = 0;
    ads_.installAd("shoes", makeAd(1), t);
    ads_.installAd("shoes", makeAd(2), t);
    EXPECT_EQ(ads_.entries(), 1u);
    AdRecord ad;
    ads_.serve("shoes", ad, t);
    EXPECT_EQ(ad.advertiser, "advertiser2");
}

TEST_F(AdCloudletTest, FootprintAccounting)
{
    SimTime t = 0;
    for (int i = 0; i < 10; ++i)
        ads_.installAd("q" + std::to_string(i), makeAd(i), t);
    EXPECT_EQ(ads_.dataBytes(), 10u * 5 * kKiB);
    EXPECT_EQ(ads_.indexBytes(), 10u * 24u);
    EXPECT_GE(store_.stats().physicalBytes, ads_.dataBytes());
}

TEST_F(AdCloudletTest, EvictQuery)
{
    SimTime t = 0;
    ads_.installAd("shoes", makeAd(1), t);
    EXPECT_TRUE(ads_.evictQuery("shoes"));
    EXPECT_FALSE(ads_.evictQuery("shoes"));
    EXPECT_FALSE(ads_.containsQuery("shoes"));
}

TEST_F(AdCloudletTest, ShrinkToBudget)
{
    SimTime t = 0;
    for (int i = 0; i < 10; ++i)
        ads_.installAd("q" + std::to_string(i), makeAd(i), t);
    const Bytes released = ads_.shrinkTo(4 * 5 * kKiB);
    EXPECT_EQ(released, 6u * 5 * kKiB);
    EXPECT_EQ(ads_.entries(), 4u);
    EXPECT_EQ(ads_.shrinkTo(kGiB), 0u);
}

class CoordinatorTest : public ::testing::Test
{
  protected:
    CoordinatorTest() : device_(deviceConfig()), store_(device_)
    {
        workload::UniverseConfig ucfg;
        ucfg.navResults = 200;
        ucfg.nonNavResults = 800;
        ucfg.navHead = 30;
        ucfg.nonNavHead = 30;
        ucfg.habitNavHead = 20;
        ucfg.habitNonNavHead = 15;
        uni_ = std::make_unique<workload::QueryUniverse>(ucfg);
        ps_ = std::make_unique<PocketSearch>(*uni_, store_);
        ads_ = std::make_unique<AdCloudlet>(store_);
        coord_ = std::make_unique<CloudletCoordinator>(*ps_, *ads_);
    }

    /** Cache a pair in search; optionally give its query an ad. */
    std::string
    prime(u32 result, bool with_ad)
    {
        const workload::PairRef p{
            uni_->result(result).queries.front().first, result};
        SimTime t = 0;
        ps_->installPair(p, 0.9, false, t);
        const std::string &q = uni_->query(p.query).text;
        if (with_ad)
            ads_->installAd(q, makeAd(int(result)), t);
        return q;
    }

    pc::nvm::FlashDevice device_;
    pc::simfs::FlashStore store_;
    std::unique_ptr<workload::QueryUniverse> uni_;
    std::unique_ptr<PocketSearch> ps_;
    std::unique_ptr<AdCloudlet> ads_;
    std::unique_ptr<CloudletCoordinator> coord_;
};

TEST_F(CoordinatorTest, SearchHitServesAdToo)
{
    const std::string q = prime(0, true);
    const auto page = coord_->serveQuery(q);
    EXPECT_TRUE(page.search.hit);
    EXPECT_TRUE(page.adShown);
    EXPECT_EQ(page.ad.advertiser, "advertiser0");
    EXPECT_GT(page.latency, page.search.hashLookupTime +
                                page.search.fetchTime)
        << "ad fetch adds time on top of search serving";
    EXPECT_EQ(coord_->stats().searchHits, 1u);
    EXPECT_EQ(coord_->stats().adHits, 1u);
}

TEST_F(CoordinatorTest, SearchHitWithoutAdStillServes)
{
    const std::string q = prime(1, false);
    const auto page = coord_->serveQuery(q);
    EXPECT_TRUE(page.search.hit);
    EXPECT_FALSE(page.adShown);
}

TEST_F(CoordinatorTest, SearchMissSkipsAdProbe)
{
    // Even though the ad cache HAS this query, the Section 7 rule says
    // don't touch it after a search miss.
    SimTime t = 0;
    ads_->installAd("uncached query", makeAd(7), t);
    const auto page = coord_->serveQuery("uncached query");
    EXPECT_FALSE(page.search.hit);
    EXPECT_FALSE(page.adShown);
    EXPECT_EQ(coord_->stats().adProbesSkipped, 1u);
    EXPECT_EQ(ads_->lookups(), 0u) << "ad cache must not be probed";
}

TEST_F(CoordinatorTest, CoordinatedEviction)
{
    const std::string q0 = prime(0, true);
    const std::string q1 = prime(1, true);
    const std::size_t evicted = coord_->evictQueries({q0});
    EXPECT_EQ(evicted, 1u);
    EXPECT_FALSE(ps_->containsQuery(q0));
    EXPECT_FALSE(ads_->containsQuery(q0));
    EXPECT_TRUE(ps_->containsQuery(q1)) << "unrelated entries survive";
    EXPECT_TRUE(ads_->containsQuery(q1));
}

} // namespace
} // namespace pc::core
