/**
 * @file
 * Power-cycle tests (Section 3.3): the result database re-attaches to
 * its flash files, and the serialized index snapshot restores the full
 * cache state into a fresh PocketSearch.
 */

#include <gtest/gtest.h>

#include "core/persistence.h"
#include "util/hash.h"

namespace pc::core {
namespace {

workload::UniverseConfig
tinyUniverse()
{
    workload::UniverseConfig cfg;
    cfg.navResults = 200;
    cfg.nonNavResults = 800;
    cfg.navHead = 30;
    cfg.nonNavHead = 30;
    cfg.habitNavHead = 20;
    cfg.habitNonNavHead = 15;
    return cfg;
}

class PowerCycleTest : public ::testing::Test
{
  protected:
    PowerCycleTest() : uni_(tinyUniverse())
    {
        pc::nvm::FlashConfig fc;
        fc.capacity = 128 * kMiB;
        flash_ = std::make_unique<pc::nvm::FlashDevice>(fc);
        store_ = std::make_unique<pc::simfs::FlashStore>(*flash_);
    }

    workload::PairRef
    canonicalPair(u32 r)
    {
        return {uni_.result(r).queries.front().first, r};
    }

    workload::QueryUniverse uni_;
    std::unique_ptr<pc::nvm::FlashDevice> flash_;
    std::unique_ptr<pc::simfs::FlashStore> store_;
};

TEST_F(PowerCycleTest, ResultDatabaseReattachesAndFetches)
{
    // Boot 1: write some records.
    std::vector<u64> keys;
    {
        ResultDatabase db(*store_);
        SimTime t = 0;
        for (u32 r = 0; r < 30; ++r) {
            db.addRecord(uni_.result(r), t);
            keys.push_back(urlHash(uni_.result(r).url));
        }
        EXPECT_EQ(db.records(), 30u);
    } // "power off": the in-memory location map dies with the object.

    // Boot 2: a fresh database over the same store must recover.
    ResultDatabase db2(*store_);
    EXPECT_EQ(db2.records(), 30u);
    for (u32 r = 0; r < 30; ++r) {
        ResultRecord rec;
        SimTime t = 0;
        ASSERT_TRUE(db2.fetch(keys[r], rec, t)) << "record " << r;
        EXPECT_EQ(rec.url, uni_.result(r).url);
        EXPECT_EQ(rec.title, uni_.result(r).title);
    }
    // And it keeps working for new records.
    SimTime t = 0;
    EXPECT_FALSE(db2.addRecord(uni_.result(0), t)) << "no duplicates";
    EXPECT_TRUE(db2.addRecord(uni_.result(100), t));
}

TEST_F(PowerCycleTest, FullCacheSurvivesPowerCycle)
{
    SimTime t = 0;
    // Boot 1: build a cache, personalize it, snapshot the index.
    {
        PocketSearch ps(uni_, *store_);
        for (u32 r = 0; r < 20; ++r)
            ps.installPair(canonicalPair(r), 0.5 + 0.01 * r, false, t);
        ps.recordClick(canonicalPair(3), t); // accessed + re-scored
        ps.recordClick(canonicalPair(50), t); // learned pair
        const auto written =
            persistIndex(ps, *store_, "psearch.snapshot", t);
        EXPECT_TRUE(written.ok);
        EXPECT_GT(written.bytes, 0u);
    }

    // Boot 2: fresh objects over the surviving flash.
    PocketSearch ps2(uni_, *store_);
    EXPECT_EQ(ps2.pairs(), 0u) << "index is volatile";
    EXPECT_EQ(ps2.db().records(), 21u)
        << "records survived on flash by themselves";

    const auto res = restoreIndex(ps2, *store_, "psearch.snapshot");
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.pairs, 21u);
    EXPECT_GT(res.loadTime, 0) << "the reload is the Section 3.3 cost";

    // Everything is back: hits, learned pair, scores, flags, suggest.
    EXPECT_TRUE(ps2.containsPair(canonicalPair(3)));
    EXPECT_TRUE(ps2.containsPair(canonicalPair(50)));
    auto out = ps2.lookupPair(canonicalPair(3));
    ASSERT_TRUE(out.hit);
    ASSERT_FALSE(out.results.empty());
    EXPECT_EQ(out.results[0].url, uni_.result(3).url);
    const auto refs =
        ps2.table().lookup(uni_.query(canonicalPair(3).query).text);
    ASSERT_FALSE(refs.empty());
    EXPECT_GT(refs[0].score, 1.0) << "click-bumped score restored";
    EXPECT_TRUE(refs[0].userAccessed) << "accessed flag restored";
    EXPECT_GT(ps2.suggestIndex().size(), 0u) << "suggest box restored";
}

TEST_F(PowerCycleTest, RestoreWithoutSnapshotFails)
{
    PocketSearch ps(uni_, *store_);
    const auto res = restoreIndex(ps, *store_, "missing.snapshot");
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.pairs, 0u);
}

TEST_F(PowerCycleTest, CorruptSnapshotRejected)
{
    SimTime t = 0;
    PocketSearch ps(uni_, *store_);
    ps.installPair(canonicalPair(0), 0.9, false, t);
    persistIndex(ps, *store_, "snap", t);

    // Truncate the only snapshot slot mid-record.
    const auto f = store_->lookup("snap.s0");
    ASSERT_NE(f, pc::simfs::kNoFile);
    std::string blob;
    store_->read(f, 0, store_->size(f), blob, t);
    blob.resize(blob.size() - 3);
    store_->truncateAndWrite(f, blob, t);

    PocketSearch ps2(uni_, *store_);
    const auto res = restoreIndex(ps2, *store_, "snap");
    EXPECT_FALSE(res.ok) << "truncated snapshot must be rejected";
    EXPECT_EQ(res.corruptSlots, 1u);
    EXPECT_EQ(ps2.pairs(), 0u) << "no partial state may load";
}

TEST_F(PowerCycleTest, SnapshotOverwriteKeepsLatestState)
{
    SimTime t = 0;
    PocketSearch ps(uni_, *store_);
    ps.installPair(canonicalPair(0), 0.9, false, t);
    persistIndex(ps, *store_, "snap", t);
    ps.installPair(canonicalPair(1), 0.8, false, t);
    persistIndex(ps, *store_, "snap", t); // overwrite

    PocketSearch ps2(uni_, *store_);
    const auto res = restoreIndex(ps2, *store_, "snap");
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.pairs, 2u);
    EXPECT_EQ(res.sequence, 2u);
    EXPECT_TRUE(ps2.containsPair(canonicalPair(1)));
}

} // namespace
} // namespace pc::core
