/**
 * @file
 * Minimal flat-file store over the NAND flash timing model.
 *
 * PocketSearch keeps its custom database as plain files in flash
 * (Section 5.2.2 of the paper). This store provides exactly what that
 * database needs — named append-able byte files — while modelling the
 * two flash effects the paper's storage experiments hinge on:
 *
 *  - internal fragmentation: files are allocated in fixed-size blocks
 *    (2/4/8 KB in the paper), so a 500-byte record file wastes most of a
 *    block;
 *  - timed access: reads/writes pay the flash page latencies through the
 *    FlashDevice model, plus a per-open metadata overhead.
 *
 * File payload bytes are held in host memory; the flash device only
 * accounts time/energy/wear.
 */

#ifndef PC_SIMFS_FLASH_STORE_H
#define PC_SIMFS_FLASH_STORE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "nvm/flash_device.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace pc::simfs {

/** Opaque file identifier. */
using FileId = u32;

/** Invalid file id. */
inline constexpr FileId kNoFile = ~FileId(0);

/** Store configuration. */
struct StoreConfig
{
    /** Allocation unit ("block" in the paper's Section 5.2.2 sense). */
    Bytes allocUnit = 4 * kKiB;
    /** Fixed metadata cost of an open-by-name (directory lookup). */
    SimTime openOverhead = 2 * kMillisecond;
    /**
     * Wear levelling: when reusing freed blocks, pick the least-worn
     * candidate instead of the most recently freed one. Slightly more
     * allocator work, much flatter erase distribution.
     */
    bool wearLeveling = false;
};

/** Aggregate space accounting for the store. */
struct StoreStats
{
    Bytes logicalBytes = 0;   ///< Sum of file contents.
    Bytes physicalBytes = 0;  ///< Block-rounded space consumed.
    u64 files = 0;            ///< Live file count.

    /** Wasted bytes due to block rounding. */
    Bytes internalWaste() const { return physicalBytes - logicalBytes; }
    /** Waste as a fraction of physical space; 0 when empty. */
    double wasteRatio() const;
};

/**
 * Flat, append-oriented file store on a FlashDevice.
 */
class FlashStore
{
  public:
    /**
     * @param device Flash device the store charges accesses to. Must
     *        outlive the store.
     * @param cfg Allocation/overhead configuration.
     */
    FlashStore(pc::nvm::FlashDevice &device, const StoreConfig &cfg = {});

    /**
     * Create an empty file.
     * @return The new file's id, or kNoFile if a live file already has
     *         this name (the existing file is untouched; the conflict is
     *         counted under "simfs.create_conflicts").
     */
    FileId create(const std::string &name);

    /**
     * Open a file by name, paying the metadata overhead.
     * @param[out] time Accumulates the open latency.
     * @return File id, or kNoFile if absent.
     */
    FileId open(const std::string &name, SimTime &time);

    /** Lookup without timing (for assertions/tests). */
    FileId lookup(const std::string &name) const;

    /** True if the id refers to a live file. */
    bool valid(FileId id) const;

    /**
     * Append bytes to a file, allocating blocks as needed.
     * @param[out] time Accumulates the flash program latency.
     */
    void append(FileId id, std::string_view data, SimTime &time);

    /**
     * Write bytes at an arbitrary offset (pwrite). Extends the file —
     * sparsely, zero-filled — when the range reaches past the current
     * end; only the written range is charged as programs (plus the
     * amortized erase of freshly allocated blocks). This is what a
     * slab-structured store needs: fixed slots rewritten in place
     * without rewriting the file. Honors the attached fault plan
     * exactly like append (power loss drops the write, an armed crash
     * may tear it).
     * @param[out] time Accumulates the flash program latency.
     */
    void writeAt(FileId id, Bytes offset, std::string_view data,
                 SimTime &time);

    /**
     * Read `len` bytes at `offset` into `out`, clamped to file size.
     * @param[out] time Accumulates the flash read latency.
     * @return Bytes actually read.
     */
    Bytes read(FileId id, Bytes offset, Bytes len, std::string &out,
               SimTime &time) const;

    /**
     * Replace a file's entire contents (used when applying update
     * patches). Frees and reallocates blocks.
     * @param[out] time Accumulates erase + program latency.
     */
    void truncateAndWrite(FileId id, std::string_view data, SimTime &time);

    /**
     * Delete a file, returning its blocks to the free list and charging
     * the erase latency of every freed block — freed blocks must be
     * erased before reuse, exactly as truncateAndWrite charges them.
     * @param[out] time Accumulates the erase latency.
     */
    void remove(FileId id, SimTime &time);

    /**
     * Untimed delete (legacy signature): same reclamation, the erase
     * cost is discarded. Prefer the timed overload on any path whose
     * latency is being modelled — the GC path in pc::store uses it.
     */
    void remove(FileId id);

    /**
     * Mean erase count of the device blocks backing a file's
     * allocation units; 0 for an empty file. The pc::store GC uses it
     * to relocate live data into the least-worn destination slab.
     */
    double avgWear(FileId id) const;

    /** Logical size of a file. */
    Bytes size(FileId id) const;

    /** Physical (block-rounded) size of a file. */
    Bytes physicalSize(FileId id) const;

    /** Store-wide space accounting. */
    StoreStats stats() const;

    /** Names of all live files (sorted). */
    std::vector<std::string> listFiles() const;

    /** The underlying flash device. */
    pc::nvm::FlashDevice &device() { return device_; }

    /** Configuration. */
    const StoreConfig &config() const { return cfg_; }

    /**
     * Attach a fault plan: programs become crash-able (power loss may
     * tear a write mid-file) and reads of worn blocks may suffer bit
     * flips. nullptr detaches.
     */
    void attachFaults(pc::fault::FaultPlan *faults) { faults_ = faults; }

    /** The attached fault plan (may be nullptr). */
    pc::fault::FaultPlan *faults() const { return faults_; }

    /**
     * Register store counters under "simfs.*" (creates, opens, reads,
     * writes, truncates, removes, bytes_read, bytes_written), bumped
     * per operation, plus create_conflicts (duplicate-name creates,
     * which otherwise vanish silently as kNoFile) and per-op latency
     * accumulators (read_ns, write_ns, truncate_ns, remove_ns — total
     * simulated nanoseconds charged per op class, so cache-hit savings
     * in pc::store show up in fleet snapshots through the
     * FleetCollector fold). nullptr detaches.
     */
    void attachMetrics(obs::MetricRegistry *reg);

  private:
    struct File
    {
        std::string name;
        std::string data;
        std::vector<u64> blocks; ///< Allocated block indices, in order.
        bool live = false;
    };

    const File &fileAt(FileId id) const;
    File &fileAt(FileId id);

    /** Allocate one block; grows toward capacity, reuses freed blocks. */
    u64 allocBlock();

    /** Ensure the file owns enough blocks for `size` bytes. */
    void reserve(File &f, Bytes size, SimTime &time, bool charge_program);

    /** Flash byte address of a file offset. */
    Bytes flashAddr(const File &f, Bytes offset) const;

    /** Cached metric handles (null when no registry is attached). */
    struct Metrics
    {
        obs::Counter *creates = nullptr;
        obs::Counter *opens = nullptr;
        obs::Counter *reads = nullptr;
        obs::Counter *writes = nullptr;
        obs::Counter *truncates = nullptr;
        obs::Counter *removes = nullptr;
        obs::Counter *bytesRead = nullptr;
        obs::Counter *bytesWritten = nullptr;
        obs::Counter *createConflicts = nullptr;
        obs::Counter *readNs = nullptr;
        obs::Counter *writeNs = nullptr;
        obs::Counter *truncateNs = nullptr;
        obs::Counter *removeNs = nullptr;
    };

    pc::nvm::FlashDevice &device_;
    StoreConfig cfg_;
    pc::fault::FaultPlan *faults_ = nullptr;
    Metrics metrics_;
    std::vector<File> files_;
    std::map<std::string, FileId> byName_;
    std::vector<u64> freeBlocks_;
    u64 nextBlock_ = 0;
};

} // namespace pc::simfs

#endif // PC_SIMFS_FLASH_STORE_H
