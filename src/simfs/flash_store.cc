#include "simfs/flash_store.h"

#include <algorithm>

#include "util/logging.h"

namespace pc::simfs {

double
StoreStats::wasteRatio() const
{
    if (physicalBytes == 0)
        return 0.0;
    return double(internalWaste()) / double(physicalBytes);
}

FlashStore::FlashStore(pc::nvm::FlashDevice &device, const StoreConfig &cfg)
    : device_(device), cfg_(cfg)
{
    pc_assert(cfg_.allocUnit > 0, "allocation unit must be positive");
    pc_assert(cfg_.allocUnit % device_.config().pageSize == 0 ||
              device_.config().pageSize % cfg_.allocUnit == 0,
              "allocation unit and flash page size must nest");
}

void
FlashStore::attachMetrics(obs::MetricRegistry *reg)
{
    if (!reg) {
        metrics_ = Metrics{};
        return;
    }
    metrics_.creates = &reg->counter("simfs.creates");
    metrics_.opens = &reg->counter("simfs.opens");
    metrics_.reads = &reg->counter("simfs.reads");
    metrics_.writes = &reg->counter("simfs.writes");
    metrics_.truncates = &reg->counter("simfs.truncates");
    metrics_.removes = &reg->counter("simfs.removes");
    metrics_.bytesRead = &reg->counter("simfs.bytes_read");
    metrics_.bytesWritten = &reg->counter("simfs.bytes_written");
    metrics_.createConflicts = &reg->counter("simfs.create_conflicts");
    metrics_.readNs = &reg->counter("simfs.read_ns");
    metrics_.writeNs = &reg->counter("simfs.write_ns");
    metrics_.truncateNs = &reg->counter("simfs.truncate_ns");
    metrics_.removeNs = &reg->counter("simfs.remove_ns");
}

FileId
FlashStore::create(const std::string &name)
{
    if (byName_.find(name) != byName_.end()) {
        if (metrics_.createConflicts)
            metrics_.createConflicts->bump();
        return kNoFile;
    }
    FileId id = FileId(files_.size());
    files_.push_back(File{name, {}, {}, true});
    byName_[name] = id;
    if (metrics_.creates)
        metrics_.creates->bump();
    return id;
}

FileId
FlashStore::open(const std::string &name, SimTime &time)
{
    time += cfg_.openOverhead;
    if (metrics_.opens)
        metrics_.opens->bump();
    auto it = byName_.find(name);
    return it == byName_.end() ? kNoFile : it->second;
}

FileId
FlashStore::lookup(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? kNoFile : it->second;
}

bool
FlashStore::valid(FileId id) const
{
    return id < files_.size() && files_[id].live;
}

const FlashStore::File &
FlashStore::fileAt(FileId id) const
{
    pc_assert(valid(id), "invalid file id ", id);
    return files_[id];
}

FlashStore::File &
FlashStore::fileAt(FileId id)
{
    pc_assert(valid(id), "invalid file id ", id);
    return files_[id];
}

u64
FlashStore::allocBlock()
{
    if (!freeBlocks_.empty()) {
        std::size_t pick = freeBlocks_.size() - 1;
        if (cfg_.wearLeveling) {
            // Least-worn free block first; wear is tracked per *device*
            // block, so map allocation units onto device blocks.
            const Bytes dev_block =
                device_.config().pageSize * device_.config().pagesPerBlock;
            u64 best = ~u64(0);
            for (std::size_t i = 0; i < freeBlocks_.size(); ++i) {
                const u64 dev_idx =
                    freeBlocks_[i] * cfg_.allocUnit / dev_block;
                const u64 wear = device_.blockEraseCount(dev_idx);
                if (wear < best) {
                    best = wear;
                    pick = i;
                }
            }
        }
        const u64 b = freeBlocks_[pick];
        freeBlocks_.erase(freeBlocks_.begin() +
                          std::ptrdiff_t(pick));
        return b;
    }
    const u64 total_blocks = device_.capacity() / cfg_.allocUnit;
    pc_assert(nextBlock_ < total_blocks, "flash store out of space");
    return nextBlock_++;
}

void
FlashStore::reserve(File &f, Bytes size, SimTime &time, bool charge_program)
{
    const u64 needed = (size + cfg_.allocUnit - 1) / cfg_.allocUnit;
    while (f.blocks.size() < needed) {
        const u64 b = allocBlock();
        f.blocks.push_back(b);
        if (charge_program) {
            // New blocks must be in the erased state before programming;
            // model the (amortized) erase here.
            time += device_.eraseBlockAt(b * cfg_.allocUnit);
        }
    }
}

Bytes
FlashStore::flashAddr(const File &f, Bytes offset) const
{
    const u64 block_idx = offset / cfg_.allocUnit;
    pc_assert(block_idx < f.blocks.size(), "offset beyond allocation");
    return f.blocks[block_idx] * cfg_.allocUnit + offset % cfg_.allocUnit;
}

void
FlashStore::append(FileId id, std::string_view data, SimTime &time)
{
    File &f = fileAt(id);
    if (faults_ && faults_->powerLost())
        return; // the device is off; nothing reaches the flash
    // An armed crash may cut the program short, leaving a torn file —
    // exactly the state the snapshot commit protocol must survive.
    std::string_view payload = data;
    if (faults_)
        payload = data.substr(0, faults_->programBudget(data.size()));
    const SimTime t0 = time;
    const Bytes start = f.data.size();
    if (metrics_.writes) {
        metrics_.writes->bump();
        metrics_.bytesWritten->bump(payload.size());
    }
    reserve(f, start + payload.size(), time, true);
    // Charge programs block-run by block-run (appends can straddle).
    Bytes off = start;
    Bytes remaining = payload.size();
    while (remaining > 0) {
        const Bytes in_block = cfg_.allocUnit - off % cfg_.allocUnit;
        const Bytes chunk = std::min<Bytes>(remaining, in_block);
        time += device_.write(flashAddr(f, off), chunk);
        off += chunk;
        remaining -= chunk;
    }
    f.data.append(payload);
    if (metrics_.writeNs)
        metrics_.writeNs->bump(u64(time - t0));
}

void
FlashStore::writeAt(FileId id, Bytes offset, std::string_view data,
                    SimTime &time)
{
    File &f = fileAt(id);
    if (faults_ && faults_->powerLost())
        return;
    std::string_view payload = data;
    if (faults_)
        payload = data.substr(0, faults_->programBudget(data.size()));
    if (payload.empty())
        return;
    const SimTime t0 = time;
    if (metrics_.writes) {
        metrics_.writes->bump();
        metrics_.bytesWritten->bump(payload.size());
    }
    const Bytes end = offset + payload.size();
    reserve(f, end, time, true);
    if (f.data.size() < end)
        f.data.resize(end, '\0'); // sparse extension; never programmed
    // Charge programs block-run by block-run over the written range.
    Bytes off = offset;
    Bytes remaining = payload.size();
    while (remaining > 0) {
        const Bytes in_block = cfg_.allocUnit - off % cfg_.allocUnit;
        const Bytes chunk = std::min<Bytes>(remaining, in_block);
        time += device_.write(flashAddr(f, off), chunk);
        off += chunk;
        remaining -= chunk;
    }
    f.data.replace(offset, payload.size(), payload);
    if (metrics_.writeNs)
        metrics_.writeNs->bump(u64(time - t0));
}

Bytes
FlashStore::read(FileId id, Bytes offset, Bytes len, std::string &out,
                 SimTime &time) const
{
    const File &f = fileAt(id);
    out.clear();
    const SimTime t0 = time;
    if (metrics_.reads)
        metrics_.reads->bump();
    if (offset >= f.data.size())
        return 0;
    const Bytes n = std::min<Bytes>(len, f.data.size() - offset);
    if (metrics_.bytesRead)
        metrics_.bytesRead->bump(n);
    out.assign(f.data, offset, n);
    // Charge reads block-run by block-run.
    const Bytes dev_block =
        device_.config().pageSize * device_.config().pagesPerBlock;
    Bytes off = offset;
    Bytes remaining = n;
    while (remaining > 0) {
        const Bytes in_block = cfg_.allocUnit - off % cfg_.allocUnit;
        const Bytes chunk = std::min<Bytes>(remaining, in_block);
        const Bytes addr = flashAddr(f, off);
        // const_cast: the device mutates only stats, which are mutable in
        // spirit; keep the read path usable from const contexts.
        time += const_cast<pc::nvm::FlashDevice &>(device_)
                    .read(addr, chunk);
        if (faults_) {
            // Wear-correlated retention loss: worn blocks may return a
            // flipped bit. The flip hits the returned buffer only — the
            // stored data stays intact, as with a real transient read
            // error.
            faults_->maybeFlipBit(out, off - offset, chunk,
                                  device_.blockEraseCount(addr / dev_block));
        }
        off += chunk;
        remaining -= chunk;
    }
    if (metrics_.readNs)
        metrics_.readNs->bump(u64(time - t0));
    return n;
}

void
FlashStore::truncateAndWrite(FileId id, std::string_view data, SimTime &time)
{
    File &f = fileAt(id);
    if (faults_ && faults_->powerLost())
        return;
    const SimTime t0 = time;
    if (metrics_.truncates)
        metrics_.truncates->bump();
    // Old blocks must be erased before reuse; charge and free them.
    for (u64 b : f.blocks) {
        time += device_.eraseBlockAt(b * cfg_.allocUnit);
        freeBlocks_.push_back(b);
    }
    f.blocks.clear();
    f.data.clear();
    append(id, data, time);
    if (metrics_.truncateNs)
        metrics_.truncateNs->bump(u64(time - t0));
}

void
FlashStore::remove(FileId id, SimTime &time)
{
    File &f = fileAt(id);
    const SimTime t0 = time;
    if (metrics_.removes)
        metrics_.removes->bump();
    // Freed blocks must be erased before reuse; charge the erases here
    // (truncateAndWrite charges them; untimed remove historically did
    // not — the gap pc::store's GC must not inherit).
    for (u64 b : f.blocks) {
        time += device_.eraseBlockAt(b * cfg_.allocUnit);
        freeBlocks_.push_back(b);
    }
    byName_.erase(f.name);
    f.blocks.clear();
    f.data.clear();
    f.live = false;
    if (metrics_.removeNs)
        metrics_.removeNs->bump(u64(time - t0));
}

void
FlashStore::remove(FileId id)
{
    SimTime discarded = 0;
    remove(id, discarded);
}

double
FlashStore::avgWear(FileId id) const
{
    const File &f = fileAt(id);
    if (f.blocks.empty())
        return 0.0;
    const Bytes dev_block =
        device_.config().pageSize * device_.config().pagesPerBlock;
    double total = 0.0;
    for (u64 b : f.blocks)
        total += double(
            device_.blockEraseCount(b * cfg_.allocUnit / dev_block));
    return total / double(f.blocks.size());
}

Bytes
FlashStore::size(FileId id) const
{
    return fileAt(id).data.size();
}

Bytes
FlashStore::physicalSize(FileId id) const
{
    return Bytes(fileAt(id).blocks.size()) * cfg_.allocUnit;
}

StoreStats
FlashStore::stats() const
{
    StoreStats s;
    for (const auto &f : files_) {
        if (!f.live)
            continue;
        ++s.files;
        s.logicalBytes += f.data.size();
        s.physicalBytes += Bytes(f.blocks.size()) * cfg_.allocUnit;
    }
    return s;
}

std::vector<std::string>
FlashStore::listFiles() const
{
    std::vector<std::string> names;
    names.reserve(byName_.size());
    for (const auto &[name, id] : byName_) {
        (void)id;
        names.push_back(name);
    }
    return names;
}

} // namespace pc::simfs
