#include "simfs/protected_store.h"

#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace pc::simfs {

std::string
ProtectedStore::qualify(const std::string &ns, const std::string &name)
{
    return ns + "/" + name;
}

Grant
ProtectedStore::registerNamespace(const std::string &ns)
{
    pc_assert(!ns.empty() && ns.find('/') == std::string::npos,
              "namespace must be a single non-empty path segment");
    if (byNamespace_.count(ns))
        return kNoGrant;
    // Grants are unguessable in spirit; mix a counter for uniqueness.
    const Grant g = mix64(nextGrant_++ ^ fnv1a(ns)) | 1;
    grants_[g] = GrantInfo{ns, false};
    byNamespace_[ns] = g;
    return g;
}

bool
ProtectedStore::revoke(Grant grant)
{
    auto it = grants_.find(grant);
    if (it == grants_.end() || it->second.revoked)
        return false;
    it->second.revoked = true;
    return true;
}

const ProtectedStore::GrantInfo *
ProtectedStore::lookupGrant(Grant grant) const
{
    const auto it = grants_.find(grant);
    if (it == grants_.end() || it->second.revoked)
        return nullptr;
    return &it->second;
}

bool
ProtectedStore::owns(const GrantInfo &g, FileId id) const
{
    const auto it = owner_.find(id);
    if (it == owner_.end())
        return false;
    const GrantInfo *o = lookupGrant(it->second);
    return o && o->ns == g.ns;
}

Access
ProtectedStore::create(Grant grant, const std::string &name, FileId &id)
{
    const GrantInfo *g = lookupGrant(grant);
    if (!g) {
        ++violations_;
        return Access::BadGrant;
    }
    id = store_.create(qualify(g->ns, name));
    owner_[id] = grant;
    return Access::Ok;
}

Access
ProtectedStore::open(Grant grant, const std::string &name, FileId &id,
                     SimTime &time)
{
    const GrantInfo *g = lookupGrant(grant);
    if (!g) {
        ++violations_;
        return Access::BadGrant;
    }
    // Names are resolved inside the caller's namespace only; a crafted
    // "other-ns/secret" name cannot escape because it qualifies to
    // "<my-ns>/other-ns/secret".
    id = store_.open(qualify(g->ns, name), time);
    if (id == kNoFile)
        return Access::Denied;
    if (!owns(*g, id)) {
        ++violations_;
        id = kNoFile;
        return Access::Denied;
    }
    return Access::Ok;
}

Access
ProtectedStore::append(Grant grant, FileId id, std::string_view data,
                       SimTime &time)
{
    const GrantInfo *g = lookupGrant(grant);
    if (!g) {
        ++violations_;
        return Access::BadGrant;
    }
    if (!owns(*g, id)) {
        ++violations_;
        return Access::Denied;
    }
    store_.append(id, data, time);
    return Access::Ok;
}

Access
ProtectedStore::read(Grant grant, FileId id, Bytes offset, Bytes len,
                     std::string &out, Bytes &got, SimTime &time)
{
    const GrantInfo *g = lookupGrant(grant);
    if (!g) {
        ++violations_;
        return Access::BadGrant;
    }
    if (!owns(*g, id)) {
        ++violations_;
        return Access::Denied;
    }
    got = store_.read(id, offset, len, out, time);
    return Access::Ok;
}

Access
ProtectedStore::remove(Grant grant, FileId id)
{
    const GrantInfo *g = lookupGrant(grant);
    if (!g) {
        ++violations_;
        return Access::BadGrant;
    }
    if (!owns(*g, id)) {
        ++violations_;
        return Access::Denied;
    }
    store_.remove(id);
    owner_.erase(id);
    return Access::Ok;
}

Bytes
ProtectedStore::namespaceBytes(const std::string &ns) const
{
    Bytes total = 0;
    for (const auto &name : store_.listFiles()) {
        if (pc::startsWith(name, ns + "/")) {
            const FileId id = store_.lookup(name);
            if (id != kNoFile)
                total += store_.physicalSize(id);
        }
    }
    return total;
}

} // namespace pc::simfs
