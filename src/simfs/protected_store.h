/**
 * @file
 * OS-enforced cloudlet isolation over the flash store (Section 7).
 *
 * "Some cloudlets may include sensitive user and/or application data
 * in their caches. Consequently, other cloudlets should not be allowed
 * unrestricted access to those cache contents. [...] We envision the
 * operating system will provide such isolation and access control."
 *
 * ProtectedStore is that OS surface: each cloudlet registers a
 * namespace and receives an opaque grant; every file operation is
 * checked against the grant's namespace, so a maps cloudlet can never
 * open "bank_*" files. Enforcement is by namespace prefix on file
 * names — the same model real mobile OSes use for per-app storage
 * sandboxes.
 */

#ifndef PC_SIMFS_PROTECTED_STORE_H
#define PC_SIMFS_PROTECTED_STORE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "simfs/flash_store.h"

namespace pc::simfs {

/** Opaque access grant handed to a cloudlet at registration. */
using Grant = u64;

/** Invalid grant. */
inline constexpr Grant kNoGrant = 0;

/** Result of a checked operation. */
enum class Access
{
    Ok,
    Denied,   ///< Name outside the grant's namespace.
    BadGrant, ///< Unknown or revoked grant.
};

/**
 * Namespace-enforcing facade over a FlashStore.
 */
class ProtectedStore
{
  public:
    /** @param store Backing store; must outlive this facade. */
    explicit ProtectedStore(FlashStore &store) : store_(store) {}

    /**
     * Register a cloudlet namespace ("search", "maps", ...). File
     * names under a grant are forced to "<ns>/<name>".
     * @return The grant, or kNoGrant if the namespace is taken.
     */
    Grant registerNamespace(const std::string &ns);

    /** Revoke a grant; subsequent operations fail with BadGrant. */
    bool revoke(Grant grant);

    /** Create a file inside the grant's namespace. */
    Access create(Grant grant, const std::string &name, FileId &id);

    /** Open a file; denied outside the namespace. */
    Access open(Grant grant, const std::string &name, FileId &id,
                SimTime &time);

    /** Append to an owned file. */
    Access append(Grant grant, FileId id, std::string_view data,
                  SimTime &time);

    /** Read from an owned file. */
    Access read(Grant grant, FileId id, Bytes offset, Bytes len,
                std::string &out, Bytes &got, SimTime &time);

    /** Remove an owned file. */
    Access remove(Grant grant, FileId id);

    /** Bytes (physical) used by a namespace. */
    Bytes namespaceBytes(const std::string &ns) const;

    /** Denied/bad-grant attempts so far (audit counter). */
    u64 violations() const { return violations_; }

    /** The backing store (device-level accounting). */
    FlashStore &store() { return store_; }

  private:
    struct GrantInfo
    {
        std::string ns;
        bool revoked = false;
    };

    /** Full name of `name` under a namespace. */
    static std::string qualify(const std::string &ns,
                               const std::string &name);

    /** Grant lookup; nullptr when unknown/revoked. */
    const GrantInfo *lookupGrant(Grant grant) const;

    /** Does this grant own the file id? */
    bool owns(const GrantInfo &g, FileId id) const;

    FlashStore &store_;
    std::unordered_map<Grant, GrantInfo> grants_;
    std::unordered_map<std::string, Grant> byNamespace_;
    std::unordered_map<FileId, Grant> owner_;
    u64 nextGrant_ = 1;
    u64 violations_ = 0;
};

} // namespace pc::simfs

#endif // PC_SIMFS_PROTECTED_STORE_H
