/**
 * @file
 * Mobile search log characterization (Section 4 of the paper).
 *
 * Computes the community and individual-user statistics the paper
 * derives from the m.bing.com logs: popularity concentration of queries
 * and clicked results (Figure 4), per-user repeatability (Figure 5), the
 * cumulative pair-volume curve (Figure 7), and the Table 6 user-class
 * census.
 */

#ifndef PC_LOGS_ANALYZER_H
#define PC_LOGS_ANALYZER_H

#include <optional>
#include <vector>

#include "logs/triplets.h"
#include "util/stats.h"
#include "workload/population.h"
#include "workload/searchlog.h"

namespace pc::logs {

using workload::DeviceType;
using workload::LogRecord;
using workload::UserClass;

/** Filter describing which records a popularity analysis considers. */
struct RecordFilter
{
    /** Keep only navigational (true) / non-navigational (false) pairs. */
    std::optional<bool> navigational;
    /** Keep only records from this device class. */
    std::optional<DeviceType> device;

    /** Does a record pass the filter? */
    bool passes(const workload::QueryUniverse &u,
                const LogRecord &rec) const;
};

/** A cumulative popularity curve (x = top-k items, y = volume share). */
struct PopularityCurve
{
    /** Item volumes, descending. */
    pc::CumulativeShare shares;

    /** Share of volume covered by the k most popular items. */
    double shareOfTop(std::size_t k) const { return shares.shareOfTop(k); }
    /** Smallest k covering `share` of the volume. */
    std::size_t topForShare(double s) const
    {
        return shares.topForShare(s);
    }
    /** Number of distinct items. */
    std::size_t distinctItems() const
    {
        return shares.sortedVolumes.size();
    }
};

/** Per-user repeatability measurement (one Figure 5 sample point). */
struct UserRepeatStats
{
    u64 user = 0;
    u64 events = 0;
    u64 newPairs = 0; ///< Events whose (query,result) was first-seen.

    /** Fraction of events that were new (x-axis of Figure 5). */
    double newRate() const
    {
        return events ? double(newPairs) / double(events) : 0.0;
    }
    /** Fraction of events that repeated an earlier pair. */
    double repeatRate() const { return 1.0 - newRate(); }
};

/** Table 6 census row. */
struct ClassCensusRow
{
    UserClass cls;
    u64 users = 0;
    double share = 0.0;
};

/**
 * Log analysis entry point. All methods are pure functions of the log.
 */
class LogAnalyzer
{
  public:
    explicit LogAnalyzer(const SearchLog &log) : log_(log) {}

    /**
     * Popularity of distinct *query strings* (Figure 4a): volume per
     * query, under an optional filter.
     */
    PopularityCurve queryPopularity(const RecordFilter &f = {}) const;

    /**
     * Popularity of distinct *clicked results* (Figure 4b).
     */
    PopularityCurve resultPopularity(const RecordFilter &f = {}) const;

    /**
     * Per-user repeatability over the log window (Figure 5). Users with
     * fewer than `min_events` records are skipped (the paper ignores
     * users under 20 queries/month).
     */
    std::vector<UserRepeatStats>
    userRepeatability(u64 min_events = 20,
                      const RecordFilter &f = {}) const;

    /** Mean repeat rate across qualifying users (paper: 56.5%). */
    double meanRepeatRate(u64 min_events = 20) const;

    /**
     * Fraction of qualifying users whose new-query rate is at most
     * `threshold` (paper: ~50% of users at threshold 0.30).
     */
    double fractionUsersNewRateAtMost(double threshold,
                                      u64 min_events = 20) const;

    /** Census of users by monthly volume class (Table 6). */
    std::vector<ClassCensusRow> classCensus(u64 min_events = 20) const;

  private:
    const SearchLog &log_;
};

} // namespace pc::logs

#endif // PC_LOGS_ANALYZER_H
