/**
 * @file
 * <query, search result, volume> triplet aggregation (Table 3).
 *
 * The server-side first step of PocketSearch content generation
 * (Section 5.1): scan a month of logs, count how many times each
 * (query, clicked result) pair occurred, and sort descending by volume.
 */

#ifndef PC_LOGS_TRIPLETS_H
#define PC_LOGS_TRIPLETS_H

#include <vector>

#include "workload/searchlog.h"

namespace pc::logs {

using workload::PairRef;
using workload::SearchLog;

/** One aggregated row of Table 3. */
struct Triplet
{
    PairRef pair{0, 0};
    u64 volume = 0;
};

/**
 * Sorted triplet table extracted from a log.
 */
class TripletTable
{
  public:
    /** Aggregate and sort a log's records. */
    static TripletTable fromLog(const SearchLog &log);

    /**
     * Build from pre-aggregated rows already sorted by rowOrder().
     * The sharded server builder merges per-shard sorted runs and
     * hands the result here; order is asserted in debug builds.
     */
    static TripletTable fromSortedRows(std::vector<Triplet> rows);

    /**
     * The strict total order fromLog() sorts with: volume descending,
     * ties by packed (query, result) id ascending. Exposed so the
     * sharded builder sorts its shards with the *same* order and the
     * shard merge reproduces the sequential row sequence exactly.
     */
    static bool rowOrder(const Triplet &a, const Triplet &b);

    /** Rows, descending by volume (ties broken deterministically). */
    const std::vector<Triplet> &rows() const { return rows_; }

    /** Total click volume across all rows. */
    u64 totalVolume() const { return total_; }

    /** Normalized volume of row i (row volume / total volume). */
    double normalizedVolume(std::size_t i) const;

    /** Cumulative share of volume carried by the first k rows. */
    double cumulativeShare(std::size_t k) const;

    /** Smallest row count whose cumulative share reaches `share`. */
    std::size_t rowsForShare(double share) const;

    /** Number of distinct results among the first k rows. */
    std::size_t uniqueResultsInTop(std::size_t k) const;

  private:
    std::vector<Triplet> rows_;
    std::vector<u64> cumulative_; ///< Prefix sums of row volumes.
    u64 total_ = 0;
};

} // namespace pc::logs

#endif // PC_LOGS_TRIPLETS_H
