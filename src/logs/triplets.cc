#include "logs/triplets.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace pc::logs {

namespace {

/** Pack a PairRef into a 64-bit map key. */
constexpr u64
pairKey(const PairRef &p)
{
    return (u64(p.query) << 32) | p.result;
}

} // namespace

bool
TripletTable::rowOrder(const Triplet &a, const Triplet &b)
{
    if (a.volume != b.volume)
        return a.volume > b.volume;
    // Deterministic tie-break for reproducibility.
    return pairKey(a.pair) < pairKey(b.pair);
}

TripletTable
TripletTable::fromLog(const SearchLog &log)
{
    std::unordered_map<u64, u64> counts;
    counts.reserve(log.size() / 4 + 16);
    for (const auto &rec : log.records())
        ++counts[pairKey(rec.pair)];

    std::vector<Triplet> rows;
    rows.reserve(counts.size());
    for (const auto &[key, volume] : counts) {
        Triplet row;
        row.pair = PairRef{u32(key >> 32), u32(key & 0xffffffffu)};
        row.volume = volume;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(), rowOrder);
    return fromSortedRows(std::move(rows));
}

TripletTable
TripletTable::fromSortedRows(std::vector<Triplet> rows)
{
#ifndef NDEBUG
    for (std::size_t i = 1; i < rows.size(); ++i)
        pc_assert(rowOrder(rows[i - 1], rows[i]),
                  "fromSortedRows: rows not in rowOrder");
#endif
    TripletTable t;
    t.rows_ = std::move(rows);
    t.cumulative_.reserve(t.rows_.size());
    u64 acc = 0;
    for (const auto &row : t.rows_) {
        acc += row.volume;
        t.cumulative_.push_back(acc);
    }
    t.total_ = acc;
    return t;
}

double
TripletTable::normalizedVolume(std::size_t i) const
{
    pc_assert(i < rows_.size(), "triplet row out of range");
    if (total_ == 0)
        return 0.0;
    return double(rows_[i].volume) / double(total_);
}

double
TripletTable::cumulativeShare(std::size_t k) const
{
    if (total_ == 0 || k == 0)
        return 0.0;
    k = std::min(k, cumulative_.size());
    return double(cumulative_[k - 1]) / double(total_);
}

std::size_t
TripletTable::rowsForShare(double share) const
{
    pc_assert(share >= 0.0 && share <= 1.0, "share out of [0,1]");
    if (total_ == 0)
        return 0;
    const u64 target = u64(share * double(total_));
    const auto it = std::lower_bound(cumulative_.begin(),
                                     cumulative_.end(), target);
    if (it == cumulative_.end())
        return cumulative_.size();
    return std::size_t(it - cumulative_.begin()) + 1;
}

std::size_t
TripletTable::uniqueResultsInTop(std::size_t k) const
{
    k = std::min(k, rows_.size());
    std::unordered_map<u32, bool> seen;
    seen.reserve(k);
    std::size_t unique = 0;
    for (std::size_t i = 0; i < k; ++i) {
        if (!seen.count(rows_[i].pair.result)) {
            seen[rows_[i].pair.result] = true;
            ++unique;
        }
    }
    return unique;
}

} // namespace pc::logs
