#include "logs/analyzer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace pc::logs {

bool
RecordFilter::passes(const workload::QueryUniverse &u,
                     const LogRecord &rec) const
{
    if (device && rec.device != *device)
        return false;
    if (navigational &&
        u.isNavigationalPair(rec.pair) != *navigational)
        return false;
    return true;
}

PopularityCurve
LogAnalyzer::queryPopularity(const RecordFilter &f) const
{
    std::unordered_map<u32, u64> volumes;
    for (const auto &rec : log_.records()) {
        if (!f.passes(log_.universe(), rec))
            continue;
        ++volumes[rec.pair.query];
    }
    std::vector<u64> v;
    v.reserve(volumes.size());
    for (const auto &[q, vol] : volumes) {
        (void)q;
        v.push_back(vol);
    }
    PopularityCurve curve;
    curve.shares = pc::CumulativeShare::fromVolumes(std::move(v));
    return curve;
}

PopularityCurve
LogAnalyzer::resultPopularity(const RecordFilter &f) const
{
    std::unordered_map<u32, u64> volumes;
    for (const auto &rec : log_.records()) {
        if (!f.passes(log_.universe(), rec))
            continue;
        ++volumes[rec.pair.result];
    }
    std::vector<u64> v;
    v.reserve(volumes.size());
    for (const auto &[r, vol] : volumes) {
        (void)r;
        v.push_back(vol);
    }
    PopularityCurve curve;
    curve.shares = pc::CumulativeShare::fromVolumes(std::move(v));
    return curve;
}

std::vector<UserRepeatStats>
LogAnalyzer::userRepeatability(u64 min_events, const RecordFilter &f) const
{
    // Group records per user in time order. The log may be time-sorted
    // globally; collect indices per user first.
    std::unordered_map<u64, std::vector<const LogRecord *>> per_user;
    for (const auto &rec : log_.records()) {
        if (!f.passes(log_.universe(), rec))
            continue;
        per_user[rec.user].push_back(&rec);
    }

    std::vector<UserRepeatStats> out;
    out.reserve(per_user.size());
    for (auto &[user, recs] : per_user) {
        if (recs.size() < min_events)
            continue;
        std::sort(recs.begin(), recs.end(),
                  [](const LogRecord *a, const LogRecord *b) {
                      return a->time < b->time;
                  });
        UserRepeatStats s;
        s.user = user;
        std::unordered_set<u64> seen;
        seen.reserve(recs.size());
        for (const LogRecord *rec : recs) {
            const u64 key =
                (u64(rec->pair.query) << 32) | rec->pair.result;
            ++s.events;
            if (seen.insert(key).second)
                ++s.newPairs;
        }
        out.push_back(s);
    }
    // Deterministic order for downstream consumers.
    std::sort(out.begin(), out.end(),
              [](const UserRepeatStats &a, const UserRepeatStats &b) {
                  return a.user < b.user;
              });
    return out;
}

double
LogAnalyzer::meanRepeatRate(u64 min_events) const
{
    const auto stats = userRepeatability(min_events);
    if (stats.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : stats)
        sum += s.repeatRate();
    return sum / double(stats.size());
}

double
LogAnalyzer::fractionUsersNewRateAtMost(double threshold,
                                        u64 min_events) const
{
    const auto stats = userRepeatability(min_events);
    if (stats.empty())
        return 0.0;
    u64 n = 0;
    for (const auto &s : stats) {
        if (s.newRate() <= threshold)
            ++n;
    }
    return double(n) / double(stats.size());
}

std::vector<ClassCensusRow>
LogAnalyzer::classCensus(u64 min_events) const
{
    std::unordered_map<u64, u64> volume;
    for (const auto &rec : log_.records())
        ++volume[rec.user];

    u64 counts[4] = {0, 0, 0, 0};
    u64 total = 0;
    for (const auto &[user, v] : volume) {
        (void)user;
        if (v < min_events)
            continue;
        ++counts[int(workload::classForVolume(u32(v)))];
        ++total;
    }

    std::vector<ClassCensusRow> rows;
    for (int c = 0; c < 4; ++c) {
        ClassCensusRow row;
        row.cls = UserClass(c);
        row.users = counts[c];
        row.share = total ? double(counts[c]) / double(total) : 0.0;
        rows.push_back(row);
    }
    return rows;
}

} // namespace pc::logs
