#include "radio/link.h"

#include <cmath>

#include "util/logging.h"

namespace pc::radio {

LinkConfig
threeGConfig()
{
    // Calibrated so that a typical mobile search exchange (≈1 KB up,
    // ≈100 KB result page down, ≈250 ms server time) lands near the
    // paper's measured ≈6 s — 16x the 378 ms PocketSearch hit path.
    LinkConfig cfg;
    cfg.name = "3g";
    cfg.wakeupLatency = fromMillis(1800);
    cfg.wakeupPower = 500.0;
    cfg.rtt = fromMillis(500);
    cfg.handshakeRounds = 5;
    cfg.uplinkBps = 300e3;
    cfg.downlinkBps = 800e3;
    cfg.activePower = 600.0;
    cfg.tailDuration = fromMillis(2500);
    cfg.tailPower = 400.0;
    cfg.idlePower = 10.0;
    return cfg;
}

LinkConfig
edgeConfig()
{
    // EDGE: ~25x the PocketSearch hit path (paper Figure 15a), dominated
    // by very high RTT and low throughput.
    LinkConfig cfg;
    cfg.name = "edge";
    cfg.wakeupLatency = fromMillis(2000);
    cfg.wakeupPower = 450.0;
    cfg.rtt = fromMillis(750);
    cfg.handshakeRounds = 5;
    cfg.uplinkBps = 100e3;
    cfg.downlinkBps = 280e3;
    cfg.activePower = 550.0;
    cfg.tailDuration = fromMillis(3000);
    cfg.tailPower = 350.0;
    cfg.idlePower = 8.0;
    return cfg;
}

LinkConfig
wifiConfig()
{
    // 802.11g: "slightly higher than 2 seconds" (paper), ~7x the hit
    // path. Includes the power-save/association exit the paper notes
    // makes WiFi not instantly available in practice.
    LinkConfig cfg;
    cfg.name = "wifi";
    cfg.wakeupLatency = fromMillis(1200);
    cfg.wakeupPower = 700.0;
    cfg.rtt = fromMillis(140);
    cfg.handshakeRounds = 5;
    cfg.uplinkBps = 2e6;
    cfg.downlinkBps = 4e6;
    cfg.activePower = 750.0;
    cfg.tailDuration = fromMillis(500);
    cfg.tailPower = 300.0;
    cfg.idlePower = 30.0;
    return cfg;
}

SimTime
transferTime(Bytes bytes, double bps)
{
    pc_assert(bps > 0.0, "link rate must be positive");
    return SimTime(std::llround(double(bytes) * 8.0 / bps *
                                double(kSecond)));
}

RadioLink::RadioLink(const LinkConfig &cfg)
    : cfg_(cfg)
{
}

bool
RadioLink::needsWakeup(SimTime now) const
{
    return readyUntil_ < 0 || now > readyUntil_;
}

void
RadioLink::reset()
{
    readyUntil_ = -1;
}

TransferResult
RadioLink::request(SimTime now, Bytes uplinkBytes, Bytes downlinkBytes,
                   SimTime serverTime)
{
    TransferResult res = model(now, uplinkBytes, downlinkBytes, serverTime);
    commit(now, res);
    return res;
}

void
RadioLink::attachMetrics(obs::MetricRegistry *reg,
                         const std::string &prefix)
{
    if (!reg) {
        requestsCtr_ = nullptr;
        wakeupsCtr_ = nullptr;
        energyGauge_ = nullptr;
        return;
    }
    requestsCtr_ = &reg->counter(prefix + ".requests");
    wakeupsCtr_ = &reg->counter(prefix + ".wakeups");
    energyGauge_ = &reg->gauge(prefix + ".energy_mj");
}

void
RadioLink::attachHealth(obs::Counter *busy_ns, obs::Counter *ops)
{
    pc_assert(!busy_ns == !ops,
              "RadioLink::attachHealth: both counters or neither");
    healthBusy_ = busy_ns;
    healthOps_ = ops;
}

void
RadioLink::commit(SimTime now, const TransferResult &res)
{
    if (wakeupsCtr_ && needsWakeup(now))
        wakeupsCtr_->bump();
    readyUntil_ = now + res.latency + cfg_.tailDuration;
    totalEnergy_ += res.radioEnergy;
    ++requests_;
    if (requestsCtr_)
        requestsCtr_->bump();
    if (energyGauge_)
        energyGauge_->set(totalEnergy_ / 1000.0);
    if (healthBusy_) {
        if (res.latency > 0)
            healthBusy_->bump(u64(res.latency));
        healthOps_->bump();
    }
}

TransferResult
RadioLink::model(SimTime now, Bytes uplinkBytes, Bytes downlinkBytes,
                 SimTime serverTime) const
{
    TransferResult res;
    auto push = [&](const char *label, SimTime dur, MilliWatts power,
                    bool counts_latency) {
        if (dur <= 0)
            return;
        res.segments.push_back({label, dur, power});
        res.radioEnergy += energyOver(power, dur);
        if (counts_latency)
            res.latency += dur;
    };

    if (needsWakeup(now))
        push("wakeup", cfg_.wakeupLatency, cfg_.wakeupPower, true);

    // Connection establishment: DNS, TCP, HTTP request round trips. The
    // final round's downstream leg is when the first response byte lands,
    // so all rounds count fully toward latency.
    push("handshake", SimTime(cfg_.handshakeRounds) * cfg_.rtt,
         cfg_.activePower, true);

    push("uplink", transferTime(uplinkBytes, cfg_.uplinkBps),
         cfg_.activePower, true);

    // The radio stays connected (lower activity) while the server thinks.
    push("server", serverTime, cfg_.tailPower, true);

    push("downlink", transferTime(downlinkBytes, cfg_.downlinkBps),
         cfg_.activePower, true);

    // Post-exchange high-power tail; costs energy but not user latency.
    push("tail", cfg_.tailDuration, cfg_.tailPower, false);

    return res;
}

} // namespace pc::radio
