/**
 * @file
 * Cellular/WiFi radio link models.
 *
 * The paper's latency and energy story rests on three radio facts
 * (Sections 1 and 6.1): (1) a radio needs 1.5-2 s to wake from standby
 * even when already associated with the tower, (2) mobile exchanges are
 * small, so round-trip latency — not throughput — dominates, and (3) an
 * active radio adds hundreds of mW on top of the phone's base power, and
 * lingers in a high-power "tail" state after the exchange.
 *
 * RadioLink models one request/response exchange as a sequence of timed
 * power segments: optional wake-up ramp, handshake round trips, uplink
 * transfer, server think time, downlink transfer, then a tail. Segments
 * feed both the energy integration (Figure 15b) and the power traces of
 * Figure 16.
 */

#ifndef PC_RADIO_LINK_H
#define PC_RADIO_LINK_H

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/types.h"

namespace pc::radio {

/** One constant-power interval of radio activity. */
struct PowerSegment
{
    std::string label;   ///< e.g. "wakeup", "rtt", "downlink", "tail".
    SimTime duration;    ///< Length of the interval.
    MilliWatts power;    ///< Radio power over the interval.
};

/** Outcome of one modelled exchange. */
struct TransferResult
{
    SimTime latency = 0;          ///< Wall time until the response body
                                  ///< has fully arrived (excludes tail).
    MicroJoules radioEnergy = 0;  ///< Radio energy including the tail.
    std::vector<PowerSegment> segments; ///< Full power timeline.
};

/** Static parameters of one link technology. */
struct LinkConfig
{
    std::string name = "3g";
    SimTime wakeupLatency = fromMillis(1800); ///< Standby -> active ramp.
    MilliWatts wakeupPower = 500.0;           ///< Power during the ramp.
    SimTime rtt = fromMillis(500);            ///< One round trip.
    unsigned handshakeRounds = 4;             ///< DNS+TCP+HTTP rounds.
    double uplinkBps = 300e3;                 ///< Payload uplink bit/s.
    double downlinkBps = 800e3;               ///< Payload downlink bit/s.
    MilliWatts activePower = 600.0;           ///< Radio power while busy.
    SimTime tailDuration = fromMillis(2500);  ///< High-power tail after
                                              ///< the exchange (3G DCH/FACH).
    MilliWatts tailPower = 400.0;             ///< Power during the tail.
    MilliWatts idlePower = 10.0;              ///< Paging/standby power.
};

/** The paper's three measured links (Xperia X1a on AT&T, Section 6.1). */
LinkConfig threeGConfig();
LinkConfig edgeConfig();
LinkConfig wifiConfig();

/**
 * Stateful radio link. Keeps track of when it was last active so that
 * back-to-back requests inside the tail window skip the wake-up ramp —
 * the effect visible in the paper's Figure 16 10-query trace.
 */
class RadioLink
{
  public:
    explicit RadioLink(const LinkConfig &cfg);

    /** Technology name. */
    const std::string &name() const { return cfg_.name; }

    /** Configuration. */
    const LinkConfig &config() const { return cfg_; }

    /**
     * Model one request/response exchange.
     *
     * @param now Simulated start time of the request.
     * @param uplinkBytes Request payload size.
     * @param downlinkBytes Response payload size.
     * @param serverTime Server-side processing time.
     * @return Latency/energy/power-timeline of the exchange.
     */
    TransferResult request(SimTime now, Bytes uplinkBytes,
                           Bytes downlinkBytes, SimTime serverTime);

    /**
     * Model an exchange without committing it to link state. The fault
     * layer uses this to truncate an exchange at the point where an
     * injected failure kills it, then commits the partial result.
     */
    TransferResult model(SimTime now, Bytes uplinkBytes,
                         Bytes downlinkBytes, SimTime serverTime) const;

    /**
     * Commit a (possibly fault-modified) modelled exchange: charges its
     * energy and starts the post-exchange tail at `now + res.latency`.
     * `request` is exactly `model` followed by `commit`.
     */
    void commit(SimTime now, const TransferResult &res);

    /** Would a request at `now` need the wake-up ramp? */
    bool needsWakeup(SimTime now) const;

    /** Forget history; next request pays the wake-up ramp. */
    void reset();

    /** Total radio energy across all requests so far. */
    MicroJoules totalEnergy() const { return totalEnergy_; }

    /** Number of requests served. */
    u64 requests() const { return requests_; }

    /**
     * Register this link's metrics under `prefix` (hierarchical, e.g.
     * "device.radio.3g"): `<prefix>.requests` and `<prefix>.wakeups`
     * counters plus a `<prefix>.energy_mj` gauge, updated per commit.
     * nullptr detaches.
     */
    void attachMetrics(obs::MetricRegistry *reg,
                       const std::string &prefix);

    /**
     * Attach busy-time/ops ledger counters (obs/health.h): every
     * committed exchange bumps `busy_ns` by its latency and `ops` by
     * one. Commit is the single choke point for radio activity —
     * query misses, community syncs, and miss-queue drains all pass
     * through it, and fault-layer no-coverage probes (which never
     * commit) don't. Both pointers or neither; nullptr detaches.
     */
    void attachHealth(obs::Counter *busy_ns, obs::Counter *ops);

  private:
    LinkConfig cfg_;
    SimTime readyUntil_ = -1; ///< End of the last tail; -1 = cold.
    MicroJoules totalEnergy_ = 0;
    u64 requests_ = 0;
    obs::Counter *requestsCtr_ = nullptr;
    obs::Counter *wakeupsCtr_ = nullptr;
    obs::Gauge *energyGauge_ = nullptr;
    obs::Counter *healthBusy_ = nullptr;
    obs::Counter *healthOps_ = nullptr;
};

/** Transfer time of `bytes` at `bps` (bits per second). */
SimTime transferTime(Bytes bytes, double bps);

} // namespace pc::radio

#endif // PC_RADIO_LINK_H
