/**
 * @file
 * Machine-readable bench result emitter.
 *
 * Every bench binary prints a human ASCII table; this reporter writes
 * the same results as `BENCH_<id>.json` and `BENCH_<id>.csv` next to
 * it, so the evaluation becomes a trajectory of parseable files
 * instead of a wall of stdout. Output is fully deterministic (no
 * timestamps, stable number formatting) — running a bench twice must
 * produce byte-identical files.
 */

#ifndef PC_OBS_REPORT_H
#define PC_OBS_REPORT_H

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pc::obs {

/**
 * Accumulates one bench run's results, then serializes them.
 */
class BenchReport
{
  public:
    /**
     * @param id Short file-name-safe identifier ("fig15a").
     * @param title Human experiment title.
     */
    BenchReport(std::string id, std::string title);

    /** Free-form string annotation (configuration, units, anchors). */
    void note(const std::string &key, std::string value);

    /** One scalar result. */
    void metric(const std::string &name, double value,
                std::string unit = "");

    /** Quantile summary of a registry histogram. */
    void quantiles(const Histogram &h, std::string unit = "");

    /** Embed a full registry snapshot (counters/gauges/histograms). */
    void attachSnapshot(MetricsSnapshot snap);

    /** Identifier. */
    const std::string &id() const { return id_; }

    /** Serialize as JSON. */
    void writeJson(std::ostream &os) const;

    /** Serialize scalars + histogram quantiles as CSV. */
    void writeCsv(std::ostream &os) const;

    /**
     * Write `BENCH_<id>.json` and `BENCH_<id>.csv` under `dir`
     * (created if missing; empty means outputDir()).
     * @return Paths written; empty on I/O failure.
     */
    std::vector<std::string> writeFiles(const std::string &dir = "") const;

    /** Bench output directory: $PC_BENCH_OUT, or "bench_out". */
    static std::string outputDir();

  private:
    struct Scalar
    {
        std::string name;
        double value;
        std::string unit;
    };

    struct HistoRow
    {
        HistogramSummary summary;
        std::string unit;
    };

    std::string id_;
    std::string title_;
    std::vector<std::pair<std::string, std::string>> notes_;
    std::vector<Scalar> metrics_;
    std::vector<HistoRow> histograms_;
    std::optional<MetricsSnapshot> snapshot_;
};

} // namespace pc::obs

#endif // PC_OBS_REPORT_H
