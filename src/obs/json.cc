#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace pc::obs {

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::preValue()
{
    if (stack_.empty())
        return;
    Scope &s = stack_.back();
    if (s.object && !keyPending_)
        pc_panic("JSON value inside an object needs a key first");
    if (!keyPending_) {
        if (!s.first)
            os_ << ',';
        s.first = false;
        indent();
    }
    keyPending_ = false;
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Scope{true, true});
}

void
JsonWriter::endObject()
{
    pc_assert(!stack_.empty() && stack_.back().object,
              "endObject outside an object scope");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Scope{false, true});
}

void
JsonWriter::endArray()
{
    pc_assert(!stack_.empty() && !stack_.back().object,
              "endArray outside an array scope");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    os_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    pc_assert(!stack_.empty() && stack_.back().object,
              "JSON key outside an object scope");
    pc_assert(!keyPending_, "two JSON keys in a row");
    Scope &s = stack_.back();
    if (!s.first)
        os_ << ',';
    s.first = false;
    indent();
    os_ << '"' << escape(k) << "\":";
    if (pretty_)
        os_ << ' ';
    keyPending_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    preValue();
    os_ << '"' << escape(s) << '"';
}

void
JsonWriter::value(u64 v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(i64 v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(bool b)
{
    preValue();
    os_ << (b ? "true" : "false");
}

void
JsonWriter::value(double d)
{
    preValue();
    if (!std::isfinite(d)) {
        os_ << "null";
        return;
    }
    // %.10g: enough digits for reporting fidelity, short and stable.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", d);
    os_ << buf;
}

void
JsonWriter::null()
{
    preValue();
    os_ << "null";
}

} // namespace pc::obs
