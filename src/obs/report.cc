#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/csvutil.h"
#include "obs/json.h"
#include "util/logging.h"

namespace pc::obs {

BenchReport::BenchReport(std::string id, std::string title)
    : id_(std::move(id)), title_(std::move(title))
{
    pc_assert(!id_.empty() &&
              id_.find_first_of("/\\ \t\n") == std::string::npos,
              "bench id must be a file-name-safe token");
}

void
BenchReport::note(const std::string &key, std::string value)
{
    notes_.emplace_back(key, std::move(value));
}

void
BenchReport::metric(const std::string &name, double value, std::string unit)
{
    metrics_.push_back(Scalar{name, value, std::move(unit)});
}

void
BenchReport::quantiles(const Histogram &h, std::string unit)
{
    HistogramSummary s;
    s.name = h.name();
    s.count = h.count();
    s.mean = h.mean();
    s.min = h.min();
    s.max = h.max();
    s.sum = h.sum();
    s.p50 = h.quantile(0.50);
    s.p90 = h.quantile(0.90);
    s.p99 = h.quantile(0.99);
    histograms_.push_back(HistoRow{std::move(s), std::move(unit)});
}

void
BenchReport::attachSnapshot(MetricsSnapshot snap)
{
    snapshot_ = std::move(snap);
}

void
BenchReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.kv("bench", id_);
    w.kv("title", title_);
    if (!notes_.empty()) {
        w.key("notes");
        w.beginObject();
        for (const auto &[k, v] : notes_)
            w.kv(k, v);
        w.endObject();
    }
    w.key("metrics");
    w.beginArray();
    for (const auto &m : metrics_) {
        w.beginObject();
        w.kv("name", m.name);
        w.kv("value", m.value);
        if (!m.unit.empty())
            w.kv("unit", m.unit);
        w.endObject();
    }
    w.endArray();
    if (!histograms_.empty()) {
        w.key("histograms");
        w.beginArray();
        for (const auto &h : histograms_) {
            w.beginObject();
            w.kv("name", h.summary.name);
            if (!h.unit.empty())
                w.kv("unit", h.unit);
            w.kv("count", h.summary.count);
            w.kv("mean", h.summary.mean);
            w.kv("min", h.summary.min);
            w.kv("max", h.summary.max);
            w.kv("p50", h.summary.p50);
            w.kv("p90", h.summary.p90);
            w.kv("p99", h.summary.p99);
            w.endObject();
        }
        w.endArray();
    }
    if (snapshot_) {
        w.key("registry");
        // Inline the snapshot's own JSON shape.
        w.beginObject();
        w.key("counters");
        w.beginObject();
        for (const auto &[n, v] : snapshot_->counters)
            w.kv(n, v);
        w.endObject();
        w.key("gauges");
        w.beginObject();
        for (const auto &[n, v] : snapshot_->gauges)
            w.kv(n, v);
        w.endObject();
        w.key("histograms");
        w.beginArray();
        for (const auto &h : snapshot_->histograms) {
            w.beginObject();
            w.kv("name", h.name);
            w.kv("count", h.count);
            w.kv("mean", h.mean);
            w.kv("min", h.min);
            w.kv("max", h.max);
            w.kv("p50", h.p50);
            w.kv("p90", h.p90);
            w.kv("p99", h.p99);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    os << '\n';
}

void
BenchReport::writeCsv(std::ostream &os) const
{
    os << "kind,name,value,unit\n";
    for (const auto &m : metrics_) {
        os << "metric," << csvField(m.name) << ','
           << csvNumber(m.value) << ',' << csvField(m.unit) << '\n';
    }
    for (const auto &h : histograms_) {
        const auto row = [&](const char *stat, double v) {
            os << "histogram," << csvField(h.summary.name + "." + stat)
               << ',' << csvNumber(v) << ',' << csvField(h.unit) << '\n';
        };
        row("count", double(h.summary.count));
        row("mean", h.summary.mean);
        row("min", h.summary.min);
        row("max", h.summary.max);
        row("p50", h.summary.p50);
        row("p90", h.summary.p90);
        row("p99", h.summary.p99);
    }
}

std::string
BenchReport::outputDir()
{
    const char *env = std::getenv("PC_BENCH_OUT");
    if (env && *env)
        return env;
    return "bench_out";
}

std::vector<std::string>
BenchReport::writeFiles(const std::string &dir) const
{
    const std::string out = dir.empty() ? outputDir() : dir;
    std::error_code ec;
    std::filesystem::create_directories(out, ec);
    if (ec) {
        pc_warn("cannot create bench output dir '", out, "': ",
                ec.message());
        return {};
    }
    std::vector<std::string> paths;
    const std::string json = out + "/BENCH_" + id_ + ".json";
    {
        std::ofstream f(json);
        if (f)
            writeJson(f);
        if (!f) {
            pc_warn("cannot write ", json);
            return {};
        }
    }
    paths.push_back(json);
    const std::string csv = out + "/BENCH_" + id_ + ".csv";
    {
        std::ofstream f(csv);
        if (f)
            writeCsv(f);
        if (!f) {
            pc_warn("cannot write ", csv);
            return paths;
        }
    }
    paths.push_back(csv);
    return paths;
}

} // namespace pc::obs
