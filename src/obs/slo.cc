#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pc::obs::health {

namespace {

/** Mean of the last `n` entries (all of them when fewer); 0 on empty. */
double
meanTail(const std::vector<double> &v, std::size_t end, std::size_t n)
{
    if (end == 0 || n == 0)
        return 0.0;
    const std::size_t take = std::min(n, end);
    double s = 0.0;
    for (std::size_t i = end - take; i < end; ++i)
        s += v[i];
    return s / double(take);
}

const HistogramSummary *
findHistogram(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &h : snap.histograms) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

/** Snap a requested quantile to the nearest the snapshot keeps. */
double
quantileOf(const HistogramSummary &h, double q)
{
    if (q <= 0.7)
        return h.p50;
    if (q <= 0.95)
        return h.p90;
    return h.p99;
}

bool
isRatioKind(SloKind k)
{
    return k != SloKind::LatencyQuantile;
}

} // namespace

const char *
sloKindName(SloKind k)
{
    switch (k) {
    case SloKind::LatencyQuantile:
        return "latency_quantile";
    case SloKind::Availability:
        return "availability";
    case SloKind::Staleness:
        return "staleness";
    case SloKind::CorruptionRate:
        return "corruption_rate";
    }
    return "unknown";
}

std::vector<SloStatus>
evaluateSlos(const std::vector<SloSpec> &specs, const TimeSeries &series,
             const MetricsSnapshot &total, FlightRecorder *recorder)
{
    const auto &wins = series.windows();

    std::vector<SloStatus> out;
    out.reserve(specs.size());
    for (std::size_t si = 0; si < specs.size(); ++si) {
        const SloSpec &spec = specs[si];
        SloStatus st;
        st.spec = spec;

        const std::vector<double> ev =
            series.counterSeries(spec.eventCounter);
        std::vector<double> burns(wins.size(), 0.0);

        if (isRatioKind(spec.kind)) {
            const std::vector<double> bad =
                series.counterSeries(spec.badCounter);
            const double unavail = 1.0 - spec.objective;
            pc_assert(unavail > 0.0,
                      "SloSpec: ratio objective must be < 1");
            for (std::size_t i = 0; i < wins.size(); ++i) {
                if (ev[i] > 0.0)
                    burns[i] = (bad[i] / ev[i]) / unavail;
            }
            st.events = total.counterValue(spec.eventCounter);
            st.bad = total.counterValue(spec.badCounter);
            st.attainment =
                st.events ? 1.0 - double(st.bad) / double(st.events)
                          : 1.0;
            st.budgetAllowed = unavail * double(st.events);
            st.budgetConsumed = double(st.bad);
        } else {
            const std::vector<double> mass =
                series.accumSeries(spec.histogram + ".sum");
            if (spec.meanBudgetMs > 0.0) {
                for (std::size_t i = 0; i < wins.size(); ++i) {
                    if (ev[i] > 0.0)
                        burns[i] =
                            (mass[i] / ev[i]) / spec.meanBudgetMs;
                }
            }
            const HistogramSummary *h =
                findHistogram(total, spec.histogram);
            st.events = h ? h->count : 0;
            st.attainment =
                (h && h->count) ? quantileOf(*h, spec.quantile) : 0.0;
            // Latency budgets count window units: each window with
            // traffic grants one budget unit, burned at its rate.
            for (std::size_t i = 0; i < wins.size(); ++i) {
                if (ev[i] > 0.0) {
                    st.budgetAllowed += 1.0;
                    st.budgetConsumed += burns[i];
                    if (burns[i] > 1.0)
                        ++st.bad;
                }
            }
        }

        // Exact exhaustion still meets the objective; the epsilon
        // absorbs the (1-objective)*events float rounding.
        st.met = st.budgetConsumed <= st.budgetAllowed + 1e-9;
        if (spec.kind == SloKind::LatencyQuantile && st.events)
            st.met = st.attainment <= spec.targetMs + 1e-9;
        st.budgetRemaining =
            std::max(0.0, st.budgetAllowed - st.budgetConsumed);

        st.burnByWindow = burns;
        st.shortBurn = meanTail(burns, burns.size(), spec.shortWindows);
        st.longBurn = meanTail(burns, burns.size(), spec.longWindows);
        st.burning = !burns.empty() &&
                     st.shortBurn >= spec.burnThreshold &&
                     st.longBurn >= spec.burnThreshold;

        // A window breaches when both lookbacks ending at it are at
        // or over the threshold — the standard multi-window rule, so
        // one anomalous window amid quiet neighbours doesn't page.
        std::vector<std::size_t> breachIdx;
        for (std::size_t i = 0; i < burns.size(); ++i) {
            const double s = meanTail(burns, i + 1, spec.shortWindows);
            const double l = meanTail(burns, i + 1, spec.longWindows);
            if (s >= spec.burnThreshold && l >= spec.burnThreshold) {
                breachIdx.push_back(i);
                st.breachWindows.push_back(wins[i].start);
            }
        }

        if (recorder && !breachIdx.empty()) {
            TraceContext ctx = recorder->beginTrace();
            for (const std::size_t i : breachIdx) {
                SyncEvent bev;
                bev.traceId = ctx.traceId;
                bev.span = ctx.newSpan();
                bev.parent = ctx.rootSpan;
                bev.tier = SyncTier::Server;
                bev.stage = SyncStage::SloBreach;
                bev.ok = false;
                bev.attempt = u32(i);
                bev.detail = si;
                bev.start = wins[i].start;
                bev.duration = wins[i].width;
                recorder->record(bev);
            }
        }

        out.push_back(std::move(st));
    }
    return out;
}

SloTracker::SloTracker(SimTime windowWidth, std::vector<SloSpec> specs,
                       std::size_t maxWindows)
    : specs_(std::move(specs)), series_(windowWidth, maxWindows)
{
}

void
SloTracker::ingest(SimTime windowStart, const MetricsSnapshot &snap)
{
    // deltaSince clamps counter regressions to zero, so a metric
    // reset between ingests contributes nothing instead of a huge
    // unsigned wraparound.
    const MetricsSnapshot d = snap.deltaSince(prev_);
    for (const auto &[n, v] : d.counters)
        series_.recordCounter(windowStart, n, v);
    for (const auto &h : snap.histograms) {
        const HistogramSummary *p = findHistogram(prev_, h.name);
        const double ds = h.sum - (p ? p->sum : 0.0);
        series_.recordAccum(windowStart, h.name + ".sum",
                            std::max(0.0, ds));
    }
    prev_ = snap;
    last_ = snap;
}

std::vector<SloStatus>
SloTracker::evaluate(FlightRecorder *recorder) const
{
    return evaluateSlos(specs_, series_, last_, recorder);
}

std::vector<SloSpec>
defaultFleetSlos()
{
    std::vector<SloSpec> specs;

    SloSpec avail;
    avail.name = "query_availability";
    avail.kind = SloKind::Availability;
    avail.objective = 0.90;
    avail.eventCounter = "device.queries";
    avail.badCounter = "device.degraded.serves";
    specs.push_back(avail);

    SloSpec fresh;
    fresh.name = "serve_freshness";
    fresh.kind = SloKind::Staleness;
    fresh.objective = 0.95;
    fresh.eventCounter = "device.queries";
    fresh.badCounter = "device.degraded.stale";
    specs.push_back(fresh);

    SloSpec integrity;
    integrity.name = "delivery_integrity";
    integrity.kind = SloKind::CorruptionRate;
    integrity.objective = 0.995;
    integrity.eventCounter = "device.radio.attempts";
    integrity.badCounter = "device.sync.corrupt_delta";
    specs.push_back(integrity);

    // Every fleet serve — hit, miss, degraded — records its latency
    // under the pocket path, so this is the user-facing p90.
    SloSpec lat;
    lat.name = "serve_latency_p90";
    lat.kind = SloKind::LatencyQuantile;
    lat.histogram = "device.latency_ms.pocket";
    lat.quantile = 0.9;
    lat.targetMs = 12000.0;
    lat.eventCounter = "device.queries";
    lat.meanBudgetMs = 4000.0;
    specs.push_back(lat);

    return specs;
}

} // namespace pc::obs::health
