#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace pc::obs {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity)
{
    pc_assert(capacity_ >= 1, "Tracer needs capacity >= 1");
    trackLabels_.push_back("main");
}

u32
Tracer::track(const std::string &label)
{
    for (std::size_t i = 0; i < trackLabels_.size(); ++i) {
        if (trackLabels_[i] == label)
            return u32(i);
    }
    trackLabels_.push_back(label);
    return u32(trackLabels_.size() - 1);
}

void
Tracer::record(TraceSpan span)
{
    ++recorded_;
    if (recordedCounter_ != nullptr)
        recordedCounter_->bump();
    if (spans_.size() >= capacity_) {
        spans_.pop_front();
        ++dropped_;
        if (droppedCounter_ != nullptr)
            droppedCounter_->bump();
    }
    spans_.push_back(std::move(span));
}

void
Tracer::attachMetrics(MetricRegistry *reg)
{
    if (reg == nullptr) {
        recordedCounter_ = nullptr;
        droppedCounter_ = nullptr;
        return;
    }
    recordedCounter_ = &reg->counter("obs.trace.recorded");
    droppedCounter_ = &reg->counter("obs.trace.dropped");
    // An attachment mid-run must not lose history: fold in the spans
    // recorded before the registry arrived.
    recordedCounter_->bump(recorded_);
    droppedCounter_->bump(dropped_);
}

void
Tracer::span(u32 track, std::string name, std::string category,
             SimTime start, SimTime duration)
{
    TraceSpan s;
    s.name = std::move(name);
    s.category = std::move(category);
    s.track = track;
    s.start = start;
    s.duration = duration;
    record(std::move(s));
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();
    for (std::size_t i = 0; i < trackLabels_.size(); ++i) {
        w.beginObject();
        w.kv("ph", "M");
        w.kv("pid", u64(1));
        w.kv("tid", u64(i));
        w.kv("name", "thread_name");
        w.key("args");
        w.beginObject();
        w.kv("name", trackLabels_[i]);
        w.endObject();
        w.endObject();
    }
    for (const auto &s : spans_) {
        w.beginObject();
        w.kv("ph", "X");
        w.kv("pid", u64(1));
        w.kv("tid", u64(s.track));
        w.kv("name", s.name);
        w.kv("cat", s.category);
        // SimTime is ns; Chrome ts/dur are us.
        w.kv("ts", double(s.start) / 1000.0);
        w.kv("dur", double(s.duration) / 1000.0);
        if (!s.args.empty()) {
            w.key("args");
            w.beginObject();
            for (const auto &[k, v] : s.args)
                w.kv(k, v);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.kv("droppedSpans", dropped_);
    w.endObject();
    os << '\n';
}

bool
Tracer::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeChromeTrace(f);
    return bool(f);
}

} // namespace pc::obs
