/**
 * @file
 * Shared CSV emission helpers for the observability exporters. Same
 * determinism contract as the JSON writer: %.10g number formatting,
 * RFC-4180 quoting, no locale dependence — CSV output must stay
 * byte-identical across runs.
 */

#ifndef PC_OBS_CSVUTIL_H
#define PC_OBS_CSVUTIL_H

#include <cstdio>
#include <string>

namespace pc::obs {

/** CSV field: quote when it contains a comma/quote/newline. */
inline std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Deterministic shortest-ish number formatting (%.10g). */
inline std::string
csvNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

} // namespace pc::obs

#endif // PC_OBS_CSVUTIL_H
