#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"
#include "util/logging.h"

namespace pc::obs {

double
Histogram::quantile(double q) const
{
    if (exact_)
        return cdf_.size() == 0 ? 0.0 : cdf_.quantile(q);
    return sketch_.quantile(q);
}

const QuantileSketch &
Histogram::sketch() const
{
    pc_assert(!exact_, "histogram '", name_,
              "' is exact-mode; it has no sketch");
    return sketch_;
}

const EmpiricalCdf &
Histogram::cdf() const
{
    pc_assert(exact_, "histogram '", name_,
              "' is sketch-mode; the full sample is not stored");
    return cdf_;
}

void
Histogram::mergeFrom(const Histogram &other)
{
    stat_.merge(other.stat_);
    if (exact_) {
        if (!other.exact_)
            pc_fatal("cannot merge sketch-mode histogram '",
                     other.name_, "' into exact-mode '", name_,
                     "': the source samples no longer exist");
        cdf_.add(other.cdf_.sorted());
        return;
    }
    if (other.exact_) {
        for (double x : other.cdf_.sorted())
            sketch_.add(x);
    } else {
        sketch_.mergeFrom(other.sketch_);
    }
}

u64
MetricsSnapshot::counterValue(const std::string &name) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return 0;
}

MetricsSnapshot
MetricsSnapshot::deltaSince(const MetricsSnapshot &earlier) const
{
    MetricsSnapshot d;
    d.counters.reserve(counters.size());
    for (const auto &[n, v] : counters) {
        const u64 before = earlier.counterValue(n);
        d.counters.emplace_back(n, v >= before ? v - before : 0);
    }
    d.gauges.reserve(gauges.size());
    for (const auto &[n, v] : gauges) {
        double before = 0.0;
        for (const auto &[en, ev] : earlier.gauges) {
            if (en == n) {
                before = ev;
                break;
            }
        }
        d.gauges.emplace_back(n, v - before);
    }
    d.histograms = histograms;
    return d;
}

CounterBag
MetricsSnapshot::toCounterBag() const
{
    CounterBag bag;
    for (const auto &[n, v] : counters)
        bag.set(n, v);
    return bag;
}

void
MetricsSnapshot::writeJson(std::ostream &os, bool pretty) const
{
    JsonWriter w(os, pretty);
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[n, v] : counters)
        w.kv(n, v);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[n, v] : gauges)
        w.kv(n, v);
    w.endObject();
    w.key("histograms");
    w.beginArray();
    for (const auto &h : histograms) {
        w.beginObject();
        w.kv("name", h.name);
        w.kv("count", h.count);
        w.kv("mean", h.mean);
        w.kv("min", h.min);
        w.kv("max", h.max);
        w.kv("sum", h.sum);
        w.kv("p50", h.p50);
        w.kv("p90", h.p90);
        w.kv("p99", h.p99);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
MetricRegistry::checkType(const std::string &name, const char *want) const
{
    pc_assert(!name.empty(), "metric name must not be empty");
    const bool isCounter = counters_.count(name) > 0;
    const bool isGauge = gauges_.count(name) > 0;
    const bool isHisto = histograms_.count(name) > 0;
    const char *have = isCounter ? "counter"
                     : isGauge   ? "gauge"
                     : isHisto   ? "histogram"
                                 : want;
    if (std::string_view(have) != want)
        pc_fatal("metric '", name, "' already registered as a ", have,
                 ", requested as a ", want);
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    checkType(name, "counter");
    auto &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter(name));
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    checkType(name, "gauge");
    auto &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge(name));
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    checkType(name, "histogram");
    auto &slot = histograms_[name];
    if (!slot)
        slot.reset(new Histogram(name));
    if (slot->exact())
        pc_fatal("histogram '", name,
                 "' already registered in exact mode, requested as "
                 "sketch mode");
    return *slot;
}

Histogram &
MetricRegistry::exactHistogram(const std::string &name)
{
    checkType(name, "histogram");
    auto &slot = histograms_[name];
    if (!slot)
        slot.reset(new Histogram(name, /*exact=*/true));
    if (!slot->exact())
        pc_fatal("histogram '", name,
                 "' already registered in sketch mode, requested as "
                 "exact mode");
    return *slot;
}

const Counter *
MetricRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricRegistry::findGauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    MetricsSnapshot s;
    s.counters.reserve(counters_.size());
    for (const auto &[n, c] : counters_)
        s.counters.emplace_back(n, c->value());
    s.gauges.reserve(gauges_.size());
    for (const auto &[n, g] : gauges_)
        s.gauges.emplace_back(n, g->value());
    s.histograms.reserve(histograms_.size());
    for (const auto &[n, h] : histograms_) {
        HistogramSummary hs;
        hs.name = n;
        hs.count = h->count();
        hs.mean = h->mean();
        hs.min = h->min();
        hs.max = h->max();
        hs.sum = h->sum();
        hs.p50 = h->quantile(0.50);
        hs.p90 = h->quantile(0.90);
        hs.p99 = h->quantile(0.99);
        s.histograms.push_back(std::move(hs));
    }
    return s;
}

void
MetricRegistry::mergeFrom(const MetricRegistry &other)
{
    for (const auto &[n, c] : other.counters_)
        counter(n).bump(c->value());
    for (const auto &[n, g] : other.gauges_)
        gauge(n).set(g->value());
    for (const auto &[n, h] : other.histograms_) {
        auto it = histograms_.find(n);
        if (it != histograms_.end()) {
            it->second->mergeFrom(*h);
            continue;
        }
        // Absent here: create in the source's mode, then fold.
        Histogram &dst = h->exact() ? exactHistogram(n) : histogram(n);
        dst.mergeFrom(*h);
    }
}

void
MetricRegistry::importCounters(const CounterBag &bag,
                               const std::string &prefix)
{
    for (const auto &[n, v] : bag.items())
        counter(prefix + n).bump(v);
}

} // namespace pc::obs
