#include "obs/benchdiff.h"

#include <algorithm>
#include <cmath>

#include "obs/csvutil.h"
#include "obs/jsonparse.h"

namespace pc::obs {

namespace {

/** Append one histogram-summary object's fields under `prefix.`. */
void
flattenHistogram(const JsonValue &h, const std::string &prefix,
                 std::map<std::string, double> &out)
{
    for (const char *field :
         {"count", "mean", "min", "max", "p50", "p90", "p99"}) {
        const JsonValue *v = h.find(field);
        if (v && v->isNumber())
            out[prefix + "." + field] = v->number();
    }
}

/** Copy every numeric member of `o` under `prefix.`. */
void
flattenNumericFields(const JsonValue &o, const std::string &prefix,
                     std::map<std::string, double> &out)
{
    for (const auto &[k, v] : o.object()) {
        if (v.isNumber())
            out[prefix + "." + k] = v.number();
    }
}

/** Flatten a name-keyed object array ("components", "slos", ...). */
void
flattenNamedArray(const JsonValue &scenario, const char *arrayKey,
                  const std::string &prefix,
                  std::map<std::string, double> &out)
{
    const JsonValue *arr = scenario.find(arrayKey);
    if (!arr || !arr->isArray())
        return;
    for (const JsonValue &item : arr->array()) {
        if (!item.isObject())
            continue;
        const std::string name = item.strOr("name", "");
        if (!name.empty())
            flattenNumericFields(item, prefix + "." + name, out);
    }
}

} // namespace

bool
flattenBenchReport(const JsonValue &root, BenchMetrics &out,
                   std::string *error)
{
    if (!root.isObject() || !root.find("bench")) {
        if (error)
            *error = "not a bench report (no \"bench\" key)";
        return false;
    }
    out.bench = root.strOr("bench", "");
    out.values.clear();

    if (const JsonValue *metrics = root.find("metrics");
        metrics && metrics->isArray()) {
        for (const JsonValue &m : metrics->array()) {
            const std::string name = m.strOr("name", "");
            const JsonValue *v = m.find("value");
            if (!name.empty() && v && v->isNumber())
                out.values["metric." + name] = v->number();
        }
    }
    if (const JsonValue *histos = root.find("histograms");
        histos && histos->isArray()) {
        for (const JsonValue &h : histos->array()) {
            const std::string name = h.strOr("name", "");
            if (!name.empty())
                flattenHistogram(h, "histogram." + name, out.values);
        }
    }
    if (const JsonValue *reg = root.find("registry");
        reg && reg->isObject()) {
        if (const JsonValue *cs = reg->find("counters");
            cs && cs->isObject()) {
            for (const auto &[n, v] : cs->object()) {
                if (v.isNumber())
                    out.values["counter." + n] = v.number();
            }
        }
        if (const JsonValue *gs = reg->find("gauges");
            gs && gs->isObject()) {
            for (const auto &[n, v] : gs->object()) {
                if (v.isNumber())
                    out.values["gauge." + n] = v.number();
            }
        }
        if (const JsonValue *hs = reg->find("histograms");
            hs && hs->isArray()) {
            for (const JsonValue &h : hs->array()) {
                const std::string name = h.strOr("name", "");
                if (!name.empty())
                    flattenHistogram(h, "registry." + name, out.values);
            }
        }
    }
    return true;
}

bool
flattenHealthReport(const JsonValue &root, BenchMetrics &out,
                    std::string *error)
{
    const JsonValue *health =
        root.isObject() ? root.find("health") : nullptr;
    if (!health || !health->isObject()) {
        if (error)
            *error = "not a health report (no \"health\" object)";
        return false;
    }
    out.bench = health->strOr("id", "health");
    out.values.clear();

    const JsonValue *scens = health->find("scenarios");
    if (!scens || !scens->isObject()) {
        if (error)
            *error = "health report without \"scenarios\"";
        return false;
    }
    for (const auto &[sname, sv] : scens->object()) {
        if (!sv.isObject())
            continue;
        flattenNumericFields(sv, sname, out.values);
        if (const JsonValue *b = sv.find("bottleneck");
            b && b->isObject())
            flattenNumericFields(*b, sname + ".bottleneck",
                                 out.values);
        flattenNamedArray(sv, "components", sname + ".component",
                          out.values);
        flattenNamedArray(sv, "pipelines", sname + ".pipeline",
                          out.values);
        flattenNamedArray(sv, "slos", sname + ".slo", out.values);
    }
    return true;
}

bool
globMatch(const std::string &pattern, const std::string &name)
{
    // Iterative '*' glob: greedy with backtracking to the last star.
    std::size_t p = 0, n = 0;
    std::size_t starP = std::string::npos, starN = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == name[n] || pattern[p] == '?')) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starN = n;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            n = ++starN;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

namespace {

/** Tolerances for `name`: first matching rule, else the defaults. */
std::pair<double, double>
toleranceFor(const DiffConfig &cfg, const std::string &name)
{
    for (const auto &r : cfg.rules) {
        if (globMatch(r.pattern, name))
            return {r.relTol, r.absTol};
    }
    return {cfg.defaultRelTol, cfg.defaultAbsTol};
}

/** Symmetric relative change; 0 when both are 0. */
double
relChange(double a, double b)
{
    const double scale = std::max(std::abs(a), std::abs(b));
    return scale == 0.0 ? 0.0 : std::abs(b - a) / scale;
}

} // namespace

void
DiffResult::mergeFrom(const DiffResult &other)
{
    entries.insert(entries.end(), other.entries.begin(),
                   other.entries.end());
    compared += other.compared;
    changed += other.changed;
    missing += other.missing;
    added += other.added;
}

DiffResult
diffReports(const BenchMetrics &base, const BenchMetrics &current,
            const DiffConfig &cfg)
{
    DiffResult r;
    for (const auto &[name, bv] : base.values) {
        DiffEntry e;
        e.bench = base.bench;
        e.name = name;
        e.base = bv;
        const auto it = current.values.find(name);
        if (it == current.values.end()) {
            e.status = DiffEntry::Status::Missing;
            ++r.missing;
            r.entries.push_back(std::move(e));
            continue;
        }
        e.current = it->second;
        e.relChange = relChange(bv, it->second);
        const auto [relTol, absTol] = toleranceFor(cfg, name);
        const bool within = std::abs(it->second - bv) <= absTol ||
                            e.relChange <= relTol;
        e.status = within ? DiffEntry::Status::Ok
                          : DiffEntry::Status::Changed;
        ++r.compared;
        if (!within)
            ++r.changed;
        r.entries.push_back(std::move(e));
    }
    for (const auto &[name, cv] : current.values) {
        if (base.values.count(name))
            continue;
        DiffEntry e;
        e.bench = current.bench;
        e.name = name;
        e.current = cv;
        e.status = DiffEntry::Status::Added;
        ++r.added;
        r.entries.push_back(std::move(e));
    }
    return r;
}

void
writeDiffReport(std::ostream &os, const DiffResult &result, bool verbose)
{
    for (const auto &e : result.entries) {
        const char *tag = nullptr;
        switch (e.status) {
          case DiffEntry::Status::Ok:
            tag = verbose ? "   ok" : nullptr;
            break;
          case DiffEntry::Status::Changed:
            tag = "DRIFT";
            break;
          case DiffEntry::Status::Missing:
            tag = " GONE";
            break;
          case DiffEntry::Status::Added:
            tag = "  new";
            break;
        }
        if (!tag)
            continue;
        os << tag << "  " << e.bench << ":" << e.name << "  "
           << csvNumber(e.base) << " -> " << csvNumber(e.current);
        if (e.status == DiffEntry::Status::Changed)
            os << "  (" << csvNumber(100.0 * e.relChange) << "%)";
        os << '\n';
    }
    os << result.compared << " compared, " << result.changed
       << " drifted, " << result.missing << " missing, " << result.added
       << " added\n";
}

} // namespace pc::obs
