/**
 * @file
 * Fixed-window sim-time series: metric roll-ups over time.
 *
 * A snapshot answers "what happened over the whole run"; a fleet
 * operator asks "when did it happen" — did the hit rate dip in month
 * three, did radio energy spike during the outage? A TimeSeries bins
 * recordings into fixed-width simulated-time windows and keeps three
 * roll-up kinds per window:
 *
 *  - **counters** — summed integer deltas ("queries served this
 *    window");
 *  - **accums** — summed doubles ("radio mJ spent this window");
 *  - **values** — per-observation distributions (a RunningStat for
 *    exact moments plus a QuantileSketch for quantiles), e.g. one
 *    per-device hit-rate observation per window, so a window's value
 *    row summarizes the fleet's distribution, not just its mean.
 *
 * Memory is bounded twice over: each window's value distributions are
 * sketches (O(k) per name), and the number of windows is capped —
 * when a recording would exceed maxWindows, adjacent window pairs
 * merge and the window width doubles (classic resolution-halving
 * downsample), so a series over an arbitrarily long run keeps at most
 * maxWindows rows at the coarsest resolution that fits.
 *
 * Determinism: windows and names iterate in sorted order, CSV numbers
 * use the shared %.10g formatting, and sketch merges are
 * deterministic, so writeCsv output is byte-identical across runs.
 */

#ifndef PC_OBS_TIMESERIES_H
#define PC_OBS_TIMESERIES_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/sketch.h"
#include "util/stats.h"
#include "util/types.h"

namespace pc::obs {

/** One fixed-width window of rolled-up metrics. */
struct SeriesWindow
{
    SimTime start = 0; ///< Inclusive window start (sim time).
    SimTime width = 0; ///< Window width at the time of emission.
    std::map<std::string, u64> counters;
    std::map<std::string, double> accums;
    std::map<std::string, RunningStat> points;
    std::map<std::string, QuantileSketch> sketches;
};

/**
 * The series. Window boundaries are multiples of the current width
 * from sim time 0; recording into any sim time t >= 0 finds or
 * creates the window containing t.
 */
class TimeSeries
{
  public:
    /** Default cap on retained windows before downsampling. */
    static constexpr std::size_t kDefaultMaxWindows = 256;

    /**
     * @param windowWidth Initial window width (> 0), e.g. one
     *   workload month.
     * @param maxWindows Downsampling threshold (>= 2).
     */
    explicit TimeSeries(SimTime windowWidth,
                        std::size_t maxWindows = kDefaultMaxWindows);

    /** Add an integer delta to `name` in the window containing t. */
    void recordCounter(SimTime t, const std::string &name, u64 delta);

    /** Add a double delta to `name` in the window containing t. */
    void recordAccum(SimTime t, const std::string &name, double delta);

    /**
     * Fold one observation of `name` into the window containing t
     * (updates both the window's RunningStat and its sketch).
     */
    void recordValue(SimTime t, const std::string &name, double x);

    /** Retained windows, start-ascending. */
    const std::vector<SeriesWindow> &windows() const { return windows_; }

    /** Current window width (doubles on each downsample). */
    SimTime windowWidth() const { return width_; }

    /** Window cap. */
    std::size_t maxWindows() const { return maxWindows_; }

    /** Resolution-halving downsamples performed so far. */
    u64 downsamples() const { return downsamples_; }

    /**
     * Values of counter `name` per window (0 where absent), window
     * order. Convenience for drift scans and tests.
     */
    std::vector<double> counterSeries(const std::string &name) const;

    /** Same for accums. */
    std::vector<double> accumSeries(const std::string &name) const;

    /** Per-window mean of value `name` (0 where absent). */
    std::vector<double> valueMeanSeries(const std::string &name) const;

    /**
     * Long-format CSV, one row per (window, metric):
     * `start_s,width_s,kind,name,value,count,mean,p50,p90,p99`.
     * Counter/accum rows carry the sum in `value`; value rows carry
     * the distribution columns. Deterministic (sorted, %.10g).
     */
    void writeCsv(std::ostream &os) const;

  private:
    /** Find-or-create the window containing t; may downsample. */
    SeriesWindow &windowFor(SimTime t);

    /** Halve resolution: merge adjacent pairs, double the width. */
    void downsample();

    SimTime width_;
    std::size_t maxWindows_;
    u64 downsamples_ = 0;
    std::vector<SeriesWindow> windows_;
};

} // namespace pc::obs

#endif // PC_OBS_TIMESERIES_H
