/**
 * @file
 * Fleet roll-up: merge per-device metric registries into one
 * fleet-wide view, roll windowed time series, and flag drift.
 *
 * A thousand simulated handsets each fill a private MetricRegistry.
 * The collector reduces them three ways:
 *
 *  - **Fleet registry** — every device registry folded into one via
 *    MetricRegistry::mergeFrom (exact counter sums and Welford-merged
 *    moments, sketch-merged quantiles), plus one registry per user
 *    class.
 *  - **Time series** — at each window boundary the harness calls
 *    collect() with the device's registry; the collector diffs it
 *    against the device's previous snapshot and records the window's
 *    counter deltas, per-histogram sum deltas (energy, latency mass)
 *    and derived per-device ratios (hit rate, stale/degraded share)
 *    into the fleet series and the device's class series. Ratios are
 *    recorded as *value* observations, so a window row carries the
 *    distribution across devices, not just the fleet mean.
 *  - **Anomaly scan** — an EWMA drift detector walks the fleet series
 *    and flags windows whose value sits more than `threshold`
 *    standard deviations from the smoothed expectation (with a
 *    variance floor so a flat baseline cannot manufacture infinite
 *    z-scores). An injected mid-run radio outage shows up here as a
 *    hit-rate/energy anomaly in exactly the outage windows.
 *
 * The protocol is sequential by design — one device is folded at a
 * time, so the collector never holds more than one open device:
 *
 *     collector.beginDevice("heavy");
 *     for each window: ... simulate ...; collector.collect(t, reg);
 *     collector.endDevice(reg);
 *
 * The parallel fleet harness keeps this protocol: worker threads
 * simulate devices concurrently, but each worker only *captures* its
 * device's per-window MetricsSnapshots plus its final registry; the
 * reducing thread then replays them through beginDevice /
 * collect(t, snapshot) / endDevice in device-index order. Because the
 * collector sees the exact operation sequence of the sequential run,
 * its output is byte-identical at every thread count — which is why
 * there is deliberately NO collector-merge API: folding per-worker
 * collectors would go through RunningStat::merge / sketch merges,
 * which are associative only up to floating-point rounding and so
 * cannot honor a byte-exact gate.
 *
 * Everything is deterministic: map-ordered iteration, deterministic
 * sketch merges, %.10g CSV formatting.
 */

#ifndef PC_OBS_FLEET_H
#define PC_OBS_FLEET_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/types.h"

namespace pc::obs {

/** One flagged window of one series. */
struct Anomaly
{
    std::string series;   ///< e.g. "device.hit_rate".
    SimTime windowStart;  ///< Window the excursion landed in.
    double value;         ///< Observed windowed value.
    double expected;      ///< EWMA expectation before the window.
    double zscore;        ///< Signed deviation in floored stddevs.
};

/** EWMA drift-detector knobs. */
struct DriftConfig
{
    double alpha = 0.3;      ///< EWMA smoothing factor in (0, 1].
    double threshold = 3.0;  ///< |z| at or above this flags a window.
    double minStddev = 1e-9; ///< Variance floor (in value units).
    std::size_t warmup = 3;  ///< Windows consumed before flagging.
};

/**
 * EWMA z-score scan of one series. `values[i]` is the windowed value
 * whose window starts at `starts[i]`. Returns flagged windows in
 * order. Exposed for tests and custom series.
 */
std::vector<Anomaly> driftScan(const std::string &series,
                               const std::vector<double> &values,
                               const std::vector<SimTime> &starts,
                               const DriftConfig &cfg = {});

/** Collector configuration. */
struct FleetConfig
{
    SimTime windowWidth = 0;  ///< Series window width (> 0), e.g. a month.
    std::size_t maxWindows = TimeSeries::kDefaultMaxWindows;
};

/** The collector. See file comment for the protocol. */
class FleetCollector
{
  public:
    explicit FleetCollector(FleetConfig cfg);

    /** Start a device of user class `userClass`. */
    void beginDevice(const std::string &userClass);

    /**
     * Sample the current device's registry for the window starting at
     * `windowStart` (deltas are against the previous collect() of
     * this device). Call once per window, boundaries ascending.
     */
    void collect(SimTime windowStart, const MetricRegistry &reg);

    /**
     * collect() from a snapshot captured earlier (the parallel
     * harness's replay fold). collect(t, reg) is exactly
     * collect(t, reg.snapshot()).
     */
    void collect(SimTime windowStart, const MetricsSnapshot &snap);

    /** Finish the current device: fold its registry into the fleet. */
    void endDevice(const MetricRegistry &reg);

    /**
     * Fold a cloud-side registry ("server.*" from the update service)
     * into the fleet registry, so one snapshot carries cloud metrics
     * (queue depths, delta sizes, sync outcomes) next to the devices'.
     * Call outside the begin/end-device protocol, typically once after
     * the run. Does not count as a device.
     */
    void mergeCloud(const MetricRegistry &reg);

    /** Devices folded in so far. */
    std::size_t devices() const { return devices_; }

    /** Devices per user class. */
    const std::map<std::string, std::size_t> &classDevices() const
    {
        return classDevices_;
    }

    /** Every device registry merged. */
    const MetricRegistry &fleetRegistry() const { return fleet_; }

    /** Per-class merged registries. */
    const std::map<std::string, MetricRegistry> &classRegistries() const
    {
        return classRegs_;
    }

    /** Fleet-wide windowed series. */
    const TimeSeries &fleetSeries() const { return fleetSeries_; }

    /** Per-class windowed series. */
    const std::map<std::string, TimeSeries> &classSeries() const
    {
        return classSeries_;
    }

    /**
     * Drift scan over the standard fleet series: windowed hit rate,
     * stale/degraded share, per-window energy and the per-device
     * value distributions' means. Sorted by |z| descending, ties by
     * (series, window).
     */
    std::vector<Anomaly> scanAnomalies(const DriftConfig &cfg = {}) const;

    /** Fleet series CSV (TimeSeries::writeCsv). */
    void writeSeriesCsv(std::ostream &os) const
    {
        fleetSeries_.writeCsv(os);
    }

    /** Anomaly report CSV: `series,window_start_s,value,expected,z`. */
    static void writeAnomaliesCsv(std::ostream &os,
                                  const std::vector<Anomaly> &anomalies);

  private:
    /** Record one device-window delta into fleet + class series. */
    void recordDelta(SimTime t, const MetricsSnapshot &snap,
                     const MetricsSnapshot &prev);

    FleetConfig cfg_;
    MetricRegistry fleet_;
    std::map<std::string, MetricRegistry> classRegs_;
    TimeSeries fleetSeries_;
    std::map<std::string, TimeSeries> classSeries_;
    std::map<std::string, std::size_t> classDevices_;
    std::size_t devices_ = 0;

    bool inDevice_ = false;
    std::string currentClass_;
    MetricsSnapshot devicePrev_;
};

} // namespace pc::obs

#endif // PC_OBS_FLEET_H
