/**
 * @file
 * Sim-time tracer: per-query trace spans recorded into a bounded ring
 * buffer and exportable as Chrome/Perfetto `trace_event` JSON.
 *
 * The paper's Figure 16 is a power/latency timeline of ten consecutive
 * queries; Table 4 decomposes a query into probe / fetch / exchange /
 * render components. With the device instrumented, those become spans
 * on a simulated-time track — cache probe, flash fetch, each radio
 * attempt (including fault-injected retries and backoff waits), render
 * — and the whole run loads into chrome://tracing or ui.perfetto.dev
 * instead of being squinted out of a printed table.
 *
 * Span invariant the integration tests pin down: the component spans
 * of one query (category "device") tile the query's latency exactly —
 * their durations sum to the reported end-to-end latency, with no gaps
 * and no double counting. Radio tail segments cost energy but not user
 * latency, so they are deliberately not spans.
 */

#ifndef PC_OBS_TRACE_H
#define PC_OBS_TRACE_H

#include <deque>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace pc::obs {

class MetricRegistry;
class Counter;

/** One completed span on a simulated-time track. */
struct TraceSpan
{
    std::string name;     ///< e.g. "radio-attempt", "render".
    std::string category; ///< "query" umbrella, "device" component.
    u32 track = 0;        ///< Track id (Chrome tid).
    SimTime start = 0;    ///< Simulated start time.
    SimTime duration = 0; ///< Simulated duration.
    /** Pre-rendered key/value annotations (Chrome "args"). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Bounded ring-buffer span sink with Chrome trace export.
 *
 * Recording never allocates beyond the capacity: once full, the oldest
 * span is dropped and counted, so a long soak keeps the most recent
 * window — the behaviour a flight recorder needs.
 */
class Tracer
{
  public:
    /** Default span capacity. */
    static constexpr std::size_t kDefaultCapacity = 65536;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    /**
     * Find-or-create a named track (Chrome thread). Track 0 exists
     * implicitly as "main" until relabelled.
     */
    u32 track(const std::string &label);

    /** Record one span (drops the oldest when at capacity). */
    void record(TraceSpan span);

    /** Convenience record without args. */
    void span(u32 track, std::string name, std::string category,
              SimTime start, SimTime duration);

    /** Retained spans, oldest first. */
    const std::deque<TraceSpan> &spans() const { return spans_; }

    /** Spans ever recorded (including dropped). */
    u64 recorded() const { return recorded_; }

    /** Spans evicted by the ring bound. */
    u64 dropped() const { return dropped_; }

    /** Ring capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Drop all retained spans (tracks and counts are kept). */
    void clear() { spans_.clear(); }

    /**
     * Publish ring pressure live: every record() bumps the
     * "obs.trace.recorded" counter in `reg`, and every ring eviction
     * bumps "obs.trace.dropped" — so fleet snapshots expose trace
     * loss without polling the tracer. Counter handles are cached;
     * nullptr detaches. The registry must outlive the attachment.
     */
    void attachMetrics(MetricRegistry *reg);

    /**
     * Export as Chrome `trace_event` JSON ("X" complete events, one
     * metadata event naming each track). Timestamps are microseconds
     * with nanosecond decimals — SimTime is ns, Chrome wants us.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace into a file. @return False on I/O failure. */
    bool writeChromeTraceFile(const std::string &path) const;

  private:
    std::size_t capacity_;
    std::deque<TraceSpan> spans_;
    std::vector<std::string> trackLabels_;
    u64 recorded_ = 0;
    u64 dropped_ = 0;
    Counter *recordedCounter_ = nullptr;
    Counter *droppedCounter_ = nullptr;
};

} // namespace pc::obs

#endif // PC_OBS_TRACE_H
