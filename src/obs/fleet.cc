#include "obs/fleet.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/csvutil.h"
#include "util/logging.h"

namespace pc::obs {

namespace {

/** Sum of a snapshot's histogram `name`; 0 when absent. */
double
histogramSum(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &h : snap.histograms) {
        if (h.name == name)
            return h.sum;
    }
    return 0.0;
}

} // namespace

std::vector<Anomaly>
driftScan(const std::string &series, const std::vector<double> &values,
          const std::vector<SimTime> &starts, const DriftConfig &cfg)
{
    pc_assert(values.size() == starts.size(),
              "driftScan: values/starts length mismatch");
    pc_assert(cfg.alpha > 0.0 && cfg.alpha <= 1.0,
              "driftScan: alpha must be in (0, 1]");
    std::vector<Anomaly> out;
    if (values.empty())
        return out;

    // EWMA of mean and variance, seeded on the first window. Each
    // window is scored against the expectation *before* it, then
    // folded in — so a step change is flagged at onset and the
    // detector re-converges to the new level instead of alarming
    // forever.
    double mean = values.front();
    double var = 0.0;
    for (std::size_t i = 1; i < values.size(); ++i) {
        const double sd = std::max(std::sqrt(var), cfg.minStddev);
        const double z = (values[i] - mean) / sd;
        if (i >= cfg.warmup && std::abs(z) >= cfg.threshold)
            out.push_back({series, starts[i], values[i], mean, z});
        const double d = values[i] - mean;
        mean += cfg.alpha * d;
        var = (1.0 - cfg.alpha) * (var + cfg.alpha * d * d);
    }
    return out;
}

FleetCollector::FleetCollector(FleetConfig cfg)
    : cfg_(cfg), fleetSeries_(cfg.windowWidth, cfg.maxWindows)
{
}

void
FleetCollector::beginDevice(const std::string &userClass)
{
    pc_assert(!inDevice_, "FleetCollector: beginDevice while a device "
                          "is still open (endDevice missing)");
    pc_assert(!userClass.empty(), "FleetCollector: empty user class");
    inDevice_ = true;
    currentClass_ = userClass;
    devicePrev_ = MetricsSnapshot{};
    classSeries_.try_emplace(userClass, cfg_.windowWidth,
                             cfg_.maxWindows);
    classRegs_[userClass];
    classDevices_[userClass];
}

void
FleetCollector::collect(SimTime windowStart, const MetricRegistry &reg)
{
    collect(windowStart, reg.snapshot());
}

void
FleetCollector::collect(SimTime windowStart, const MetricsSnapshot &snap)
{
    pc_assert(inDevice_, "FleetCollector: collect outside a device");
    recordDelta(windowStart, snap, devicePrev_);
    devicePrev_ = snap;
}

void
FleetCollector::recordDelta(SimTime t, const MetricsSnapshot &snap,
                            const MetricsSnapshot &prev)
{
    TimeSeries &cls = classSeries_.at(currentClass_);
    const MetricsSnapshot delta = snap.deltaSince(prev);

    for (const auto &[n, v] : delta.counters) {
        fleetSeries_.recordCounter(t, n, v);
        cls.recordCounter(t, n, v);
    }

    // Histograms cannot delta their distributions, but their summed
    // mass can: per-window energy/latency totals come from snapshot
    // sum differences.
    double energy = 0.0;
    for (const auto &h : snap.histograms) {
        const double d = h.sum - histogramSum(prev, h.name);
        fleetSeries_.recordAccum(t, h.name + ".sum", d);
        cls.recordAccum(t, h.name + ".sum", d);
        if (h.name.rfind("device.energy_mj.", 0) == 0)
            energy += d;
    }

    // Derived per-device observations: recorded as values, so a
    // window summarizes the distribution across devices.
    const double qd = double(delta.counterValue("device.queries"));
    if (qd > 0.0) {
        const auto ratio = [&](const char *name, const char *num) {
            const double r =
                double(delta.counterValue(num)) / qd;
            fleetSeries_.recordValue(t, name, r);
            cls.recordValue(t, name, r);
        };
        ratio("device.hit_rate", "device.cache_hits");
        ratio("device.stale_rate", "device.degraded.stale");
        ratio("device.degraded_rate", "device.degraded.serves");
        fleetSeries_.recordValue(t, "device.energy_mj", energy);
        cls.recordValue(t, "device.energy_mj", energy);
    }
}

void
FleetCollector::endDevice(const MetricRegistry &reg)
{
    pc_assert(inDevice_, "FleetCollector: endDevice outside a device");
    fleet_.mergeFrom(reg);
    classRegs_.at(currentClass_).mergeFrom(reg);
    ++classDevices_.at(currentClass_);
    ++devices_;
    inDevice_ = false;
    currentClass_.clear();
}

void
FleetCollector::mergeCloud(const MetricRegistry &reg)
{
    pc_assert(!inDevice_,
              "FleetCollector: mergeCloud inside a device");
    fleet_.mergeFrom(reg);
}

std::vector<Anomaly>
FleetCollector::scanAnomalies(const DriftConfig &cfg) const
{
    std::vector<SimTime> starts;
    starts.reserve(fleetSeries_.windows().size());
    for (const auto &w : fleetSeries_.windows())
        starts.push_back(w.start);

    std::vector<Anomaly> all;
    const auto scan = [&](const std::string &name,
                          const std::vector<double> &vals) {
        auto found = driftScan(name, vals, starts, cfg);
        all.insert(all.end(), found.begin(), found.end());
    };

    // Fleet-level ratios of windowed counter sums.
    const auto ratioSeries = [&](const char *num, const char *den) {
        const auto a = fleetSeries_.counterSeries(num);
        const auto b = fleetSeries_.counterSeries(den);
        std::vector<double> r(a.size(), 0.0);
        for (std::size_t i = 0; i < a.size(); ++i)
            r[i] = b[i] > 0.0 ? a[i] / b[i] : 0.0;
        return r;
    };
    scan("fleet.hit_rate",
         ratioSeries("device.cache_hits", "device.queries"));
    scan("fleet.stale_rate",
         ratioSeries("device.degraded.stale", "device.queries"));
    scan("fleet.degraded_rate",
         ratioSeries("device.degraded.serves", "device.queries"));

    // Every accumulated sum series (energy, latency mass, ...) and
    // every per-device value distribution's windowed mean.
    std::set<std::string> accumNames, valueNames;
    for (const auto &w : fleetSeries_.windows()) {
        for (const auto &[n, v] : w.accums)
            accumNames.insert(n);
        for (const auto &[n, s] : w.points)
            valueNames.insert(n);
    }
    for (const auto &n : accumNames)
        scan(n, fleetSeries_.accumSeries(n));
    for (const auto &n : valueNames)
        scan(n + ".mean", fleetSeries_.valueMeanSeries(n));

    std::sort(all.begin(), all.end(),
              [](const Anomaly &a, const Anomaly &b) {
                  const double za = std::abs(a.zscore);
                  const double zb = std::abs(b.zscore);
                  if (za != zb)
                      return za > zb;
                  if (a.series != b.series)
                      return a.series < b.series;
                  return a.windowStart < b.windowStart;
              });
    return all;
}

void
FleetCollector::writeAnomaliesCsv(std::ostream &os,
                                  const std::vector<Anomaly> &anomalies)
{
    os << "series,window_start_s,value,expected,z\n";
    for (const auto &a : anomalies) {
        os << csvField(a.series) << ','
           << csvNumber(double(a.windowStart) / 1e9) << ','
           << csvNumber(a.value) << ',' << csvNumber(a.expected) << ','
           << csvNumber(a.zscore) << '\n';
    }
}

} // namespace pc::obs
