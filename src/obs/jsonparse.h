/**
 * @file
 * Minimal JSON parser — the read side of the observability exporters.
 *
 * The bench reporter writes BENCH_*.json files; the regression gate
 * (benchdiff) has to read them back. This is a strict recursive-
 * descent parser for exactly the JSON the JsonWriter emits (RFC 8259
 * minus \uXXXX escapes beyond Latin-1 — the writer never produces
 * them): no dependencies, no locale, objects preserve key order so
 * round-trips stay deterministic.
 */

#ifndef PC_OBS_JSONPARSE_H
#define PC_OBS_JSONPARSE_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pc::obs {

/** A parsed JSON value (tagged union, value semantics). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @pre isBool(). */
    bool boolean() const { return bool_; }
    /** @pre isNumber(). */
    double number() const { return number_; }
    /** @pre isString(). */
    const std::string &str() const { return string_; }
    /** @pre isArray(). */
    const std::vector<JsonValue> &array() const { return array_; }
    /** @pre isObject(); entries in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    object() const
    {
        return object_;
    }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** find(key)->number(); `fallback` when absent or non-numeric. */
    double numberOr(std::string_view key, double fallback) const;

    /** find(key)->str(); `fallback` when absent or non-string. */
    std::string strOr(std::string_view key,
                      const std::string &fallback) const;

  private:
    friend class JsonParser;
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/**
 * Parse a complete JSON document. @return False on malformed input,
 * with a position-annotated message in `*error` when non-null.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

/** parseJson on a file's contents. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string *error = nullptr);

} // namespace pc::obs

#endif // PC_OBS_JSONPARSE_H
