/**
 * @file
 * Minimal streaming JSON writer used by the observability exporters
 * (Chrome trace files, bench result files). Emits compact, valid JSON
 * with deterministic number formatting — no dependency beyond the
 * standard library, because bench output must stay byte-identical
 * across runs.
 */

#ifndef PC_OBS_JSON_H
#define PC_OBS_JSON_H

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace pc::obs {

/**
 * Stack-based JSON writer. The caller opens/closes objects and arrays
 * and the writer handles commas, key quoting and escaping. Misnesting
 * (closing the wrong scope, a value without a key inside an object)
 * trips an assertion.
 */
class JsonWriter
{
  public:
    /**
     * @param os Destination stream.
     * @param pretty Indent with newlines (for human-inspected files).
     */
    explicit JsonWriter(std::ostream &os, bool pretty = false);

    /** Open an object scope ("{"). */
    void beginObject();
    /** Close the innermost object scope. */
    void endObject();
    /** Open an array scope ("["). */
    void beginArray();
    /** Close the innermost array scope. */
    void endArray();

    /** Emit a key inside an object; the next emission is its value. */
    void key(std::string_view k);

    /** String value. */
    void value(std::string_view s);
    /** Disambiguate string literals from bool. */
    void value(const char *s) { value(std::string_view(s)); }
    /** Unsigned integer value. */
    void value(u64 v);
    /** Signed integer value. */
    void value(i64 v);
    /** Boolean value. */
    void value(bool b);
    /** Floating-point value; non-finite values emit null. */
    void value(double d);
    /** Null value. */
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** Escape a string for embedding in JSON (without quotes). */
    static std::string escape(std::string_view s);

  private:
    /** Scope bookkeeping: are we in an object/array, anything emitted? */
    struct Scope
    {
        bool object = false;
        bool first = true;
    };

    /** Comma/indent plumbing before any value or key. */
    void preValue();
    void indent();

    std::ostream &os_;
    bool pretty_;
    bool keyPending_ = false;
    std::vector<Scope> stack_;
};

} // namespace pc::obs

#endif // PC_OBS_JSON_H
