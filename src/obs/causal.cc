#include "obs/causal.h"

#include <cstdio>
#include <cstring>

#include "util/hash.h"
#include "util/logging.h"

namespace pc::obs {

const char *
syncTierName(SyncTier t)
{
    switch (t) {
      case SyncTier::Device: return "device";
      case SyncTier::Server: return "server";
    }
    return "?";
}

const char *
syncStageName(SyncStage s)
{
    switch (s) {
      case SyncStage::SyncRequest: return "sync_request";
      case SyncStage::VersionLookup: return "version_lookup";
      case SyncStage::DeltaBuild: return "delta_build";
      case SyncStage::Shed: return "shed";
      case SyncStage::Escalate: return "escalate";
      case SyncStage::NoVersion: return "no_version";
      case SyncStage::FrameDelivery: return "frame_delivery";
      case SyncStage::Backoff: return "backoff";
      case SyncStage::CrcCheck: return "crc_check";
      case SyncStage::Validate: return "validate";
      case SyncStage::Commit: return "commit";
      case SyncStage::Reject: return "reject";
      case SyncStage::Abort: return "abort";
      case SyncStage::Sabotage: return "sabotage";
      case SyncStage::SloBreach: return "slo_breach";
    }
    return "?";
}

bool
syncStageFromName(std::string_view name, SyncStage &out)
{
    static constexpr SyncStage kAll[] = {
        SyncStage::SyncRequest, SyncStage::VersionLookup,
        SyncStage::DeltaBuild,  SyncStage::Shed,
        SyncStage::Escalate,    SyncStage::NoVersion,
        SyncStage::FrameDelivery, SyncStage::Backoff,
        SyncStage::CrcCheck,    SyncStage::Validate,
        SyncStage::Commit,      SyncStage::Reject,
        SyncStage::Abort,       SyncStage::Sabotage,
        SyncStage::SloBreach,
    };
    for (SyncStage s : kAll) {
        if (name == syncStageName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

u64
deriveTraceId(u64 device_id, u64 seq)
{
    // mix64 over a device/sequence combination with odd multipliers:
    // collision-free in practice across a fleet, fully deterministic,
    // and never 0 (0 means "no trace") thanks to the fallback.
    const u64 id = mix64(device_id * 0x9e3779b97f4a7c15ull ^
                         (seq + 1) * 0xc2b2ae3d27d4eb4full);
    return id == 0 ? 1 : id;
}

FlightRecorder::FlightRecorder(u64 device_id, std::size_t capacity)
    : deviceId_(device_id)
{
    pc_assert(capacity >= 1, "FlightRecorder needs capacity >= 1");
    ring_.reserve(capacity);
}

TraceContext
FlightRecorder::beginTrace()
{
    TraceContext ctx;
    ctx.traceId = deriveTraceId(deviceId_, seq_++);
    lastTraceId_ = ctx.traceId;
    return ctx;
}

void
FlightRecorder::record(const SyncEvent &ev)
{
    ++recorded_;
    if (ring_.size() < ring_.capacity()) {
        ring_.push_back(ev);
        return;
    }
    // Saturated: overwrite the oldest slot in place (no allocation).
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
}

std::vector<SyncEvent>
FlightRecorder::events() const
{
    std::vector<SyncEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::vector<SyncEvent>
FlightRecorder::trace(u64 trace_id) const
{
    std::vector<SyncEvent> out;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const SyncEvent &ev = ring_[(head_ + i) % ring_.size()];
        if (ev.traceId == trace_id)
            out.push_back(ev);
    }
    return out;
}

void
FlightRecorder::publishMetrics(MetricRegistry &reg) const
{
    reg.counter("obs.flight.recorded").bump(recorded_);
    reg.counter("obs.flight.dropped").bump(dropped_);
}

SyncExplain
explainSync(const std::vector<SyncEvent> &events, u64 trace_id)
{
    SyncExplain out;
    if (trace_id == 0) {
        for (const SyncEvent &ev : events)
            if (ev.traceId != 0)
                trace_id = ev.traceId;
    }
    out.traceId = trace_id;
    for (const SyncEvent &ev : events) {
        if (ev.traceId != trace_id)
            continue;
        out.rows.push_back({ev, 0.0});
        if (ev.tier == SyncTier::Device)
            out.criticalPath += ev.duration;
    }
    if (out.criticalPath > 0) {
        for (ExplainRow &row : out.rows) {
            if (row.event.tier == SyncTier::Device)
                row.share = double(row.event.duration) /
                            double(out.criticalPath);
        }
    }
    return out;
}

namespace {

/** Deterministic hex rendering of a trace id ("0x..."). */
std::string
traceIdHex(u64 id)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  (unsigned long long)id);
    return buf;
}

/** traceIdHex's inverse; false on malformed input. */
bool
traceIdFromHex(const std::string &s, u64 &out)
{
    if (s.size() != 18 || s[0] != '0' || s[1] != 'x')
        return false;
    u64 v = 0;
    for (std::size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        u64 nibble = 0;
        if (c >= '0' && c <= '9')
            nibble = u64(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = u64(c - 'a') + 10;
        else
            return false;
        v = (v << 4) | nibble;
    }
    out = v;
    return true;
}

} // namespace

void
writeSyncEvents(JsonWriter &w, const std::vector<SyncEvent> &events)
{
    w.beginArray();
    for (const SyncEvent &ev : events) {
        w.beginObject();
        w.kv("trace", traceIdHex(ev.traceId));
        w.kv("span", u64(ev.span));
        w.kv("parent", u64(ev.parent));
        w.kv("tier", syncTierName(ev.tier));
        w.kv("stage", syncStageName(ev.stage));
        w.kv("ok", ev.ok);
        w.kv("attempt", u64(ev.attempt));
        w.kv("from", ev.fromVersion);
        w.kv("to", ev.toVersion);
        w.kv("bytes", ev.bytes);
        w.kv("detail", ev.detail);
        w.kv("t_ns", i64(ev.start));
        w.kv("dur_ns", i64(ev.duration));
        w.endObject();
    }
    w.endArray();
}

bool
readSyncEvents(const JsonValue &arr, std::vector<SyncEvent> &out)
{
    if (!arr.isArray())
        return false;
    out.clear();
    out.reserve(arr.array().size());
    for (const JsonValue &v : arr.array()) {
        if (!v.isObject())
            return false;
        SyncEvent ev;
        if (!traceIdFromHex(v.strOr("trace", ""), ev.traceId))
            return false;
        ev.span = u32(v.numberOr("span", 0));
        ev.parent = u32(v.numberOr("parent", 0));
        const std::string tier = v.strOr("tier", "");
        if (tier == "device")
            ev.tier = SyncTier::Device;
        else if (tier == "server")
            ev.tier = SyncTier::Server;
        else
            return false;
        if (!syncStageFromName(v.strOr("stage", ""), ev.stage))
            return false;
        const JsonValue *ok = v.find("ok");
        if (ok == nullptr || !ok->isBool())
            return false;
        ev.ok = ok->boolean();
        ev.attempt = u32(v.numberOr("attempt", 0));
        ev.fromVersion = u64(v.numberOr("from", 0));
        ev.toVersion = u64(v.numberOr("to", 0));
        ev.bytes = u64(v.numberOr("bytes", 0));
        ev.detail = u64(v.numberOr("detail", 0));
        ev.start = SimTime(v.numberOr("t_ns", 0));
        ev.duration = SimTime(v.numberOr("dur_ns", 0));
        out.push_back(ev);
    }
    return true;
}

} // namespace pc::obs
