/**
 * @file
 * Fleet health observatory: utilization ledgers and the deterministic
 * bottleneck analyzer.
 *
 * Capacity questions ("what saturates first, and at how many times
 * today's load?") need two numbers per component that plain metrics
 * don't give directly: **busy time** (simulated time the component
 * spent serving) and **ops** (how many times it served). This module
 * derives both from spans the pipeline already measures — no new
 * timing model on the device side, only re-aggregation:
 *
 *  - `health.device.cpu.*`        — hash probe + render + misc spans,
 *                                   plus community-delta apply time;
 *  - `health.device.flash.*`      — result-page fetch spans;
 *  - `health.device.radio.<l>.*`  — per-link committed exchange
 *                                   latency (RadioLink::attachHealth
 *                                   bumps it in commit(), so query
 *                                   misses, community syncs, and
 *                                   miss-queue drains all count, and
 *                                   no-coverage probes — which never
 *                                   commit — don't);
 *  - `health.device.query.*` / `health.device.sync.*` — end-to-end
 *    pipeline ledgers (latency-tiled spans; kept out of the
 *    bottleneck ranking because their mass double-counts the
 *    per-component ledgers above);
 *  - `health.server.*`            — modeled service demand on the
 *    cloud tier (constants below), because the simulator charges the
 *    server's real work to wall clocks that are deliberately excluded
 *    from byte-gated artifacts.
 *
 * The ledgers are ordinary registry counters, so they flow through
 * per-month snapshots, FleetCollector's device-index-ordered fold,
 * and TimeSeries windows like every other metric — per-window
 * utilization is busy_delta / window for free, and artifacts stay
 * byte-identical at any thread count.
 *
 * Cost contract (mirrors the flight recorder): detached accounting is
 * a null-pointer test; attached accounting is cached-handle integer
 * adds — zero allocations, zero RNG draws, zero behaviour change on
 * the hot path (gated by health_test's neutrality suite).
 *
 * The analyzer turns one fleet snapshot into a ranked component
 * table: utilization = busy / capacity (device components get
 * devices x horizon, server components get the horizon — one shared
 * service), per-query demand D_i = busy / queries, service time
 * S_i = busy / ops. The bottleneck is the highest-utilization ranked
 * component and its headroom multiplier is 1 / utilization — "the
 * radio saturates first, at ~N x today's load".
 */

#ifndef PC_OBS_HEALTH_H
#define PC_OBS_HEALTH_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "util/types.h"

namespace pc::obs::health {

/**
 * Modeled cloud-tier service demands, in simulated ns. The builder's
 * measured wall clocks are real-thread timings and therefore banned
 * from deterministic artifacts; these constants translate the
 * server's deterministic op counts (records ingested, batches
 * dispatched, delta ops served) into simulated busy time instead.
 * They approximate the measured build throughput of the sharded
 * builder at paper scale; the capacity-planning layer (ROADMAP) will
 * cross-validate them.
 */
constexpr SimTime kServerPerRecordNs = 2'000;
constexpr SimTime kServerPerBatchNs = 20'000;
constexpr SimTime kServerSyncBaseNs = 5'000'000;
constexpr SimTime kServerPerDeltaOpNs = 10'000;

/** One served query, already latency-tiled by the device pipeline. */
struct QueryHealthSample
{
    bool cacheHit = false;
    bool degraded = false;
    SimTime probe = 0;   ///< Hash-table lookup span.
    SimTime fetch = 0;   ///< Flash result-page fetch span.
    SimTime radio = 0;   ///< Radio exchange span (all attempts).
    SimTime backoff = 0; ///< Retry backoff (idle, not busy).
    SimTime render = 0;  ///< Render span.
    SimTime misc = 0;    ///< Browser misc span.
    SimTime total = 0;   ///< End-to-end latency (the tiling sum).
};

/** One community-model sync attempt (any of the three exits). */
struct SyncHealthSample
{
    bool ok = false;
    SimTime radio = 0;   ///< Exchange time across attempts (no backoff).
    SimTime backoff = 0; ///< Retry backoff (idle).
    SimTime apply = 0;   ///< Transactional validate+commit span (CPU).
    u64 bytes = 0;       ///< Committed wire bytes (0 unless ok).
};

/**
 * Per-device busy-time/demand ledger. Constructed against the
 * device's registry (cold path: registers every handle up front);
 * the device then feeds it one POD sample per query/sync. Radio
 * ledgers are owned here but bumped inside RadioLink::commit() via
 * radioLedger() handles, so every committed exchange counts exactly
 * once no matter which pipeline drove it.
 */
class HealthAccountant
{
  public:
    explicit HealthAccountant(MetricRegistry &reg);

    /** Fold one served query into the ledgers. */
    void onQuery(const QueryHealthSample &s);

    /** Fold one community sync into the ledgers. */
    void onSync(const SyncHealthSample &s);

    /** Fold one miss-queue drain (radio time rides the link ledger). */
    void onMissSync(u64 synced, SimTime radioTime);

    /**
     * Busy/ops counter pair for radio link `link` (e.g. "3g"),
     * registered as health.device.radio.<link>.{busy_ns,ops}. Meant
     * for RadioLink::attachHealth at device attach time.
     */
    std::pair<Counter *, Counter *>
    radioLedger(const std::string &link);

  private:
    MetricRegistry *reg_;
    Counter *cpuBusy_;
    Counter *cpuOps_;
    Counter *flashBusy_;
    Counter *flashOps_;
    Counter *backoffIdle_;
    Counter *queryBusy_;
    Counter *queryOps_;
    Counter *syncBusy_;
    Counter *syncOps_;
    Counter *syncBytes_;
};

/** One component row of the health analysis. */
struct ComponentHealth
{
    std::string name; ///< e.g. "device.radio.3g", "server.shard.2".
    u64 busyNs = 0;
    u64 ops = 0;
    double utilization = 0.0; ///< busy / capacity.
    double serviceNs = 0.0;   ///< busy / ops (S_i).
    double demandNs = 0.0;    ///< busy / fleet queries (D_i).
};

/** Ranked components + the saturation verdict for one fleet run. */
struct HealthAnalysis
{
    std::size_t devices = 0;
    SimTime horizon = 0; ///< Simulated run length (per device).
    u64 queries = 0;

    /** Utilization-ranked (desc, name-asc ties), rank = index + 1. */
    std::vector<ComponentHealth> ranked;
    /** End-to-end pipeline ledgers (query/sync): reported for demand,
     *  excluded from ranking — their mass double-counts components. */
    std::vector<ComponentHealth> pipelines;

    std::string bottleneck;    ///< Highest-utilization component.
    double maxUtilization = 0.0;
    double headroom = 0.0;     ///< 1 / maxUtilization (0 if idle).

    std::vector<SloStatus> slos;
};

/**
 * Scan `snap` for health.* ledgers and rank them. Deterministic:
 * reads only counters (name-sorted in the snapshot), never gauges or
 * wall clocks.
 */
HealthAnalysis analyzeHealth(const MetricsSnapshot &snap,
                             std::size_t devices, SimTime horizon);

/**
 * The {"health":...} artifact: named scenarios, each an analysis.
 * Scenario order is the emission order (deterministic by
 * construction); bench_diff flattens it via flattenHealthReport.
 */
struct HealthReport
{
    std::string id = "fleet_health";
    std::vector<std::pair<std::string, std::string>> notes;
    std::vector<std::pair<std::string, HealthAnalysis>> scenarios;
};

/** Serialize the artifact (byte-deterministic, pretty-printed). */
void writeHealthJson(std::ostream &os, const HealthReport &r);

/** Write BENCH_<id>.json under BenchReport::outputDir(). @return the
 *  path written, or empty on I/O failure. */
std::string writeHealthFile(const HealthReport &r);

} // namespace pc::obs::health

#endif // PC_OBS_HEALTH_H
