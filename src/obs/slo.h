/**
 * @file
 * Declarative SLO engine: typed objectives, error budgets, and
 * multi-window burn rates over fleet telemetry.
 *
 * An SLO spec names an objective over metrics the fleet already
 * publishes — no new instrumentation is required to add one:
 *
 *  - **ratio objectives** (availability / staleness / corruption
 *    rate): a good-fraction target over an event counter and a
 *    bad-event counter ("99.5% of radio attempts deliver uncorrupted
 *    frames"). The error budget is the absolute number of bad events
 *    the objective tolerates: allowed = (1 - objective) x events.
 *  - **latency objectives**: a quantile target against a snapshot
 *    histogram ("p90 miss latency <= 9 s", quantiles from the
 *    registry's mergeable sketches), with per-window burn measured as
 *    windowed mean latency mass per event against a mean budget.
 *
 * Burn rate follows the multi-window convention: per window, burn 1.0
 * means the window consumed budget exactly at the sustainable rate;
 * an SLO is *burning* when both a short lookback (paging-fast) and a
 * long lookback (fires only on sustained regressions) average at or
 * above the threshold. Every burning window becomes a deterministic
 * SloBreach event in the flight recorder — breach ids derive from the
 * recorder's device id and sequence, never clocks, so breach streams
 * are byte-identical at any thread count.
 *
 * Evaluation is a pure fold over a TimeSeries + total snapshot:
 * evaluateSlos() never mutates its inputs, and the windowed series it
 * reads are exactly what FleetCollector already records in the
 * device-index-ordered fold.
 */

#ifndef PC_OBS_SLO_H
#define PC_OBS_SLO_H

#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/types.h"

namespace pc::obs::health {

/** What an SLO objective is about. Ratio kinds share mechanics; the
 *  kind names the failure mode for reports and scoreboards. */
enum class SloKind : u8
{
    LatencyQuantile = 0, ///< Quantile of a latency histogram (ms).
    Availability,        ///< Non-degraded serves / all serves.
    Staleness,           ///< Fresh serves / all serves.
    CorruptionRate,      ///< Clean deliveries / all deliveries.
};

/** Metric-safe display name ("latency_quantile", "availability", ...). */
const char *sloKindName(SloKind k);

/**
 * One declarative objective. Ratio kinds read `eventCounter` (the
 * denominator) and `badCounter` (events that consume budget);
 * LatencyQuantile reads `histogram` for the attainment quantile and
 * normalizes the histogram's windowed mass by `eventCounter` for
 * burn. All referenced metrics must be fleet-snapshot names.
 */
struct SloSpec
{
    std::string name;
    SloKind kind = SloKind::Availability;

    /** Required good fraction in (0,1) — ratio kinds only. */
    double objective = 0.999;
    std::string eventCounter;
    std::string badCounter;

    /** Latency kinds: histogram + quantile target. The snapshot keeps
     *  p50/p90/p99, so `quantile` snaps to the nearest of those. */
    std::string histogram;
    double quantile = 0.9;
    double targetMs = 0.0;
    /** Latency burn: windowed (mass / events) over this is burn 1.0. */
    double meanBudgetMs = 0.0;

    /** Multi-window burn evaluation (windows of the fed TimeSeries). */
    std::size_t shortWindows = 1;
    std::size_t longWindows = 4;
    double burnThreshold = 1.0;
};

/** Evaluated state of one SLO: attainment, budget, burn, breaches. */
struct SloStatus
{
    SloSpec spec;

    u64 events = 0; ///< Total events (ratio: counter; latency: samples).
    u64 bad = 0;    ///< Budget-consuming events (latency: hot windows).

    /** Ratio kinds: achieved good fraction (1.0 on zero events).
     *  Latency kinds: the measured quantile in ms (0 when the
     *  histogram is absent or empty). */
    double attainment = 1.0;

    /** Error budget. Ratio kinds count events; latency kinds count
     *  window-budget units (one per window with traffic). */
    double budgetAllowed = 0.0;
    double budgetConsumed = 0.0;
    double budgetRemaining = 0.0;
    bool met = true; ///< Exactly-exhausted budgets still meet the SLO.

    double shortBurn = 0.0; ///< Mean burn over the last shortWindows.
    double longBurn = 0.0;  ///< Mean burn over the last longWindows.
    bool burning = false;   ///< Both lookbacks at/over the threshold.

    std::vector<double> burnByWindow;     ///< Aligned to series windows.
    std::vector<SimTime> breachWindows;   ///< Window starts that breached.
};

/**
 * Evaluate every spec against a windowed series plus the run-total
 * snapshot. When `recorder` is non-null, each breach window records
 * one SloBreach event (tier Server, ok=false, detail = spec index,
 * attempt = window index, start/duration = the window) under a fresh
 * deterministic trace per breaching SLO.
 */
std::vector<SloStatus> evaluateSlos(const std::vector<SloSpec> &specs,
                                    const TimeSeries &series,
                                    const MetricsSnapshot &total,
                                    FlightRecorder *recorder = nullptr);

/**
 * Incremental evaluation over periodic snapshots of one registry.
 * ingest() records clamped counter/histogram-mass deltas into an
 * internal TimeSeries (a counter reset between ingests contributes a
 * zero delta, never an underflow), so evaluate() sees the same shape
 * FleetCollector produces.
 */
class SloTracker
{
  public:
    SloTracker(SimTime windowWidth, std::vector<SloSpec> specs,
               std::size_t maxWindows = 256);

    /** Fold one snapshot in; deltas land in `windowStart`'s window. */
    void ingest(SimTime windowStart, const MetricsSnapshot &snap);

    std::vector<SloStatus>
    evaluate(FlightRecorder *recorder = nullptr) const;

    const TimeSeries &series() const { return series_; }

  private:
    std::vector<SloSpec> specs_;
    TimeSeries series_;
    MetricsSnapshot prev_;
    MetricsSnapshot last_;
};

/**
 * The fleet's standing objectives, phrased over metrics every fleet
 * run publishes: query availability and staleness, delivery
 * integrity, and end-to-end serve p90 latency. Targets are set with
 * headroom over the healthy small-fleet baseline so only injected
 * incidents (outage storms, shed squeezes, chaos corruption) burn
 * the budgets.
 */
std::vector<SloSpec> defaultFleetSlos();

} // namespace pc::obs::health

#endif // PC_OBS_SLO_H
