/**
 * @file
 * Cross-layer metrics registry.
 *
 * Every layer of the serve-a-query pipeline (device, radio links, the
 * flash store, PocketSearch, the fault plan) registers typed handles —
 * counters, gauges, distributions — under hierarchical dotted names
 * ("device.radio.3g.retries", "simfs.reads") in one MetricRegistry.
 * The registry subsumes the hand-threaded CounterBag plumbing the
 * fault-injection experiments used: a snapshot flattens every metric
 * into a deterministic, name-sorted report; deltas isolate one phase
 * of an experiment; merges fold per-shard registries (e.g. one device
 * per serving path, or a whole simulated fleet) into one view —
 * counts and moments combine exactly (parallel Welford), quantiles
 * via mergeable sketches within a documented error bound.
 *
 * Handles returned by the registry are stable for the registry's
 * lifetime, so hot paths bump a cached pointer instead of re-hashing
 * the metric name per event.
 */

#ifndef PC_OBS_METRICS_H
#define PC_OBS_METRICS_H

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/sketch.h"
#include "util/stats.h"
#include "util/types.h"

namespace pc::obs {

/** Monotonic event counter. */
class Counter
{
  public:
    /** Increment by `delta`. */
    void bump(u64 delta = 1) { value_ += delta; }
    /** Current value. */
    u64 value() const { return value_; }
    /** Registered name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    std::string name_;
    u64 value_ = 0;
};

/** Last-write-wins instantaneous value (energy so far, bytes live). */
class Gauge
{
  public:
    /** Set the current value. */
    void set(double v) { value_ = v; }
    /** Current value. */
    double value() const { return value_; }
    /** Registered name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricRegistry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    std::string name_;
    double value_ = 0.0;
};

/**
 * Value distribution with bounded-memory quantiles.
 *
 * Keeps a RunningStat for O(1) exact moments plus a mergeable
 * QuantileSketch for the quantile summary, so a million-query run
 * costs O(k) memory per metric (the sketch's documented cap) instead
 * of one stored double per observation. Estimated quantiles stay
 * within the sketch's epsilon() of the exact empirical quantiles —
 * and are bit-exact until the stream outgrows the sketch's first
 * buffer, which keeps small unit-test streams exact.
 *
 * Tests that need true quantiles on larger streams can opt into exact
 * mode (MetricRegistry::exactHistogram), which stores the full sample
 * in an EmpiricalCdf exactly as before. Exact mode is the opt-in
 * exception, not the default: its memory is unbounded.
 */
class Histogram
{
  public:
    /** Fold one observation in. */
    void
    observe(double x)
    {
        stat_.add(x);
        if (exact_)
            cdf_.add(x);
        else
            sketch_.add(x);
    }

    /** Number of observations. */
    u64 count() const { return stat_.count(); }
    /** Mean; 0 when empty. */
    double mean() const { return stat_.mean(); }
    /** Minimum; 0 when empty. */
    double min() const { return stat_.min(); }
    /** Maximum; 0 when empty. */
    double max() const { return stat_.max(); }
    /** Sum of observations. */
    double sum() const { return stat_.sum(); }
    /** q-quantile (exact in exact mode, else sketched); 0 when empty. */
    double quantile(double q) const;

    /** Moments accumulator. */
    const RunningStat &stat() const { return stat_; }

    /** True when this histogram stores the full sample. */
    bool exact() const { return exact_; }

    /** The quantile sketch. @pre !exact(). */
    const QuantileSketch &sketch() const;

    /** Stored sample. @pre exact(). */
    const EmpiricalCdf &cdf() const;

    /**
     * Samples/items currently stored: bounded by the sketch cap in
     * sketch mode, equal to count() in exact mode.
     */
    std::size_t retained() const
    {
        return exact_ ? cdf_.size() : sketch_.retained();
    }

    /**
     * Fold another histogram's observations into this one. Exact
     * mode merges exactly (sample union); sketch mode merges sketches
     * (and accepts an exact source by re-adding its samples). Merging
     * a sketch-mode source into an exact-mode target is a fatal
     * configuration error — the samples no longer exist.
     */
    void mergeFrom(const Histogram &other);

    /** Registered name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricRegistry;
    explicit Histogram(std::string name, bool exact = false)
        : name_(std::move(name)), exact_(exact)
    {
    }
    std::string name_;
    bool exact_;
    RunningStat stat_;
    QuantileSketch sketch_;
    EmpiricalCdf cdf_;
};

/** Flattened summary of one Histogram at snapshot time. */
struct HistogramSummary
{
    std::string name;
    u64 count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/**
 * Point-in-time flattening of a registry: every metric by name, sorted,
 * so reports and serialized output are deterministic.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, u64>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSummary> histograms;

    /** Counter value by name; 0 if absent. */
    u64 counterValue(const std::string &name) const;

    /**
     * Counters/gauges progression since `earlier` (counters subtract,
     * clamped at zero; gauges report current - earlier). Histogram
     * summaries carry over from this snapshot unchanged — distribution
     * deltas need the samples, which live in the registry, not here.
     */
    MetricsSnapshot deltaSince(const MetricsSnapshot &earlier) const;

    /** Counters (only) as a CounterBag, in snapshot (name) order. */
    CounterBag toCounterBag() const;

    /** Serialize as a JSON object. */
    void writeJson(std::ostream &os, bool pretty = false) const;
};

/**
 * The registry. Owns every handle it vends; handle references stay
 * valid for the registry's lifetime. Registering the same name with
 * the same type returns the existing handle; reusing a name across
 * types is a fatal configuration error.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create a counter. */
    Counter &counter(const std::string &name);
    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &name);
    /** Find-or-create a histogram (bounded sketch quantiles). */
    Histogram &histogram(const std::string &name);
    /**
     * Find-or-create a histogram that stores its full sample for
     * exact quantiles (unbounded memory — tests and small streams
     * only). Requesting a name already registered in sketch mode (or
     * vice versa) is a fatal configuration error.
     */
    Histogram &exactHistogram(const std::string &name);

    /** Lookup without creating; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Flatten every metric, name-sorted. */
    MetricsSnapshot snapshot() const;

    /**
     * Fold another registry in: counters add, gauges overwrite,
     * histograms merge (exact sample union in exact mode, sketch
     * merge otherwise — see Histogram::mergeFrom for the mixed-mode
     * rules). Metrics absent here are created in the source's mode.
     */
    void mergeFrom(const MetricRegistry &other);

    /**
     * Import a legacy CounterBag: each entry bumps the counter
     * `prefix + name` (bag merge semantics).
     */
    void importCounters(const CounterBag &bag,
                        const std::string &prefix = "");

    /** Number of registered metrics across all types. */
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

  private:
    /** Fatal if `name` is already registered under a different type. */
    void checkType(const std::string &name, const char *want) const;

    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace pc::obs

#endif // PC_OBS_METRICS_H
