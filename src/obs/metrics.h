/**
 * @file
 * Cross-layer metrics registry.
 *
 * Every layer of the serve-a-query pipeline (device, radio links, the
 * flash store, PocketSearch, the fault plan) registers typed handles —
 * counters, gauges, distributions — under hierarchical dotted names
 * ("device.radio.3g.retries", "simfs.reads") in one MetricRegistry.
 * The registry subsumes the hand-threaded CounterBag plumbing the
 * fault-injection experiments used: a snapshot flattens every metric
 * into a deterministic, name-sorted report; deltas isolate one phase
 * of an experiment; merges fold per-shard registries (e.g. one device
 * per serving path) into a fleet-wide view with full distribution
 * fidelity (parallel Welford combine + sample union).
 *
 * Handles returned by the registry are stable for the registry's
 * lifetime, so hot paths bump a cached pointer instead of re-hashing
 * the metric name per event.
 */

#ifndef PC_OBS_METRICS_H
#define PC_OBS_METRICS_H

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/types.h"

namespace pc::obs {

/** Monotonic event counter. */
class Counter
{
  public:
    /** Increment by `delta`. */
    void bump(u64 delta = 1) { value_ += delta; }
    /** Current value. */
    u64 value() const { return value_; }
    /** Registered name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    std::string name_;
    u64 value_ = 0;
};

/** Last-write-wins instantaneous value (energy so far, bytes live). */
class Gauge
{
  public:
    /** Set the current value. */
    void set(double v) { value_ = v; }
    /** Current value. */
    double value() const { return value_; }
    /** Registered name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricRegistry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    std::string name_;
    double value_ = 0.0;
};

/**
 * Value distribution with exact quantiles.
 *
 * Keeps a RunningStat for O(1) moments plus the full sample (via
 * EmpiricalCdf) so registry snapshots can report true quantiles — the
 * per-query latency/energy decompositions the paper's evaluation is
 * built on are quantile plots, and simulation scale makes storing the
 * samples cheap.
 */
class Histogram
{
  public:
    /** Fold one observation in. */
    void
    observe(double x)
    {
        stat_.add(x);
        cdf_.add(x);
    }

    /** Number of observations. */
    u64 count() const { return stat_.count(); }
    /** Mean; 0 when empty. */
    double mean() const { return stat_.mean(); }
    /** Minimum; 0 when empty. */
    double min() const { return stat_.min(); }
    /** Maximum; 0 when empty. */
    double max() const { return stat_.max(); }
    /** Sum of observations. */
    double sum() const { return stat_.sum(); }
    /** q-quantile (linear interpolation); 0 when empty. */
    double quantile(double q) const;

    /** Moments accumulator. */
    const RunningStat &stat() const { return stat_; }
    /** Stored sample. */
    const EmpiricalCdf &cdf() const { return cdf_; }

    /** Fold another histogram's observations into this one (exact). */
    void mergeFrom(const Histogram &other);

    /** Registered name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricRegistry;
    explicit Histogram(std::string name) : name_(std::move(name)) {}
    std::string name_;
    RunningStat stat_;
    EmpiricalCdf cdf_;
};

/** Flattened summary of one Histogram at snapshot time. */
struct HistogramSummary
{
    std::string name;
    u64 count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/**
 * Point-in-time flattening of a registry: every metric by name, sorted,
 * so reports and serialized output are deterministic.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, u64>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSummary> histograms;

    /** Counter value by name; 0 if absent. */
    u64 counterValue(const std::string &name) const;

    /**
     * Counters/gauges progression since `earlier` (counters subtract,
     * clamped at zero; gauges report current - earlier). Histogram
     * summaries carry over from this snapshot unchanged — distribution
     * deltas need the samples, which live in the registry, not here.
     */
    MetricsSnapshot deltaSince(const MetricsSnapshot &earlier) const;

    /** Counters (only) as a CounterBag, in snapshot (name) order. */
    CounterBag toCounterBag() const;

    /** Serialize as a JSON object. */
    void writeJson(std::ostream &os, bool pretty = false) const;
};

/**
 * The registry. Owns every handle it vends; handle references stay
 * valid for the registry's lifetime. Registering the same name with
 * the same type returns the existing handle; reusing a name across
 * types is a fatal configuration error.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create a counter. */
    Counter &counter(const std::string &name);
    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &name);
    /** Find-or-create a histogram. */
    Histogram &histogram(const std::string &name);

    /** Lookup without creating; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Flatten every metric, name-sorted. */
    MetricsSnapshot snapshot() const;

    /**
     * Fold another registry in: counters add, gauges overwrite,
     * histograms merge their full samples (exact quantiles survive).
     * Metrics absent here are created.
     */
    void mergeFrom(const MetricRegistry &other);

    /**
     * Import a legacy CounterBag: each entry bumps the counter
     * `prefix + name` (bag merge semantics).
     */
    void importCounters(const CounterBag &bag,
                        const std::string &prefix = "");

    /** Number of registered metrics across all types. */
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

  private:
    /** Fatal if `name` is already registered under a different type. */
    void checkType(const std::string &name, const char *want) const;

    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace pc::obs

#endif // PC_OBS_METRICS_H
