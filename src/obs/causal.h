/**
 * @file
 * Causal sync tracing: cross-tier trace propagation and the per-device
 * flight recorder.
 *
 * The community-model sync loop spans two machines — the device cache
 * and the cloud builder — and when a chaos run trips an invariant the
 * question is always *which device, which sync, why*. This module
 * gives every sync a deterministic causal identity (a TraceContext
 * whose trace/span ids derive from the device id and the sync
 * sequence, never from wall clocks or pointers, so traces are
 * byte-identical at any thread count) and records typed, fixed-size
 * SyncEvents from both tiers into a bounded per-device FlightRecorder
 * ring.
 *
 * Cost contract (bench_trace_overhead gates it):
 *  - recorder detached: the sync hot path performs no recording work
 *    beyond a null-pointer test — zero allocations, zero RNG draws,
 *    zero behaviour change;
 *  - recorder attached: SyncEvent is a POD and the ring is
 *    preallocated at construction, so recording itself still performs
 *    zero allocations and zero RNG draws on the hot path — attaching a
 *    recorder cannot perturb a seeded experiment's fault stream.
 *
 * The postmortem engine (harness/postmortem.h) folds these rings in
 * device-index order into explained InvariantReports; explainSync()
 * turns one trace's events into a per-stage critical-path breakdown
 * (pocket_shell `explain`, tools/trace_explain).
 */

#ifndef PC_OBS_CAUSAL_H
#define PC_OBS_CAUSAL_H

#include <vector>

#include "obs/json.h"
#include "obs/jsonparse.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace pc::obs {

/** Which tier of the sync pipeline emitted an event. */
enum class SyncTier : u8
{
    Device = 0, ///< The phone: request, delivery, verify, apply.
    Server = 1, ///< The cloud service: lookup, build, admission.
};

/** Display name of a tier ("device" / "server"). */
const char *syncTierName(SyncTier t);

/**
 * Typed stages of one device<->cloud sync, in causal order. Device
 * and server stages interleave within one trace: request -> lookup ->
 * build -> delivery attempts (with CRC verdicts) -> validate ->
 * commit/reject.
 */
enum class SyncStage : u8
{
    SyncRequest = 0, ///< Device opens the sync (the trace root).
    VersionLookup,   ///< Server resolves device/target versions.
    DeltaBuild,      ///< Server diffs from->to (from 0 = full install).
    Shed,            ///< Admission control dropped the sync.
    Escalate,        ///< Server forced a full install (bad streak).
    NoVersion,       ///< Target version off the history window.
    FrameDelivery,   ///< One radio attempt carrying the frame.
    Backoff,         ///< Retry backoff wait between attempts.
    CrcCheck,        ///< Integrity verdict on a delivered frame.
    Validate,        ///< Transactional validation verdict.
    Commit,          ///< Delta committed; version advanced.
    Reject,          ///< Verified delta rejected (version skew).
    Abort,           ///< Sync gave up (retries/budget exhausted).
    Sabotage,        ///< Chaos injected a silent table corruption.
    SloBreach,       ///< SLO burn-rate breach window (obs/slo.h).
};

/** Metric-safe display name of a stage ("sync_request", ...). */
const char *syncStageName(SyncStage s);

/** syncStageName's inverse; false when `name` is unknown. */
bool syncStageFromName(std::string_view name, SyncStage &out);

/**
 * Deterministic causal identity of one sync. The trace id derives
 * from (device id, per-device sync sequence) through mix64, so two
 * runs of the same fleet produce identical ids at any thread count;
 * span ids are a per-trace sequence with the root at 1.
 */
struct TraceContext
{
    u64 traceId = 0; ///< 0 = no active trace (recording disabled).
    u32 rootSpan = 0;
    u32 nextSpan = 1;

    /** Allocate the next span id within this trace. */
    u32 newSpan() { return nextSpan++; }

    /** True when a recorder opened this context. */
    bool valid() const { return traceId != 0; }
};

/** The deterministic trace-id derivation (exposed for tests). */
u64 deriveTraceId(u64 device_id, u64 seq);

/**
 * One typed sync event. Fixed-size POD on purpose: recording is a
 * struct copy into a preallocated ring — no allocation, ever.
 * `detail` is stage-specific: delta op count (DeltaBuild), frame
 * error code (CrcCheck), DeltaApplyError (Validate/Reject), apply op
 * count (Commit), canonical table digest (Sabotage).
 */
struct SyncEvent
{
    u64 traceId = 0;
    u32 span = 0;
    u32 parent = 0; ///< Parent span id; 0 = root.
    SyncTier tier = SyncTier::Device;
    SyncStage stage = SyncStage::SyncRequest;
    bool ok = true;
    u32 attempt = 0; ///< Radio attempt number (delivery/backoff/CRC).
    u64 fromVersion = 0;
    u64 toVersion = 0;
    u64 bytes = 0;  ///< Wire bytes (delivery events).
    u64 detail = 0; ///< Stage-specific (see struct comment).
    SimTime start = 0;
    SimTime duration = 0;
};

/**
 * Bounded per-device ring of sync events — the flight recorder. The
 * ring is preallocated at construction; once full, the oldest event
 * is overwritten and counted, so a long soak keeps the most recent
 * causal window. Single-writer by design (one device), like the
 * device itself.
 */
class FlightRecorder
{
  public:
    /** Default ring capacity (events, not syncs). */
    static constexpr std::size_t kDefaultCapacity = 256;

    /**
     * @param device_id Stable device identity (fleet index) the trace
     *        ids derive from.
     * @param capacity Ring capacity; preallocated here so record()
     *        never allocates.
     */
    explicit FlightRecorder(u64 device_id,
                            std::size_t capacity = kDefaultCapacity);

    /** Device identity trace ids derive from. */
    u64 deviceId() const { return deviceId_; }

    /** Open the next sync's trace context (deterministic ids). */
    TraceContext beginTrace();

    /** Record one event (overwrites the oldest when full; no alloc). */
    void record(const SyncEvent &ev);

    /** Events ever recorded (including overwritten). */
    u64 recorded() const { return recorded_; }

    /** Events overwritten by the ring bound. */
    u64 dropped() const { return dropped_; }

    /** Ring capacity. */
    std::size_t capacity() const { return ring_.capacity(); }

    /** Events currently retained. */
    std::size_t size() const { return ring_.size(); }

    /** Trace id of the most recently opened trace (0 = none yet). */
    u64 lastTraceId() const { return lastTraceId_; }

    /** Retained events, oldest first (cold path: copies). */
    std::vector<SyncEvent> events() const;

    /** Retained events of one trace, oldest first. */
    std::vector<SyncEvent> trace(u64 trace_id) const;

    /**
     * Publish ring pressure into a registry: bumps the
     * "obs.flight.recorded" / "obs.flight.dropped" counters by the
     * current totals. Call once, when the device's run is over.
     */
    void publishMetrics(MetricRegistry &reg) const;

  private:
    u64 deviceId_;
    u64 seq_ = 0;
    u64 lastTraceId_ = 0;
    std::vector<SyncEvent> ring_; ///< Preallocated; ring via head_.
    std::size_t head_ = 0;        ///< Oldest element once saturated.
    u64 recorded_ = 0;
    u64 dropped_ = 0;
};

/** One row of a per-stage critical-path breakdown. */
struct ExplainRow
{
    SyncEvent event;
    /**
     * Share of the trace's critical path this event's duration is.
     * Server decisions and verdicts are instantaneous markers in
     * simulated time (their cost rides inside the radio exchange), so
     * their share is 0 and the device-side spans partition the path.
     */
    double share = 0.0;
};

/** Per-stage latency breakdown of one sync trace. */
struct SyncExplain
{
    u64 traceId = 0;
    /**
     * End-to-end critical path: the sum of device-tier durations
     * (radio attempts, backoffs, apply) — exactly the sync's reported
     * time.
     */
    SimTime criticalPath = 0;
    std::vector<ExplainRow> rows; ///< Events in causal order.
};

/**
 * Build the critical-path breakdown for `trace_id` (0 = the last
 * trace present in `events`). Rows keep event order; shares are
 * durations over the device-tier total.
 */
SyncExplain explainSync(const std::vector<SyncEvent> &events,
                        u64 trace_id = 0);

/**
 * Serialize events as a deterministic JSON array (the postmortem
 * chain format). Trace ids are hex strings — they exceed 2^53 and
 * must survive double-typed JSON readers.
 */
void writeSyncEvents(JsonWriter &w, const std::vector<SyncEvent> &events);

/**
 * Parse a writeSyncEvents() array back (tools/trace_explain). Events
 * with unknown stages/tiers fail the parse. @return False on shape
 * mismatch.
 */
bool readSyncEvents(const JsonValue &arr, std::vector<SyncEvent> &out);

} // namespace pc::obs

#endif // PC_OBS_CAUSAL_H
