#include "obs/health.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "obs/json.h"
#include "obs/report.h"
#include "util/logging.h"

namespace pc::obs::health {

namespace {

const char kPrefix[] = "health.";
const char kBusySuffix[] = ".busy_ns";

/** Pipeline ledgers: reported, never ranked (they re-count spans the
 *  per-component ledgers already hold). */
bool
isPipeline(const std::string &component)
{
    return component == "device.query" || component == "device.sync";
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

HealthAccountant::HealthAccountant(MetricRegistry &reg) : reg_(&reg)
{
    cpuBusy_ = &reg.counter("health.device.cpu.busy_ns");
    cpuOps_ = &reg.counter("health.device.cpu.ops");
    flashBusy_ = &reg.counter("health.device.flash.busy_ns");
    flashOps_ = &reg.counter("health.device.flash.ops");
    backoffIdle_ = &reg.counter("health.device.radio.backoff_ns");
    queryBusy_ = &reg.counter("health.device.query.busy_ns");
    queryOps_ = &reg.counter("health.device.query.ops");
    syncBusy_ = &reg.counter("health.device.sync.busy_ns");
    syncOps_ = &reg.counter("health.device.sync.ops");
    syncBytes_ = &reg.counter("health.device.sync.bytes");
}

void
HealthAccountant::onQuery(const QueryHealthSample &s)
{
    queryBusy_->bump(u64(std::max<SimTime>(0, s.total)));
    queryOps_->bump();
    // CPU = every span the device's own silicon serves; radio busy is
    // charged by RadioLink::commit, backoff is idle air time.
    cpuBusy_->bump(u64(std::max<SimTime>(0, s.probe) +
                       std::max<SimTime>(0, s.render) +
                       std::max<SimTime>(0, s.misc)));
    cpuOps_->bump();
    if (s.fetch > 0) {
        flashBusy_->bump(u64(s.fetch));
        flashOps_->bump();
    }
    if (s.backoff > 0)
        backoffIdle_->bump(u64(s.backoff));
}

void
HealthAccountant::onSync(const SyncHealthSample &s)
{
    syncBusy_->bump(u64(std::max<SimTime>(0, s.radio) +
                        std::max<SimTime>(0, s.apply)));
    syncOps_->bump();
    syncBytes_->bump(s.bytes);
    if (s.apply > 0) {
        cpuBusy_->bump(u64(s.apply));
        cpuOps_->bump();
    }
    if (s.backoff > 0)
        backoffIdle_->bump(u64(s.backoff));
}

void
HealthAccountant::onMissSync(u64 synced, SimTime radioTime)
{
    syncBusy_->bump(u64(std::max<SimTime>(0, radioTime)));
    syncOps_->bump(synced);
}

std::pair<Counter *, Counter *>
HealthAccountant::radioLedger(const std::string &link)
{
    const std::string base = "health.device.radio." + link;
    return {&reg_->counter(base + ".busy_ns"),
            &reg_->counter(base + ".ops")};
}

HealthAnalysis
analyzeHealth(const MetricsSnapshot &snap, std::size_t devices,
              SimTime horizon)
{
    pc_assert(horizon > 0, "analyzeHealth: non-positive horizon");
    HealthAnalysis out;
    out.devices = devices;
    out.horizon = horizon;
    out.queries = snap.counterValue("device.queries");

    for (const auto &[name, busy] : snap.counters) {
        if (name.rfind(kPrefix, 0) != 0 || !endsWith(name, kBusySuffix))
            continue;
        ComponentHealth c;
        c.name = name.substr(sizeof(kPrefix) - 1,
                             name.size() - (sizeof(kPrefix) - 1) -
                                 (sizeof(kBusySuffix) - 1));
        c.busyNs = busy;
        c.ops = snap.counterValue(std::string(kPrefix) + c.name +
                                  ".ops");
        // Device components replicate per device; server components
        // are one shared service ticking the same simulated horizon.
        const double capacity =
            c.name.rfind("device.", 0) == 0
                ? double(horizon) * double(std::max<std::size_t>(
                                        1, devices))
                : double(horizon);
        c.utilization = double(c.busyNs) / capacity;
        c.serviceNs = c.ops ? double(c.busyNs) / double(c.ops) : 0.0;
        c.demandNs = out.queries
                         ? double(c.busyNs) / double(out.queries)
                         : 0.0;
        (isPipeline(c.name) ? out.pipelines : out.ranked)
            .push_back(std::move(c));
    }

    std::sort(out.ranked.begin(), out.ranked.end(),
              [](const ComponentHealth &a, const ComponentHealth &b) {
                  if (a.utilization != b.utilization)
                      return a.utilization > b.utilization;
                  return a.name < b.name;
              });
    if (!out.ranked.empty() && out.ranked.front().utilization > 0.0) {
        out.bottleneck = out.ranked.front().name;
        out.maxUtilization = out.ranked.front().utilization;
        out.headroom = 1.0 / out.maxUtilization;
    }
    return out;
}

namespace {

void
writeComponent(JsonWriter &w, const ComponentHealth &c,
               std::size_t rank)
{
    w.beginObject();
    w.kv("name", c.name);
    if (rank)
        w.kv("rank", u64(rank));
    w.kv("busy_ns", c.busyNs);
    w.kv("ops", c.ops);
    w.kv("utilization", c.utilization);
    w.kv("service_ns", c.serviceNs);
    w.kv("demand_ns", c.demandNs);
    w.endObject();
}

void
writeSlo(JsonWriter &w, const SloStatus &st)
{
    w.beginObject();
    w.kv("name", st.spec.name);
    w.kv("kind", sloKindName(st.spec.kind));
    if (st.spec.kind == SloKind::LatencyQuantile) {
        w.kv("quantile", st.spec.quantile);
        w.kv("target_ms", st.spec.targetMs);
    } else {
        w.kv("objective", st.spec.objective);
    }
    w.kv("events", st.events);
    w.kv("bad", st.bad);
    w.kv("attainment", st.attainment);
    w.kv("budget_allowed", st.budgetAllowed);
    w.kv("budget_consumed", st.budgetConsumed);
    w.kv("budget_remaining", st.budgetRemaining);
    w.kv("met", u64(st.met));
    w.kv("short_burn", st.shortBurn);
    w.kv("long_burn", st.longBurn);
    w.kv("burning", u64(st.burning));
    w.kv("breaches", u64(st.breachWindows.size()));
    w.endObject();
}

void
writeAnalysis(JsonWriter &w, const HealthAnalysis &a)
{
    w.beginObject();
    w.kv("devices", u64(a.devices));
    w.kv("horizon_ns", a.horizon);
    w.kv("queries", a.queries);
    w.key("bottleneck");
    w.beginObject();
    w.kv("name", a.bottleneck);
    w.kv("utilization", a.maxUtilization);
    w.kv("headroom_x", a.headroom);
    w.endObject();
    w.key("components");
    w.beginArray();
    for (std::size_t i = 0; i < a.ranked.size(); ++i)
        writeComponent(w, a.ranked[i], i + 1);
    w.endArray();
    w.key("pipelines");
    w.beginArray();
    for (const ComponentHealth &c : a.pipelines)
        writeComponent(w, c, 0);
    w.endArray();
    w.key("slos");
    w.beginArray();
    for (const SloStatus &st : a.slos)
        writeSlo(w, st);
    w.endArray();
    w.endObject();
}

} // namespace

void
writeHealthJson(std::ostream &os, const HealthReport &r)
{
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.key("health");
    w.beginObject();
    w.kv("id", r.id);
    w.key("notes");
    w.beginObject();
    for (const auto &[k, v] : r.notes)
        w.kv(k, v);
    w.endObject();
    w.key("scenarios");
    w.beginObject();
    for (const auto &[name, analysis] : r.scenarios) {
        w.key(name);
        writeAnalysis(w, analysis);
    }
    w.endObject();
    w.endObject();
    w.endObject();
    os << '\n';
}

std::string
writeHealthFile(const HealthReport &r)
{
    const std::string dir = BenchReport::outputDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/BENCH_" + r.id + ".json";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return std::string();
    writeHealthJson(os, r);
    os.flush();
    return os ? path : std::string();
}

} // namespace pc::obs::health
