#include "obs/timeseries.h"

#include <algorithm>

#include "obs/csvutil.h"
#include "util/logging.h"

namespace pc::obs {

TimeSeries::TimeSeries(SimTime windowWidth, std::size_t maxWindows)
    : width_(windowWidth), maxWindows_(maxWindows)
{
    pc_assert(windowWidth > 0, "TimeSeries window width must be > 0");
    pc_assert(maxWindows >= 2, "TimeSeries needs at least 2 windows");
}

SeriesWindow &
TimeSeries::windowFor(SimTime t)
{
    pc_assert(t >= 0, "TimeSeries sim time must be non-negative");
    for (;;) {
        const SimTime start = (t / width_) * width_;
        auto it = std::lower_bound(
            windows_.begin(), windows_.end(), start,
            [](const SeriesWindow &w, SimTime s) { return w.start < s; });
        if (it != windows_.end() && it->start == start)
            return *it;
        if (windows_.size() >= maxWindows_) {
            // Inserting would exceed the cap: halve resolution and
            // retry (the width change moves the target window start).
            downsample();
            continue;
        }
        SeriesWindow w;
        w.start = start;
        w.width = width_;
        return *windows_.insert(it, std::move(w));
    }
}

void
TimeSeries::downsample()
{
    width_ *= 2;
    pc_assert(width_ > 0, "TimeSeries window width overflow");
    ++downsamples_;
    std::vector<SeriesWindow> merged;
    merged.reserve(windows_.size() / 2 + 1);
    for (auto &w : windows_) {
        const SimTime start = (w.start / width_) * width_;
        if (!merged.empty() && merged.back().start == start) {
            SeriesWindow &dst = merged.back();
            for (const auto &[n, v] : w.counters)
                dst.counters[n] += v;
            for (const auto &[n, v] : w.accums)
                dst.accums[n] += v;
            for (const auto &[n, s] : w.points)
                dst.points[n].merge(s);
            for (const auto &[n, s] : w.sketches)
                dst.sketches[n].mergeFrom(s);
        } else {
            w.start = start;
            w.width = width_;
            merged.push_back(std::move(w));
        }
    }
    windows_ = std::move(merged);
}

void
TimeSeries::recordCounter(SimTime t, const std::string &name, u64 delta)
{
    windowFor(t).counters[name] += delta;
}

void
TimeSeries::recordAccum(SimTime t, const std::string &name, double delta)
{
    windowFor(t).accums[name] += delta;
}

void
TimeSeries::recordValue(SimTime t, const std::string &name, double x)
{
    SeriesWindow &w = windowFor(t);
    w.points[name].add(x);
    w.sketches[name].add(x);
}

std::vector<double>
TimeSeries::counterSeries(const std::string &name) const
{
    std::vector<double> out;
    out.reserve(windows_.size());
    for (const auto &w : windows_) {
        auto it = w.counters.find(name);
        out.push_back(it == w.counters.end() ? 0.0 : double(it->second));
    }
    return out;
}

std::vector<double>
TimeSeries::accumSeries(const std::string &name) const
{
    std::vector<double> out;
    out.reserve(windows_.size());
    for (const auto &w : windows_) {
        auto it = w.accums.find(name);
        out.push_back(it == w.accums.end() ? 0.0 : it->second);
    }
    return out;
}

std::vector<double>
TimeSeries::valueMeanSeries(const std::string &name) const
{
    std::vector<double> out;
    out.reserve(windows_.size());
    for (const auto &w : windows_) {
        auto it = w.points.find(name);
        out.push_back(it == w.points.end() ? 0.0 : it->second.mean());
    }
    return out;
}

void
TimeSeries::writeCsv(std::ostream &os) const
{
    os << "start_s,width_s,kind,name,value,count,mean,p50,p90,p99\n";
    for (const auto &w : windows_) {
        const std::string at = csvNumber(double(w.start) / 1e9) + ',' +
                               csvNumber(double(w.width) / 1e9) + ',';
        for (const auto &[n, v] : w.counters) {
            os << at << "counter," << csvField(n) << ','
               << csvNumber(double(v)) << ",0,0,0,0,0\n";
        }
        for (const auto &[n, v] : w.accums) {
            os << at << "accum," << csvField(n) << ',' << csvNumber(v)
               << ",0,0,0,0,0\n";
        }
        for (const auto &[n, s] : w.points) {
            const auto sk = w.sketches.find(n);
            const QuantileSketch *q =
                sk == w.sketches.end() ? nullptr : &sk->second;
            os << at << "value," << csvField(n) << ','
               << csvNumber(s.sum()) << ',' << csvNumber(double(s.count()))
               << ',' << csvNumber(s.mean()) << ','
               << csvNumber(q ? q->quantile(0.50) : 0.0) << ','
               << csvNumber(q ? q->quantile(0.90) : 0.0) << ','
               << csvNumber(q ? q->quantile(0.99) : 0.0) << '\n';
        }
    }
}

} // namespace pc::obs
