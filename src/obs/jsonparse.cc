#include "obs/jsonparse.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pc::obs {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number() : fallback;
}

std::string
JsonValue::strOr(std::string_view key, const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str() : fallback;
}

/**
 * Recursive-descent parser over a string_view cursor. Nesting is
 * capped at kMaxDepth: the writer emits at most a handful of levels,
 * and the cap turns adversarially deep input (a corrupt or malicious
 * artifact full of '[') into a clean parse error instead of stack
 * exhaustion — bench_diff must never be wedged by a bad file.
 */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after document");
        return true;
    }

  private:
    /** Deepest container nesting accepted (writer output uses < 10). */
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (error_) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    eat(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
          case '[': {
            if (depth_ >= kMaxDepth)
                return fail("nesting too deep");
            ++depth_;
            const bool ok = text_[pos_] == '{' ? parseObject(out)
                                               : parseArray(out);
            --depth_;
            return ok;
          }
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return literal("null") || fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.object_.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.array_.push_back(std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The writer only escapes control characters, which
                // fit one byte; encode the rest as UTF-8 two-byte max.
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xC0 | (code >> 6));
                    out += char(0x80 | (code & 0x3F));
                } else {
                    out += char(0xE0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3F));
                    out += char(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("malformed number");
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string *error_;
};

bool
parseJson(std::string_view text, JsonValue &out, std::string *error)
{
    return JsonParser(text, error).parse(out);
}

bool
parseJsonFile(const std::string &path, JsonValue &out, std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    return parseJson(buf.str(), out, error);
}

} // namespace pc::obs
