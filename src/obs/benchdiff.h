/**
 * @file
 * Bench regression gate: compare two BENCH_*.json reports (or trees).
 *
 * The bench binaries emit deterministic machine-readable reports; CI
 * keeps a committed baseline tree. The gate flattens each report into
 * `name -> value` pairs (scalar metrics, histogram summary fields,
 * attached registry counters/gauges/histograms), pairs baseline
 * against current, and flags every value whose drift exceeds its
 * tolerance — plus metrics that vanished, which are regressions too
 * (a silently dropped metric is how coverage rots). Tolerances are
 * per-metric via first-match-wins glob rules ('*' wildcards) over a
 * default, so "p99 may wobble 10%, counters must match exactly" is
 * one rule away.
 *
 * The comparison is direction-agnostic on purpose: this gates a
 * deterministic simulation, so *any* unexplained drift — faster,
 * slower, fewer retries — means behaviour changed and someone should
 * look. The CLI wrapper (tools/bench_diff.cc) exits nonzero when
 * ok() is false.
 */

#ifndef PC_OBS_BENCHDIFF_H
#define PC_OBS_BENCHDIFF_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pc::obs {

class JsonValue;

/** One report flattened to comparable numbers. */
struct BenchMetrics
{
    std::string bench; ///< Report id ("fig15a_latency").
    std::map<std::string, double> values;
};

/**
 * Flatten a parsed BENCH_*.json document. @return False (with
 * `*error` set when non-null) when the document is not a bench
 * report.
 */
bool flattenBenchReport(const JsonValue &root, BenchMetrics &out,
                        std::string *error = nullptr);

/**
 * Flatten a {"health":...} artifact (obs/health.h): per scenario, the
 * bottleneck verdict, every component's rank/busy/ops/utilization,
 * and every SLO's attainment/budget/burn become comparable numbers —
 * so a bottleneck flip or a budget regression trips the same gate a
 * metric drift does. @return False when the document has no "health"
 * object.
 */
bool flattenHealthReport(const JsonValue &root, BenchMetrics &out,
                         std::string *error = nullptr);

/** Glob match with '*' wildcards (matches any run, including empty). */
bool globMatch(const std::string &pattern, const std::string &name);

/** Per-metric tolerance override; first matching rule wins. */
struct DiffRule
{
    std::string pattern; ///< Glob over the flattened metric name.
    double relTol = 0.0; ///< Allowed |cur-base| / max(|base|,|cur|).
    double absTol = 0.0; ///< Absolute slack (covers base == 0).
};

/** Gate configuration. */
struct DiffConfig
{
    /** Fallback when no rule matches: exact match required. */
    double defaultRelTol = 0.0;
    /** Tiny absolute slack so 0-vs-1e-300 noise never trips. */
    double defaultAbsTol = 1e-12;
    std::vector<DiffRule> rules;
};

/** Verdict for one flattened metric. */
struct DiffEntry
{
    enum class Status {
        Ok,      ///< Within tolerance.
        Changed, ///< Drift beyond tolerance — regression.
        Missing, ///< In baseline, gone from current — regression.
        Added,   ///< New in current — reported, not a failure.
    };
    std::string bench;
    std::string name;
    double base = 0.0;
    double current = 0.0;
    double relChange = 0.0;
    Status status = Status::Ok;
};

/** Comparison outcome for one report pair (or a whole tree). */
struct DiffResult
{
    std::vector<DiffEntry> entries;
    std::size_t compared = 0;
    std::size_t changed = 0;
    std::size_t missing = 0;
    std::size_t added = 0;

    /** True when nothing regressed (changed == missing == 0). */
    bool ok() const { return changed == 0 && missing == 0; }

    /** Fold another result in (tree = sum over report pairs). */
    void mergeFrom(const DiffResult &other);
};

/** Compare one baseline report against its current counterpart. */
DiffResult diffReports(const BenchMetrics &base,
                       const BenchMetrics &current,
                       const DiffConfig &cfg = {});

/**
 * Human-readable summary: one line per non-Ok entry (plus Ok lines
 * when `verbose`), then totals.
 */
void writeDiffReport(std::ostream &os, const DiffResult &result,
                     bool verbose = false);

} // namespace pc::obs

#endif // PC_OBS_BENCHDIFF_H
