/**
 * @file
 * Deterministic 64-bit hashing used for query strings and result URLs.
 *
 * PocketSearch identifies queries and search results by 64-bit hashes
 * (Figure 10 of the paper): the hash table keys entries by
 * hash(query, slot) and points at results by hash(url). Determinism across
 * runs and platforms matters because hashes are persisted in the simulated
 * flash database files and exchanged with the (simulated) server during
 * cache updates.
 */

#ifndef PC_UTIL_HASH_H
#define PC_UTIL_HASH_H

#include <string_view>

#include "util/types.h"

namespace pc {

/** FNV-1a 64-bit offset basis. */
inline constexpr u64 kFnvOffset = 14695981039346656037ull;
/** FNV-1a 64-bit prime. */
inline constexpr u64 kFnvPrime = 1099511628211ull;

/**
 * FNV-1a hash of a byte string.
 *
 * @param data Bytes to hash.
 * @param seed Starting state; chain calls to hash multiple fields.
 * @return 64-bit hash value.
 */
constexpr u64
fnv1a(std::string_view data, u64 seed = kFnvOffset)
{
    u64 h = seed;
    for (char c : data) {
        h ^= u64(u8(c));
        h *= kFnvPrime;
    }
    return h;
}

/** Finalizer from SplitMix64; decorrelates consecutive integer keys. */
constexpr u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Hash of a query string for hash-table placement.
 *
 * @param query The raw query string as typed by the user.
 * @param slot Secondary argument: entry index when a query owns more than
 *             one hash-table entry (more than two search results). This is
 *             the "second argument of the hash function" of Section 5.2.1.
 */
constexpr u64
queryHash(std::string_view query, u32 slot = 0)
{
    return mix64(fnv1a(query) ^ (u64(slot) << 1));
}

/** Hash of a search-result URL; doubles as the database record key. */
constexpr u64
urlHash(std::string_view url)
{
    return mix64(fnv1a(url));
}

/** Combine two hashes (boost-style). */
constexpr u64
hashCombine(u64 a, u64 b)
{
    return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

} // namespace pc

#endif // PC_UTIL_HASH_H
