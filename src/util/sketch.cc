#include "util/sketch.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pc {

QuantileSketch::QuantileSketch(u32 k)
    : k_(k), coinState_(0x9e3779b97f4a7c15ull)
{
    pc_assert(k_ >= 8, "QuantileSketch needs k >= 8");
    levels_.emplace_back();
    levels_.front().reserve(k_);
}

bool
QuantileSketch::coin()
{
    // xorshift64: fixed seed, so compaction choices replay identically
    // run to run (byte-identical bench output depends on it).
    coinState_ ^= coinState_ << 13;
    coinState_ ^= coinState_ >> 7;
    coinState_ ^= coinState_ << 17;
    return (coinState_ & 1) != 0;
}

std::size_t
QuantileSketch::levelCapacity(std::size_t level, std::size_t height) const
{
    // KLL geometry: the top level holds k items, each level below
    // shrinks by 2/3, floored at 2 so every level can still compact.
    const double c = 2.0 / 3.0;
    const double cap =
        std::ceil(double(k_) * std::pow(c, double(height - 1 - level)));
    return std::max<std::size_t>(2, std::size_t(cap));
}

std::size_t
QuantileSketch::capacityTotal() const
{
    std::size_t total = 0;
    for (std::size_t l = 0; l < levels_.size(); ++l)
        total += levelCapacity(l, levels_.size());
    return total;
}

std::size_t
QuantileSketch::retained() const
{
    std::size_t total = 0;
    for (const auto &lvl : levels_)
        total += lvl.size();
    return total;
}

void
QuantileSketch::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    levels_.front().push_back(x);
    if (retained() > capacityTotal())
        compress();
}

void
QuantileSketch::mergeFrom(const QuantileSketch &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    n_ += other.n_;
    if (levels_.size() < other.levels_.size())
        levels_.resize(other.levels_.size());
    for (std::size_t l = 0; l < other.levels_.size(); ++l) {
        levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                          other.levels_[l].end());
    }
    while (retained() > capacityTotal())
        compress();
}

void
QuantileSketch::compress()
{
    // Compact the lowest level that is over its own budget; one such
    // level must exist whenever the total budget is exceeded.
    while (retained() > capacityTotal()) {
        std::size_t victim = levels_.size();
        for (std::size_t l = 0; l < levels_.size(); ++l) {
            if (levels_[l].size() > levelCapacity(l, levels_.size())) {
                victim = l;
                break;
            }
        }
        if (victim == levels_.size())
            return; // every level within budget (unreachable, but safe)
        compactLevel(victim);
    }
}

void
QuantileSketch::compactLevel(std::size_t level)
{
    pc_assert(level + 1 <= kMaxLevels, "QuantileSketch level overflow");
    if (level + 1 >= levels_.size())
        levels_.emplace_back();

    auto &buf = levels_[level];
    std::sort(buf.begin(), buf.end());

    // Odd count: one item stays behind at this level (weight must be
    // conserved — promoting an odd half would over/under count). The
    // coin picks which end survives so no systematic bias creeps in.
    std::size_t lo = 0;
    std::size_t hi = buf.size();
    if ((hi - lo) % 2 != 0) {
        if (coin())
            ++lo; // keep the smallest
        else
            --hi; // keep the largest
    }

    // Promote every other item of the even remainder; offset by coin.
    const std::size_t off = coin() ? 1 : 0;
    auto &up = levels_[level + 1];
    for (std::size_t i = lo + off; i < hi; i += 2)
        up.push_back(buf[i]);

    // The survivors of the odd-count rule stay; everything else dies.
    std::vector<double> keep;
    if (lo == 1)
        keep.push_back(buf.front());
    else if (hi == buf.size() - 1)
        keep.push_back(buf.back());
    buf = std::move(keep);
    ++compactions_;
}

std::vector<std::pair<double, u64>>
QuantileSketch::weightedItems() const
{
    std::vector<std::pair<double, u64>> items;
    items.reserve(retained());
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        const u64 w = u64(1) << l;
        for (double v : levels_[l])
            items.emplace_back(v, w);
    }
    std::sort(items.begin(), items.end());
    return items;
}

double
QuantileSketch::quantile(double q) const
{
    if (n_ == 0)
        return 0.0;
    if (q <= 0.0)
        return min();
    if (q >= 1.0)
        return max();
    if (n_ == 1)
        return min();

    const auto items = weightedItems();

    // Same rank arithmetic as EmpiricalCdf::quantile: target the
    // fractional order statistic q*(n-1) and interpolate between the
    // items covering ranks floor(t) and floor(t)+1. With all weights
    // at 1 this reproduces the exact empirical quantile bit for bit.
    const double pos = q * double(n_ - 1);
    const u64 r0 = u64(pos);
    const double frac = pos - double(r0);

    double v0 = items.back().first;
    double v1 = items.back().first;
    u64 cum = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        cum += items[i].second;
        if (cum > r0) {
            v0 = items[i].first;
            v1 = (cum > r0 + 1 || i + 1 == items.size())
                     ? items[i].first
                     : items[i + 1].first;
            break;
        }
    }
    return v0 * (1.0 - frac) + v1 * frac;
}

double
QuantileSketch::rank(double x) const
{
    if (n_ == 0)
        return 0.0;
    u64 below = 0;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        const u64 w = u64(1) << l;
        for (double v : levels_[l]) {
            if (v <= x)
                below += w;
        }
    }
    return double(below) / double(n_);
}

} // namespace pc
