/**
 * @file
 * Small string helpers: formatting of byte sizes / durations for reports,
 * splitting/joining, and printf-style std::string formatting.
 */

#ifndef PC_UTIL_STRINGS_H
#define PC_UTIL_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace pc {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** "1.5 MB"-style human-readable byte counts (binary units). */
std::string humanBytes(Bytes b);

/** "378 ms" / "1.25 s"-style durations from SimTime. */
std::string humanTime(SimTime t);

/** Split on a single character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** ASCII lower-casing (queries are normalized to lower case). */
std::string toLower(std::string_view s);

/** True if `needle` occurs inside `haystack` (ASCII, case-sensitive). */
bool contains(std::string_view haystack, std::string_view needle);

/** True if `s` starts with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Strip a leading scheme and "www." from a URL, for substring matching. */
std::string_view stripUrlDecoration(std::string_view url);

} // namespace pc

#endif // PC_UTIL_STRINGS_H
