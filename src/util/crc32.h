/**
 * @file
 * CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320) over byte strings.
 *
 * The snapshot commit protocol (core/persistence.cc) checksums every
 * snapshot slot so that torn writes and flash bit rot are detected at
 * restore time instead of being silently loaded as cache state. A CRC
 * is the right tool here: the threat model is accidental corruption
 * (power loss mid-program, wear-induced bit flips), not an adversary.
 */

#ifndef PC_UTIL_CRC32_H
#define PC_UTIL_CRC32_H

#include <string_view>

#include "util/types.h"

namespace pc {

/**
 * CRC-32 of a byte string.
 *
 * @param data Bytes to checksum.
 * @param seed Previous CRC to continue from; chain calls to checksum
 *             multiple fields without concatenating them first.
 * @return 32-bit checksum ("123456789" -> 0xCBF43926).
 */
u32 crc32(std::string_view data, u32 seed = 0);

} // namespace pc

#endif // PC_UTIL_CRC32_H
