#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pc {

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (needed > 0) {
        out.resize(std::size_t(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
humanBytes(Bytes b)
{
    if (b >= 1024 * kGiB)
        return strformat("%.2f TiB", double(b) / double(1024 * kGiB));
    if (b >= kGiB)
        return strformat("%.2f GiB", double(b) / double(kGiB));
    if (b >= kMiB)
        return strformat("%.2f MiB", double(b) / double(kMiB));
    if (b >= kKiB)
        return strformat("%.2f KiB", double(b) / double(kKiB));
    return strformat("%llu B", (unsigned long long)b);
}

std::string
humanTime(SimTime t)
{
    if (t >= kSecond)
        return strformat("%.3f s", toSeconds(t));
    if (t >= kMillisecond)
        return strformat("%.3f ms", toMillis(t));
    if (t >= kMicrosecond)
        return strformat("%.3f us", double(t) / double(kMicrosecond));
    return strformat("%lld ns", (long long)t);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
contains(std::string_view haystack, std::string_view needle)
{
    return haystack.find(needle) != std::string_view::npos;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string_view
stripUrlDecoration(std::string_view url)
{
    for (std::string_view scheme : {"https://", "http://"}) {
        if (startsWith(url, scheme)) {
            url.remove_prefix(scheme.size());
            break;
        }
    }
    if (startsWith(url, "www."))
        url.remove_prefix(4);
    return url;
}

} // namespace pc
