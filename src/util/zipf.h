/**
 * @file
 * Zipf/zeta-distributed rank sampling.
 *
 * Mobile query and clicked-result popularity in the paper is extremely
 * head-heavy (Figure 4: the 6000 most popular of millions of distinct
 * queries cover ~60% of the volume). A (truncated) Zipf distribution over
 * ranks is the standard model for such popularity curves; ZipfSampler
 * produces ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^s.
 *
 * The implementation uses Hormann & Derflinger rejection-inversion, which
 * is O(1) per sample independent of n, so we can model universes of
 * millions of distinct queries without building million-entry tables.
 */

#ifndef PC_UTIL_ZIPF_H
#define PC_UTIL_ZIPF_H

#include "util/rng.h"
#include "util/types.h"

namespace pc {

/**
 * Truncated Zipf(s) sampler over ranks 0..n-1 with O(1) sampling.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of ranks (support size). @pre n >= 1.
     * @param s Skew exponent. s = 0 is uniform; larger is more head-heavy.
     *          @pre s >= 0 and s != 1 handled exactly (s == 1 supported).
     */
    ZipfSampler(u64 n, double s);

    /** Draw a rank in [0, n). Rank 0 is the most popular item. */
    u64 sample(Rng &rng) const;

    /** Probability mass of a given rank under the truncated Zipf. */
    double pmf(u64 rank) const;

    /** Cumulative mass of ranks [0, k], i.e. the head share of top-(k+1). */
    double cdf(u64 rank) const;

    /** Support size. */
    u64 size() const { return n_; }

    /** Skew exponent. */
    double skew() const { return s_; }

    /**
     * Find the smallest head size h such that ranks [0, h) carry at least
     * the given share of total mass. Used to calibrate generators against
     * the paper's "top 6000 queries = 60% of volume" style statements.
     */
    u64 headForShare(double share) const;

  private:
    /** H(x) = integral of the rank density; see Hormann & Derflinger. */
    double hIntegral(double x) const;
    /** Inverse of hIntegral. */
    double hIntegralInverse(double x) const;
    /** Point density helper. */
    double h(double x) const;

    u64 n_;
    double s_;
    double hX1_;         // hIntegral(1.5) - 1
    double hN_;          // hIntegral(n + 0.5)
    double harmonic_;    // generalized harmonic number H_{n,s} (normalizer)
};

/** Generalized harmonic number H_{n,s} = sum_{k=1..n} k^-s. */
double generalizedHarmonic(u64 n, double s);

/**
 * Solve for the Zipf exponent s such that the top `head` ranks of an
 * n-rank Zipf carry approximately `share` of the mass. Bisection over
 * s in [0.4, 3.0]; used by workload calibration.
 */
double solveZipfExponent(u64 n, u64 head, double share);

} // namespace pc

#endif // PC_UTIL_ZIPF_H
