/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Everything in the repository that draws randomness goes through Rng so
 * that a single seed reproduces an entire experiment bit-for-bit. The
 * engine is xoshiro256**, seeded through SplitMix64.
 */

#ifndef PC_UTIL_RNG_H
#define PC_UTIL_RNG_H

#include <cmath>
#include <vector>

#include "util/types.h"

namespace pc {

/**
 * Small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographic; plenty for workload modelling. Copyable so that
 * sub-streams can be forked with fork().
 */
class Rng
{
  public:
    /** Seed through SplitMix64 so any 64-bit seed gives a good state. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    u64 next();

    /**
     * Raw draws consumed so far (every helper funnels through next()).
     * Experiments use the count to prove a feature is draw-neutral:
     * equal draws before/after means the fault stream cannot shift.
     */
    u64 draws() const { return draws_; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    u64 below(u64 n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    i64 range(i64 lo, i64 hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Log-normal with the given underlying normal parameters. */
    double logNormal(double mu, double sigma);

    /**
     * Gamma(shape, scale) via Marsaglia-Tsang; used to build Beta draws.
     * @pre shape > 0, scale > 0.
     */
    double gamma(double shape, double scale = 1.0);

    /**
     * Beta(a, b) distributed value in (0, 1). Used for per-user repeat
     * probabilities (Figure 5 calibration).
     */
    double beta(double a, double b);

    /** Pick an index proportionally to non-negative weights. */
    std::size_t weighted(const std::vector<double> &weights);

    /** Fork an independent, deterministic sub-stream. */
    Rng fork();

    /** Fisher-Yates shuffle of an arbitrary sequence. */
    template <typename Seq>
    void
    shuffle(Seq &seq)
    {
        if (seq.size() < 2)
            return;
        for (std::size_t i = seq.size() - 1; i > 0; --i) {
            std::size_t j = std::size_t(below(i + 1));
            using std::swap;
            swap(seq[i], seq[j]);
        }
    }

  private:
    u64 s_[4];
    u64 draws_ = 0;
};

} // namespace pc

#endif // PC_UTIL_RNG_H
