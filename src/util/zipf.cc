#include "util/zipf.h"

#include <cmath>

#include "util/logging.h"

namespace pc {

namespace {

/**
 * Core of Hormann & Derflinger rejection-inversion: the primitive of the
 * rank density x^-s, written with expm1/log1p-style guards so it stays
 * accurate for s near 1 (where the closed form degenerates to log).
 */
double
hIntegralFormula(double logx, double s)
{
    const double t = logx * (1.0 - s);
    // helper1(t) = expm1(t)/t with the t -> 0 limit of 1.
    const double helper1 = (std::fabs(t) > 1e-8) ? std::expm1(t) / t : 1.0;
    return logx * helper1;
}

/** Inverse of hIntegralFormula in x. */
double
hIntegralInverseFormula(double x, double s)
{
    double t = x * (1.0 - s);
    if (t < -1.0)
        t = -1.0; // guard rounding at the lower boundary
    // helper2(t) = log1p(t)/t with the t -> 0 limit of 1, so the result
    // is exp(log1p(t)/(1-s)) = (1 + x*(1-s))^(1/(1-s)).
    const double helper2 =
        (std::fabs(t) > 1e-8) ? std::log1p(t) / t : 1.0;
    return std::exp(x * helper2);
}

} // namespace

double
generalizedHarmonic(u64 n, double s)
{
    // Iterate largest-k (smallest term) first for summation accuracy.
    double sum = 0.0;
    for (u64 k = n; k >= 1; --k) {
        sum += std::pow(double(k), -s);
        if (k == 1)
            break;
    }
    return sum;
}

ZipfSampler::ZipfSampler(u64 n, double s)
    : n_(n), s_(s)
{
    pc_assert(n >= 1, "ZipfSampler needs n >= 1");
    pc_assert(s >= 0.0, "ZipfSampler needs s >= 0");
    hX1_ = hIntegral(1.5) - 1.0;
    hN_ = hIntegral(double(n_) + 0.5);
    harmonic_ = generalizedHarmonic(n_, s_);
}

double
ZipfSampler::hIntegral(double x) const
{
    return hIntegralFormula(std::log(x), s_);
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    return hIntegralInverseFormula(x, s_);
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-s_ * std::log(x));
}

u64
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 0;
    // Hormann & Derflinger rejection-inversion; O(1) per draw.
    for (;;) {
        const double u = hN_ + rng.uniform() * (hX1_ - hN_);
        const double x = hIntegralInverse(u);
        u64 k64 = u64(x + 0.5);
        if (k64 < 1)
            k64 = 1;
        else if (k64 > n_)
            k64 = n_;
        if (u >= hIntegral(double(k64) + 0.5) - h(double(k64)))
            return k64 - 1; // 0-based rank
    }
}

double
ZipfSampler::pmf(u64 rank) const
{
    pc_assert(rank < n_, "pmf rank out of range");
    return std::pow(double(rank + 1), -s_) / harmonic_;
}

double
ZipfSampler::cdf(u64 rank) const
{
    pc_assert(rank < n_, "cdf rank out of range");
    return generalizedHarmonic(rank + 1, s_) / harmonic_;
}

u64
ZipfSampler::headForShare(double share) const
{
    pc_assert(share > 0.0 && share <= 1.0, "share must be in (0, 1]");
    const double target = share * harmonic_;
    double acc = 0.0;
    for (u64 k = 1; k <= n_; ++k) {
        acc += std::pow(double(k), -s_);
        if (acc >= target)
            return k;
    }
    return n_;
}

double
solveZipfExponent(u64 n, u64 head, double share)
{
    pc_assert(head >= 1 && head < n, "head must be inside the support");
    pc_assert(share > 0.0 && share < 1.0, "share must be in (0, 1)");
    auto headShare = [&](double s) {
        return generalizedHarmonic(head, s) / generalizedHarmonic(n, s);
    };
    double lo = 0.4, hi = 3.0;
    // headShare is increasing in s for head << n.
    if (headShare(lo) >= share)
        return lo;
    if (headShare(hi) <= share)
        return hi;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (headShare(mid) < share)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace pc
