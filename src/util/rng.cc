#include "util/rng.h"

#include "util/hash.h"
#include "util/logging.h"

namespace pc {

namespace {

constexpr u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    // SplitMix64 expansion of the seed into four state words.
    u64 x = seed;
    for (auto &w : s_) {
        x += 0x9e3779b97f4a7c15ull;
        w = mix64(x);
    }
    // xoshiro cannot run from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = kFnvOffset;
}

u64
Rng::next()
{
    ++draws_;
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

u64
Rng::below(u64 n)
{
    pc_assert(n > 0, "Rng::below(0)");
    // Rejection to remove modulo bias.
    const u64 threshold = (0 - n) % n;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % n;
    }
}

i64
Rng::range(i64 lo, i64 hi)
{
    pc_assert(lo <= hi, "Rng::range: lo > hi");
    return lo + i64(below(u64(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    pc_assert(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::gamma(double shape, double scale)
{
    pc_assert(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
    if (shape < 1.0) {
        // Boost to shape+1 and correct with a uniform power.
        const double u = std::max(uniform(), 1e-300);
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia & Tsang.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = normal();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v * scale;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v * scale;
        }
    }
}

double
Rng::beta(double a, double b)
{
    const double x = gamma(a);
    const double y = gamma(b);
    const double sum = x + y;
    if (sum <= 0.0)
        return 0.5;
    return x / sum;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    pc_assert(!weights.empty(), "weighted() on empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        pc_assert(w >= 0.0, "weighted() needs non-negative weights");
        total += w;
    }
    pc_assert(total > 0.0, "weighted() needs a positive weight sum");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ull);
}

} // namespace pc
