#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pc {

void
CounterBag::bump(const std::string &name, u64 delta)
{
    for (auto &[n, v] : items_) {
        if (n == name) {
            v += delta;
            return;
        }
    }
    items_.emplace_back(name, delta);
}

void
CounterBag::set(const std::string &name, u64 value)
{
    for (auto &[n, v] : items_) {
        if (n == name) {
            v = value;
            return;
        }
    }
    items_.emplace_back(name, value);
}

u64
CounterBag::value(const std::string &name) const
{
    for (const auto &[n, v] : items_) {
        if (n == name)
            return v;
    }
    return 0;
}

bool
CounterBag::contains(const std::string &name) const
{
    for (const auto &[n, v] : items_) {
        (void)v;
        if (n == name)
            return true;
    }
    return false;
}

void
CounterBag::merge(const CounterBag &other)
{
    for (const auto &[n, v] : other.items_)
        bump(n, v);
}

u64
CounterBag::total() const
{
    u64 sum = 0;
    for (const auto &[n, v] : items_) {
        (void)n;
        sum += v;
    }
    return sum;
}

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. pairwise combine: exact counts/sums, numerically
    // stable M2 update.
    const u64 n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * double(n_) * double(other.n_) / double(n);
    mean_ += delta * double(other.n_) / double(n);
    n_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / double(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
EmpiricalCdf::add(double x)
{
    xs_.push_back(x);
    sorted_ = false;
}

void
EmpiricalCdf::add(const std::vector<double> &xs)
{
    xs_.insert(xs_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
EmpiricalCdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(xs_.begin(), xs_.end());
        sorted_ = true;
    }
}

double
EmpiricalCdf::at(double x) const
{
    if (xs_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    return double(it - xs_.begin()) / double(xs_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    pc_assert(!xs_.empty(), "quantile of empty CDF");
    pc_assert(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
    ensureSorted();
    if (xs_.size() == 1)
        return xs_.front();
    const double pos = q * double(xs_.size() - 1);
    const std::size_t i = std::size_t(pos);
    if (i + 1 >= xs_.size())
        return xs_.back();
    const double frac = pos - double(i);
    return xs_[i] * (1.0 - frac) + xs_[i + 1] * frac;
}

const std::vector<double> &
EmpiricalCdf::sorted() const
{
    ensureSorted();
    return xs_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    pc_assert(hi > lo, "Histogram needs hi > lo");
    pc_assert(buckets >= 1, "Histogram needs >= 1 bucket");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / double(counts_.size());
    double idx = (x - lo_) / width;
    std::size_t i;
    if (idx < 0.0)
        i = 0;
    else if (std::size_t(idx) >= counts_.size())
        i = counts_.size() - 1;
    else
        i = std::size_t(idx);
    ++counts_[i];
    ++total_;
}

double
Histogram::bucketLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / double(counts_.size());
    return lo_ + width * double(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    const double width = (hi_ - lo_) / double(counts_.size());
    return lo_ + width * double(i + 1);
}

CumulativeShare
CumulativeShare::fromVolumes(std::vector<u64> volumes)
{
    CumulativeShare cs;
    cs.sortedVolumes = std::move(volumes);
    std::sort(cs.sortedVolumes.begin(), cs.sortedVolumes.end(),
              std::greater<u64>());
    cs.total = 0;
    for (u64 v : cs.sortedVolumes)
        cs.total += v;
    return cs;
}

double
CumulativeShare::shareOfTop(std::size_t k) const
{
    if (total == 0)
        return 0.0;
    k = std::min(k, sortedVolumes.size());
    u64 acc = 0;
    for (std::size_t i = 0; i < k; ++i)
        acc += sortedVolumes[i];
    return double(acc) / double(total);
}

std::size_t
CumulativeShare::topForShare(double share) const
{
    if (total == 0)
        return 0;
    const double target = share * double(total);
    double acc = 0.0;
    for (std::size_t i = 0; i < sortedVolumes.size(); ++i) {
        acc += double(sortedVolumes[i]);
        if (acc >= target)
            return i + 1;
    }
    return sortedVolumes.size();
}

} // namespace pc
