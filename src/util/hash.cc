#include "util/hash.h"

// All hashing is constexpr and header-only; this translation unit exists so
// the library archive always has at least one object for the module and to
// anchor any future non-inline additions.

namespace pc {
static_assert(fnv1a("") == kFnvOffset, "empty-string FNV must be the basis");
static_assert(queryHash("youtube", 0) != queryHash("youtube", 1),
              "slot must perturb the query hash");
} // namespace pc
