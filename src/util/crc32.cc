#include "util/crc32.h"

#include <array>

namespace pc {

namespace {

/** Byte-at-a-time lookup table for the reflected polynomial. */
constexpr std::array<u32, 256>
makeTable()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr std::array<u32, 256> kTable = makeTable();

} // namespace

u32
crc32(std::string_view data, u32 seed)
{
    u32 c = seed ^ 0xFFFFFFFFu;
    for (char ch : data)
        c = kTable[(c ^ u8(ch)) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace pc
