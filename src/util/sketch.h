/**
 * @file
 * Bounded, mergeable quantile sketch (KLL-style).
 *
 * The observability registry's histograms used to keep every sample so
 * snapshots could report exact quantiles — fine for one device, fatal
 * for a fleet: a million-query run stores a million doubles per metric.
 * A QuantileSketch caps memory at O(k) items regardless of stream
 * length by keeping a hierarchy of weighted sample buffers: level i
 * holds items that each stand in for 2^i original observations. When a
 * level overflows its capacity, it is sorted and every other item
 * (random offset) is promoted with doubled weight — the classic KLL
 * compaction, which preserves total weight and keeps the rank error of
 * any quantile below a small epsilon with high probability.
 *
 * Guarantees this implementation leans on (and tests pin down):
 *
 *  - **Memory bound.** retained() never exceeds maxRetained() =
 *    3k + 2*kMaxLevels + 1 items (~730 doubles at the default k=256),
 *    no matter how many observations are folded in.
 *  - **Accuracy.** For the default k, estimated quantiles land within
 *    epsilon() (= 0.01 rank error, documented and enforced in
 *    sketch_test.cc on 1M-sample streams) of the exact empirical
 *    quantiles.
 *  - **Exact when small.** Until the first compaction (the first k
 *    observations) every item has weight 1 and quantile() reproduces
 *    EmpiricalCdf::quantile bit for bit, so unit tests on small
 *    streams keep their exact expectations.
 *  - **Determinism.** Compaction offsets come from an internal
 *    fixed-seed generator, so the same sequence of add()/mergeFrom()
 *    calls produces an identical sketch — byte-identical bench output
 *    survives the switch from exact samples to sketches.
 *  - **Mergeable.** mergeFrom() folds another sketch in level-wise;
 *    merging preserves total weight and the error bound degrades only
 *    additively, so per-device sketches can be reduced into one fleet
 *    sketch in any order (associativity/commutativity up to epsilon is
 *    tested).
 */

#ifndef PC_UTIL_SKETCH_H
#define PC_UTIL_SKETCH_H

#include <cstddef>
#include <utility>
#include <vector>

#include "util/types.h"

namespace pc {

/**
 * KLL-style streaming quantile estimator. See file comment for the
 * contract; `k` trades memory (3k items) against rank error (~1/k
 * scale with a small constant).
 */
class QuantileSketch
{
  public:
    /** Default accuracy parameter (rank error ~1% at p50-p99). */
    static constexpr u32 kDefaultK = 256;

    /** Hard ceiling on compaction levels (2^64 observations). */
    static constexpr std::size_t kMaxLevels = 64;

    explicit QuantileSketch(u32 k = kDefaultK);

    /** Fold one observation in. */
    void add(double x);

    /**
     * Fold another sketch in (level-wise concatenation + compaction).
     * Total weight is preserved; the result summarizes the union of
     * both streams.
     */
    void mergeFrom(const QuantileSketch &other);

    /** Observations summarized (exact count, not an estimate). */
    u64 count() const { return n_; }

    /** True when no observation has been folded in. */
    bool empty() const { return n_ == 0; }

    /** Smallest observation ever seen (exact); 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation ever seen (exact); 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /**
     * Estimated q-quantile for q in [0, 1]; 0 when empty. q <= 0 and
     * q >= 1 return the exact min/max. Before the first compaction the
     * estimate equals EmpiricalCdf::quantile exactly (same linear
     * interpolation between order statistics).
     */
    double quantile(double q) const;

    /** Estimated P(X <= x); 0 when empty. */
    double rank(double x) const;

    /** Items currently stored across all levels. */
    std::size_t retained() const;

    /**
     * Documented memory cap: retained() <= maxRetained() always (the
     * bound the bounded-memory test asserts).
     */
    std::size_t maxRetained() const
    {
        return std::size_t(3) * k_ + 2 * kMaxLevels + 1;
    }

    /**
     * Documented rank-error bound for quantile()/rank() estimates at
     * this k, enforced empirically on 1M-sample streams by the tests.
     */
    double epsilon() const { return 2.56 / double(k_); }

    /** Accuracy parameter. */
    u32 k() const { return k_; }

    /** Compactions performed (0 means every item still has weight 1). */
    u64 compactions() const { return compactions_; }

    /**
     * Retained items as (value, weight) pairs, value-sorted. Weights
     * sum to count(). For tests and custom estimators.
     */
    std::vector<std::pair<double, u64>> weightedItems() const;

  private:
    /** Capacity of `level` when `height` levels exist. */
    std::size_t levelCapacity(std::size_t level, std::size_t height) const;

    /** Total capacity across current levels. */
    std::size_t capacityTotal() const;

    /** Compact the lowest over-capacity level until under budget. */
    void compress();

    /** Sort + promote every other item of `level` (weight doubles). */
    void compactLevel(std::size_t level);

    /** Deterministic coin for compaction offsets (fixed-seed xorshift). */
    bool coin();

    u32 k_;
    u64 n_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    u64 coinState_;
    u64 compactions_ = 0;
    /** levels_[i] holds weight-2^i items, unsorted. */
    std::vector<std::vector<double>> levels_;
};

} // namespace pc

#endif // PC_UTIL_SKETCH_H
