/**
 * @file
 * gem5-flavoured status/error helpers: fatal() for user-caused errors,
 * panic() for internal invariant violations, warn()/inform() for status
 * and debug() for developer chatter.
 *
 * warn/inform/debug all route through one process-wide sink (default:
 * stderr), so tests can capture or silence them with setLogSink().
 * debug messages are additionally gated: they are dropped unless the
 * PC_LOG environment variable enables them ("debug", "all" or "1") or
 * a test flips setDebugLogging(true). fatal/panic bypass the sink —
 * they are about to end the process and must always reach stderr.
 */

#ifndef PC_UTIL_LOGGING_H
#define PC_UTIL_LOGGING_H

#include <functional>
#include <sstream>
#include <string>

namespace pc {

/** Severity of one sink message. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
};

/** Display name ("debug", "info", "warn"). */
const char *logLevelName(LogLevel level);

/** Receiver for all warn/inform/debug messages. */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install a sink for warn/inform/debug output (tests capture/silence
 * with this). Passing nullptr restores the default stderr sink.
 * @return The previously installed sink (empty if it was the default).
 */
LogSink setLogSink(LogSink sink);

/**
 * Is debug logging on? First call reads PC_LOG from the environment
 * ("debug", "all" or "1" enable); setDebugLogging overrides.
 */
bool debugLoggingEnabled();

/** Force debug logging on/off (overrides PC_LOG; for tests/tools). */
void setDebugLogging(bool enabled);

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** PC_LOG value -> debug enabled? (split out for unit testing). */
bool parseLogEnv(const char *value);

/** Fold a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Abort the process because the *user* asked for something unsupportable
 * (bad configuration, out-of-range parameter). Exits with status 1.
 */
#define pc_fatal(...) \
    ::pc::detail::fatalImpl(__FILE__, __LINE__, ::pc::detail::concat(__VA_ARGS__))

/**
 * Abort the process because an internal invariant broke (a bug in this
 * library, never the user's fault). Calls std::abort().
 */
#define pc_panic(...) \
    ::pc::detail::panicImpl(__FILE__, __LINE__, ::pc::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define pc_assert(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::pc::detail::panicImpl(__FILE__, __LINE__,                    \
                ::pc::detail::concat("assertion '" #cond "' failed: ",     \
                                     ##__VA_ARGS__));                      \
        }                                                                  \
    } while (0)

/** Non-fatal: something works but not as well as it should. */
#define pc_warn(...) ::pc::detail::warnImpl(::pc::detail::concat(__VA_ARGS__))

/** Non-fatal: plain status message. */
#define pc_inform(...) ::pc::detail::informImpl(::pc::detail::concat(__VA_ARGS__))

/**
 * Developer chatter, dropped unless PC_LOG enables it. The argument
 * pack is only evaluated when debug logging is on.
 */
#define pc_debug(...)                                                      \
    do {                                                                   \
        if (::pc::debugLoggingEnabled()) {                                 \
            ::pc::detail::debugImpl(::pc::detail::concat(__VA_ARGS__));    \
        }                                                                  \
    } while (0)

} // namespace pc

#endif // PC_UTIL_LOGGING_H
