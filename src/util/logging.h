/**
 * @file
 * gem5-flavoured status/error helpers: fatal() for user-caused errors,
 * panic() for internal invariant violations, warn()/inform() for status.
 */

#ifndef PC_UTIL_LOGGING_H
#define PC_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace pc {

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Abort the process because the *user* asked for something unsupportable
 * (bad configuration, out-of-range parameter). Exits with status 1.
 */
#define pc_fatal(...) \
    ::pc::detail::fatalImpl(__FILE__, __LINE__, ::pc::detail::concat(__VA_ARGS__))

/**
 * Abort the process because an internal invariant broke (a bug in this
 * library, never the user's fault). Calls std::abort().
 */
#define pc_panic(...) \
    ::pc::detail::panicImpl(__FILE__, __LINE__, ::pc::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define pc_assert(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::pc::detail::panicImpl(__FILE__, __LINE__,                    \
                ::pc::detail::concat("assertion '" #cond "' failed: ",     \
                                     ##__VA_ARGS__));                      \
        }                                                                  \
    } while (0)

/** Non-fatal: something works but not as well as it should. */
#define pc_warn(...) ::pc::detail::warnImpl(::pc::detail::concat(__VA_ARGS__))

/** Non-fatal: plain status message. */
#define pc_inform(...) ::pc::detail::informImpl(::pc::detail::concat(__VA_ARGS__))

} // namespace pc

#endif // PC_UTIL_LOGGING_H
