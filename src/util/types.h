/**
 * @file
 * Fundamental integer aliases and simulated-time / size types shared by
 * every module in the pocket-cloudlets codebase.
 */

#ifndef PC_UTIL_TYPES_H
#define PC_UTIL_TYPES_H

#include <cstddef>
#include <cstdint>

namespace pc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/**
 * Simulated time, in nanoseconds. All device/radio/flash models advance a
 * SimTime; wall-clock time never leaks into simulation results.
 */
using SimTime = i64;

/** One microsecond in SimTime units. */
inline constexpr SimTime kMicrosecond = 1'000;
/** One millisecond in SimTime units. */
inline constexpr SimTime kMillisecond = 1'000'000;
/** One second in SimTime units. */
inline constexpr SimTime kSecond = 1'000'000'000;

/** Convert SimTime to floating-point seconds (for reporting only). */
constexpr double toSeconds(SimTime t) { return double(t) / double(kSecond); }
/** Convert SimTime to floating-point milliseconds (for reporting only). */
constexpr double toMillis(SimTime t) { return double(t) / double(kMillisecond); }
/** Convert floating-point seconds to SimTime. */
constexpr SimTime fromSeconds(double s) { return SimTime(s * double(kSecond)); }
/** Convert floating-point milliseconds to SimTime. */
constexpr SimTime fromMillis(double ms) { return SimTime(ms * double(kMillisecond)); }

/** Storage sizes, in bytes. */
using Bytes = u64;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/** Energy, in microjoules. Power integration uses mW * ms == uJ. */
using MicroJoules = double;

/** Power, in milliwatts. */
using MilliWatts = double;

/**
 * Integrate power over a simulated interval.
 *
 * @param mw Constant power over the interval, in milliwatts.
 * @param dt Interval length.
 * @return Energy consumed, in microjoules.
 */
constexpr MicroJoules
energyOver(MilliWatts mw, SimTime dt)
{
    // mW * ns = pJ; 1 uJ = 1e6 pJ.
    return mw * double(dt) / 1e6;
}

} // namespace pc

#endif // PC_UTIL_TYPES_H
