#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pc {

namespace {

/** Default sink: "warn: ..." / "info: ..." / "debug: ..." on stderr. */
void
stderrSink(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", logLevelName(level), msg.c_str());
}

LogSink &
sinkSlot()
{
    static LogSink sink; // empty = default stderr sink
    return sink;
}

void
emit(LogLevel level, const std::string &msg)
{
    const LogSink &sink = sinkSlot();
    if (sink)
        sink(level, msg);
    else
        stderrSink(level, msg);
}

/** -1 = consult PC_LOG lazily, else forced 0/1. */
int &
debugOverride()
{
    static int v = -1;
    return v;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
    }
    return "?";
}

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = std::move(sinkSlot());
    sinkSlot() = std::move(sink);
    return prev;
}

bool
debugLoggingEnabled()
{
    if (debugOverride() >= 0)
        return debugOverride() != 0;
    static const bool fromEnv = detail::parseLogEnv(std::getenv("PC_LOG"));
    return fromEnv;
}

void
setDebugLogging(bool enabled)
{
    debugOverride() = enabled ? 1 : 0;
}

namespace detail {

bool
parseLogEnv(const char *value)
{
    if (!value)
        return false;
    return std::strcmp(value, "debug") == 0 ||
           std::strcmp(value, "all") == 0 || std::strcmp(value, "1") == 0;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    emit(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    emit(LogLevel::Info, msg);
}

void
debugImpl(const std::string &msg)
{
    emit(LogLevel::Debug, msg);
}

} // namespace detail
} // namespace pc
