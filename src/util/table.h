/**
 * @file
 * ASCII table and CSV emitters: every bench binary prints the rows/series
 * of its paper table or figure through these, so output formatting is
 * uniform across the evaluation harness.
 */

#ifndef PC_UTIL_TABLE_H
#define PC_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace pc {

/**
 * Column-aligned ASCII table with a title, header row and data rows.
 * Numeric cells should be pre-formatted by the caller (strformat).
 */
class AsciiTable
{
  public:
    /** @param title Printed above the table. */
    explicit AsciiTable(std::string title);

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cols);

    /** Append one data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Render with box-drawing to the stream. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal CSV writer (no quoting of embedded commas by design — the
 * harness only emits identifiers and numbers).
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit one row. */
    void row(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;
};

} // namespace pc

#endif // PC_UTIL_TABLE_H
