/**
 * @file
 * Lightweight statistics containers used by the log analysis and the
 * evaluation harness: running summary stats, histograms, and empirical
 * CDFs (the paper reports most community results as CDF plots).
 */

#ifndef PC_UTIL_STATS_H
#define PC_UTIL_STATS_H

#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace pc {

/**
 * Ordered set of named event counters.
 *
 * The fault-injection layer and the device resilience machinery count
 * discrete events (outages hit, exchanges failed, retries, degraded
 * serves, ...). A CounterBag gives them one uniform currency that the
 * workbench can merge and print, and that tests can compare wholesale.
 * Counters keep first-bump order so reports are stable and readable.
 */
class CounterBag
{
  public:
    /** Increment `name` by `delta`, creating it at zero first. */
    void bump(const std::string &name, u64 delta = 1);

    /** Set `name` to an absolute value (gauge-style use). */
    void set(const std::string &name, u64 value);

    /** Current value; 0 if the counter was never touched. */
    u64 value(const std::string &name) const;

    /** True if the counter exists. */
    bool contains(const std::string &name) const;

    /**
     * Fold another bag's counters into this one.
     *
     * Ordering guarantee: counters already present keep their existing
     * positions (their values accumulate in place); counters new to
     * this bag are appended in `other`'s first-bump order. Merging the
     * same sequence of bags therefore always yields the same item
     * order, so merged reports are deterministic and diffable.
     */
    void merge(const CounterBag &other);

    /** Counters in first-bump order. */
    const std::vector<std::pair<std::string, u64>> &items() const
    {
        return items_;
    }

    /** Sum of all counter values. */
    u64 total() const;

    /** Number of distinct counters. */
    std::size_t size() const { return items_.size(); }

    /** Drop all counters. */
    void clear() { items_.clear(); }

  private:
    std::vector<std::pair<std::string, u64>> items_;
};

/**
 * Online mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /**
     * Fold another accumulator in (parallel Welford/Chan combine).
     * Equivalent to having added the other stream's observations here,
     * up to floating-point rounding. Lets per-shard stats be reduced
     * without replaying observations.
     */
    void merge(const RunningStat &other);

    /** Number of observations so far. */
    u64 count() const { return n_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest observation; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest observation; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Empirical CDF over a stored sample. Quantiles use linear interpolation
 * between order statistics.
 */
class EmpiricalCdf
{
  public:
    /** Append an observation (invalidates previously computed quantiles). */
    void add(double x);

    /** Bulk append. */
    void add(const std::vector<double> &xs);

    /** Number of observations. */
    std::size_t size() const { return xs_.size(); }

    /** Empirical P(X <= x). */
    double at(double x) const;

    /** q-quantile for q in [0, 1]. @pre non-empty. */
    double quantile(double q) const;

    /** Sorted copy of the sample. */
    const std::vector<double> &sorted() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> xs_;
    mutable bool sorted_ = true;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range values clamp into the
 * edge buckets.
 */
class Histogram
{
  public:
    /** @pre hi > lo and buckets >= 1. */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Count one observation. */
    void add(double x);

    /** Number of buckets. */
    std::size_t buckets() const { return counts_.size(); }
    /** Count in a bucket. */
    u64 bucketCount(std::size_t i) const { return counts_.at(i); }
    /** Inclusive lower edge of a bucket. */
    double bucketLow(std::size_t i) const;
    /** Exclusive upper edge of a bucket. */
    double bucketHigh(std::size_t i) const;
    /** Total observations. */
    u64 total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<u64> counts_;
    u64 total_ = 0;
};

/**
 * Popularity-curve helper: given per-item volumes, the cumulative share
 * covered by the top-k most popular items (the x/y series of the paper's
 * Figures 4 and 7).
 */
struct CumulativeShare
{
    /** Item volumes sorted descending. */
    std::vector<u64> sortedVolumes;
    /** Total volume. */
    u64 total = 0;

    /** Build from unsorted volumes. */
    static CumulativeShare fromVolumes(std::vector<u64> volumes);

    /** Share of total volume covered by the top-k items, k clamped. */
    double shareOfTop(std::size_t k) const;

    /** Smallest k whose top-k share reaches the target. */
    std::size_t topForShare(double share) const;
};

} // namespace pc

#endif // PC_UTIL_STATS_H
