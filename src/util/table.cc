#include "util/table.h"

#include <algorithm>
#include <iostream>

#include "util/logging.h"

namespace pc {

AsciiTable::AsciiTable(std::string title)
    : title_(std::move(title))
{
}

void
AsciiTable::header(std::vector<std::string> cols)
{
    pc_assert(!cols.empty(), "table header needs at least one column");
    header_ = std::move(cols);
}

void
AsciiTable::row(std::vector<std::string> cells)
{
    pc_assert(cells.size() == header_.size(),
              "row width ", cells.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(cells));
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto rule = [&]() {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    rule();
    line(header_);
    rule();
    for (const auto &r : rows_)
        line(r);
    rule();
}

void
AsciiTable::print() const
{
    print(std::cout);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << cells[i];
    }
    os_ << '\n';
}

} // namespace pc
