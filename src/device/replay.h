/**
 * @file
 * Hit-rate replay driver (Section 6.2's methodology).
 *
 * Replays per-user month-long query streams against per-user
 * PocketSearch caches warmed with community contents built from the
 * preceding month's logs, and aggregates hit rates per user class,
 * per week, and per navigational split — Figures 17, 18 and 19.
 */

#ifndef PC_DEVICE_REPLAY_H
#define PC_DEVICE_REPLAY_H

#include <array>
#include <vector>

#include "core/pocket_search.h"
#include "workload/population.h"
#include "workload/stream.h"

namespace pc::device {

using core::CacheContents;
using core::CacheMode;
using workload::StreamEvent;
using workload::UserClass;
using workload::UserProfile;

/** Per-user replay measurement. */
struct UserReplayResult
{
    UserProfile profile;
    u64 events = 0;
    u64 hits = 0;
    u64 navHits = 0;
    u64 nonNavHits = 0;
    /** Events/hits within week 1, weeks 1-2, full month. */
    std::array<u64, 3> windowEvents{{0, 0, 0}};
    std::array<u64, 3> windowHits{{0, 0, 0}};

    double hitRate() const
    {
        return events ? double(hits) / double(events) : 0.0;
    }
    double windowHitRate(std::size_t w) const
    {
        return windowEvents[w]
            ? double(windowHits[w]) / double(windowEvents[w]) : 0.0;
    }
};

/** Aggregated per-class replay measurement. */
struct ClassReplayResult
{
    UserClass cls = UserClass::Low;
    u64 users = 0;
    double meanHitRate = 0.0;
    double meanWeek1HitRate = 0.0;
    double meanWeeks12HitRate = 0.0;
    double navHitShare = 0.0;    ///< Fraction of hits navigational.
    double nonNavHitShare = 0.0;
};

/** Replay experiment configuration. */
struct ReplayConfig
{
    CacheMode mode = CacheMode::Combined;
    u32 usersPerClass = 100;
    u64 seed = 99;
    /** Ranking decay lambda (Equation 2). */
    double lambda = 0.10;
};

/** Full replay measurement. */
struct ReplayResult
{
    std::vector<UserReplayResult> users;
    std::array<ClassReplayResult, 4> classes;
    double overallMeanHitRate = 0.0; ///< Mean of per-user hit rates.
};

/**
 * Replays user streams against per-user caches.
 *
 * The device timing path is bypassed here on purpose: hit-rate
 * experiments are about cache behaviour, and running 400 users through
 * full device timing adds nothing but runtime. The cache logic is the
 * identical PocketSearch used by the timing experiments.
 */
class ReplayDriver
{
  public:
    /**
     * @param universe World model.
     * @param contents Community cache built from the preceding month.
     * @param pop Population knobs (same as the community generator's so
     *        eval users are drawn from the same behaviour mix).
     */
    ReplayDriver(const core::QueryUniverse &universe,
                 const CacheContents &contents,
                 const workload::PopulationConfig &pop);

    /**
     * Run the experiment: usersPerClass fresh users per class, one
     * month each.
     */
    ReplayResult run(const ReplayConfig &cfg) const;

    /**
     * Replay a single user's pre-generated events against a fresh
     * cache; used by the daily-update experiment which interleaves
     * cache updates with replay.
     */
    UserReplayResult replayUser(const UserProfile &profile,
                                const std::vector<StreamEvent> &events,
                                core::PocketSearch &ps) const;

  private:
    const core::QueryUniverse &universe_;
    const CacheContents &contents_;
    workload::PopulationConfig pop_;
};

} // namespace pc::device

#endif // PC_DEVICE_REPLAY_H
